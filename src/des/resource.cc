#include "des/resource.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::des {

BandwidthResource::BandwidthResource(double bytes_per_tick)
    : rate_(bytes_per_tick)
{
    ADYNA_ASSERT(rate_ > 0.0, "channel rate must be positive: ", rate_);
}

Tick
BandwidthResource::serviceTime(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    const double ticks = static_cast<double>(bytes) / rate_;
    return static_cast<Tick>(std::ceil(ticks));
}

Reservation
BandwidthResource::acquire(Tick earliest, Bytes bytes)
{
    const Tick start = std::max(earliest, busyUntil_);
    const Tick dur = serviceTime(bytes);
    busyUntil_ = start + dur;
    busyTicks_ += dur;
    bytesServed_ += bytes;
    return {start, busyUntil_};
}

void
BandwidthResource::reset()
{
    busyUntil_ = 0;
    busyTicks_ = 0;
    bytesServed_ = 0;
}

GapBandwidthResource::GapBandwidthResource(double bytes_per_tick)
    : rate_(bytes_per_tick)
{
    ADYNA_ASSERT(rate_ > 0.0, "channel rate must be positive: ", rate_);
}

Tick
GapBandwidthResource::serviceTime(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    const double ticks = static_cast<double>(bytes) / rate_;
    return static_cast<Tick>(std::ceil(ticks));
}

Reservation
GapBandwidthResource::acquire(Tick earliest, Bytes bytes)
{
    const Tick dur = serviceTime(bytes);
    bytesServed_ += bytes;
    busyTicks_ += dur;

    // First idle gap of length >= dur starting at or after earliest.
    Tick candidate = earliest;
    std::size_t insertAt = 0;
    for (; insertAt < busy_.size(); ++insertAt) {
        const Reservation &r = busy_[insertAt];
        if (candidate + dur <= r.start)
            break; // fits before this interval
        candidate = std::max(candidate, r.end);
    }
    const Reservation granted{candidate, candidate + dur};
    busy_.insert(busy_.begin() +
                     static_cast<std::ptrdiff_t>(insertAt),
                 granted);

    // Merge adjacent intervals to keep the list short.
    std::vector<Reservation> merged;
    merged.reserve(busy_.size());
    for (const Reservation &r : busy_) {
        if (!merged.empty() && r.start <= merged.back().end)
            merged.back().end = std::max(merged.back().end, r.end);
        else
            merged.push_back(r);
    }
    busy_ = std::move(merged);
    return granted;
}

void
GapBandwidthResource::reset()
{
    busy_.clear();
    busyTicks_ = 0;
    bytesServed_ = 0;
}

Reservation
SerialResource::acquire(Tick earliest, Tick duration)
{
    const Tick start = std::max(earliest, busyUntil_);
    busyUntil_ = start + duration;
    busyTicks_ += duration;
    return {start, busyUntil_};
}

void
SerialResource::reset()
{
    busyUntil_ = 0;
    busyTicks_ = 0;
}

} // namespace adyna::des
