#include "des/resource.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::des {

BandwidthResource::BandwidthResource(double bytes_per_tick)
    : rate_(bytes_per_tick)
{
    ADYNA_ASSERT(rate_ > 0.0, "channel rate must be positive: ", rate_);
}

Tick
BandwidthResource::serviceTime(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    const double ticks = static_cast<double>(bytes) / rate_;
    return static_cast<Tick>(std::ceil(ticks));
}

Reservation
BandwidthResource::acquire(Tick earliest, Bytes bytes)
{
    const Tick start = std::max(earliest, busyUntil_);
    const Tick dur = serviceTime(bytes);
    busyUntil_ = start + dur;
    busyTicks_ += dur;
    bytesServed_ += bytes;
    return {start, busyUntil_};
}

void
BandwidthResource::reset()
{
    busyUntil_ = 0;
    busyTicks_ = 0;
    bytesServed_ = 0;
}

GapBandwidthResource::GapBandwidthResource(double bytes_per_tick)
    : rate_(bytes_per_tick)
{
    ADYNA_ASSERT(rate_ > 0.0, "channel rate must be positive: ", rate_);
}

Tick
GapBandwidthResource::serviceTime(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    const double ticks = static_cast<double>(bytes) / rate_;
    return static_cast<Tick>(std::ceil(ticks));
}

Reservation
GapBandwidthResource::acquire(Tick earliest, Bytes bytes)
{
    const Tick dur = serviceTime(bytes);
    bytesServed_ += bytes;
    busyTicks_ += dur;

    // First idle gap of length >= dur starting at or after earliest.
    // Expired entries before head_ are skipped: their ends precede
    // every admissible earliest, so they cannot move the candidate.
    Tick candidate = earliest;
    std::size_t insertAt = head_;
    for (; insertAt < busy_.size(); ++insertAt) {
        const Reservation &r = busy_[insertAt];
        if (candidate + dur <= r.start)
            break; // fits before this interval
        candidate = std::max(candidate, r.end);
    }
    const Reservation granted{candidate, candidate + dur};

    // Splice in place. Intervals are disjoint, so the grant can only
    // touch (not overlap) its neighbours; extending a neighbour
    // replaces the old rebuild-the-whole-vector merge pass. A grant
    // is never merged into the expired prefix: that would hide busy
    // time from the gap search, which starts at head_.
    const bool touchPrev = insertAt > head_ &&
                           busy_[insertAt - 1].end == granted.start;
    const bool touchNext = insertAt < busy_.size() &&
                           granted.end == busy_[insertAt].start;
    if (touchPrev && touchNext) {
        busy_[insertAt - 1].end = busy_[insertAt].end;
        busy_.erase(busy_.begin() +
                    static_cast<std::ptrdiff_t>(insertAt));
    } else if (touchPrev) {
        busy_[insertAt - 1].end = granted.end;
    } else if (touchNext) {
        busy_[insertAt].start = granted.start;
    } else {
        busy_.insert(busy_.begin() +
                         static_cast<std::ptrdiff_t>(insertAt),
                     granted);
    }
    return granted;
}

void
GapBandwidthResource::trim(Tick before)
{
    while (head_ < busy_.size() && busy_[head_].end <= before)
        ++head_;
    // Compact once the expired prefix dominates, so the vector stays
    // bounded by the live working set instead of growing forever.
    if (head_ > 16 && head_ * 2 > busy_.size()) {
        busy_.erase(busy_.begin(),
                    busy_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }
}

void
GapBandwidthResource::reset()
{
    busy_.clear();
    head_ = 0;
    busyTicks_ = 0;
    bytesServed_ = 0;
}

Reservation
SerialResource::acquire(Tick earliest, Tick duration)
{
    const Tick start = std::max(earliest, busyUntil_);
    busyUntil_ = start + duration;
    busyTicks_ += duration;
    return {start, busyUntil_};
}

void
SerialResource::reset()
{
    busyUntil_ = 0;
    busyTicks_ = 0;
}

} // namespace adyna::des
