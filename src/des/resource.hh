/**
 * @file
 * Timed resources with busy-until reservation semantics.
 *
 * BandwidthResource models a serial channel (a NoC link, an HBM
 * channel) at a fixed rate: a reservation of B bytes occupies the
 * channel for ceil(B / rate) ticks starting no earlier than both the
 * requested time and the end of the previous reservation. This is the
 * standard message-level contention model for interconnect and memory
 * in multi-tile accelerator simulators.
 */

#ifndef ADYNA_DES_RESOURCE_HH
#define ADYNA_DES_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace adyna::des {

/** Time interval [start, end) of a granted reservation. */
struct Reservation
{
    Tick start = 0;
    Tick end = 0;

    Tick duration() const { return end - start; }
};

/** Serial channel with a fixed byte rate and FIFO reservations. */
class BandwidthResource
{
  public:
    /**
     * @param bytes_per_tick channel rate; must be positive.
     */
    explicit BandwidthResource(double bytes_per_tick);

    /**
     * Reserve the channel for @p bytes starting no earlier than
     * @p earliest. Advances the busy horizon.
     */
    Reservation acquire(Tick earliest, Bytes bytes);

    /** Time at which all granted reservations end. */
    Tick busyUntil() const { return busyUntil_; }

    /** Total bytes granted so far. */
    Bytes bytesServed() const { return bytesServed_; }

    /** Total ticks the channel has been occupied. */
    Tick busyTicks() const { return busyTicks_; }

    /** Channel rate in bytes per tick. */
    double rate() const { return rate_; }

    /** Duration of transferring @p bytes at the channel rate. */
    Tick serviceTime(Bytes bytes) const;

    /** Forget all reservations (e.g. between benchmark repetitions). */
    void reset();

  private:
    double rate_;
    Tick busyUntil_ = 0;
    Tick busyTicks_ = 0;
    Bytes bytesServed_ = 0;
};

/**
 * Serial channel with gap-filling reservations: like
 * BandwidthResource, but a request whose desired start lies in an
 * idle gap between existing reservations may claim that gap instead
 * of queueing at the end. This avoids head-of-line blocking when
 * requests are issued out of time order (e.g. a late write-back
 * issued before the next batch's early read). Used for the HBM
 * channels, where reservation counts stay small.
 */
class GapBandwidthResource
{
  public:
    explicit GapBandwidthResource(double bytes_per_tick);

    /** Reserve the channel for @p bytes at the earliest idle gap
     * starting no earlier than @p earliest. */
    Reservation acquire(Tick earliest, Bytes bytes);

    Tick serviceTime(Bytes bytes) const;

    Bytes bytesServed() const { return bytesServed_; }
    Tick busyTicks() const { return busyTicks_; }

    /**
     * Drop reservations that end at or before @p before. Caller
     * contract: every future acquire() passes earliest >= @p before
     * (the engine trims at the period barrier, which is monotone).
     * Under that contract an expired interval can never change a
     * grant, so trimming is behaviour-preserving; it keeps the live
     * interval list bounded under steady-state traffic instead of
     * grow-only.
     */
    void trim(Tick before);

    /** Live (non-expired) reservations currently tracked. */
    std::size_t reservationCount() const
    {
        return busy_.size() - head_;
    }

    void reset();

  private:
    double rate_;
    /** Sorted, disjoint busy intervals [start, end). Entries before
     * head_ are expired (end <= last trim barrier) and excluded from
     * the gap search; the prefix is compacted away once it dominates
     * the vector, so erasure cost amortizes to O(1) per trim. */
    std::vector<Reservation> busy_;
    std::size_t head_ = 0;
    Tick busyTicks_ = 0;
    Bytes bytesServed_ = 0;
};

/**
 * Unit-capacity server: a reservation occupies the server for an
 * explicit duration (used for tile compute occupancy and for the
 * host-CPU scheduling path in the baselines).
 */
class SerialResource
{
  public:
    /** Reserve for @p duration ticks starting no earlier than
     * @p earliest. */
    Reservation acquire(Tick earliest, Tick duration);

    Tick busyUntil() const { return busyUntil_; }
    Tick busyTicks() const { return busyTicks_; }

    void reset();

  private:
    Tick busyUntil_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace adyna::des

#endif // ADYNA_DES_RESOURCE_HH
