/**
 * @file
 * Discrete-event simulation core.
 *
 * The Adyna hardware model (tiles, NoC links, HBM channels) is driven
 * by this engine: callbacks scheduled at absolute or relative ticks,
 * executed in (tick, insertion-order) order. One tick equals one
 * accelerator clock cycle (1 ns at the default 1 GHz).
 *
 * The event queue is an arena-backed SoA calendar queue. Event slots
 * live in parallel vectors (tick, sequence number, kind, packed
 * payload, intrusive next-link) recycled through a free-list, so a
 * steady-state simulation performs zero allocations. Near-future
 * events land in a ring of one-tick-wide buckets covering a sliding
 * window of kRingBuckets ticks; each bucket is an intrusive FIFO
 * list, so same-tick events fire in insertion order without ever
 * comparing sequence numbers. Far-future events overflow into a
 * binary heap ordered by (tick, seq) and migrate into the ring when
 * the window jumps forward past the drained buckets.
 *
 * Events are dispatched by a small-enum kind through a flat handler
 * table (one indirect call, no std::function). Kind 0 is reserved
 * for the legacy closure API (schedule()), whose std::function
 * objects live in a pooled side table; the typed post() path never
 * touches a closure.
 *
 * LegacySimulator keeps the original priority_queue + std::function
 * implementation as the behavioural reference: the tie-break
 * stability tests and the events/sec A/B benchmark run both engines
 * over the same stream and require identical firing order.
 */

#ifndef ADYNA_DES_SIMULATOR_HH
#define ADYNA_DES_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace adyna::des {

/** Callback executed when an event fires (closure-compat path). */
using EventFn = std::function<void()>;

/** Arena-backed SoA calendar-queue discrete-event simulator. */
class Simulator
{
  public:
    /** Typed event handler: a plain function pointer dispatched with
     * the event's packed payload words (no closure allocation). */
    using Handler = void (*)(void *ctx, std::uint64_t a,
                             std::uint64_t b);

    /** Event kind reserved for the closure-compat schedule() path. */
    static constexpr std::uint8_t kClosureKind = 0;

    /** Number of registrable event kinds (including kClosureKind). */
    static constexpr std::size_t kMaxKinds = 16;

    Simulator() = default;

    // The event queue holds handler contexts and closures over
    // `this`-external state; copying a simulator is never meaningful.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Register the handler dispatched for @p kind (1..kMaxKinds-1;
     * kind 0 is the closure path). @p ctx is passed back verbatim. */
    void setHandler(std::uint8_t kind, Handler fn, void *ctx);

    /** Schedule a typed event at absolute time @p when (>= now). */
    void post(Tick when, std::uint8_t kind, std::uint64_t a = 0,
              std::uint64_t b = 0);

    /** Schedule a typed event at now() + @p delay. */
    void postIn(Tick delay, std::uint8_t kind, std::uint64_t a = 0,
                std::uint64_t b = 0);

    /** Schedule @p fn at absolute time @p when (>= now). */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn at now() + @p delay. */
    void scheduleIn(Tick delay, EventFn fn);

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p limit. Events at exactly @p limit still execute.
     * @return the simulated time when the run stopped.
     */
    Tick runUntil(Tick limit);

    /** Execute at most one pending event. @return false if none. */
    bool step();

    /** Number of events executed so far. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return ringCount_ + heap_.size(); }

    /** Grow the arena (and closure pool) to hold @p slots events
     * without allocating; the zero-allocation guard warms up with
     * this before counting. */
    void reserve(std::size_t slots);

    /** Event slots ever allocated (free + live). */
    std::size_t arenaSlots() const { return when_.size(); }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Ring width in ticks; power of two so the bucket index is a
     * mask. One tick per bucket keeps every bucket FIFO-by-append. */
    static constexpr std::size_t kRingBuckets = 1024;
    static constexpr Tick kRingMask = kRingBuckets - 1;

    std::uint32_t allocSlot(Tick when, std::uint8_t kind,
                            std::uint64_t a, std::uint64_t b);
    void releaseSlot(std::uint32_t slot);
    void enqueueSlot(std::uint32_t slot);
    void appendToBucket(std::uint32_t slot);

    /** Jump the window to the earliest heap event and migrate every
     * heap event inside the new window into the ring. Requires an
     * empty ring and a non-empty heap. */
    void refillWindow();

    /** Tick of the next pending event, advancing the bucket cursor
     * past drained buckets. @return false when the queue is empty. */
    bool peekNext(Tick &when);

    bool heapLater(std::uint32_t a, std::uint32_t b) const
    {
        if (when_[a] != when_[b])
            return when_[a] > when_[b];
        return seq_[a] > seq_[b];
    }

    // ---- SoA event arena -------------------------------------------
    std::vector<Tick> when_;
    std::vector<std::uint64_t> seq_;
    std::vector<std::uint64_t> payloadA_;
    std::vector<std::uint64_t> payloadB_;
    std::vector<std::uint32_t> next_;
    std::vector<std::uint8_t> kind_;
    std::uint32_t freeHead_ = kNil;

    // ---- calendar ring + overflow heap -----------------------------
    std::array<std::uint32_t, kRingBuckets> bucketHead_;
    std::array<std::uint32_t, kRingBuckets> bucketTail_;
    Tick windowBase_ = 0; ///< ring covers [windowBase_, +kRingBuckets)
    Tick cursor_ = 0;     ///< next tick to inspect within the window
    std::size_t ringCount_ = 0;
    std::vector<std::uint32_t> heap_; ///< slots at >= windowBase_+N

    // ---- closure pool (kClosureKind payloadA = pool index) ---------
    std::vector<EventFn> closures_;
    std::vector<std::uint32_t> closureFree_;

    struct HandlerEntry
    {
        Handler fn = nullptr;
        void *ctx = nullptr;
    };
    std::array<HandlerEntry, kMaxKinds> handlers_{};

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    bool bucketsInit_ = false;
};

/**
 * The seed engine: priority_queue of heap-allocated std::function
 * closures. Kept verbatim as the reference implementation for the
 * calendar queue's tie-break stability tests and the events/sec
 * benchmark; not used by the hardware model.
 */
class LegacySimulator
{
  public:
    LegacySimulator() = default;
    LegacySimulator(const LegacySimulator &) = delete;
    LegacySimulator &operator=(const LegacySimulator &) = delete;

    Tick now() const { return now_; }
    void schedule(Tick when, EventFn fn);
    void scheduleIn(Tick delay, EventFn fn);
    void run();
    Tick runUntil(Tick limit);
    bool step();
    std::uint64_t eventsProcessed() const { return processed_; }
    std::size_t pending() const { return queue_.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace adyna::des

#endif // ADYNA_DES_SIMULATOR_HH
