/**
 * @file
 * Discrete-event simulation core.
 *
 * The Adyna hardware model (tiles, NoC links, HBM channels) is driven
 * by this engine: callbacks scheduled at absolute or relative ticks,
 * executed in (tick, insertion-order) order. One tick equals one
 * accelerator clock cycle (1 ns at the default 1 GHz).
 */

#ifndef ADYNA_DES_SIMULATOR_HH
#define ADYNA_DES_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace adyna::des {

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/** Priority-queue based discrete-event simulator. */
class Simulator
{
  public:
    Simulator() = default;

    // The event queue holds closures over `this`-external state;
    // copying a simulator is never meaningful.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn at now() + @p delay. */
    void scheduleIn(Tick delay, EventFn fn);

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p limit. Events at exactly @p limit still execute.
     * @return the simulated time when the run stopped.
     */
    Tick runUntil(Tick limit);

    /** Execute at most one pending event. @return false if none. */
    bool step();

    /** Number of events executed so far. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return queue_.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace adyna::des

#endif // ADYNA_DES_SIMULATOR_HH
