#include "des/simulator.hh"

#include <utility>

#include "common/logging.hh"

namespace adyna::des {

void
Simulator::schedule(Tick when, EventFn fn)
{
    ADYNA_ASSERT(when >= now_, "scheduling into the past: ", when,
                 " < now ", now_);
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
Simulator::scheduleIn(Tick delay, EventFn fn)
{
    schedule(now_ + delay, std::move(fn));
}

void
Simulator::run()
{
    while (step()) {
    }
}

Tick
Simulator::runUntil(Tick limit)
{
    while (!queue_.empty() && queue_.top().when <= limit)
        step();
    return now_;
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    // Move the callback out before popping so it survives the pop.
    Event ev = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
}

} // namespace adyna::des
