#include "des/simulator.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace adyna::des {

// ---------------------------------------------------------------------
// Calendar-queue Simulator
// ---------------------------------------------------------------------

void
Simulator::setHandler(std::uint8_t kind, Handler fn, void *ctx)
{
    ADYNA_ASSERT(kind != kClosureKind,
                 "kind 0 is reserved for the closure path");
    ADYNA_ASSERT(kind < kMaxKinds, "event kind out of range: ",
                 static_cast<int>(kind));
    handlers_[kind] = HandlerEntry{fn, ctx};
}

std::uint32_t
Simulator::allocSlot(Tick when, std::uint8_t kind, std::uint64_t a,
                     std::uint64_t b)
{
    std::uint32_t slot;
    if (freeHead_ != kNil) {
        slot = freeHead_;
        freeHead_ = next_[slot];
    } else {
        slot = static_cast<std::uint32_t>(when_.size());
        when_.emplace_back();
        seq_.emplace_back();
        payloadA_.emplace_back();
        payloadB_.emplace_back();
        next_.emplace_back();
        kind_.emplace_back();
    }
    when_[slot] = when;
    seq_[slot] = nextSeq_++;
    payloadA_[slot] = a;
    payloadB_[slot] = b;
    next_[slot] = kNil;
    kind_[slot] = kind;
    return slot;
}

void
Simulator::releaseSlot(std::uint32_t slot)
{
    next_[slot] = freeHead_;
    freeHead_ = slot;
}

void
Simulator::appendToBucket(std::uint32_t slot)
{
    const auto b =
        static_cast<std::size_t>(when_[slot] & kRingMask);
    if (bucketHead_[b] == kNil)
        bucketHead_[b] = slot;
    else
        next_[bucketTail_[b]] = slot;
    bucketTail_[b] = slot;
    ++ringCount_;
}

void
Simulator::enqueueSlot(std::uint32_t slot)
{
    if (!bucketsInit_) {
        bucketHead_.fill(kNil);
        bucketTail_.fill(kNil);
        bucketsInit_ = true;
    }
    if (when_[slot] < windowBase_ + kRingBuckets) {
        // Appending preserves FIFO within a tick because each bucket
        // spans exactly one tick and seq numbers are append-ordered.
        appendToBucket(slot);
    } else {
        heap_.push_back(slot);
        std::push_heap(heap_.begin(), heap_.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                           return heapLater(a, b);
                       });
    }
}

void
Simulator::refillWindow()
{
    const auto later = [this](std::uint32_t a, std::uint32_t b) {
        return heapLater(a, b);
    };
    windowBase_ = when_[heap_.front()];
    cursor_ = windowBase_;
    // Migrating in (when, seq) heap order keeps each bucket's append
    // order equal to seq order: every event scheduled after this
    // migration has a larger seq than everything migrated now.
    while (!heap_.empty() &&
           when_[heap_.front()] < windowBase_ + kRingBuckets) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        const auto slot = heap_.back();
        heap_.pop_back();
        appendToBucket(slot);
    }
}

bool
Simulator::peekNext(Tick &when)
{
    if (ringCount_ == 0) {
        if (heap_.empty())
            return false;
        refillWindow();
    }
    while (bucketHead_[cursor_ & kRingMask] == kNil)
        ++cursor_;
    when = cursor_;
    return true;
}

void
Simulator::post(Tick when, std::uint8_t kind, std::uint64_t a,
                std::uint64_t b)
{
    ADYNA_ASSERT(when >= now_, "scheduling into the past: ", when,
                 " < now ", now_);
    enqueueSlot(allocSlot(when, kind, a, b));
}

void
Simulator::postIn(Tick delay, std::uint8_t kind, std::uint64_t a,
                  std::uint64_t b)
{
    post(now_ + delay, kind, a, b);
}

void
Simulator::schedule(Tick when, EventFn fn)
{
    std::uint32_t idx;
    if (!closureFree_.empty()) {
        idx = closureFree_.back();
        closureFree_.pop_back();
        closures_[idx] = std::move(fn);
    } else {
        idx = static_cast<std::uint32_t>(closures_.size());
        closures_.push_back(std::move(fn));
    }
    post(when, kClosureKind, idx, 0);
}

void
Simulator::scheduleIn(Tick delay, EventFn fn)
{
    schedule(now_ + delay, std::move(fn));
}

void
Simulator::reserve(std::size_t slots)
{
    when_.reserve(slots);
    seq_.reserve(slots);
    payloadA_.reserve(slots);
    payloadB_.reserve(slots);
    next_.reserve(slots);
    kind_.reserve(slots);
    heap_.reserve(slots);
    closures_.reserve(slots);
    closureFree_.reserve(slots);
}

bool
Simulator::step()
{
    Tick when;
    if (!peekNext(when))
        return false;
    const auto b = static_cast<std::size_t>(when & kRingMask);
    const auto slot = bucketHead_[b];
    bucketHead_[b] = next_[slot];
    if (bucketHead_[b] == kNil)
        bucketTail_[b] = kNil;
    --ringCount_;

    now_ = when_[slot];
    ++processed_;
    const auto kind = kind_[slot];
    const auto a = payloadA_[slot];
    const auto pb = payloadB_[slot];
    // Release before dispatch so a handler that schedules reuses this
    // very slot instead of growing the arena.
    releaseSlot(slot);

    if (kind == kClosureKind) {
        const auto idx = static_cast<std::uint32_t>(a);
        EventFn fn = std::move(closures_[idx]);
        closures_[idx] = nullptr;
        closureFree_.push_back(idx);
        fn();
    } else {
        const auto &h = handlers_[kind];
        ADYNA_ASSERT(h.fn, "no handler for event kind ",
                     static_cast<int>(kind));
        h.fn(h.ctx, a, pb);
    }
    return true;
}

void
Simulator::run()
{
    while (step()) {
    }
}

Tick
Simulator::runUntil(Tick limit)
{
    Tick when;
    while (peekNext(when) && when <= limit)
        step();
    return now_;
}

// ---------------------------------------------------------------------
// LegacySimulator (the seed implementation, kept as reference)
// ---------------------------------------------------------------------

void
LegacySimulator::schedule(Tick when, EventFn fn)
{
    ADYNA_ASSERT(when >= now_, "scheduling into the past: ", when,
                 " < now ", now_);
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
LegacySimulator::scheduleIn(Tick delay, EventFn fn)
{
    schedule(now_ + delay, std::move(fn));
}

void
LegacySimulator::run()
{
    while (step()) {
    }
}

Tick
LegacySimulator::runUntil(Tick limit)
{
    while (!queue_.empty() && queue_.top().when <= limit)
        step();
    return now_;
}

bool
LegacySimulator::step()
{
    if (queue_.empty())
        return false;
    // Move the callback out before popping so it survives the pop.
    Event ev = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
}

} // namespace adyna::des
