/**
 * @file
 * Deterministic, seeded fault injection for the modelled chip.
 *
 * A FaultPlan is an ordered list of timed fault events — permanent or
 * transient tile failures, NoC link-down and bandwidth-degradation
 * events, probe/ack drop windows, and kernel-store fit failures —
 * parsed from a compact text form (CLI-friendly, round-trips through
 * str()) or generated from a seed. A FaultInjector replays the plan
 * against a Chip on the simulated clock: advanceTo(now) applies every
 * event due at or before now and reports whether the healthy-tile set
 * changed, which is the signal for the runtime to re-schedule onto
 * the survivors. With an empty plan the injector is never constructed
 * and no simulation path changes, so fault-free runs stay
 * byte-identical to the pre-fault code.
 *
 * Plan text grammar (whitespace around tokens is ignored):
 *
 *   plan   := event (';' event)*
 *   event  := kind '@' tick [':' key '=' value (',' key '=' value)*]
 *   kind   := tile_fail | link_down | link_degrade | probe_drop
 *           | store_fit_fail | chip_fail | chip_slow | link_flaky
 *           | payload_corrupt
 *
 * Keys per kind (duration=0 or omitted means permanent; keys that do
 * not belong to a kind are rejected so every accepted plan
 * round-trips through its canonical str() text):
 *   tile_fail:       tile=<id> [duration=<cycles>]
 *   link_down:       tile=<id> dir=<E|W|S|N> [duration=<cycles>]
 *   link_degrade:    tile=<id> dir=<E|W|S|N> factor=<(0,1)>
 *                    [duration=<cycles>]
 *   probe_drop:      prob=<(0,1]> [duration=<cycles>]
 *   store_fit_fail:  [duration=<cycles>]
 *   chip_fail:       chip=<pod chip index> [heal=<cycles>]
 *   chip_slow:       chip=<pod chip index> factor=<(1,inf)>
 *                    [heal=<cycles>]
 *   link_flaky:      chip=<pod chip index> prob=<(0,1)>
 *                    [heal=<cycles>]
 *   payload_corrupt: prob=<(0,1)> [heal=<cycles>]
 *
 * chip_fail is the pod-scope fail-stop fault: a whole chip goes dark.
 * The pod runtime (src/pod) intercepts it at the router tier —
 * draining and re-routing the dark chip's traffic onto the surviving
 * chips — and heal= gives the ticks until the chip reboots (0 =
 * permanent, like duration). Replayed against a single arch::Chip
 * instead, it fails every tile on strike and recovers every tile on
 * heal.
 *
 * chip_slow, link_flaky and payload_corrupt are the pod-scope *gray*
 * failures (DESIGN.md §15): a straggler chip whose clock dilates by
 * factor=, a chip's interconnect links dropping frames with
 * probability prob= (detected, retransmitted, costed), and silent
 * bit-flips on chip-boundary payloads with probability prob= (caught
 * — and retried — only when end-to-end checksums are on). They all
 * spell their end tick `heal=` like chip_fail. Replayed against a
 * single arch::Chip they only count (there is no router tier to
 * react), so single-chip runs stay byte-identical.
 *
 * Example: "tile_fail@5000000:tile=17;probe_drop@0:prob=0.3,duration=100000"
 */

#ifndef ADYNA_FAULT_FAULT_HH
#define ADYNA_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "common/types.hh"

namespace adyna::fault {

/** The supported fault event kinds. */
enum class FaultKind {
    TileFail,     ///< a tile stops computing
    LinkDown,     ///< a directed NoC link goes dark
    LinkDegrade,  ///< a directed NoC link loses bandwidth
    ProbeDrop,    ///< probe/ack round trips start dropping
    StoreFitFail, ///< compiled kernel stores stop fitting on-chip
    ChipFail,     ///< a whole pod chip goes dark (pod scope)
    ChipSlow,     ///< a pod chip's clock dilates (straggler)
    LinkFlaky,    ///< a chip's interconnect links drop frames
    PayloadCorrupt, ///< chip-boundary payloads take bit-flips
};

/** Canonical lower-case name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** The kind targets the pod tier (chip_fail / chip_slow /
 * link_flaky / payload_corrupt) rather than a single chip's
 * internals. Pod plans may only hold pod-scope kinds; per-chip plans
 * must not. */
bool podScopeFault(FaultKind kind);

/** One timed fault event. */
struct FaultEvent
{
    FaultKind kind = FaultKind::TileFail;

    /** Chip tick the fault strikes at. */
    Tick at = 0;

    /** Target tile (TileFail / LinkDown / LinkDegrade). */
    TileId tile = 0;

    /** Link direction, an arch::LinkDir (LinkDown / LinkDegrade). */
    int dir = 0;

    /** LinkDegrade: remaining bandwidth fraction in (0, 1).
     *  ProbeDrop: drop probability in (0, 1].
     *  ChipSlow: clock dilation factor in (1, inf).
     *  LinkFlaky / PayloadCorrupt: per-transfer fault probability in
     *  (0, 1). */
    double factor = 0.5;

    /** ChipFail / ChipSlow / LinkFlaky: pod chip index the fault
     * strikes. The parser only checks non-negativity; the pod
     * runtime validates the index against its own chip count. */
    int chip = 0;

    /** Ticks until the fault heals; 0 = permanent. The pod-scope
     * kinds spell this key `heal=` in the plan text. */
    Tick duration = 0;

    bool operator==(const FaultEvent &) const = default;
};

/** A replayable fault timeline. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Sort events by (at, kind, tile, dir, chip) into canonical
     * order. */
    void normalize();

    /** Canonical text form; parse(str()) reproduces the plan. */
    std::string str() const;

    bool operator==(const FaultPlan &) const = default;
};

/**
 * Parse the plan grammar above into @p plan (normalized). Returns
 * false and sets @p error (when non-null) on malformed input without
 * touching @p plan; never crashes on arbitrary text, so the parser is
 * fuzzable.
 */
bool parseFaultPlan(const std::string &text, FaultPlan &plan,
                    std::string *error = nullptr);

/** Parse or die with a clear message (for CLI paths). */
FaultPlan parseFaultPlanOrDie(const std::string &text);

/** Shape of a generated random fault timeline. */
struct RandomFaultConfig
{
    /** Ticks the timeline spans; events land in [0.1, 0.8] of it. */
    Tick horizon = 50'000'000;

    int tileFails = 1;
    int linkDowns = 1;
    int linkDegrades = 1;
    int probeDropWindows = 1;
    int storeFitWindows = 0;
    int chipFails = 0;
    int chipSlows = 0;
    int linkFlakies = 0;
    int payloadCorrupts = 0;

    /** Pod size the chip_fail / chip_slow / link_flaky targets are
     * drawn from. */
    int podChips = 4;

    /** Probability an event is transient (heals before the horizon)
     * rather than permanent. */
    double transientFraction = 0.5;

    /** Grid the tile / link targets are drawn from. */
    int gridRows = 12;
    int gridCols = 12;
};

/** Deterministic random plan: same (config, seed) -> same plan. */
FaultPlan randomFaultPlan(const RandomFaultConfig &cfg,
                          std::uint64_t seed);

/** Injection counters plus a live-state snapshot. */
struct FaultStats
{
    // Events applied so far.
    std::uint64_t tileFailEvents = 0;
    std::uint64_t tileRecoveries = 0;
    std::uint64_t linkDownEvents = 0;
    std::uint64_t linkDegradeEvents = 0;
    std::uint64_t linkRecoveries = 0;
    std::uint64_t probeDropWindows = 0;
    std::uint64_t storeFitWindows = 0;
    std::uint64_t chipFailEvents = 0;
    std::uint64_t chipHeals = 0;
    std::uint64_t chipSlowWindows = 0;
    std::uint64_t linkFlakyWindows = 0;
    std::uint64_t payloadCorruptWindows = 0;

    // Live state at snapshot time.
    int failedTiles = 0;
    int downLinks = 0;
    int degradedLinks = 0;

    // NoC fault-handling counters (merged from the chip).
    std::uint64_t probeDrops = 0;
    std::uint64_t probeRetries = 0;
    std::uint64_t probeGiveUps = 0;
    std::uint64_t detourRoutes = 0;
    std::uint64_t unroutablePaths = 0;
};

/** Replays a FaultPlan against a chip on the simulated clock. */
class FaultInjector
{
  public:
    /** @param seed drives the probe-drop Bernoulli streams (derived
     * per window so replays are exact). */
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    /**
     * Apply every event due at or before @p now to @p chip.
     * @return true when the healthy-tile set changed (a tile failed
     * or recovered) — the caller's signal to fail over.
     */
    bool advanceTo(Tick now, arch::Chip &chip);

    /**
     * Tiles whose health flipped during the most recent advanceTo()
     * (failures and recoveries, ascending, deduplicated). Lets a
     * multi-tenant runtime repair only the partition that owns the
     * struck tile instead of rebuilding the whole chip.
     */
    const std::vector<TileId> &changedTiles() const
    {
        return changedTiles_;
    }

    /** A kernel-store fit-failure window covers @p now. */
    bool storeFitFailActive(Tick now) const;

    /** Every event (including scheduled recoveries) has fired. */
    bool exhausted() const { return cursor_ >= timeline_.size(); }

    /** Counters merged with @p chip's live fault state. */
    FaultStats stats(const arch::Chip &chip) const;

    const FaultPlan &plan() const { return plan_; }

  private:
    /** Plan event plus recovery flag (transient faults expand into a
     * strike entry and a heal entry on the internal timeline). */
    struct TimedEvent
    {
        FaultEvent event;
        Tick at = 0;
        bool recover = false;
    };

    void apply(const TimedEvent &te, arch::Chip &chip,
               bool &healthy_changed);

    FaultPlan plan_;
    std::vector<TimedEvent> timeline_;
    std::size_t cursor_ = 0;
    std::uint64_t seed_ = 0;
    FaultStats stats_;

    /** Health flips of the last advanceTo() (see changedTiles()). */
    std::vector<TileId> changedTiles_;
    /** [start, end) store-fit-failure windows, end = max() when
     * permanent. */
    std::vector<std::pair<Tick, Tick>> storeFitSpans_;
};

} // namespace adyna::fault

#endif // ADYNA_FAULT_FAULT_HH
