#include "fault/fault.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <tuple>

#include "common/logging.hh"
#include "common/rng.hh"

namespace adyna::fault {

namespace {

constexpr Tick kForever = std::numeric_limits<Tick>::max();

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-')
        return false;
    out = v;
    return true;
}

bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseDir(const std::string &s, int &out)
{
    if (s.size() != 1)
        return false;
    switch (s[0]) {
      case 'E':
        out = arch::kLinkEast;
        return true;
      case 'W':
        out = arch::kLinkWest;
        return true;
      case 'S':
        out = arch::kLinkSouth;
        return true;
      case 'N':
        out = arch::kLinkNorth;
        return true;
      default:
        return false;
    }
}

char
dirLetter(int dir)
{
    switch (dir) {
      case arch::kLinkEast:
        return 'E';
      case arch::kLinkWest:
        return 'W';
      case arch::kLinkSouth:
        return 'S';
      default:
        return 'N';
    }
}

bool
kindFromName(const std::string &name, FaultKind &out)
{
    if (name == "tile_fail")
        out = FaultKind::TileFail;
    else if (name == "link_down")
        out = FaultKind::LinkDown;
    else if (name == "link_degrade")
        out = FaultKind::LinkDegrade;
    else if (name == "probe_drop")
        out = FaultKind::ProbeDrop;
    else if (name == "store_fit_fail")
        out = FaultKind::StoreFitFail;
    else if (name == "chip_fail")
        out = FaultKind::ChipFail;
    else if (name == "chip_slow")
        out = FaultKind::ChipSlow;
    else if (name == "link_flaky")
        out = FaultKind::LinkFlaky;
    else if (name == "payload_corrupt")
        out = FaultKind::PayloadCorrupt;
    else
        return false;
    return true;
}

/** Split @p text on @p sep, trimming each piece. */
std::vector<std::string>
splitTrim(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const auto end = text.find(sep, begin);
        const auto stop = end == std::string::npos ? text.size() : end;
        out.push_back(trim(text.substr(begin, stop - begin)));
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
    return out;
}

bool
parseEvent(const std::string &text, FaultEvent &ev, std::string &err)
{
    const auto atPos = text.find('@');
    if (atPos == std::string::npos) {
        err = "missing '@tick' in '" + text + "'";
        return false;
    }
    const std::string kindName = trim(text.substr(0, atPos));
    if (!kindFromName(kindName, ev.kind)) {
        err = "unknown fault kind '" + kindName + "'";
        return false;
    }
    const auto colon = text.find(':', atPos);
    const std::string tickStr = trim(
        text.substr(atPos + 1, (colon == std::string::npos
                                    ? text.size()
                                    : colon) -
                                   atPos - 1));
    if (!parseU64(tickStr, ev.at)) {
        err = "bad tick '" + tickStr + "' in '" + text + "'";
        return false;
    }

    // Bit per key so per-kind validation below can both require and
    // reject keys; rejecting stray keys keeps every accepted event
    // round-trippable through its canonical str() text.
    enum KeyBit {
        kKeyTile = 1 << 0,
        kKeyDir = 1 << 1,
        kKeyFactor = 1 << 2,
        kKeyProb = 1 << 3,
        kKeyDuration = 1 << 4,
        kKeyChip = 1 << 5,
        kKeyHeal = 1 << 6,
    };
    int seen = 0;
    if (colon != std::string::npos) {
        for (const std::string &kv :
             splitTrim(text.substr(colon + 1), ',')) {
            if (kv.empty()) {
                err = "empty key=value in '" + text + "'";
                return false;
            }
            const auto eq = kv.find('=');
            if (eq == std::string::npos) {
                err = "missing '=' in '" + kv + "'";
                return false;
            }
            const std::string key = trim(kv.substr(0, eq));
            const std::string val = trim(kv.substr(eq + 1));
            if (key == "tile") {
                std::uint64_t t = 0;
                if (!parseU64(val, t) ||
                    t > std::numeric_limits<TileId>::max()) {
                    err = "bad tile '" + val + "'";
                    return false;
                }
                ev.tile = static_cast<TileId>(t);
                seen |= kKeyTile;
            } else if (key == "dir") {
                if (!parseDir(val, ev.dir)) {
                    err = "bad dir '" + val + "' (want E|W|S|N)";
                    return false;
                }
                seen |= kKeyDir;
            } else if (key == "factor" || key == "prob") {
                if (!parseF64(val, ev.factor)) {
                    err = "bad " + key + " '" + val + "'";
                    return false;
                }
                seen |= key == "factor" ? kKeyFactor : kKeyProb;
            } else if (key == "duration") {
                if (!parseU64(val, ev.duration)) {
                    err = "bad duration '" + val + "'";
                    return false;
                }
                seen |= kKeyDuration;
            } else if (key == "chip") {
                std::uint64_t c = 0;
                if (!parseU64(val, c) ||
                    c > static_cast<std::uint64_t>(
                            std::numeric_limits<int>::max())) {
                    err = "bad chip '" + val + "'";
                    return false;
                }
                ev.chip = static_cast<int>(c);
                seen |= kKeyChip;
            } else if (key == "heal") {
                if (!parseU64(val, ev.duration)) {
                    err = "bad heal '" + val + "'";
                    return false;
                }
                seen |= kKeyHeal;
            } else {
                err = "unknown key '" + key + "' in '" + text + "'";
                return false;
            }
        }
    }

    int required = 0;
    int allowed = kKeyDuration;
    switch (ev.kind) {
      case FaultKind::TileFail:
        required = kKeyTile;
        break;
      case FaultKind::LinkDown:
        required = kKeyTile | kKeyDir;
        break;
      case FaultKind::LinkDegrade:
        required = kKeyTile | kKeyDir | kKeyFactor;
        break;
      case FaultKind::ProbeDrop:
        required = kKeyProb;
        break;
      case FaultKind::StoreFitFail:
        break;
      case FaultKind::ChipFail:
        required = kKeyChip;
        allowed = kKeyHeal;
        break;
      case FaultKind::ChipSlow:
        required = kKeyChip | kKeyFactor;
        allowed = kKeyHeal;
        break;
      case FaultKind::LinkFlaky:
        required = kKeyChip | kKeyProb;
        allowed = kKeyHeal;
        break;
      case FaultKind::PayloadCorrupt:
        required = kKeyProb;
        allowed = kKeyHeal;
        break;
    }
    allowed |= required;
    if (const int stray = seen & ~allowed) {
        static const struct
        {
            int bit;
            const char *name;
        } kKeys[] = {{kKeyTile, "tile"},         {kKeyDir, "dir"},
                     {kKeyFactor, "factor"},     {kKeyProb, "prob"},
                     {kKeyDuration, "duration"}, {kKeyChip, "chip"},
                     {kKeyHeal, "heal"}};
        for (const auto &k : kKeys)
            if (stray & k.bit) {
                err = std::string("key '") + k.name +
                      "=' not valid for " + faultKindName(ev.kind);
                return false;
            }
    }
    if (const int missing = required & ~seen) {
        switch (ev.kind) {
          case FaultKind::TileFail:
            err = "tile_fail needs tile=";
            break;
          case FaultKind::LinkDown:
            err = "link_down needs tile= and dir=";
            break;
          case FaultKind::LinkDegrade:
            err = "link_degrade needs tile=, dir= and factor=";
            break;
          case FaultKind::ProbeDrop:
            err = "probe_drop needs prob=";
            break;
          case FaultKind::ChipSlow:
            err = "chip_slow needs chip= and factor=";
            break;
          case FaultKind::LinkFlaky:
            err = "link_flaky needs chip= and prob=";
            break;
          case FaultKind::PayloadCorrupt:
            err = "payload_corrupt needs prob=";
            break;
          default:
            err = "chip_fail needs chip=";
            break;
        }
        (void)missing;
        return false;
    }
    if (ev.kind == FaultKind::LinkDegrade &&
        !(ev.factor > 0.0 && ev.factor < 1.0)) {
        err = "link_degrade factor must be in (0, 1)";
        return false;
    }
    if (ev.kind == FaultKind::ProbeDrop &&
        !(ev.factor > 0.0 && ev.factor <= 1.0)) {
        err = "probe_drop prob must be in (0, 1]";
        return false;
    }
    if (ev.kind == FaultKind::ChipSlow && !(ev.factor > 1.0)) {
        err = "chip_slow factor must be > 1";
        return false;
    }
    // Retransmits loop until a clean attempt, so a certain fault
    // (prob=1) would never deliver; keep the open interval.
    if ((ev.kind == FaultKind::LinkFlaky ||
         ev.kind == FaultKind::PayloadCorrupt) &&
        !(ev.factor > 0.0 && ev.factor < 1.0)) {
        err = std::string(faultKindName(ev.kind)) +
              " prob must be in (0, 1)";
        return false;
    }
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TileFail:
        return "tile_fail";
      case FaultKind::LinkDown:
        return "link_down";
      case FaultKind::LinkDegrade:
        return "link_degrade";
      case FaultKind::ProbeDrop:
        return "probe_drop";
      case FaultKind::StoreFitFail:
        return "store_fit_fail";
      case FaultKind::ChipSlow:
        return "chip_slow";
      case FaultKind::LinkFlaky:
        return "link_flaky";
      case FaultKind::PayloadCorrupt:
        return "payload_corrupt";
      default:
        return "chip_fail";
    }
}

bool
podScopeFault(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ChipFail:
      case FaultKind::ChipSlow:
      case FaultKind::LinkFlaky:
      case FaultKind::PayloadCorrupt:
        return true;
      default:
        return false;
    }
}

void
FaultPlan::normalize()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return std::tuple(a.at,
                                           static_cast<int>(a.kind),
                                           a.tile, a.dir, a.chip) <
                                std::tuple(b.at,
                                           static_cast<int>(b.kind),
                                           b.tile, b.dir, b.chip);
                     });
}

std::string
FaultPlan::str() const
{
    std::string out;
    char buf[160];
    for (const FaultEvent &ev : events) {
        if (!out.empty())
            out += ';';
        out += faultKindName(ev.kind);
        std::snprintf(buf, sizeof(buf), "@%llu",
                      static_cast<unsigned long long>(ev.at));
        out += buf;
        std::string args;
        switch (ev.kind) {
          case FaultKind::TileFail:
            std::snprintf(buf, sizeof(buf), "tile=%u", ev.tile);
            args = buf;
            break;
          case FaultKind::LinkDown:
            std::snprintf(buf, sizeof(buf), "tile=%u,dir=%c",
                          ev.tile, dirLetter(ev.dir));
            args = buf;
            break;
          case FaultKind::LinkDegrade:
            std::snprintf(buf, sizeof(buf),
                          "tile=%u,dir=%c,factor=%.17g", ev.tile,
                          dirLetter(ev.dir), ev.factor);
            args = buf;
            break;
          case FaultKind::ProbeDrop:
            std::snprintf(buf, sizeof(buf), "prob=%.17g", ev.factor);
            args = buf;
            break;
          case FaultKind::StoreFitFail:
            break;
          case FaultKind::ChipFail:
            // Pod-scope kinds spell their heal tick `heal=`, not
            // `duration=`, so they skip the generic append below.
            std::snprintf(buf, sizeof(buf), "chip=%d", ev.chip);
            args = buf;
            break;
          case FaultKind::ChipSlow:
            std::snprintf(buf, sizeof(buf), "chip=%d,factor=%.17g",
                          ev.chip, ev.factor);
            args = buf;
            break;
          case FaultKind::LinkFlaky:
            std::snprintf(buf, sizeof(buf), "chip=%d,prob=%.17g",
                          ev.chip, ev.factor);
            args = buf;
            break;
          case FaultKind::PayloadCorrupt:
            std::snprintf(buf, sizeof(buf), "prob=%.17g", ev.factor);
            args = buf;
            break;
        }
        if (ev.duration > 0 && podScopeFault(ev.kind)) {
            std::snprintf(buf, sizeof(buf), "%sheal=%llu",
                          args.empty() ? "" : ",",
                          static_cast<unsigned long long>(
                              ev.duration));
            args += buf;
        }
        if (ev.duration > 0 && !podScopeFault(ev.kind)) {
            std::snprintf(buf, sizeof(buf), "%sduration=%llu",
                          args.empty() ? "" : ",",
                          static_cast<unsigned long long>(
                              ev.duration));
            args += buf;
        }
        if (!args.empty()) {
            out += ':';
            out += args;
        }
    }
    return out;
}

bool
parseFaultPlan(const std::string &text, FaultPlan &plan,
               std::string *error)
{
    FaultPlan out;
    const std::string body = trim(text);
    if (!body.empty()) {
        for (const std::string &piece : splitTrim(body, ';')) {
            if (piece.empty())
                continue; // tolerate trailing / doubled ';'
            FaultEvent ev;
            std::string err;
            if (!parseEvent(piece, ev, err)) {
                if (error)
                    *error = err;
                return false;
            }
            out.events.push_back(ev);
        }
    }
    out.normalize();
    plan = std::move(out);
    return true;
}

FaultPlan
parseFaultPlanOrDie(const std::string &text)
{
    FaultPlan plan;
    std::string error;
    if (!parseFaultPlan(text, plan, &error))
        ADYNA_FATAL("bad fault plan: ", error);
    return plan;
}

FaultPlan
randomFaultPlan(const RandomFaultConfig &cfg, std::uint64_t seed)
{
    ADYNA_ASSERT(cfg.horizon > 0, "fault horizon must be > 0");
    ADYNA_ASSERT(cfg.gridRows > 0 && cfg.gridCols > 0, "bad grid");
    Rng rng(seed);
    const auto tiles =
        static_cast<std::int64_t>(cfg.gridRows) * cfg.gridCols;
    const auto h = static_cast<std::int64_t>(cfg.horizon);
    const auto strikeTick = [&] {
        return static_cast<Tick>(rng.uniformInt(h / 10, h * 8 / 10));
    };
    const auto transientTicks = [&]() -> Tick {
        if (!rng.bernoulli(cfg.transientFraction))
            return 0;
        return static_cast<Tick>(
            rng.uniformInt(std::max<std::int64_t>(h / 20, 1),
                           std::max<std::int64_t>(h / 5, 2)));
    };

    FaultPlan plan;
    for (int i = 0; i < cfg.tileFails; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::TileFail;
        ev.at = strikeTick();
        ev.tile = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.linkDowns; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkDown;
        ev.at = strikeTick();
        ev.tile = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
        ev.dir = static_cast<int>(rng.uniformInt(0, 3));
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.linkDegrades; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkDegrade;
        ev.at = strikeTick();
        ev.tile = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
        ev.dir = static_cast<int>(rng.uniformInt(0, 3));
        ev.factor = rng.uniform(0.2, 0.9);
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.probeDropWindows; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::ProbeDrop;
        ev.at = strikeTick();
        ev.factor = rng.uniform(0.05, 0.5);
        // Probe-drop windows are always bounded: a permanent drop
        // storm models a dead chip, not a degraded one.
        ev.duration = static_cast<Tick>(
            rng.uniformInt(std::max<std::int64_t>(h / 20, 1),
                           std::max<std::int64_t>(h / 4, 2)));
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.storeFitWindows; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::StoreFitFail;
        ev.at = strikeTick();
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    if (cfg.chipFails > 0 || cfg.chipSlows > 0 ||
        cfg.linkFlakies > 0)
        ADYNA_ASSERT(cfg.podChips > 0, "bad pod size");
    for (int i = 0; i < cfg.chipFails; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::ChipFail;
        ev.at = strikeTick();
        ev.chip = static_cast<int>(
            rng.uniformInt(0, cfg.podChips - 1));
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.chipSlows; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::ChipSlow;
        ev.at = strikeTick();
        ev.chip = static_cast<int>(
            rng.uniformInt(0, cfg.podChips - 1));
        ev.factor = rng.uniform(2.0, 8.0);
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.linkFlakies; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkFlaky;
        ev.at = strikeTick();
        ev.chip = static_cast<int>(
            rng.uniformInt(0, cfg.podChips - 1));
        ev.factor = rng.uniform(0.05, 0.5);
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    for (int i = 0; i < cfg.payloadCorrupts; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::PayloadCorrupt;
        ev.at = strikeTick();
        ev.factor = rng.uniform(0.01, 0.3);
        ev.duration = transientTicks();
        plan.events.push_back(ev);
    }
    plan.normalize();
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed)
{
    plan_.normalize();
    for (const FaultEvent &ev : plan_.events) {
        timeline_.push_back({ev, ev.at, false});
        if (ev.duration > 0 && ev.at <= kForever - ev.duration)
            timeline_.push_back({ev, ev.at + ev.duration, true});
        if (ev.kind == FaultKind::StoreFitFail) {
            const Tick end = ev.duration > 0 &&
                                     ev.at <= kForever - ev.duration
                                 ? ev.at + ev.duration
                                 : kForever;
            storeFitSpans_.emplace_back(ev.at, end);
        }
    }
    // Strikes before heals at equal ticks, otherwise by time.
    std::stable_sort(timeline_.begin(), timeline_.end(),
                     [](const TimedEvent &a, const TimedEvent &b) {
                         return std::tuple(a.at, a.recover) <
                                std::tuple(b.at, b.recover);
                     });
}

void
FaultInjector::apply(const TimedEvent &te, arch::Chip &chip,
                     bool &healthy_changed)
{
    const FaultEvent &ev = te.event;
    const int tiles = chip.config().tiles();
    switch (ev.kind) {
      case FaultKind::TileFail:
        if (static_cast<int>(ev.tile) >= tiles)
            ADYNA_FATAL("fault plan targets tile ", ev.tile,
                        " on a ", tiles, "-tile chip");
        if (te.recover) {
            chip.recoverTile(ev.tile);
            ++stats_.tileRecoveries;
        } else {
            chip.failTile(ev.tile);
            ++stats_.tileFailEvents;
        }
        changedTiles_.push_back(ev.tile);
        healthy_changed = true;
        break;
      case FaultKind::LinkDown:
        if (static_cast<int>(ev.tile) >= tiles)
            ADYNA_FATAL("fault plan targets tile ", ev.tile,
                        " on a ", tiles, "-tile chip");
        chip.noc().setLinkDown(ev.tile, ev.dir, !te.recover);
        if (te.recover)
            ++stats_.linkRecoveries;
        else
            ++stats_.linkDownEvents;
        break;
      case FaultKind::LinkDegrade:
        if (static_cast<int>(ev.tile) >= tiles)
            ADYNA_FATAL("fault plan targets tile ", ev.tile,
                        " on a ", tiles, "-tile chip");
        chip.noc().setLinkBandwidthFactor(
            ev.tile, ev.dir, te.recover ? 1.0 : ev.factor);
        if (te.recover)
            ++stats_.linkRecoveries;
        else
            ++stats_.linkDegradeEvents;
        break;
      case FaultKind::ProbeDrop:
        if (te.recover) {
            chip.noc().setProbeDropWindow(0.0, 0, 0);
        } else {
            const Tick until =
                ev.duration > 0 && ev.at <= kForever - ev.duration
                    ? ev.at + ev.duration
                    : kForever;
            chip.noc().setProbeDropWindow(
                ev.factor, until,
                seed_ ^ (ev.at * 0x9e3779b97f4a7c15ULL) ^
                    0xd1b54a32d192ed03ULL);
            ++stats_.probeDropWindows;
        }
        break;
      case FaultKind::StoreFitFail:
        if (!te.recover)
            ++stats_.storeFitWindows;
        break;
      case FaultKind::ChipFail:
        // Pod-scope fault replayed against a single chip: the whole
        // chip resets dark on strike and reboots on heal. The pod
        // runtime intercepts chip_fail events at the router tier
        // before they ever reach a per-chip injector, so this path
        // only runs when a chip_fail plan is handed straight to a
        // single-chip runtime.
        for (int t = 0; t < tiles; ++t) {
            const auto tile = static_cast<TileId>(t);
            if (te.recover)
                chip.recoverTile(tile);
            else
                chip.failTile(tile);
            changedTiles_.push_back(tile);
        }
        if (te.recover)
            ++stats_.chipHeals;
        else
            ++stats_.chipFailEvents;
        healthy_changed = true;
        break;
      case FaultKind::ChipSlow:
        // Pod-scope gray failures replayed against a single chip
        // only count: there is no router / interconnect tier here to
        // straggle, retransmit on, or checksum, so the simulation
        // paths stay untouched (the single-chip byte-identity gate).
        if (!te.recover)
            ++stats_.chipSlowWindows;
        break;
      case FaultKind::LinkFlaky:
        if (!te.recover)
            ++stats_.linkFlakyWindows;
        break;
      case FaultKind::PayloadCorrupt:
        if (!te.recover)
            ++stats_.payloadCorruptWindows;
        break;
    }
}

bool
FaultInjector::advanceTo(Tick now, arch::Chip &chip)
{
    bool healthyChanged = false;
    changedTiles_.clear();
    while (cursor_ < timeline_.size() &&
           timeline_[cursor_].at <= now) {
        apply(timeline_[cursor_], chip, healthyChanged);
        ++cursor_;
    }
    std::sort(changedTiles_.begin(), changedTiles_.end());
    changedTiles_.erase(
        std::unique(changedTiles_.begin(), changedTiles_.end()),
        changedTiles_.end());
    return healthyChanged;
}

bool
FaultInjector::storeFitFailActive(Tick now) const
{
    for (const auto &[start, end] : storeFitSpans_)
        if (now >= start && now < end)
            return true;
    return false;
}

FaultStats
FaultInjector::stats(const arch::Chip &chip) const
{
    FaultStats out = stats_;
    out.failedTiles = chip.failedTileCount();
    const arch::Noc &noc = chip.noc();
    out.downLinks = noc.downLinks();
    out.degradedLinks = noc.degradedLinks();
    out.probeDrops = noc.probeDrops();
    out.probeRetries = noc.probeRetries();
    out.probeGiveUps = noc.probeGiveUps();
    out.detourRoutes = noc.detourRoutes();
    out.unroutablePaths = noc.unroutablePaths();
    return out;
}

} // namespace adyna::fault
