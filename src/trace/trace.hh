/**
 * @file
 * Dynamism trace generation.
 *
 * This library substitutes for running trained DynNN checkpoints on
 * real datasets (ImageNet / GLUE): it produces, per batch, the
 * routing decisions at every switch operator of a DynGraph. Each
 * sample carries a latent difficulty drawn from a (possibly
 * drifting) Beta distribution; gate policies translate difficulty
 * into exit / skip / expert / channel / patch decisions, which gives
 * the cross-gate correlation (easy samples exit earlier and skip
 * more) and the batch-to-batch variance that the paper's scheduling
 * techniques exploit. See DESIGN.md, substitutions.
 */

#ifndef ADYNA_TRACE_TRACE_HH
#define ADYNA_TRACE_TRACE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "graph/dyngraph.hh"

namespace adyna::trace {

/** Routing outcome of one switch for one batch. */
struct SwitchOutcome
{
    /** Samples routed to each branch (MoE top-k counts each sample
     * once per activated expert, so the sum can exceed the input). */
    std::vector<std::int64_t> branchCounts;

    /** Samples still active after the switch region (exits and
     * dropped patches removed). */
    std::int64_t activeAfter = 0;

    /** Samples that reached the switch. */
    std::int64_t activeBefore = 0;
};

/** Routing decisions of one batch across all switches. */
struct BatchRouting
{
    /** Outcome per switch op id. */
    std::map<OpId, SwitchOutcome> outcomes;

    /**
     * The dyn_dim (batch) value a given dynamic operator observes in
     * this batch: branch ops see their branch count, post-merge ops
     * see the active-after count. Static ops see their full extent.
     */
    std::int64_t dynValue(const graph::DynGraph &dg, OpId op) const;
};

/**
 * Sum the per-switch outcomes of several routings: the routing the
 * concatenated batch would observe (branch counts, active-before and
 * active-after add up sample-wise). All parts must cover the same
 * switch set — routings of the same graph; used by the serving
 * batcher to merge single-request draws into one engine batch.
 */
BatchRouting mergeRoutings(const std::vector<const BatchRouting *> &parts);

/**
 * Total dynamic load of one routing: the sum of dynValue over the
 * graph's dynamic operators. The serving runtimes record this exact
 * series into their drift monitors, and the pod router uses it as a
 * request's routing signature for schedule-affinity dispatch — the
 * same scalar on both sides, so "route to the chip whose installed
 * expectations match" compares like with like.
 */
std::int64_t totalDynLoad(const graph::DynGraph &dg,
                          const BatchRouting &routing);

/** Parameters of the synthetic dynamism model. */
struct TraceConfig
{
    /** Samples per batch (images / sequences, before patch folding). */
    std::int64_t batchSize = 128;

    /** Beta(alpha, beta) parameters of the sample difficulty prior. */
    double difficultyAlpha = 2.0;
    double difficultyBeta = 2.0;

    /** Per-gate observation noise on difficulty (std dev). */
    double gateNoise = 0.08;

    /**
     * Strength of non-stationary drift in [0, 1]: each phase rescales
     * the gate marginals and redraws expert popularity. 0 disables
     * drift (stationary distribution). Serving-time distribution
     * shift is the premise of the paper's periodic re-sampling
     * (Section VII, citing Brainstorm/FasterMoE observations).
     */
    double driftStrength = 0.30;

    /** Batches per drift phase. */
    int driftPeriod = 120;

    /** Per-sample probability of an off-ranking channel pick
     * (ChannelBlocks): tail blocks otherwise activate only for the
     * hardest samples, producing the rarely-executed branches that
     * motivate branch grouping. */
    double channelSwapProb = 0.002;

    /** Relative std dev of the per-image kept-patch count. */
    double patchSpread = 0.5;
};

/**
 * Generates routing decisions batch by batch for one DynGraph.
 * Deterministic given (graph, config, seed).
 */
class TraceGenerator
{
  public:
    TraceGenerator(const graph::DynGraph &dg, TraceConfig cfg,
                   std::uint64_t seed);

    /** Produce the routing for the next batch. */
    BatchRouting next();

    /** Number of batches generated so far. */
    std::uint64_t batchesGenerated() const { return batches_; }

    const TraceConfig &config() const { return cfg_; }

    /**
     * Convenience: generate @p batches batches on an independent
     * probe stream (the main stream is not disturbed) and return the
     * empirical dyn-value expectation per dynamic op (used for
     * offline profiling in tests and in Adyna's initial schedule).
     */
    std::map<OpId, double> profileExpectations(int batches) const;

    /** Latent per-sample state during one batch's routing. */
    struct Sample
    {
        double difficulty = 0.5;
        bool active = true;
        /** Batch rows this sample currently occupies (changed by a
         * patch-select gate: kept patches per image). */
        std::int64_t rows = 1;
    };

  private:
    /** Difficulty draw under the current drift phase. */
    double drawDifficulty();

    /** Advance drift phase state if the period elapsed. */
    void maybeAdvancePhase();

    /** Gate marginal under the current drift phase. */
    double phaseFraction(double base) const;

    void routeSwitch(const graph::SwitchInfo &sw,
                     std::vector<Sample> &samples, BatchRouting &out);

    const graph::DynGraph &dg_;
    TraceConfig cfg_;
    Rng rng_;
    std::uint64_t seed_;
    std::uint64_t batches_ = 0;

    // Drift phase state.
    double phaseScale_ = 1.0;
    std::vector<double> phaseExpertTilt_;
};

} // namespace adyna::trace

#endif // ADYNA_TRACE_TRACE_HH
