#include "trace/trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace adyna::trace {

using graph::OpKind;
using graph::RoutingPolicy;
using graph::SwitchInfo;

std::int64_t
BatchRouting::dynValue(const graph::DynGraph &dg, OpId op) const
{
    const graph::DynOpInfo &di = dg.info(op);
    if (!di.dynamic)
        return dg.graph().node(op).dims.n();
    const auto it = outcomes.find(di.ownerSwitch);
    ADYNA_ASSERT(it != outcomes.end(), "no routing outcome for switch ",
                 di.ownerSwitch, " needed by op ", op);
    const SwitchOutcome &oc = it->second;
    if (di.branch >= 0) {
        ADYNA_ASSERT(static_cast<std::size_t>(di.branch) <
                         oc.branchCounts.size(),
                     "branch out of range");
        return oc.branchCounts[di.branch];
    }
    return oc.activeAfter;
}

BatchRouting
mergeRoutings(const std::vector<const BatchRouting *> &parts)
{
    ADYNA_ASSERT(!parts.empty(), "cannot merge zero routings");
    BatchRouting out;
    for (const BatchRouting *part : parts) {
        for (const auto &[sw, oc] : part->outcomes) {
            SwitchOutcome &dst = out.outcomes[sw];
            if (dst.branchCounts.empty())
                dst.branchCounts.resize(oc.branchCounts.size(), 0);
            ADYNA_ASSERT(dst.branchCounts.size() ==
                             oc.branchCounts.size(),
                         "routings disagree on the branch count of "
                         "switch ",
                         sw);
            for (std::size_t b = 0; b < oc.branchCounts.size(); ++b)
                dst.branchCounts[b] += oc.branchCounts[b];
            dst.activeAfter += oc.activeAfter;
            dst.activeBefore += oc.activeBefore;
        }
    }
    ADYNA_ASSERT(out.outcomes.size() ==
                     parts.front()->outcomes.size(),
                 "routings cover different switch sets");
    return out;
}

std::int64_t
totalDynLoad(const graph::DynGraph &dg, const BatchRouting &routing)
{
    std::int64_t total = 0;
    for (OpId op : dg.dynamicOps())
        total += routing.dynValue(dg, op);
    return total;
}

TraceGenerator::TraceGenerator(const graph::DynGraph &dg, TraceConfig cfg,
                               std::uint64_t seed)
    : dg_(dg), cfg_(cfg), rng_(seed), seed_(seed)
{
    ADYNA_ASSERT(cfg_.batchSize > 0, "batch size must be positive");
}

double
TraceGenerator::drawDifficulty()
{
    double d = rng_.beta(cfg_.difficultyAlpha, cfg_.difficultyBeta);
    return std::clamp(d, 0.0, 1.0);
}

void
TraceGenerator::maybeAdvancePhase()
{
    if (cfg_.driftStrength <= 0.0 || cfg_.driftPeriod <= 0)
        return;
    if (batches_ % static_cast<std::uint64_t>(cfg_.driftPeriod) != 0)
        return;
    // New phase: rescale gate marginals and redraw expert popularity.
    phaseScale_ =
        1.0 + cfg_.driftStrength * rng_.uniform(-0.5, 0.5);
    phaseExpertTilt_.clear();
}

double
TraceGenerator::phaseFraction(double base) const
{
    return std::clamp(base * phaseScale_, 0.0, 1.0);
}

BatchRouting
TraceGenerator::next()
{
    maybeAdvancePhase();
    ++batches_;

    std::vector<Sample> samples(
        static_cast<std::size_t>(cfg_.batchSize));
    for (Sample &s : samples)
        s.difficulty = drawDifficulty();

    BatchRouting out;
    for (const SwitchInfo &sw : dg_.switches())
        routeSwitch(sw, samples, out);
    return out;
}

namespace {

/** Indices of currently active samples. */
std::vector<std::size_t>
activeIndices(const std::vector<TraceGenerator::Sample> &samples)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < samples.size(); ++i)
        if (samples[i].active)
            idx.push_back(i);
    return idx;
}

} // namespace

void
TraceGenerator::routeSwitch(const SwitchInfo &sw,
                            std::vector<Sample> &samples,
                            BatchRouting &out)
{
    const graph::OpNode &node = dg_.graph().node(sw.switchOp);
    const RoutingPolicy &policy = node.policy;

    SwitchOutcome oc;
    oc.branchCounts.assign(
        static_cast<std::size_t>(policy.numBranches), 0);

    // Rows of the batch dimension per routed unit (token folding).
    const std::int64_t units = std::max<std::int64_t>(
        policy.unitsPerSample, 1);
    // Rows one sample contributes at this gate (its patch-select
    // multiplicity times the gate's token fold).
    const auto effRows = [&](std::size_t i) {
        return samples[i].rows * units;
    };

    std::vector<std::size_t> active = activeIndices(samples);
    for (std::size_t i : active)
        oc.activeBefore += effRows(i);

    // Sort the active samples easiest-first with per-gate jitter, so
    // rank-based decisions correlate across gates through the shared
    // latent difficulty while retaining batch-to-batch variety.
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(active.size());
    for (std::size_t i : active) {
        const double jitter = rng_.normal(0.0, cfg_.gateNoise);
        ranked.emplace_back(samples[i].difficulty + jitter, i);
    }
    std::sort(ranked.begin(), ranked.end());

    switch (policy.kind) {
      case RoutingPolicy::Kind::EarlyExit: {
        // param = marginal exit fraction of the *original* batch.
        const double f = phaseFraction(policy.param);
        std::int64_t target = rng_.binomial(
            static_cast<std::uint32_t>(cfg_.batchSize), f);
        target = std::min<std::int64_t>(
            target, static_cast<std::int64_t>(ranked.size()));
        for (std::int64_t i = 0; i < target; ++i) {
            const std::size_t idx =
                ranked[static_cast<std::size_t>(i)].second;
            oc.branchCounts[0] += effRows(idx); // exit via the sink
            samples[idx].active = false;
        }
        oc.branchCounts[1] = oc.activeBefore - oc.branchCounts[0];
        oc.activeAfter = oc.branchCounts[1];
        break;
      }
      case RoutingPolicy::Kind::LayerSkip: {
        // param = skip fraction of the samples reaching this gate.
        const double f = phaseFraction(policy.param);
        std::int64_t target = rng_.binomial(
            static_cast<std::uint32_t>(ranked.size()), f);
        for (std::int64_t i = 0; i < target; ++i)
            oc.branchCounts[0] += // easiest samples skip
                effRows(ranked[static_cast<std::size_t>(i)].second);
        oc.branchCounts[1] = oc.activeBefore - oc.branchCounts[0];
        oc.activeAfter = oc.activeBefore; // merge restores the batch
        break;
      }
      case RoutingPolicy::Kind::TopKExperts: {
        if (phaseExpertTilt_.size() !=
            static_cast<std::size_t>(policy.numBranches)) {
            // (Re)draw per-phase expert popularity tilts.
            phaseExpertTilt_.resize(
                static_cast<std::size_t>(policy.numBranches));
            for (double &t : phaseExpertTilt_)
                t = std::exp(cfg_.driftStrength * rng_.normal());
        }
        std::vector<double> weights(
            static_cast<std::size_t>(policy.numBranches), 1.0);
        for (std::size_t e = 0; e < weights.size(); ++e) {
            if (e < policy.branchBias.size())
                weights[e] = policy.branchBias[e];
            weights[e] *= phaseExpertTilt_[e];
        }
        // Units (tokens) route independently, each to topK
        // *distinct* experts. Small populations are sampled exactly
        // per unit; large ones use a binomial-chain multinomial per
        // choice round with a clamp-and-redistribute pass that
        // restores the no-expert-exceeds-the-population invariant.
        const std::int64_t totalUnits = oc.activeBefore;
        if (totalUnits <= 2048) {
            for (std::int64_t u = 0; u < totalUnits; ++u) {
                const auto experts =
                    rng_.weightedSampleWithoutReplacement(
                        weights,
                        static_cast<std::size_t>(policy.topK));
                for (std::size_t e : experts)
                    ++oc.branchCounts[e];
            }
        } else {
            for (int choice = 0; choice < policy.topK; ++choice) {
                double wsum = 0.0;
                for (double w : weights)
                    wsum += w;
                std::int64_t remaining = totalUnits;
                for (std::size_t e = 0; e < weights.size(); ++e) {
                    if (remaining <= 0)
                        break;
                    const double p =
                        wsum > 0.0 ? weights[e] / wsum : 0.0;
                    std::int64_t c;
                    if (e + 1 == weights.size()) {
                        c = remaining;
                    } else {
                        c = rng_.binomial(
                            static_cast<std::uint32_t>(remaining),
                            std::clamp(p, 0.0, 1.0));
                    }
                    oc.branchCounts[e] += c;
                    remaining -= c;
                    wsum -= weights[e];
                }
            }
            // No expert can serve more units than exist: move the
            // excess to the least-loaded experts.
            for (std::size_t e = 0; e < oc.branchCounts.size(); ++e) {
                std::int64_t excess =
                    oc.branchCounts[e] - totalUnits;
                while (excess > 0) {
                    const auto it = std::min_element(
                        oc.branchCounts.begin(),
                        oc.branchCounts.end());
                    const std::int64_t room = totalUnits - *it;
                    const std::int64_t move =
                        std::min(excess, std::max<std::int64_t>(
                                             room, 1));
                    *it += move;
                    oc.branchCounts[e] -= move;
                    excess -= move;
                }
            }
        }
        oc.activeAfter = oc.activeBefore;
        break;
      }
      case RoutingPolicy::Kind::ChannelBlocks: {
        const int blocks = policy.numBranches;
        // FBS keeps the top-k most salient channels, and the
        // saliency ranking is largely consistent across samples: a
        // sample keeping k blocks activates the first k of the
        // popularity order (with a rare swap further down,
        // controlled by channelSwapProb). The tail blocks therefore only
        // light up for the hardest samples -- the rarely-executed
        // branches that motivate branch grouping (Section V-B).
        const double keep = phaseFraction(policy.param);
        const double swapProb = cfg_.channelSwapProb;
        for (const auto &[difficulty, idx] : ranked) {
            // Harder samples keep more channel blocks.
            const double frac = std::clamp(
                keep + (difficulty - 0.5) * 0.5 +
                    rng_.normal(0.0, cfg_.gateNoise),
                0.0, 1.0);
            std::int64_t k = std::llround(frac * blocks);
            k = std::clamp<std::int64_t>(k, 1, blocks);
            for (std::int64_t b = 0; b < k; ++b)
                oc.branchCounts[static_cast<std::size_t>(b)] +=
                    effRows(idx);
            // Occasional off-ranking pick: swap the last kept block
            // for a random tail block.
            if (k < blocks && rng_.bernoulli(swapProb)) {
                const std::int64_t tail =
                    rng_.uniformInt(k, blocks - 1);
                oc.branchCounts[static_cast<std::size_t>(tail)] +=
                    effRows(idx);
                oc.branchCounts[static_cast<std::size_t>(k - 1)] -=
                    effRows(idx);
            }
        }
        oc.activeAfter = oc.activeBefore;
        break;
      }
      case RoutingPolicy::Kind::PatchSelect: {
        // Units here are folded rows: `fold` patches per sample.
        // Kept rows continue on branch 0, dropped rows sink on
        // branch 1. Downstream gates see the per-sample kept counts
        // through Sample::rows. Nested patch selection is not
        // modelled.
        const std::int64_t fold =
            units > 1 ? units
                      : node.dims.n() /
                            std::max<std::int64_t>(cfg_.batchSize, 1);
        ADYNA_ASSERT(fold >= 1, "patch-select switch on unfolded batch");
        const double keep = phaseFraction(policy.param);
        for (const auto &[difficulty, idx] : ranked) {
            ADYNA_ASSERT(samples[idx].rows == 1,
                         "nested patch selection is not supported");
            // Harder images need more patches.
            const double frac = std::clamp(
                keep + (difficulty - 0.5) * cfg_.patchSpread +
                    rng_.normal(0.0, cfg_.gateNoise),
                0.0, 1.0);
            std::int64_t k = std::llround(frac * fold);
            k = std::clamp<std::int64_t>(k, 1, fold);
            samples[idx].rows = k;
            oc.branchCounts[0] += k;
        }
        const std::int64_t totalRows =
            static_cast<std::int64_t>(ranked.size()) * fold;
        oc.branchCounts[1] = totalRows - oc.branchCounts[0];
        oc.activeBefore = totalRows;
        oc.activeAfter = oc.branchCounts[0];
        break;
      }
    }

    out.outcomes[sw.switchOp] = std::move(oc);
}

std::map<OpId, double>
TraceGenerator::profileExpectations(int batches) const
{
    TraceGenerator probe(dg_, cfg_, seed_ ^ 0x517cc1b727220a95ULL);
    std::map<OpId, double> sums;
    const auto dynOps = dg_.dynamicOps();
    for (int b = 0; b < batches; ++b) {
        const BatchRouting routing = probe.next();
        for (OpId op : dynOps)
            sums[op] += static_cast<double>(routing.dynValue(dg_, op));
    }
    for (auto &[op, sum] : sums)
        sum /= batches;
    return sums;
}

} // namespace adyna::trace
