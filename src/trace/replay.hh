/**
 * @file
 * Routing-trace persistence: save a stream of BatchRouting decisions
 * to a line-oriented text file and load it back. This is the bridge
 * to *real* data -- a user can dump per-batch routing decisions from
 * an actual DynNN deployment (what the paper's hardware profiler
 * observes) and replay them through the simulator instead of the
 * synthetic generator.
 */

#ifndef ADYNA_TRACE_REPLAY_HH
#define ADYNA_TRACE_REPLAY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace adyna::trace {

/** Write @p batches in the adyna-trace v1 text format. */
void saveTrace(std::ostream &os,
               const std::vector<BatchRouting> &batches);

/** Write a trace file; fatal() if the file cannot be opened. */
void saveTraceFile(const std::string &path,
                   const std::vector<BatchRouting> &batches);

/** Parse a trace; fatal() on malformed input. */
std::vector<BatchRouting> loadTrace(std::istream &is);

/** Read a trace file; fatal() if the file cannot be opened. */
std::vector<BatchRouting> loadTraceFile(const std::string &path);

/**
 * Capture @p batches batches from a generator (convenience for
 * producing replayable fixtures).
 */
std::vector<BatchRouting> captureTrace(TraceGenerator &gen,
                                       int batches);

} // namespace adyna::trace

#endif // ADYNA_TRACE_REPLAY_HH
