#include "trace/replay.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace adyna::trace {

namespace {

constexpr const char *kMagic = "adyna-trace";
constexpr int kVersion = 1;

} // namespace

void
saveTrace(std::ostream &os, const std::vector<BatchRouting> &batches)
{
    os << kMagic << " v" << kVersion << ' ' << batches.size() << '\n';
    for (std::size_t b = 0; b < batches.size(); ++b) {
        os << "batch " << b << '\n';
        for (const auto &[sw, oc] : batches[b].outcomes) {
            os << "switch " << sw << " before " << oc.activeBefore
               << " after " << oc.activeAfter << " counts";
            for (std::int64_t c : oc.branchCounts)
                os << ' ' << c;
            os << '\n';
        }
    }
}

void
saveTraceFile(const std::string &path,
              const std::vector<BatchRouting> &batches)
{
    std::ofstream os(path);
    if (!os)
        ADYNA_FATAL("cannot open trace file for writing: ", path);
    saveTrace(os, batches);
}

std::vector<BatchRouting>
loadTrace(std::istream &is)
{
    std::string magic, version;
    std::size_t count = 0;
    if (!(is >> magic >> version >> count) || magic != kMagic ||
        version != "v1")
        ADYNA_FATAL("not an adyna-trace v1 stream");

    std::vector<BatchRouting> out;
    out.reserve(count);
    std::string tok;
    while (is >> tok) {
        if (tok == "batch") {
            std::size_t idx = 0;
            if (!(is >> idx))
                ADYNA_FATAL("malformed batch header");
            if (idx != out.size())
                ADYNA_FATAL("batch indices out of order: got ", idx,
                            ", expected ", out.size());
            out.emplace_back();
        } else if (tok == "switch") {
            if (out.empty())
                ADYNA_FATAL("switch record before any batch");
            OpId sw = kInvalidOp;
            SwitchOutcome oc;
            std::string kw;
            if (!(is >> sw >> kw) || kw != "before" ||
                !(is >> oc.activeBefore) || !(is >> kw) ||
                kw != "after" || !(is >> oc.activeAfter) ||
                !(is >> kw) || kw != "counts")
                ADYNA_FATAL("malformed switch record");
            // Counts run to the end of the line.
            std::string rest;
            std::getline(is, rest);
            std::istringstream cs(rest);
            std::int64_t c;
            while (cs >> c)
                oc.branchCounts.push_back(c);
            if (oc.branchCounts.empty())
                ADYNA_FATAL("switch record without branch counts");
            out.back().outcomes[sw] = std::move(oc);
        } else {
            ADYNA_FATAL("unexpected token in trace: '", tok, "'");
        }
    }
    if (out.size() != count)
        ADYNA_FATAL("trace declares ", count, " batches but holds ",
                    out.size());
    return out;
}

std::vector<BatchRouting>
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        ADYNA_FATAL("cannot open trace file: ", path);
    return loadTrace(is);
}

std::vector<BatchRouting>
captureTrace(TraceGenerator &gen, int batches)
{
    std::vector<BatchRouting> out;
    out.reserve(static_cast<std::size_t>(batches));
    for (int b = 0; b < batches; ++b)
        out.push_back(gen.next());
    return out;
}

} // namespace adyna::trace
