/**
 * @file
 * Minimal command-line flag parser shared by the bench binaries and
 * the example applications. Supports "--name value", "--name=value",
 * and boolean "--name" forms.
 */

#ifndef ADYNA_COMMON_CLI_HH
#define ADYNA_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adyna {

/** Parsed command-line flags with typed, defaulted accessors. */
class CliArgs
{
  public:
    /**
     * Parse argv. Unknown positional arguments are collected in
     * positional(); a bad flag syntax terminates via fatal().
     */
    CliArgs(int argc, const char *const *argv);

    /** True if the flag was present on the command line. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string getString(const std::string &name,
                          const std::string &dflt) const;

    /** Integer flag with default; fatal() on non-numeric value. */
    std::int64_t getInt(const std::string &name, std::int64_t dflt) const;

    /** Floating-point flag with default; fatal() on bad value. */
    double getDouble(const std::string &name, double dflt) const;

    /** Boolean flag: present without value, or true/false/1/0. */
    bool getBool(const std::string &name, bool dflt) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace adyna

#endif // ADYNA_COMMON_CLI_HH
