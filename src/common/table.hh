/**
 * @file
 * Aligned plain-text table printer used by the bench harness to emit
 * paper-style rows (Figure / Table reproductions).
 */

#ifndef ADYNA_COMMON_TABLE_HH
#define ADYNA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace adyna {

/** Column-aligned text table with an optional title and header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title = {});

    /** Set the header row (printed with a separator line under it). */
    void header(std::vector<std::string> cells);

    /** Append one data row; rows may have differing lengths. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    /** Format a double with @p precision decimal places. */
    static std::string num(double value, int precision = 2);

    /** Format a value as a multiplier, e.g. "1.70x". */
    static std::string mult(double value, int precision = 2);

    /** Format a fraction as a percentage, e.g. "87.3%". */
    static std::string pct(double fraction, int precision = 1);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isSeparator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace adyna

#endif // ADYNA_COMMON_TABLE_HH
