/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (a bug in Adyna itself);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   - functionality is approximated but the run can continue.
 * inform() - progress or status messages.
 */

#ifndef ADYNA_COMMON_LOGGING_HH
#define ADYNA_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace adyna {

/** Verbosity levels for inform(); warnings and errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global verbosity for inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

void appendOne(std::ostringstream &os);

template <typename T, typename... Rest>
void
appendOne(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendOne(os, rest...);
}

/** Concatenate all arguments through operator<<. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendOne(os, args...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

} // namespace detail

} // namespace adyna

#define ADYNA_PANIC(...)                                                   \
    ::adyna::detail::panicImpl(__FILE__, __LINE__,                         \
                               ::adyna::detail::concat(__VA_ARGS__))

#define ADYNA_FATAL(...)                                                   \
    ::adyna::detail::fatalImpl(__FILE__, __LINE__,                         \
                               ::adyna::detail::concat(__VA_ARGS__))

#define ADYNA_WARN(...)                                                    \
    ::adyna::detail::warnImpl(::adyna::detail::concat(__VA_ARGS__))

#define ADYNA_INFORM(...)                                                  \
    ::adyna::detail::informImpl(::adyna::detail::concat(__VA_ARGS__))

#define ADYNA_VERBOSE(...)                                                 \
    ::adyna::detail::verboseImpl(::adyna::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panics (aborts) on failure. */
#define ADYNA_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ADYNA_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                  \
    } while (false)

#endif // ADYNA_COMMON_LOGGING_HH
