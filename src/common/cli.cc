#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace adyna {

CliArgs::CliArgs(int argc, const char *const *argv)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.size() < 3 || arg.substr(0, 2) != "--") {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // "--name value" unless the next token is another flag or
        // there is no next token; then it is a boolean flag.
        if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &dflt) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    char *end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        ADYNA_FATAL("flag --", name, " expects an integer, got '",
                    it->second, "'");
    return value;
}

double
CliArgs::getDouble(const std::string &name, double dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        ADYNA_FATAL("flag --", name, " expects a number, got '",
                    it->second, "'");
    return value;
}

bool
CliArgs::getBool(const std::string &name, bool dflt) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    ADYNA_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

} // namespace adyna
