/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel sweeps
 * (one simulation run per task). parallelFor(n, fn) executes fn(i)
 * for every i in [0, n) and blocks until all are done; with jobs=1
 * the loop runs inline on the calling thread, bit-identical to a
 * plain for loop. Exceptions thrown by tasks are captured and the
 * one with the LOWEST index is rethrown after the loop drains, so
 * error behaviour does not depend on the worker count. Nested
 * parallelFor calls (from inside a task) degrade to inline serial
 * execution instead of deadlocking on the pool.
 */

#ifndef ADYNA_COMMON_PARALLEL_HH
#define ADYNA_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace adyna {

/** Fixed-size worker pool with a fork-join parallelFor. */
class ThreadPool
{
  public:
    /** @p jobs worker slots including the calling thread; 0 picks
     * defaultJobs(). The pool spawns jobs-1 OS threads. */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker slots (>= 1). */
    int jobs() const { return jobs_; }

    /** Hardware concurrency, at least 1. */
    static int defaultJobs();

    /**
     * Run fn(0) .. fn(n-1), each exactly once, and wait for all of
     * them. The calling thread participates. Rethrows the pending
     * exception of the lowest failing index, if any.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** parallelFor collecting fn(i) into a vector in index order.
     * The result type must be default-constructible. */
    template <typename Fn>
    auto parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
    {
        using R = std::decay_t<decltype(fn(std::size_t{0}))>;
        std::vector<R> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void workerMain();
    void runTasks();

    const int jobs_;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable cv_;     ///< wakes workers on a new job
    std::condition_variable doneCv_; ///< wakes the submitter
    bool stop_ = false;
    std::uint64_t epoch_ = 0; ///< bumped per submitted job

    // Active job state (valid while pending_ > 0).
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t n_ = 0;
    std::size_t next_ = 0;    ///< next unclaimed index
    std::size_t pending_ = 0; ///< tasks not yet finished
    std::exception_ptr error_;
    std::size_t errorIndex_ = 0;

    /** Serializes concurrent top-level parallelFor calls. */
    std::mutex submitMutex_;
};

} // namespace adyna

#endif // ADYNA_COMMON_PARALLEL_HH
