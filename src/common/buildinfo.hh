/**
 * @file
 * Build provenance for machine-readable bench outputs: the git
 * revision and build flags the binary was compiled from, so every
 * `BENCH_*.json` in the perf trajectory is attributable to a commit
 * and a configuration. Values are captured at CMake configure time
 * (re-run cmake after committing to refresh the SHA).
 */

#ifndef ADYNA_COMMON_BUILDINFO_HH
#define ADYNA_COMMON_BUILDINFO_HH

#include <string>

namespace adyna {

/** Abbreviated git SHA of the checkout at configure time, with a
 * "-dirty" suffix when the work tree had local modifications;
 * "unknown" outside a git checkout. */
const char *gitSha();

/** CMake build type ("RelWithDebInfo", "Debug", ...). */
const char *buildType();

/** Active ADYNA_SANITIZE mode ("thread", "address", "undefined"),
 * empty when built without a sanitizer. */
const char *sanitizerMode();

/** The standard provenance fields as a JSON fragment (no braces):
 * `"git_sha": "...", "build_type": "...", "sanitize": "..."`. */
std::string buildStampJson();

} // namespace adyna

#endif // ADYNA_COMMON_BUILDINFO_HH
