/**
 * @file
 * Fundamental scalar type aliases shared across all Adyna libraries.
 */

#ifndef ADYNA_COMMON_TYPES_HH
#define ADYNA_COMMON_TYPES_HH

#include <cstdint>

namespace adyna {

/** Simulated time, in accelerator clock cycles (1 GHz by default). */
using Cycles = std::uint64_t;

/** Simulated time, in picoseconds, used by the DES core. */
using Tick = std::uint64_t;

/** Data volume in bytes. */
using Bytes = std::uint64_t;

/** Count of multiply-accumulate operations. */
using MacCount = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

/** Identifier of a tile on the accelerator (row-major index). */
using TileId = std::uint32_t;

/** Identifier of an operator node in a graph. */
using OpId = std::uint32_t;

/** Sentinel for "no tile". */
inline constexpr TileId kInvalidTile = ~TileId{0};

/** Sentinel for "no operator". */
inline constexpr OpId kInvalidOp = ~OpId{0};

inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return Bytes{v} << 10;
}

inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return Bytes{v} << 20;
}

inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return Bytes{v} << 30;
}

} // namespace adyna

#endif // ADYNA_COMMON_TYPES_HH
