/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in Adyna flows through explicitly seeded Rng
 * instances so every experiment is reproducible; no component may use
 * wall-clock or global entropy. The generator is xoshiro256**, seeded
 * through SplitMix64 so that nearby seeds produce uncorrelated
 * streams.
 */

#ifndef ADYNA_COMMON_RNG_HH
#define ADYNA_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace adyna {

/** xoshiro256** pseudo-random generator with convenience draws. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Raw 64-bit draw. */
    std::uint64_t next();

    /** Satisfy UniformRandomBitGenerator. */
    result_type operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi], inclusive on both ends. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Standard normal draw (Marsaglia polar method). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Gamma(shape, 1) draw (Marsaglia-Tsang); shape > 0. */
    double gamma(double shape);

    /** Beta(a, b) draw via two gamma draws; a, b > 0. */
    double beta(double a, double b);

    /**
     * Draw an index from an unnormalized weight vector.
     * @param weights non-negative weights; must contain a positive one.
     */
    std::size_t categorical(const std::vector<double> &weights);

    /**
     * Draw @p k distinct indices from an unnormalized weight vector,
     * without replacement. k must not exceed the number of positive
     * weights.
     */
    std::vector<std::size_t>
    weightedSampleWithoutReplacement(std::vector<double> weights,
                                     std::size_t k);

    /**
     * Binomial draw: number of successes in n Bernoulli(p) trials.
     * Exact (n draws) for small n, normal approximation for large n.
     */
    std::uint32_t binomial(std::uint32_t n, double p);

    /** Fork a child generator with an independent stream. */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace adyna

#endif // ADYNA_COMMON_RNG_HH
