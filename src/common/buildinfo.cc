#include "common/buildinfo.hh"

// The build system injects the values; missing definitions (e.g. an
// ad-hoc compile outside CMake) degrade to "unknown" rather than
// failing the build.
#ifndef ADYNA_GIT_SHA
#define ADYNA_GIT_SHA "unknown"
#endif
#ifndef ADYNA_BUILD_TYPE
#define ADYNA_BUILD_TYPE "unknown"
#endif
#ifndef ADYNA_SANITIZE_MODE
#define ADYNA_SANITIZE_MODE ""
#endif

namespace adyna {

const char *
gitSha()
{
    return ADYNA_GIT_SHA;
}

const char *
buildType()
{
    return ADYNA_BUILD_TYPE;
}

const char *
sanitizerMode()
{
    return ADYNA_SANITIZE_MODE;
}

std::string
buildStampJson()
{
    std::string out;
    out += "\"git_sha\": \"";
    out += gitSha();
    out += "\", \"build_type\": \"";
    out += buildType();
    out += "\", \"sanitize\": \"";
    out += sanitizerMode();
    out += "\"";
    return out;
}

} // namespace adyna
