#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace adyna {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells), false});
}

void
TextTable::separator()
{
    rows_.push_back({{}, true});
}

void
TextTable::print(std::ostream &os) const
{
    // Compute per-column widths over header + all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r.cells);

    std::size_t lineWidth = 0;
    for (std::size_t w : widths)
        lineWidth += w + 2;
    lineWidth = lineWidth < 2 ? 0 : lineWidth - 2;

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size()) {
                const std::size_t pad = widths[i] - cells[i].size() + 2;
                os << std::string(pad, ' ');
            }
        }
        os << '\n';
    };

    if (!title_.empty()) {
        os << title_ << '\n';
        os << std::string(std::max(lineWidth, title_.size()), '=') << '\n';
    }
    if (!header_.empty()) {
        emitRow(header_);
        os << std::string(lineWidth, '-') << '\n';
    }
    for (const auto &r : rows_) {
        if (r.isSeparator)
            os << std::string(lineWidth, '-') << '\n';
        else
            emitRow(r.cells);
    }
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::mult(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
TextTable::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

} // namespace adyna
