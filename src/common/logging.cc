#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace adyna {

namespace {

LogLevel gLogLevel = LogLevel::Normal;

} // namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

LogLevel
logLevel()
{
    return gLogLevel;
}

namespace detail {

void
appendOne(std::ostringstream &os)
{
    (void)os;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gLogLevel != LogLevel::Quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
verboseImpl(const std::string &msg)
{
    if (gLogLevel == LogLevel::Verbose)
        std::fprintf(stderr, "verbose: %s\n", msg.c_str());
}

} // namespace detail

} // namespace adyna
