#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace adyna {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ADYNA_ASSERT(lo <= hi, "bad uniformInt range [", lo, ", ", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = Rng::max() - Rng::max() % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareNormal_ = v * mul;
    hasSpareNormal_ = true;
    return u * mul;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::gamma(double shape)
{
    ADYNA_ASSERT(shape > 0.0, "gamma shape must be positive: ", shape);
    if (shape < 1.0) {
        // Boost to shape >= 1 and correct with a power of a uniform.
        const double u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x +
                                         d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

double
Rng::beta(double a, double b)
{
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        ADYNA_ASSERT(w >= 0.0, "negative categorical weight ", w);
        total += w;
    }
    ADYNA_ASSERT(total > 0.0, "categorical weights sum to zero");
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::weightedSampleWithoutReplacement(std::vector<double> weights,
                                      std::size_t k)
{
    std::vector<std::size_t> chosen;
    chosen.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t idx = categorical(weights);
        chosen.push_back(idx);
        weights[idx] = 0.0;
    }
    return chosen;
}

std::uint32_t
Rng::binomial(std::uint32_t n, double p)
{
    ADYNA_ASSERT(p >= 0.0 && p <= 1.0, "binomial p out of range: ", p);
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;
    if (n <= 64) {
        std::uint32_t successes = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            successes += bernoulli(p) ? 1 : 0;
        return successes;
    }
    // Normal approximation with continuity correction, clamped.
    const double mean = n * p;
    const double sd = std::sqrt(n * p * (1.0 - p));
    double draw = std::round(normal(mean, sd));
    if (draw < 0.0)
        draw = 0.0;
    if (draw > n)
        draw = n;
    return static_cast<std::uint32_t>(draw);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace adyna
