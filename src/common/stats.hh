/**
 * @file
 * Lightweight statistics containers used by the simulator, the
 * hardware profiler model, and the benchmarks: running scalar
 * summaries and value-frequency histograms over integer domains.
 */

#ifndef ADYNA_COMMON_STATS_HH
#define ADYNA_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adyna {

/** Running mean / variance / min / max of a scalar series. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another summary into this one. */
    void merge(const RunningStats &other);

    /** Remove all observations. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Value -> occurrence-count histogram over a non-negative integer
 * domain. This is the exact structure maintained by the hardware
 * profiler's frequency track tables (Section IV of the paper) and
 * consumed by the frequency-weighted scheduler and the multi-kernel
 * sampling algorithm.
 */
class FreqHistogram
{
  public:
    /** Record one occurrence of @p value (optionally weighted). */
    void add(std::int64_t value, std::uint64_t weight = 1);

    /** Merge another histogram into this one. */
    void merge(const FreqHistogram &other);

    /** Discard all recorded occurrences. */
    void reset();

    /** Exponentially decay all counts by @p factor in [0,1]. */
    void decay(double factor);

    /** Total number of recorded occurrences. */
    std::uint64_t total() const { return total_; }

    /** Number of distinct values observed. */
    std::size_t distinct() const { return counts_.size(); }

    /** Occurrences of one specific value. */
    std::uint64_t count(std::int64_t value) const;

    /** Expectation of the value distribution; 0 if empty. */
    double expectation() const;

    /** Population variance of the value distribution; 0 if empty. */
    double variance() const;

    /** Largest observed value; 0 if empty. */
    std::int64_t maxValue() const;

    /** Smallest observed value; 0 if empty. */
    std::int64_t minValue() const;

    /** Smallest value v such that P(X <= v) >= q, for q in [0,1]. */
    std::int64_t quantile(double q) const;

    /** Sorted (value, count) pairs. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> sorted() const;

    bool empty() const { return counts_.empty(); }

  private:
    std::map<std::int64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Geometric mean of a series of positive values; 0 if empty. */
double geomean(const std::vector<double> &values);

/**
 * q-quantile (q in [0, 1]) of a sample, by linear interpolation
 * between the two nearest order statistics; 0 if the sample is
 * empty. The input is taken by value and sorted internally.
 */
double percentile(std::vector<double> values, double q);

/**
 * L1 distance between the normalized value distributions of two
 * histograms, in [0, 2] (0 = identical, 2 = disjoint support). When
 * the union of observed values spans more than @p buckets distinct
 * values, both distributions are first folded onto @p buckets
 * equal-width buckets over the combined value range, which keeps the
 * sampling noise of the metric independent of the domain size;
 * buckets <= 0 disables folding. Returns 0 if either histogram is
 * empty.
 */
double distributionL1(const FreqHistogram &a, const FreqHistogram &b,
                      int buckets = 0);

} // namespace adyna

#endif // ADYNA_COMMON_STATS_HH
