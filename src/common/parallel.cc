#include "common/parallel.hh"

#include <algorithm>

namespace adyna {

namespace {

/** Set while the current thread is executing a pool task; nested
 * parallelFor calls detect it and run inline. */
thread_local bool tlsInTask = false;

struct TaskScope
{
    bool saved;
    TaskScope() : saved(tlsInTask) { tlsInTask = true; }
    ~TaskScope() { tlsInTask = saved; }
};

} // namespace

int
ThreadPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int jobs)
    : jobs_(std::max(1, jobs == 0 ? defaultJobs() : jobs))
{
    workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
    for (int i = 0; i < jobs_ - 1; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerMain()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_)
            return;
        seen = epoch_;
        lk.unlock();
        runTasks();
        lk.lock();
    }
}

void
ThreadPool::runTasks()
{
    TaskScope scope;
    for (;;) {
        std::size_t i;
        const std::function<void(std::size_t)> *fn;
        {
            std::lock_guard<std::mutex> lk(m_);
            if (next_ >= n_)
                return;
            i = next_++;
            fn = fn_;
        }
        std::exception_ptr err;
        try {
            (*fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        bool last = false;
        {
            std::lock_guard<std::mutex> lk(m_);
            if (err && (!error_ || i < errorIndex_)) {
                error_ = err;
                errorIndex_ = i;
            }
            last = --pending_ == 0;
        }
        if (last)
            doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Serial pool, nested call from inside a task, or a trivial
    // job: run inline, in index order, first exception wins.
    if (jobs_ == 1 || tlsInTask || n == 1) {
        TaskScope scope;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMutex_);
    {
        std::lock_guard<std::mutex> lk(m_);
        fn_ = &fn;
        n_ = n;
        next_ = 0;
        pending_ = n;
        error_ = nullptr;
        errorIndex_ = 0;
        ++epoch_;
    }
    cv_.notify_all();
    runTasks(); // the submitting thread works too

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] { return pending_ == 0; });
        fn_ = nullptr;
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace adyna
