#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sumSq_ += x * x;
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RunningStats::variance() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / static_cast<double>(count_) - m * m;
    return var < 0.0 ? 0.0 : var; // guard against FP cancellation
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
FreqHistogram::add(std::int64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    counts_[value] += weight;
    total_ += weight;
}

void
FreqHistogram::merge(const FreqHistogram &other)
{
    for (const auto &[value, count] : other.counts_)
        add(value, count);
}

void
FreqHistogram::reset()
{
    counts_.clear();
    total_ = 0;
}

void
FreqHistogram::decay(double factor)
{
    ADYNA_ASSERT(factor >= 0.0 && factor <= 1.0,
                 "decay factor out of range: ", factor);
    total_ = 0;
    for (auto it = counts_.begin(); it != counts_.end();) {
        const auto decayed = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(it->second) * factor));
        if (decayed == 0) {
            it = counts_.erase(it);
        } else {
            it->second = decayed;
            total_ += decayed;
            ++it;
        }
    }
}

std::uint64_t
FreqHistogram::count(std::int64_t value) const
{
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
}

double
FreqHistogram::expectation() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[value, count] : counts_)
        acc += static_cast<double>(value) * static_cast<double>(count);
    return acc / static_cast<double>(total_);
}

double
FreqHistogram::variance() const
{
    if (total_ == 0)
        return 0.0;
    const double m = expectation();
    double acc = 0.0;
    for (const auto &[value, count] : counts_) {
        const double d = static_cast<double>(value) - m;
        acc += d * d * static_cast<double>(count);
    }
    return acc / static_cast<double>(total_);
}

std::int64_t
FreqHistogram::maxValue() const
{
    return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::int64_t
FreqHistogram::minValue() const
{
    return counts_.empty() ? 0 : counts_.begin()->first;
}

std::int64_t
FreqHistogram::quantile(double q) const
{
    ADYNA_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    if (counts_.empty())
        return 0;
    const double target = q * static_cast<double>(total_);
    std::uint64_t acc = 0;
    for (const auto &[value, count] : counts_) {
        acc += count;
        if (static_cast<double>(acc) >= target)
            return value;
    }
    return counts_.rbegin()->first;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
FreqHistogram::sorted() const
{
    return {counts_.begin(), counts_.end()};
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        ADYNA_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    ADYNA_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
distributionL1(const FreqHistogram &a, const FreqHistogram &b,
               int buckets)
{
    if (a.empty() || b.empty())
        return 0.0;

    const auto sa = a.sorted();
    const auto sb = b.sorted();
    const double totA = static_cast<double>(a.total());
    const double totB = static_cast<double>(b.total());

    // Exact per-value distance when the union is small enough.
    std::int64_t lo = std::min(a.minValue(), b.minValue());
    std::int64_t hi = std::max(a.maxValue(), b.maxValue());
    std::size_t distinctUnion = 0;
    {
        std::size_t ia = 0, ib = 0;
        while (ia < sa.size() || ib < sb.size()) {
            if (ib == sb.size() ||
                (ia < sa.size() && sa[ia].first < sb[ib].first)) {
                ++ia;
            } else if (ia == sa.size() ||
                       sb[ib].first < sa[ia].first) {
                ++ib;
            } else {
                ++ia;
                ++ib;
            }
            ++distinctUnion;
        }
    }

    if (buckets <= 0 ||
        distinctUnion <= static_cast<std::size_t>(buckets)) {
        double dist = 0.0;
        std::size_t ia = 0, ib = 0;
        while (ia < sa.size() || ib < sb.size()) {
            double pa = 0.0, pb = 0.0;
            if (ib == sb.size() ||
                (ia < sa.size() && sa[ia].first < sb[ib].first)) {
                pa = static_cast<double>(sa[ia++].second) / totA;
            } else if (ia == sa.size() ||
                       sb[ib].first < sa[ia].first) {
                pb = static_cast<double>(sb[ib++].second) / totB;
            } else {
                pa = static_cast<double>(sa[ia++].second) / totA;
                pb = static_cast<double>(sb[ib++].second) / totB;
            }
            dist += std::abs(pa - pb);
        }
        return dist;
    }

    // Fold both distributions onto equal-width buckets spanning the
    // combined range so the metric's sampling noise scales with the
    // bucket count, not with the number of distinct raw values.
    const double width = static_cast<double>(hi - lo + 1) /
                         static_cast<double>(buckets);
    const auto bucketOf = [&](std::int64_t v) {
        const auto i = static_cast<std::size_t>(
            static_cast<double>(v - lo) / width);
        return std::min<std::size_t>(
            i, static_cast<std::size_t>(buckets) - 1);
    };
    std::vector<double> pa(static_cast<std::size_t>(buckets), 0.0);
    std::vector<double> pb(static_cast<std::size_t>(buckets), 0.0);
    for (const auto &[v, c] : sa)
        pa[bucketOf(v)] += static_cast<double>(c) / totA;
    for (const auto &[v, c] : sb)
        pb[bucketOf(v)] += static_cast<double>(c) / totB;
    double dist = 0.0;
    for (std::size_t i = 0; i < pa.size(); ++i)
        dist += std::abs(pa[i] - pb[i]);
    return dist;
}

} // namespace adyna
