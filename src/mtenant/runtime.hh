/**
 * @file
 * The multi-tenant serving runtime: N tenants — each a workload with
 * its own serving configuration and an SLO class — co-scheduled on
 * one chip through spatial tile partitioning. Each tenant runs the
 * full single-tenant serving loop (admission, batching, drift-driven
 * delta re-scheduling, SLO tracking) restricted to its own
 * rectangular tile region via Scheduler::setHealthyTiles, while all
 * tenants share the physical chip: the NoC, the HBM stacks, and —
 * under the naive SharedGrid mode — the tiles themselves. Disjoint
 * regions execute concurrently in simulated time because tile
 * reservations never collide; cross-tenant interference enters
 * through the shared memory system and through bandwidth degrades on
 * partition-boundary NoC links (see partition.hh).
 *
 * On top of the per-tenant loops sit three chip-level controllers:
 *  - an elastic repartition controller that tracks each tenant's
 *    measured completion rate (EWMA), recomputes SLO-weighted
 *    desired shares, and — behind a deviation threshold, hysteresis,
 *    and a cooldown — re-carves the grid, rebuilding only the
 *    tenants whose region actually changed (unchanged tenants keep
 *    their installed schedule and compiled stores: the partition-
 *    level delta re-schedule);
 *  - priority preemption: a latency-critical tenant whose latency
 *    EWMA overshoots its deadline gets a temporary share boost and
 *    forces an immediate repartition evaluation;
 *  - tenant-aware fail-over: a tile fault repairs only the tenants
 *    whose region contains a struck tile (FaultInjector::
 *    changedTiles), not the whole chip.
 *
 * A 1-tenant configuration delegates to serve::ServeRuntime
 * verbatim, so its serve report (and JSON) is byte-identical to the
 * single-workload path — the equivalence gate that pins the
 * multi-tenant layer as a pure extension.
 */

#ifndef ADYNA_MTENANT_RUNTIME_HH
#define ADYNA_MTENANT_RUNTIME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/hwconfig.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "costmodel/mapper.hh"
#include "fault/fault.hh"
#include "graph/dyngraph.hh"
#include "mtenant/partition.hh"
#include "serve/server.hh"
#include "serve/tenant.hh"
#include "trace/trace.hh"

namespace adyna::mtenant {

/** One tenant's workload: the graph plus its dynamism model. */
struct TenantWorkload
{
    const graph::DynGraph *dg = nullptr;

    /** Dynamism model; batchSize must equal the tenant's
     * batching.maxBatch (the compiled batch size). */
    trace::TraceConfig traceCfg;

    std::string name;
};

/** Elastic repartition controller policy. */
struct RepartitionPolicy
{
    /** Re-carve the grid as measured load shifts; false freezes the
     * initial partition (EvenSplit and SharedGrid are always
     * frozen — only IsolationAware repartitions). */
    bool elastic = true;

    /** Cycles between controller checks. */
    Cycles checkIntervalCycles = 2'000'000;

    /** Largest |desired - current| tile-share deviation (per tenant)
     * tolerated before a check counts as hot. */
    double deviationThreshold = 0.25;

    /** Consecutive hot checks required to repartition. */
    int hysteresisChecks = 2;

    /** Checks after a repartition during which no new one fires. */
    int cooldownChecks = 2;

    /** EWMA weight of the newest per-tenant rate measurement. */
    double loadEwmaAlpha = 0.3;
};

/** Priority preemption policy for latency-critical tenants. */
struct PreemptionPolicy
{
    bool enabled = true;

    /** Trigger when a latency-critical tenant's latency EWMA exceeds
     * this multiple of its deadline. */
    double latencyFactor = 1.0;

    /** Share multiplier granted to the struggling tenant. */
    double boost = 2.0;

    /** Controller checks the boost persists for. */
    int holdChecks = 4;
};

/** Chip-level multi-tenant configuration. */
struct MTenantConfig
{
    /** The tenants (validated by serve::validateTenantSpecs; one
     * entry per TenantWorkload, same order). */
    std::vector<serve::TenantSpec> tenants;

    PartitionPolicy partition;
    RepartitionPolicy repartition;
    PreemptionPolicy preemption;

    /** Chip-level fault timeline (per-tenant plans are rejected). */
    fault::FaultPlan faultPlan;

    /** Seed for the fault probe-drop streams; 0 derives one from the
     * first tenant's seed. */
    std::uint64_t faultSeed = 0;

    /** Repair struck tenants' schedules when tiles fail/recover. */
    bool failover = true;
};

/** One tenant's slice of the multi-tenant report. */
struct TenantResult
{
    std::string id;
    serve::SloClass cls = serve::SloClass::Standard;

    /** Tiles of the tenant's final region. */
    int tiles = 0;

    /** The tenant's full single-tenant-equivalent serving report. */
    serve::ServeReport serve;
};

/** Everything one multi-tenant run reports. */
struct MTenantReport
{
    /** partitionKindName of the mode the run used. */
    std::string mode;

    std::vector<TenantResult> tenants;

    int repartitions = 0;
    int preemptions = 0;

    /** Partition-local fail-over repairs (tenants rebuilt after a
     * tile health change; <= sum of per-tenant failovers). */
    int failoverRepairs = 0;

    /** Boundary links carrying an interference degrade at run end. */
    int interferenceLinks = 0;

    /** Dispatches that had to re-stream the tenant's weight working
     * set over HBM because another tenant ran on (some of) its tiles
     * since its last dispatch. Zero under disjoint partitions except
     * right after a repartition; nearly every alternation under the
     * naive shared grid — the context-switch cost spatial isolation
     * exists to avoid. */
    int tenantSwitches = 0;

    /** Sum of per-tenant deadline-meeting completions per second. */
    double aggregateGoodputRps = 0.0;

    /** Worst per-tenant p99 latency, milliseconds. */
    double worstP99Ms = 0.0;

    /** Latest completion tick across tenants. */
    Tick horizonTicks = 0;
};

/** The run as a JSON object: chip-level counters plus a "tenants"
 * array whose elements are each tenant's serve JSON (serve::toJson
 * bytes) prefixed with its id / class / tile count. */
std::string toJson(const MTenantReport &report);

/** Multi-tenant serving simulation over one shared chip. */
class MTenantRuntime
{
  public:
    /** @param workloads one workload per cfg.tenants entry, same
     * order; the graphs must outlive the runtime. */
    MTenantRuntime(std::vector<TenantWorkload> workloads,
                   arch::HwConfig hw, core::SchedulerConfig sched_cfg,
                   core::ExecPolicy policy, MTenantConfig cfg);

    /** Share a mapping-search memo across tenants / runtimes (same
     * contract as ServeRuntime::setSharedMapper). */
    void setSharedMapper(costmodel::Mapper *mapper);

    /** Use @p cache for compiled-store reuse across tenants (same
     * contract as ServeRuntime::setSharedStoreCache). The cache is
     * keyed by tile count, so same-size regions stay warm across
     * repartitions. */
    void setSharedStoreCache(kernels::KernelStoreCache *cache);

    /** Build kernel stores on @p pool during (re-)schedules. */
    void setSchedulerPool(ThreadPool *pool);

    /** Serve every tenant's numRequests requests and report. */
    MTenantReport run();

  private:
    /** 1-tenant delegation to serve::ServeRuntime (byte-identical
     * serve report). */
    MTenantReport runSingle();

    std::vector<TenantWorkload> workloads_;
    arch::HwConfig hw_;
    core::SchedulerConfig schedCfg_;
    core::ExecPolicy policy_;
    MTenantConfig cfg_;
    costmodel::Mapper *sharedMapper_ = nullptr;
    kernels::KernelStoreCache *sharedStoreCache_ = nullptr;
    ThreadPool *schedulerPool_ = nullptr;
};

} // namespace adyna::mtenant

#endif // ADYNA_MTENANT_RUNTIME_HH
