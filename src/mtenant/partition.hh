/**
 * @file
 * Spatial tile partitioning for multi-tenant serving.
 *
 * A TilePartitioner carves the rectangular tile grid into one
 * axis-aligned rectangular region per tenant, sized proportionally to
 * each tenant's share (offered load x SLO-class weight) by a
 * deterministic recursive guillotine split: the tenant list is split
 * at the prefix whose share sum is closest to half, the current
 * rectangle is cut across its longer axis at the proportional point
 * (clamped so both sides can still hold their tenants' minimum tile
 * counts), and each half recurses. Tenants keep their input order
 * through the recursion, so small share changes move partition
 * boundaries without shuffling which corner of the chip a tenant
 * lives in — that placement stability is what keeps repartitions
 * cheap (same-size regions re-use compiled kernel stores via the
 * tile-count-keyed KernelStoreCache).
 *
 * The partitioner also reports the partition's *boundary links*: the
 * directed NoC links that originate at a tile whose torus neighbour
 * belongs to a different tenant. Cross-tenant interference is
 * modelled by degrading those links (see interferenceFactor), since a
 * tenant's own traffic on its perimeter contends with the neighbour
 * region's spill-over on the shared physical channel.
 */

#ifndef ADYNA_MTENANT_PARTITION_HH
#define ADYNA_MTENANT_PARTITION_HH

#include <vector>

#include "arch/hwconfig.hh"
#include "common/types.hh"

namespace adyna::mtenant {

/** How the chip is shared between tenants. */
enum class PartitionKind {
    /** Rectangular regions sized by offered load x SLO weight, with
     * boundary-link interference degrades (the paper-faithful
     * isolation-aware mode). */
    IsolationAware,
    /** Rectangular regions of (near-)equal size regardless of load —
     * the static provisioning strawman. */
    EvenSplit,
    /** No spatial isolation: every tenant schedules over the whole
     * grid and contends for the same tiles (naive sharing). */
    SharedGrid,
};

/** Canonical lower-case mode name ("isolation-aware", ...). */
const char *partitionKindName(PartitionKind kind);

/** Partitioning policy knobs. */
struct PartitionPolicy
{
    PartitionKind kind = PartitionKind::IsolationAware;

    /** Smallest region any tenant may receive, in tiles. */
    int minTilesPerTenant = 4;

    /**
     * Strength of cross-tenant NoC interference on partition-boundary
     * links: a boundary link keeps fraction
     * 1 / (1 + alpha x foreignPressure) of its bandwidth, where
     * foreignPressure is the summed normalized share of the foreign
     * regions adjacent to the link's source tile. 0 disables
     * interference modelling.
     */
    double interferenceAlpha = 0.5;
};

/** An axis-aligned rectangle of tiles (rows x cols at row0/col0). */
struct TileRegion
{
    int row0 = 0;
    int col0 = 0;
    int rows = 0;
    int cols = 0;

    int tileCount() const { return rows * cols; }

    bool
    contains(const arch::HwConfig &hw, TileId tile) const
    {
        const int r = hw.tileRow(tile);
        const int c = hw.tileCol(tile);
        return r >= row0 && r < row0 + rows && c >= col0 &&
               c < col0 + cols;
    }

    /** Row-major tile ids of the region. */
    std::vector<TileId> tiles(const arch::HwConfig &hw) const;

    bool operator==(const TileRegion &) const = default;
};

/** A directed NoC link crossing a partition boundary. */
struct BoundaryLink
{
    TileId tile = 0;    ///< link source tile
    int dir = 0;        ///< arch::LinkDir out of @c tile
    int fromRegion = 0; ///< region index owning @c tile
    int toRegion = 0;   ///< region index owning the torus neighbour

    bool operator==(const BoundaryLink &) const = default;
};

/** A boundary link paired with its interference bandwidth factor. */
struct InterferenceDegrade
{
    TileId tile = 0;
    int dir = 0;
    double factor = 1.0; ///< remaining bandwidth fraction in (0, 1]
};

/** Carves the grid into per-tenant rectangles (see file comment). */
class TilePartitioner
{
  public:
    TilePartitioner(const arch::HwConfig &hw, PartitionPolicy policy);

    /**
     * Partition the grid for @p shares (one non-negative entry per
     * tenant, input order preserved). Regions are pairwise disjoint
     * and cover the whole grid; each holds at least
     * policy.minTilesPerTenant tiles (the policy is relaxed evenly
     * when the grid is too small for every tenant's floor). Under
     * SharedGrid every tenant receives the full-grid rectangle.
     * Deterministic: equal inputs give equal outputs.
     */
    std::vector<TileRegion>
    partition(const std::vector<double> &shares) const;

    /**
     * The directed links whose torus neighbour lies in a different
     * region, ascending by (tile, dir). Empty for SharedGrid (all
     * regions alias the full grid) and for a single tenant.
     */
    std::vector<BoundaryLink>
    boundaryLinks(const std::vector<TileRegion> &regions) const;

    /**
     * Per-boundary-link bandwidth degrades under
     * policy.interferenceAlpha: links from the same source tile are
     * merged so each (tile, dir) appears once, with foreignPressure
     * summed over the distinct foreign regions adjacent to that tile.
     * Empty when alpha is 0 or there are no boundary links.
     */
    std::vector<InterferenceDegrade>
    interferenceDegrades(const std::vector<TileRegion> &regions,
                         const std::vector<double> &shares) const;

    const PartitionPolicy &policy() const { return policy_; }

  private:
    /** Recursive guillotine split of @p rect across tenants
     * [first, last) of @p shares, appending into @p out (indexed by
     * tenant). @p minTiles is the (possibly relaxed) per-tenant
     * floor. */
    void split(const TileRegion &rect,
               const std::vector<double> &shares, std::size_t first,
               std::size_t last, int minTiles,
               std::vector<TileRegion> &out) const;

    arch::HwConfig hw_;
    PartitionPolicy policy_;
};

} // namespace adyna::mtenant

#endif // ADYNA_MTENANT_PARTITION_HH
