#include "mtenant/partition.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "arch/noc.hh"

namespace adyna::mtenant {

const char *
partitionKindName(PartitionKind kind)
{
    switch (kind) {
    case PartitionKind::IsolationAware:
        return "isolation-aware";
    case PartitionKind::EvenSplit:
        return "even-split";
    case PartitionKind::SharedGrid:
        return "shared-grid";
    }
    return "?";
}

std::vector<TileId>
TileRegion::tiles(const arch::HwConfig &hw) const
{
    std::vector<TileId> out;
    out.reserve(static_cast<std::size_t>(tileCount()));
    for (int r = row0; r < row0 + rows; ++r)
        for (int c = col0; c < col0 + cols; ++c)
            out.push_back(static_cast<TileId>(r * hw.gridCols + c));
    return out;
}

TilePartitioner::TilePartitioner(const arch::HwConfig &hw,
                                 PartitionPolicy policy)
    : hw_(hw), policy_(policy)
{
    assert(policy_.minTilesPerTenant >= 1);
    assert(policy_.interferenceAlpha >= 0.0);
}

std::vector<TileRegion>
TilePartitioner::partition(const std::vector<double> &shares) const
{
    const std::size_t n = shares.size();
    assert(n >= 1);
    const TileRegion full{0, 0, hw_.gridRows, hw_.gridCols};
    if (policy_.kind == PartitionKind::SharedGrid)
        return std::vector<TileRegion>(n, full);

    // EvenSplit ignores load: every tenant weighs the same. Otherwise
    // floor each share at a sliver of the total so an idle tenant
    // still receives its minimum region instead of a zero-width cut.
    std::vector<double> eff(n, 1.0);
    if (policy_.kind == PartitionKind::IsolationAware) {
        double total = 0.0;
        for (double s : shares)
            total += std::max(s, 0.0);
        if (total > 0.0)
            for (std::size_t i = 0; i < n; ++i)
                eff[i] = std::max(shares[i], total * 1e-6);
    }

    // Relax the per-tenant floor evenly when the grid cannot fit it.
    int minTiles = std::max(policy_.minTilesPerTenant, 1);
    if (static_cast<long>(n) * minTiles > hw_.tiles())
        minTiles =
            std::max(1, hw_.tiles() / static_cast<int>(n));

    std::vector<TileRegion> out(n);
    split(full, eff, 0, n, minTiles, out);
    return out;
}

void
TilePartitioner::split(const TileRegion &rect,
                       const std::vector<double> &shares,
                       std::size_t first, std::size_t last,
                       int minTiles,
                       std::vector<TileRegion> &out) const
{
    if (last - first == 1) {
        out[first] = rect;
        return;
    }

    // Prefix cut of the tenant group whose share sum is closest to
    // half (input order is preserved for placement stability).
    double total = 0.0;
    for (std::size_t i = first; i < last; ++i)
        total += shares[i];
    std::size_t mid = first + 1;
    double prefix = shares[first];
    double bestDiff = std::abs(prefix - total / 2.0);
    double run = prefix;
    for (std::size_t k = first + 2; k < last; ++k) {
        run += shares[k - 1];
        const double diff = std::abs(run - total / 2.0);
        if (diff < bestDiff) {
            bestDiff = diff;
            mid = k;
            prefix = run;
        }
    }

    const long leftCount = static_cast<long>(mid - first);
    const long rightCount = static_cast<long>(last - mid);

    // Cut the longer axis at the share-proportional point, clamped so
    // each side keeps area for its tenants' floors.
    const bool cutRows = rect.rows >= rect.cols;
    const int len = cutRows ? rect.rows : rect.cols;
    const int cross = cutRows ? rect.cols : rect.rows;
    const double frac = total > 0.0 ? prefix / total : 0.5;
    int cut = static_cast<int>(
        std::lround(frac * static_cast<double>(len)));
    const auto needed = [&](long count) {
        return static_cast<int>(
            (count * minTiles + cross - 1) / cross);
    };
    int lo = std::max(1, needed(leftCount));
    int hi = std::min(len - 1, len - needed(rightCount));
    if (lo > hi) {
        // Degenerate geometry (floors cannot both fit): fall back to
        // a count-proportional cut and let recursion do its best.
        cut = static_cast<int>(
            std::lround(static_cast<double>(len) *
                        static_cast<double>(leftCount) /
                        static_cast<double>(leftCount + rightCount)));
        lo = 1;
        hi = len - 1;
    }
    cut = std::clamp(cut, lo, hi);

    TileRegion a = rect;
    TileRegion b = rect;
    if (cutRows) {
        a.rows = cut;
        b.row0 = rect.row0 + cut;
        b.rows = rect.rows - cut;
    } else {
        a.cols = cut;
        b.col0 = rect.col0 + cut;
        b.cols = rect.cols - cut;
    }
    split(a, shares, first, mid, minTiles, out);
    split(b, shares, mid, last, minTiles, out);
}

std::vector<BoundaryLink>
TilePartitioner::boundaryLinks(
    const std::vector<TileRegion> &regions) const
{
    std::vector<BoundaryLink> out;
    if (regions.size() <= 1)
        return out;

    // Tile -> owning region. Overlapping regions (the SharedGrid
    // aliasing) have no meaningful boundaries — return none.
    std::vector<int> owner(static_cast<std::size_t>(hw_.tiles()), -1);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        for (TileId t : regions[i].tiles(hw_)) {
            if (owner[t] != -1)
                return {};
            owner[t] = static_cast<int>(i);
        }
    }

    for (TileId t = 0; t < static_cast<TileId>(hw_.tiles()); ++t) {
        if (owner[t] < 0)
            continue;
        for (int dir = 0; dir < 4; ++dir) {
            const TileId nb = arch::torusNeighbor(hw_, t, dir);
            if (owner[nb] >= 0 && owner[nb] != owner[t])
                out.push_back({t, dir, owner[t], owner[nb]});
        }
    }
    return out;
}

std::vector<InterferenceDegrade>
TilePartitioner::interferenceDegrades(
    const std::vector<TileRegion> &regions,
    const std::vector<double> &shares) const
{
    std::vector<InterferenceDegrade> out;
    if (policy_.interferenceAlpha <= 0.0)
        return out;
    const std::vector<BoundaryLink> links = boundaryLinks(regions);
    if (links.empty())
        return out;

    double total = 0.0;
    for (double s : shares)
        total += std::max(s, 0.0);
    const auto normShare = [&](int region) {
        if (total <= 0.0)
            return 1.0 / static_cast<double>(regions.size());
        return std::max(shares[static_cast<std::size_t>(region)],
                        0.0) /
               total;
    };

    // Links are (tile, dir)-ascending, so each source tile's links
    // are contiguous: compute the tile's foreign pressure once over
    // its distinct foreign neighbour regions, then stamp the shared
    // factor on each of its boundary links.
    std::size_t i = 0;
    while (i < links.size()) {
        std::size_t j = i;
        double pressure = 0.0;
        int seen[4];
        int seenCount = 0;
        while (j < links.size() && links[j].tile == links[i].tile) {
            bool dup = false;
            for (int s = 0; s < seenCount; ++s)
                dup = dup || seen[s] == links[j].toRegion;
            if (!dup) {
                seen[seenCount++] = links[j].toRegion;
                pressure += normShare(links[j].toRegion);
            }
            ++j;
        }
        const double factor =
            1.0 / (1.0 + policy_.interferenceAlpha * pressure);
        for (std::size_t k = i; k < j; ++k)
            out.push_back({links[k].tile, links[k].dir, factor});
        i = j;
    }
    return out;
}

} // namespace adyna::mtenant
