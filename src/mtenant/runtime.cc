#include "mtenant/runtime.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "common/logging.hh"
#include "core/sampling.hh"
#include "core/validate.hh"
#include "serve/validate.hh"

namespace adyna::mtenant {

namespace {

/** Same synthetic total-load series the single-tenant runtime feeds
 * its drift monitor (see serve/server.cc for the rationale). */
constexpr OpId kLoadSeriesOp = 0xFFFFFFFFu;

void
recordRequest(arch::Profiler &prof, const graph::DynGraph &dg,
              const trace::BatchRouting &routing)
{
    prof.noteBatch();
    std::int64_t totalLoad = 0;
    for (OpId op : dg.dynamicOps()) {
        const std::int64_t v = routing.dynValue(dg, op);
        prof.recordValue(op, v);
        totalLoad += v;
    }
    prof.recordValue(kLoadSeriesOp, totalLoad);
}

/** Ascending intersection of two ascending tile lists. */
std::vector<TileId>
intersectTiles(const std::vector<TileId> &a,
               const std::vector<TileId> &b)
{
    std::vector<TileId> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

/** The offered-load hint a tenant's initial share is sized from. */
double
offeredLoad(const serve::TenantSpec &spec)
{
    return spec.loadWeight > 0.0 ? spec.loadWeight
                                 : spec.serve.arrival.ratePerSec;
}

/** One tenant's complete serving state: the single-tenant runtime's
 * locals, packaged so N of them interleave on one chip. */
struct Tenant
{
    const serve::TenantSpec *spec;
    const TenantWorkload *wl;
    std::uint64_t seed;
    double deadlineTicks;

    core::Scheduler scheduler;
    core::Engine engine;
    arch::Profiler engineProf;
    arch::Profiler driftProf;
    serve::DriftMonitor monitor;
    serve::ArrivalProcess arrivals;
    trace::TraceGenerator reqGen;
    serve::Batcher batcher;
    serve::SloTracker slo;

    std::map<OpId, double> expectations;
    std::map<OpId, double> installedExp;
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    std::map<OpId, std::vector<std::int64_t>> installedKv;
    core::Schedule schedule;

    /** The tenant's partition rectangle and its tile ids
     * (ascending). */
    TileRegion rect;
    std::vector<TileId> region;

    /** The workload's full weight working set in bytes — the
     * context-switch traffic re-streamed over HBM when another
     * tenant ran on this tenant's tiles since its last dispatch. */
    Bytes weightBytes = 0;

    Tick engineFree = 0;
    Tick nextArrival = 0;
    Tick firstArrival = 0;
    Tick lastArrival = 0;
    std::uint64_t total = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t batches = 0;
    int reschedules = 0;
    int driftWindows = 0;
    int failovers = 0;
    int watchdogFallbacks = 0;
    int storeFitFailures = 0;
    int deltaReschedules = 0;
    std::uint64_t segmentsRebuilt = 0;
    std::uint64_t segmentsSpliced = 0;
    double serviceEwma = 0.0;
    bool haveService = false;

    // Controller state: arrival-rate EWMAs (repartition) and
    // end-to-end latency (preemption). The repartition signal is the
    // ratio of a short to a long arrival-rate EWMA — dimensionless
    // and self-normalized per tenant, so heterogeneous per-request
    // costs cannot skew the comparison, and a starved tenant's demand
    // stays visible because arrivals are independent of service.
    std::uint64_t issuedAtCheck = 0;
    double shortRateEwma = 0.0; ///< arrivals per check interval
    double longRateEwma = 0.0;  ///< slow baseline of the same
    bool haveRateObs = false;
    double latencyEwmaTicks = 0.0;
    bool haveLatency = false;
    double boost = 1.0;
    int boostChecksLeft = 0;

    bool done = false;

    // Per-tenant shared-cache activity, accumulated around this
    // tenant's own (re-)schedule builds.
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;

    Tenant(const serve::TenantSpec &s, const TenantWorkload &w,
           std::uint64_t sd, const arch::HwConfig &hw,
           costmodel::Mapper &mapper,
           const core::SchedulerConfig &sched_cfg,
           const core::ExecPolicy &policy,
           const serve::ArrivalConfig &arrival_cfg,
           const trace::TraceConfig &req_cfg)
        : spec(&s), wl(&w), seed(sd),
          deadlineTicks(s.serve.slo.deadlineMs * hw.tech.freqGhz *
                        1e6),
          scheduler(*w.dg, hw, mapper, sched_cfg),
          engine(*w.dg, hw, mapper, policy),
          monitor(s.serve.drift),
          arrivals(arrival_cfg, sd ^ 0x9e3779b97f4a7c15ULL),
          reqGen(*w.dg, req_cfg, sd), batcher(s.serve.batching),
          slo(s.serve.slo, hw.tech.freqGhz),
          total(static_cast<std::uint64_t>(s.serve.numRequests))
    {
    }
};

} // namespace

std::string
toJson(const MTenantReport &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"mode\": \"%s\", \"tenant_count\": %d, "
        "\"repartitions\": %d, \"preemptions\": %d, "
        "\"failover_repairs\": %d, \"interference_links\": %d, "
        "\"tenant_switches\": %d, "
        "\"aggregate_goodput_rps\": %.2f, \"worst_p99_ms\": %.4f, "
        "\"horizon_ticks\": %llu, \"tenants\": [",
        r.mode.c_str(), static_cast<int>(r.tenants.size()),
        r.repartitions, r.preemptions, r.failoverRepairs,
        r.interferenceLinks, r.tenantSwitches, r.aggregateGoodputRps,
        r.worstP99Ms,
        static_cast<unsigned long long>(r.horizonTicks));
    std::string out = buf;
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
        const TenantResult &t = r.tenants[i];
        // The element is the tenant's serve JSON bytes with an
        // identity prefix spliced in — the 1-tenant equivalence gate
        // compares exactly the serve::toJson substring.
        std::string obj = serve::toJson(t.serve);
        char pre[192];
        std::snprintf(pre, sizeof(pre),
                      "\"tenant\": \"%s\", \"slo_class\": \"%s\", "
                      "\"tiles\": %d, ",
                      t.id.c_str(), serve::sloClassName(t.cls),
                      t.tiles);
        obj.insert(1, pre);
        if (i > 0)
            out += ", ";
        out += obj;
    }
    out += "]}";
    return out;
}

MTenantRuntime::MTenantRuntime(std::vector<TenantWorkload> workloads,
                               arch::HwConfig hw,
                               core::SchedulerConfig sched_cfg,
                               core::ExecPolicy policy,
                               MTenantConfig cfg)
    : workloads_(std::move(workloads)), hw_(hw),
      schedCfg_(sched_cfg), policy_(policy), cfg_(std::move(cfg))
{
    serve::validateTenantSpecs(cfg_.tenants);
    ADYNA_ASSERT(workloads_.size() == cfg_.tenants.size(),
                 "one TenantWorkload per TenantSpec required (got ",
                 workloads_.size(), " workloads vs ",
                 cfg_.tenants.size(), " tenants)");
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
        ADYNA_ASSERT(workloads_[i].dg != nullptr, "tenant \"",
                     cfg_.tenants[i].id,
                     "\": TenantWorkload.dg must be set");
        ADYNA_ASSERT(
            workloads_[i].traceCfg.batchSize ==
                static_cast<std::int64_t>(
                    cfg_.tenants[i].serve.batching.maxBatch),
            "tenant \"", cfg_.tenants[i].id,
            "\": the workload graph must be compiled at the "
            "batcher's maxBatch (got trace batchSize ",
            workloads_[i].traceCfg.batchSize, " vs maxBatch ",
            cfg_.tenants[i].serve.batching.maxBatch, ")");
    }
}

void
MTenantRuntime::setSharedMapper(costmodel::Mapper *mapper)
{
    sharedMapper_ = mapper;
}

void
MTenantRuntime::setSharedStoreCache(kernels::KernelStoreCache *cache)
{
    sharedStoreCache_ = cache;
}

void
MTenantRuntime::setSchedulerPool(ThreadPool *pool)
{
    schedulerPool_ = pool;
}

MTenantReport
MTenantRuntime::runSingle()
{
    const serve::TenantSpec &spec = cfg_.tenants[0];
    serve::ServeConfig serveCfg = spec.serve;
    if (!cfg_.faultPlan.empty()) {
        serveCfg.faultPlan = cfg_.faultPlan;
        serveCfg.faultSeed = cfg_.faultSeed;
    }
    serve::ServeRuntime rt(*workloads_[0].dg, workloads_[0].traceCfg,
                           hw_, schedCfg_, policy_, serveCfg,
                           workloads_[0].name);
    if (sharedMapper_)
        rt.setSharedMapper(sharedMapper_);
    if (sharedStoreCache_)
        rt.setSharedStoreCache(sharedStoreCache_);
    if (schedulerPool_)
        rt.setSchedulerPool(schedulerPool_);

    MTenantReport report;
    report.mode = partitionKindName(cfg_.partition.kind);
    TenantResult tr;
    tr.id = spec.id;
    tr.cls = spec.cls;
    tr.tiles = hw_.tiles();
    tr.serve = rt.run();
    report.aggregateGoodputRps = tr.serve.goodputRps;
    report.worstP99Ms = tr.serve.p99Ms;
    report.horizonTicks = tr.serve.horizonTicks;
    report.tenants.push_back(std::move(tr));
    return report;
}

MTenantReport
MTenantRuntime::run()
{
    // One tenant needs no partitioning, no controller, and no
    // interference: delegate to the single-tenant runtime so the
    // serve report is byte-identical to the single-workload path.
    if (cfg_.tenants.size() == 1)
        return runSingle();

    const std::size_t n = cfg_.tenants.size();

    std::optional<costmodel::Mapper> localMapper;
    if (!sharedMapper_)
        localMapper.emplace(hw_.tech);
    costmodel::Mapper &mapper =
        sharedMapper_ ? *sharedMapper_ : *localMapper;
    kernels::KernelStoreCache &storeCache =
        sharedStoreCache_ ? *sharedStoreCache_
                          : kernels::KernelStoreCache::global();

    // ---- initial partition -----------------------------------------
    TilePartitioner partitioner(hw_, cfg_.partition);
    std::vector<double> shares(n);
    for (std::size_t i = 0; i < n; ++i)
        shares[i] = offeredLoad(cfg_.tenants[i]) *
                    serve::sloClassWeight(cfg_.tenants[i].cls);
    std::vector<TileRegion> regions = partitioner.partition(shares);

    arch::Chip chip(hw_);
    std::vector<InterferenceDegrade> applied =
        partitioner.interferenceDegrades(regions, shares);
    for (const InterferenceDegrade &d : applied)
        chip.noc().setLinkBandwidthFactor(d.tile, d.dir, d.factor);

    // ---- per-tenant bring-up (profiling, drift reference, first
    // schedule), each restricted to its own region -------------------
    std::vector<std::unique_ptr<Tenant>> tens;
    tens.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const serve::TenantSpec &spec = cfg_.tenants[i];
        const TenantWorkload &wl = workloads_[i];
        serve::ArrivalConfig arrivalCfg = spec.serve.arrival;
        arrivalCfg.freqGhz = hw_.tech.freqGhz;
        trace::TraceConfig reqCfg = wl.traceCfg;
        reqCfg.batchSize = 1;
        const std::uint64_t seed =
            spec.serve.seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i));
        tens.push_back(std::make_unique<Tenant>(
            spec, wl, seed, hw_, mapper, schedCfg_, policy_,
            arrivalCfg, reqCfg));
        Tenant &t = *tens.back();
        t.rect = regions[i];
        t.region = t.rect.tiles(hw_);
        t.weightBytes = wl.dg->graph().totalWeightBytes();
        t.scheduler.setStoreCache(&storeCache);
        if (schedulerPool_)
            t.scheduler.setThreadPool(schedulerPool_);
        // SharedGrid regions cover the full grid, which
        // setHealthyTiles treats as "no restriction" — exactly the
        // naive everyone-everywhere contention mode.
        t.scheduler.setHealthyTiles(t.region);
    }

    std::optional<fault::FaultInjector> injector;
    if (!cfg_.faultPlan.empty())
        injector.emplace(cfg_.faultPlan,
                         cfg_.faultSeed
                             ? cfg_.faultSeed
                             : cfg_.tenants[0].serve.seed ^
                                   0xda3e39cb94b95bdbULL);

    const auto checkSchedule = [&](Tenant &t,
                                   const core::Schedule &sch) {
        const auto issues =
            core::validateSchedule(sch, *t.wl->dg, hw_);
        ADYNA_ASSERT(issues.empty(), "tenant \"", t.spec->id,
                     "\": invalid schedule:\n",
                     core::issuesToString(issues));
    };

    /** Rebuild one tenant's schedule (the single-tenant runtime's
     * rebuildSchedule, with per-tenant cache-activity accounting). */
    struct Rebuild
    {
        core::Schedule schedule;
        Cycles cost = 0;
        bool delta = false;
        core::DeltaStats stats;
    };
    const auto rebuildSchedule =
        [&](Tenant &t, Tick now,
            const std::vector<OpId> *delta) -> Rebuild {
        const serve::ServeConfig &s = t.spec->serve;
        const bool bypassStores =
            injector && injector->storeFitFailActive(now);
        if (bypassStores) {
            t.scheduler.setStoreCache(nullptr);
            ++t.storeFitFailures;
        }
        const std::uint64_t mh0 = mapper.hits();
        const std::uint64_t mm0 = mapper.misses();
        const std::uint64_t sh0 = storeCache.hits();
        const std::uint64_t sm0 = storeCache.misses();
        Rebuild rb;
        if (delta && !bypassStores) {
            rb.schedule = t.scheduler.buildDelta(
                t.schedule, t.expectations, t.kernelValues,
                &t.engineProf, *delta, &rb.stats);
            rb.delta = true;
        } else {
            rb.schedule = t.scheduler.build(
                t.expectations, t.kernelValues, &t.engineProf);
        }
        if (bypassStores)
            t.scheduler.setStoreCache(&storeCache);
        checkSchedule(t, rb.schedule);
        const std::uint64_t compiled =
            schedCfg_.storeCache && !bypassStores
                ? storeCache.misses() - sm0
                : (rb.delta ? rb.stats.segmentsRebuilt
                            : rb.schedule.segments.size());
        rb.cost = s.reconfigOverheadCycles +
                  static_cast<Cycles>(compiled) *
                      s.storeCompileCycles;
        t.mapperHits += mapper.hits() - mh0;
        t.mapperMisses += mapper.misses() - mm0;
        t.storeHits += storeCache.hits() - sh0;
        t.storeMisses += storeCache.misses() - sm0;
        return rb;
    };

    for (auto &tp : tens) {
        Tenant &t = *tp;
        const serve::ServeConfig &s = t.spec->serve;

        t.kernelValues = t.scheduler.initialKernelValues();
        if (!schedCfg_.worstCase && s.profileBatches > 0) {
            trace::TraceGenerator probe(*t.wl->dg, t.wl->traceCfg,
                                        t.seed ^
                                            0x517cc1b727220a95ULL);
            for (int b = 0; b < s.profileBatches; ++b) {
                const trace::BatchRouting routing = probe.next();
                t.engineProf.noteBatch();
                for (const auto &[sw, oc] : routing.outcomes)
                    t.engineProf.recordBranchLoads(sw,
                                                   oc.branchCounts);
                for (OpId op : t.wl->dg->dynamicOps())
                    t.engineProf.recordValue(
                        op, routing.dynValue(*t.wl->dg, op));
            }
            core::refreshScheduleInputs(
                t.engineProf,
                s.resampleKernels && !policy_.exactKernels,
                t.expectations, t.kernelValues);
            t.engineProf.resetTables();
        }

        // Drift reference + noise floor (see serve/server.cc).
        {
            trace::TraceConfig reqCfg = t.wl->traceCfg;
            reqCfg.batchSize = 1;
            trace::TraceGenerator refProbe(
                *t.wl->dg, reqCfg, t.seed ^ 0x517cc1b727220a95ULL);
            const int half = s.drift.windowRequests;
            for (int i = 0; i < half; ++i)
                recordRequest(t.driftProf, *t.wl->dg,
                              refProbe.next());
            auto reference = t.driftProf.tablesSnapshot();
            t.driftProf.resetTables();
            for (int i = 0; i < half; ++i)
                recordRequest(t.driftProf, *t.wl->dg,
                              refProbe.next());
            t.monitor.setReference(reference);
            t.monitor.setNoiseFloor(
                t.monitor.distanceTo(t.driftProf));
            for (const auto &[op, hist] :
                 t.driftProf.tablesSnapshot())
                reference[op].merge(hist);
            t.monitor.setReference(std::move(reference));
            t.driftProf.resetTables();
        }

        {
            const std::uint64_t mh0 = mapper.hits();
            const std::uint64_t mm0 = mapper.misses();
            const std::uint64_t sh0 = storeCache.hits();
            const std::uint64_t sm0 = storeCache.misses();
            t.schedule = t.scheduler.build(
                t.expectations, t.kernelValues,
                schedCfg_.worstCase ? nullptr : &t.engineProf);
            t.mapperHits += mapper.hits() - mh0;
            t.mapperMisses += mapper.misses() - mm0;
            t.storeHits += storeCache.hits() - sh0;
            t.storeMisses += storeCache.misses() - sm0;
        }
        checkSchedule(t, t.schedule);
        t.installedExp = t.expectations;
        t.installedKv = t.kernelValues;

        t.nextArrival = t.arrivals.next();
        t.firstArrival = t.nextArrival;
        t.lastArrival = t.nextArrival;
    }

    /** Ops whose expectation moved past the tenant's delta tolerance
     * (the single-tenant runtime's changedOps). */
    const auto changedOps = [&](Tenant &t) {
        std::vector<OpId> changed;
        for (OpId op : t.wl->dg->dynamicOps()) {
            const auto ne = t.expectations.find(op);
            const auto oe = t.installedExp.find(op);
            const bool haveNew = ne != t.expectations.end();
            const bool haveOld = oe != t.installedExp.end();
            bool moved = haveNew != haveOld;
            if (!moved && haveNew) {
                const double ref =
                    std::max(std::abs(oe->second), 1.0);
                moved = std::abs(ne->second - oe->second) >
                        t.spec->serve.deltaExpectationTol * ref;
            }
            if (moved)
                changed.push_back(op);
        }
        return changed;
    };

    /** Admission fixpoint for one tenant; returns its dispatch
     * moment, marking the tenant done when nothing is left. */
    const auto admit = [&](Tenant &t) -> Tick {
        const serve::ServeConfig &s = t.spec->serve;
        for (;;) {
            const Tick form = t.batcher.nextFormTick();
            const Tick dispatchAt =
                form == serve::Batcher::kNever
                    ? serve::Batcher::kNever
                    : std::max(t.engineFree, form);
            if (t.issued < t.total && t.nextArrival <= dispatchAt) {
                if (s.admissionControl && t.haveService) {
                    const double backlog =
                        t.engineFree > t.nextArrival
                            ? static_cast<double>(t.engineFree -
                                                  t.nextArrival)
                            : 0.0;
                    const double queuedAhead =
                        static_cast<double>(t.batcher.queued()) /
                        s.batching.maxBatch;
                    if (backlog +
                            (1.0 + queuedAhead) * t.serviceEwma >
                        s.shedLatencyFactor * t.deadlineTicks) {
                        (void)t.reqGen.next();
                        t.lastArrival = t.nextArrival;
                        ++t.issued;
                        ++t.shed;
                        t.nextArrival = t.arrivals.next();
                        continue;
                    }
                }
                serve::Request r;
                r.id = t.issued;
                r.arrival = t.nextArrival;
                r.routing = t.reqGen.next();
                t.lastArrival = t.nextArrival;
                t.batcher.enqueue(std::move(r));
                ++t.issued;
                t.nextArrival = t.arrivals.next();
                continue;
            }
            break;
        }
        if (t.batcher.queued() == 0) {
            t.done = true; // every remaining arrival was shed
            return serve::Batcher::kNever;
        }
        return std::max(t.engineFree, t.batcher.nextFormTick());
    };

    /** Close one drift window for a tenant (the single-tenant
     * runtime's closeWindow, including the delta / watchdog
     * bookkeeping). */
    const auto closeWindow = [&](Tenant &t) {
        const serve::ServeConfig &s = t.spec->serve;
        ++t.driftWindows;
        const bool fire = t.monitor.observe(t.driftProf);
        if (fire && s.driftReschedule && !schedCfg_.worstCase) {
            auto reference = t.driftProf.tablesSnapshot();
            core::refreshScheduleInputs(
                t.engineProf,
                s.resampleKernels && !policy_.exactKernels,
                t.expectations, t.kernelValues);
            t.engineProf.resetTables();
            const std::vector<OpId> changed = changedOps(t);
            Rebuild rb = rebuildSchedule(
                t, t.engineFree,
                s.deltaReschedule ? &changed : nullptr);
            if (s.rescheduleBudgetCycles > 0 &&
                rb.cost > s.rescheduleBudgetCycles) {
                t.engineFree += s.rescheduleBudgetCycles;
                ++t.watchdogFallbacks;
            } else {
                t.schedule = std::move(rb.schedule);
                t.monitor.setReference(std::move(reference));
                if (rb.delta) {
                    ++t.deltaReschedules;
                    t.segmentsRebuilt += rb.stats.segmentsRebuilt;
                    t.segmentsSpliced += rb.stats.segmentsTotal -
                                         rb.stats.segmentsRebuilt;
                    for (OpId op : changed) {
                        const auto e = t.expectations.find(op);
                        if (e != t.expectations.end())
                            t.installedExp[op] = e->second;
                        else
                            t.installedExp.erase(op);
                        const auto k = t.kernelValues.find(op);
                        if (k != t.kernelValues.end())
                            t.installedKv[op] = k->second;
                        else
                            t.installedKv.erase(op);
                    }
                } else {
                    t.installedExp = t.expectations;
                    t.installedKv = t.kernelValues;
                }
                t.engineFree += s.reconfigOverheadCycles;
                ++t.reschedules;
            }
        }
        t.driftProf.resetTables();
    };

    // ---- the co-scheduled serving loop -----------------------------
    int repartitions = 0;
    int preemptions = 0;
    int failoverRepairs = 0;
    int tenantSwitches = 0;
    // Which tenant's weights last ran on each tile. Disjoint
    // partitions pin ownership, so the re-stream cost below is paid
    // only right after a repartition moves a boundary; overlapping
    // full-grid regions (the naive shared mode) flip ownership on
    // nearly every alternation.
    std::vector<int> tileOwner(static_cast<std::size_t>(hw_.tiles()),
                               -1);
    int hotStreak = 0;
    int cooldown = 0;
    const bool elastic =
        cfg_.repartition.elastic &&
        cfg_.partition.kind == PartitionKind::IsolationAware &&
        cfg_.repartition.checkIntervalCycles > 0 &&
        !schedCfg_.worstCase;
    Tick nextControl = cfg_.repartition.checkIntervalCycles;

    for (;;) {
        // Pick the tenant with the earliest dispatch moment; picked
        // moments are non-decreasing across iterations, so the
        // injector and the controller advance monotonically.
        Tick best = serve::Batcher::kNever;
        std::size_t bestIdx = n;
        for (std::size_t i = 0; i < n; ++i) {
            Tenant &t = *tens[i];
            if (t.done)
                continue;
            if (t.completed + t.shed >= t.total) {
                t.done = true;
                continue;
            }
            const Tick d = admit(t);
            if (t.done)
                continue;
            if (d < best) {
                best = d;
                bestIdx = i;
            }
        }
        if (bestIdx == n)
            break;
        const Tick now = best;

        // ---- elastic repartition / preemption controller -----------
        if (elastic && now >= nextControl) {
            bool force = false;
            const double alpha = cfg_.repartition.loadEwmaAlpha;
            for (auto &up : tens) {
                Tenant &u = *up;
                const double arrived = static_cast<double>(
                    u.issued - u.issuedAtCheck);
                u.issuedAtCheck = u.issued;
                if (u.haveRateObs) {
                    u.shortRateEwma = (1.0 - alpha) * u.shortRateEwma +
                                      alpha * arrived;
                    // The long EWMA moves 4x slower: it is the
                    // tenant's own baseline the short one is compared
                    // against.
                    u.longRateEwma =
                        (1.0 - alpha / 4.0) * u.longRateEwma +
                        (alpha / 4.0) * arrived;
                } else {
                    u.shortRateEwma = arrived;
                    u.longRateEwma = arrived;
                    u.haveRateObs = true;
                }
                if (u.boostChecksLeft > 0 &&
                    --u.boostChecksLeft == 0)
                    u.boost = 1.0;
                if (cfg_.preemption.enabled && !u.done &&
                    u.spec->cls ==
                        serve::SloClass::LatencyCritical &&
                    u.haveLatency && u.boost == 1.0 &&
                    u.latencyEwmaTicks >
                        cfg_.preemption.latencyFactor *
                            u.deadlineTicks) {
                    // The latency-critical tenant is drowning: boost
                    // its share and repartition now, hysteresis be
                    // damned — that is what priority means.
                    u.boost = cfg_.preemption.boost;
                    u.boostChecksLeft = cfg_.preemption.holdChecks;
                    ++preemptions;
                    force = true;
                }
            }

            // Desired share = static work prior (the share the
            // initial partition used) modulated by the tenant's own
            // arrival-rate ratio, clamped so one noisy interval
            // cannot trigger a land-grab. The prior carries the
            // cross-tenant work normalization; the ratio carries the
            // temporal dynamics (bursts, lulls, drain-out).
            std::vector<double> desired(n);
            double totalDesired = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                Tenant &u = *tens[i];
                const double ratio = std::clamp(
                    u.shortRateEwma /
                        std::max(u.longRateEwma, 1e-9),
                    0.25, 4.0);
                desired[i] = u.done ? 1e-6
                                    : shares[i] * ratio * u.boost;
                totalDesired += desired[i];
            }
            double deviation = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                deviation = std::max(
                    deviation,
                    std::abs(desired[i] / totalDesired -
                             static_cast<double>(
                                 tens[i]->region.size()) /
                                 static_cast<double>(hw_.tiles())));

            if (cooldown > 0)
                --cooldown;
            hotStreak =
                deviation > cfg_.repartition.deviationThreshold
                    ? hotStreak + 1
                    : 0;
            bool repartitioned = false;
            if (cooldown == 0 &&
                (force ||
                 hotStreak >= cfg_.repartition.hysteresisChecks)) {
                const std::vector<TileRegion> newRegions =
                    partitioner.partition(desired);
                for (const InterferenceDegrade &d : applied)
                    chip.noc().setLinkBandwidthFactor(d.tile, d.dir,
                                                      1.0);
                applied = partitioner.interferenceDegrades(
                    newRegions, desired);
                for (const InterferenceDegrade &d : applied)
                    chip.noc().setLinkBandwidthFactor(d.tile, d.dir,
                                                      d.factor);
                for (std::size_t i = 0; i < n; ++i) {
                    Tenant &u = *tens[i];
                    // Partition-level delta re-schedule: a tenant
                    // whose region is unchanged keeps its installed
                    // schedule and compiled stores untouched.
                    if (newRegions[i] == u.rect)
                        continue;
                    u.rect = newRegions[i];
                    u.region = u.rect.tiles(hw_);
                    std::vector<TileId> alive = intersectTiles(
                        u.region, chip.healthyTiles());
                    u.scheduler.setHealthyTiles(
                        alive.empty() ? u.region
                                      : std::move(alive));
                    if (u.done)
                        continue;
                    // The old schedule targets tiles this tenant no
                    // longer owns, so — like fail-over — the rebuild
                    // is mandatory and exempt from the watchdog; its
                    // modeled cost is still charged in full.
                    Rebuild rb = rebuildSchedule(u, now, nullptr);
                    u.schedule = std::move(rb.schedule);
                    u.installedExp = u.expectations;
                    u.installedKv = u.kernelValues;
                    u.engineFree =
                        std::max(u.engineFree, now) + rb.cost;
                    repartitioned = true;
                }
                if (repartitioned)
                    ++repartitions;
                hotStreak = 0;
                cooldown = cfg_.repartition.cooldownChecks;
            }
            while (nextControl <= now)
                nextControl += cfg_.repartition.checkIntervalCycles;
            if (repartitioned)
                continue; // dispatch moments moved: re-pick
        }

        // ---- tenant-aware fail-over --------------------------------
        if (injector && injector->advanceTo(now, chip) &&
            cfg_.failover && !schedCfg_.worstCase) {
            bool repaired = false;
            for (auto &up : tens) {
                Tenant &u = *up;
                if (u.done)
                    continue;
                bool affected = false;
                for (TileId tile : injector->changedTiles())
                    affected =
                        affected || u.rect.contains(hw_, tile);
                if (!affected)
                    continue; // the fault struck someone else's
                              // region
                const std::vector<TileId> alive = intersectTiles(
                    u.region, chip.healthyTiles());
                if (alive.empty())
                    continue; // whole region dead: degraded
                              // lockstep execution serves on
                u.scheduler.setHealthyTiles(alive);
                Rebuild rb = rebuildSchedule(u, now, nullptr);
                u.schedule = std::move(rb.schedule);
                u.installedExp = u.expectations;
                u.installedKv = u.kernelValues;
                u.engineFree = std::max(u.engineFree, now) + rb.cost;
                ++u.failovers;
                ++failoverRepairs;
                repaired = true;
            }
            if (repaired)
                continue; // re-admit against the new engine-free
                          // times
        }

        // ---- dispatch the chosen tenant ----------------------------
        Tenant &t = *tens[bestIdx];
        std::vector<serve::FormedBatch> formed;
        while (t.batcher.queued() > 0 &&
               t.batcher.nextFormTick() <= now)
            formed.push_back(t.batcher.form(now));

        std::vector<trace::BatchRouting> routings;
        routings.reserve(formed.size());
        for (const serve::FormedBatch &fb : formed)
            routings.push_back(fb.routing);

        // Context-switch cost: tiles another tenant ran on since
        // this tenant's last dispatch hold foreign weights, so the
        // displaced fraction of the working set re-streams over
        // HBM. The stream is issued as a real HBM reservation at
        // `now` — the period's own weight loads contend with it and
        // get pushed back — rather than as a barrier offset, so the
        // barrier passed to runPeriod stays the monotone event time
        // that Hbm::trim's safety contract requires.
        std::size_t foreignTiles = 0;
        for (TileId tile : t.region)
            if (tileOwner[static_cast<std::size_t>(tile)] != -1 &&
                tileOwner[static_cast<std::size_t>(tile)] !=
                    static_cast<int>(bestIdx))
                ++foreignTiles;
        if (foreignTiles > 0) {
            const Bytes streamBytes = static_cast<Bytes>(
                static_cast<double>(t.weightBytes) *
                static_cast<double>(foreignTiles) /
                static_cast<double>(t.region.size()));
            if (streamBytes > 0) {
                chip.hbm().access(now, t.region.front(),
                                  streamBytes);
                chip.chargeHbmEnergy(streamBytes);
            }
            ++tenantSwitches;
        }
        for (TileId tile : t.region)
            tileOwner[static_cast<std::size_t>(tile)] =
                static_cast<int>(bestIdx);

        const core::PeriodResult res = t.engine.runPeriod(
            chip, t.schedule, routings, &t.engineProf, now);
        t.engineFree = res.endTime;
        t.batches += formed.size();
        if (!res.batchEnds.empty()) {
            const double service =
                static_cast<double>(res.batchEnds.back() - now);
            t.serviceEwma = t.haveService
                                ? 0.8 * t.serviceEwma + 0.2 * service
                                : service;
            t.haveService = true;
        }

        for (std::size_t b = 0; b < formed.size(); ++b) {
            for (const serve::Request &r : formed[b].requests) {
                t.slo.record(r.arrival, now, res.batchEnds[b]);
                ++t.completed;
                const double lat = static_cast<double>(
                    res.batchEnds[b] - r.arrival);
                t.latencyEwmaTicks =
                    t.haveLatency
                        ? 0.9 * t.latencyEwmaTicks + 0.1 * lat
                        : lat;
                t.haveLatency = true;
                recordRequest(t.driftProf, *t.wl->dg, r.routing);
                if (t.driftProf.windowBatches() >=
                    static_cast<std::uint64_t>(
                        t.spec->serve.drift.windowRequests))
                    closeWindow(t);
            }
        }
    }

    // ---- report -----------------------------------------------------
    MTenantReport report;
    report.mode = partitionKindName(cfg_.partition.kind);
    report.repartitions = repartitions;
    report.preemptions = preemptions;
    report.failoverRepairs = failoverRepairs;
    report.interferenceLinks = static_cast<int>(applied.size());
    report.tenantSwitches = tenantSwitches;
    const double tickSec = 1.0 / (hw_.tech.freqGhz * 1e9);
    for (std::size_t i = 0; i < n; ++i) {
        Tenant &t = *tens[i];
        serve::ServeReport r;
        r.workload = t.wl->name;
        r.mode =
            t.spec->serve.driftReschedule ? "adaptive" : "static";
        r.requests = t.completed;
        r.batches = t.batches;
        r.meanBatchSize =
            t.batches == 0 ? 0.0
                           : static_cast<double>(t.completed) /
                                 static_cast<double>(t.batches);
        if (t.issued > 1 && t.lastArrival > t.firstArrival)
            r.offeredRps = static_cast<double>(t.issued - 1) /
                           (static_cast<double>(t.lastArrival -
                                                t.firstArrival) *
                            tickSec);
        r.horizonTicks = t.slo.lastEnd();
        if (r.horizonTicks > 0)
            r.achievedRps =
                static_cast<double>(t.completed) /
                (static_cast<double>(r.horizonTicks) * tickSec);
        r.p50Ms = t.slo.latencyPercentileMs(0.50);
        r.p95Ms = t.slo.latencyPercentileMs(0.95);
        r.p99Ms = t.slo.latencyPercentileMs(0.99);
        r.meanMs = t.slo.meanLatencyMs();
        r.maxMs = t.slo.maxLatencyMs();
        r.meanQueueMs = t.slo.meanQueueMs();
        r.sloAttainment = t.slo.sloAttainment();
        r.goodputRps = t.slo.goodputRps(r.horizonTicks);
        r.reschedules = t.reschedules;
        r.deltaReschedules = t.deltaReschedules;
        r.segmentsRebuilt = t.segmentsRebuilt;
        r.segmentsSpliced = t.segmentsSpliced;
        r.driftWindows = t.driftWindows;
        r.lastDriftDistance = t.monitor.lastDistance();
        r.driftThreshold = t.monitor.effectiveThreshold();
        r.mapperHits = t.mapperHits;
        r.mapperMisses = t.mapperMisses;
        if (schedCfg_.storeCache) {
            r.storeHits = t.storeHits;
            r.storeMisses = t.storeMisses;
        }
        r.execHits = t.engine.execHits();
        r.execMisses = t.engine.execMisses();
        r.shedRequests = t.shed;
        r.failovers = t.failovers;
        r.watchdogFallbacks = t.watchdogFallbacks;
        r.storeFitFailures = t.storeFitFailures;
        r.faultActive = injector.has_value() ||
                        t.spec->serve.admissionControl ||
                        t.spec->serve.rescheduleBudgetCycles > 0;
        if (injector) {
            // Fault state is chip-level; every tenant reports the
            // same end-of-run snapshot.
            const fault::FaultStats fs = injector->stats(chip);
            r.failedTiles = fs.failedTiles;
            r.downLinks = fs.downLinks;
            r.degradedLinks = fs.degradedLinks;
            r.probeDrops = fs.probeDrops;
            r.probeRetries = fs.probeRetries;
            r.probeGiveUps = fs.probeGiveUps;
            r.nocDetours = fs.detourRoutes;
            r.unroutablePaths = fs.unroutablePaths;
        }

        TenantResult tr;
        tr.id = t.spec->id;
        tr.cls = t.spec->cls;
        tr.tiles = static_cast<int>(t.region.size());
        tr.serve = std::move(r);
        report.aggregateGoodputRps += tr.serve.goodputRps;
        report.worstP99Ms =
            std::max(report.worstP99Ms, tr.serve.p99Ms);
        report.horizonTicks =
            std::max(report.horizonTicks, tr.serve.horizonTicks);
        report.tenants.push_back(std::move(tr));
    }
    return report;
}

} // namespace adyna::mtenant
