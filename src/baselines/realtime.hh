/**
 * @file
 * The real-time (online) scheduling comparison of Section IX-D /
 * Figure 12: online scheduling would execute every dynamic operator
 * with its optimal kernel (the full-kernel performance) but pays a
 * scheduling latency before each dynamic operator execution. The
 * speedup over Adyna is T_Adyna / (T_opt + N * t_sched); the
 * crossover latency is where it reaches 1.0.
 */

#ifndef ADYNA_BASELINES_REALTIME_HH
#define ADYNA_BASELINES_REALTIME_HH

#include <vector>

#include "core/system.hh"
#include "graph/dyngraph.hh"

namespace adyna::baselines {

/** One point of the Figure 12 sweep. */
struct RealtimePoint
{
    double schedLatencyMs = 0.0;  ///< per-operator scheduling cost
    double realtimeMs = 0.0;      ///< end-to-end online-scheduling time
    double speedupVsAdyna = 0.0;  ///< realtime vs Adyna (>1 = faster)
};

/** Figure 12 sweep results. */
struct RealtimeSweep
{
    std::vector<RealtimePoint> points;

    /** Scheduling latency (ms) at which online scheduling matches
     * Adyna. */
    double crossoverMs = 0.0;

    /** Dynamic-operator scheduling events per run. */
    std::int64_t schedEvents = 0;
};

/** Dynamic operator executions per batch (scheduling decisions an
 * online scheduler must make). */
std::int64_t dynamicOpsPerBatch(const graph::DynGraph &dg);

/**
 * Build the sweep from the measured Adyna and full-kernel reports.
 * @param latencies_ms per-operator scheduling latencies to sweep.
 */
RealtimeSweep
sweepRealtimeScheduling(const graph::DynGraph &dg,
                        const core::RunReport &adyna,
                        const core::RunReport &full_kernel,
                        int num_batches,
                        const std::vector<double> &latencies_ms);

} // namespace adyna::baselines

#endif // ADYNA_BASELINES_REALTIME_HH
