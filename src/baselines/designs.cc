#include "baselines/designs.hh"

#include "common/logging.hh"

namespace adyna::baselines {

std::vector<Design>
allDesigns()
{
    return {Design::MTile, Design::MTenant, Design::AdynaStatic,
            Design::Adyna, Design::FullKernel};
}

const char *
designName(Design design)
{
    switch (design) {
      case Design::MTile: return "M-tile";
      case Design::MTenant: return "M-tenant";
      case Design::AdynaStatic: return "Adyna (static)";
      case Design::Adyna: return "Adyna";
      case Design::FullKernel: return "full-kernel";
    }
    ADYNA_PANIC("bad design");
}

core::SchedulerConfig
schedulerConfig(Design design)
{
    core::SchedulerConfig cfg;
    switch (design) {
      case Design::MTile:
        // Static worst-case schedule: no frequency weighting, no
        // runtime optimizations.
        cfg.worstCase = true;
        cfg.tileSharing = false;
        cfg.branchGrouping = false;
        break;
      case Design::MTenant:
        // Planaria-style tenants: allocation is recomputed per batch
        // by the engine; no sharing/grouping concepts.
        cfg.tileSharing = false;
        cfg.branchGrouping = false;
        break;
      case Design::AdynaStatic:
        // Frequency-weighted offline schedule, but no tile sharing
        // (a runtime adjustment technique).
        cfg.tileSharing = false;
        cfg.branchGrouping = false;
        break;
      case Design::Adyna:
      case Design::FullKernel:
        cfg.tileSharing = true;
        cfg.branchGrouping = true;
        break;
    }
    return cfg;
}

core::ExecPolicy
execPolicy(Design design)
{
    core::ExecPolicy p;
    switch (design) {
      case Design::MTile:
        p.worstCaseExec = true;
        p.kernelFitting = false;
        p.pipelining = true;
        p.tileSharing = false;
        break;
      case Design::MTenant:
        p.kernelFitting = true;
        p.pipelining = false; // tensors round-trip through DRAM
        p.hostRouting = true; // switch/merge on the host CPU
        p.perBatchRepartition = true;
        p.exactKernels = true; // optimistic pre-compiled kernels
        p.tileSharing = false;
        break;
      case Design::AdynaStatic:
        p.kernelFitting = true;
        p.pipelining = true;
        p.tileSharing = false;
        break;
      case Design::Adyna:
        p.kernelFitting = true;
        p.pipelining = true;
        p.tileSharing = true;
        break;
      case Design::FullKernel:
        p.kernelFitting = true;
        p.pipelining = true;
        p.tileSharing = true;
        p.exactKernels = true; // every kernel available on-chip
        break;
    }
    return p;
}

core::RunOptions
runOptions(Design design, int num_batches, std::uint64_t seed)
{
    core::RunOptions opts;
    opts.numBatches = num_batches;
    opts.seed = seed;
    switch (design) {
      case Design::MTile:
        opts.reconfigPeriod = 0;
        opts.profileBatches = 0;
        opts.resampleKernels = false;
        break;
      case Design::MTenant:
        // Fast per-batch adjustment happens inside the engine; the
        // expectations-based segment layout is refreshed like
        // Adyna's for fairness.
        opts.reconfigPeriod = 40;
        opts.resampleKernels = false;
        break;
      case Design::AdynaStatic:
        opts.reconfigPeriod = 0; // no runtime adjustment
        opts.resampleKernels = false;
        break;
      case Design::Adyna:
        opts.reconfigPeriod = 40;
        opts.resampleKernels = true;
        break;
      case Design::FullKernel:
        opts.reconfigPeriod = 40;
        opts.resampleKernels = false; // kernels are always exact
        break;
    }
    return opts;
}

core::System
makeSystem(const graph::DynGraph &dg,
           const trace::TraceConfig &trace_cfg,
           const arch::HwConfig &hw, Design design, int num_batches,
           std::uint64_t seed)
{
    return core::System(dg, trace_cfg, hw, schedulerConfig(design),
                        execPolicy(design),
                        runOptions(design, num_batches, seed),
                        designName(design));
}

} // namespace adyna::baselines
