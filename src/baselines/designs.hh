/**
 * @file
 * Design-point presets for the paper's evaluation (Section VIII):
 * the M-tile and M-tenant baselines, Adyna (static), full Adyna, and
 * the idealized full-kernel setting, each as a (SchedulerConfig,
 * ExecPolicy, RunOptions) triple driving the common System.
 */

#ifndef ADYNA_BASELINES_DESIGNS_HH
#define ADYNA_BASELINES_DESIGNS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "models/models.hh"

namespace adyna::baselines {

/** The accelerator design points of Figure 9. */
enum class Design {
    MTile,      ///< worst-case static multi-tile baseline
    MTenant,    ///< Planaria-like multi-tenant baseline
    AdynaStatic,///< Adyna without runtime adjustment
    Adyna,      ///< full Adyna
    FullKernel, ///< idealized all-kernels-on-chip upper bound
};

/** All design points, in Figure 9's order. */
std::vector<Design> allDesigns();

/** Display name ("M-tile", "Adyna (static)", ...). */
const char *designName(Design design);

/** Scheduler configuration of a design point. */
core::SchedulerConfig schedulerConfig(Design design);

/** Engine policy of a design point. */
core::ExecPolicy execPolicy(Design design);

/** Run options of a design point (reconfig cadence etc.). */
core::RunOptions runOptions(Design design, int num_batches,
                            std::uint64_t seed);

/**
 * Convenience: build a System for one workload bundle and design.
 * The returned System references @p dg, which must outlive it.
 */
core::System makeSystem(const graph::DynGraph &dg,
                        const trace::TraceConfig &trace_cfg,
                        const arch::HwConfig &hw, Design design,
                        int num_batches, std::uint64_t seed);

} // namespace adyna::baselines

#endif // ADYNA_BASELINES_DESIGNS_HH
