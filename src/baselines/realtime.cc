#include "baselines/realtime.hh"

#include "common/logging.hh"

namespace adyna::baselines {

std::int64_t
dynamicOpsPerBatch(const graph::DynGraph &dg)
{
    std::int64_t count = 0;
    for (OpId op : dg.dynamicOps()) {
        const auto kind = dg.graph().node(op).kind;
        if (graph::isCompute(kind) || graph::isFusable(kind))
            ++count;
    }
    return count;
}

RealtimeSweep
sweepRealtimeScheduling(const graph::DynGraph &dg,
                        const core::RunReport &adyna,
                        const core::RunReport &full_kernel,
                        int num_batches,
                        const std::vector<double> &latencies_ms)
{
    RealtimeSweep sweep;
    sweep.schedEvents =
        dynamicOpsPerBatch(dg) * static_cast<std::int64_t>(num_batches);

    const double tAdyna = adyna.timeMs;
    const double tOpt = full_kernel.timeMs;
    for (double lat : latencies_ms) {
        RealtimePoint pt;
        pt.schedLatencyMs = lat;
        pt.realtimeMs =
            tOpt + lat * static_cast<double>(sweep.schedEvents);
        pt.speedupVsAdyna =
            pt.realtimeMs > 0.0 ? tAdyna / pt.realtimeMs : 0.0;
        sweep.points.push_back(pt);
    }
    // Crossover: T_opt + N * t = T_Adyna.
    sweep.crossoverMs =
        sweep.schedEvents > 0
            ? (tAdyna - tOpt) /
                  static_cast<double>(sweep.schedEvents)
            : 0.0;
    return sweep;
}

} // namespace adyna::baselines
