#include "baselines/gpu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::baselines {

using graph::OpKind;
using graph::OpNode;

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Seconds to execute one operator at batch extent @p rows. */
double
opSeconds(const OpNode &node, std::int64_t rows, bool dynamic,
          const GpuParams &p)
{
    if (rows <= 0)
        return 0.0;
    const double launch = p.kernelLaunchUs * 1e-6;
    const std::int64_t perRowMacs =
        node.macs() / std::max<std::int64_t>(node.dims.n(), 1);
    if (perRowMacs == 0) {
        // Element-wise / marshalling kernel: memory bound.
        const double bytes = static_cast<double>(
            node.outputBytesAt(rows) + node.inputBytesAt(rows));
        return launch +
               bytes / (p.memBwGBs * 1e9 * p.memEfficiency);
    }

    // GEMM occupancy: thread blocks over the (rows x K) output.
    const std::int64_t blocks =
        ceilDiv(rows * node.dims.p() * node.dims.q(), p.gemmTileM) *
        ceilDiv(node.dims.k(), p.gemmTileN);
    const double occupancy = std::min(
        1.0, static_cast<double>(blocks) / p.numSms);
    const double flops =
        2.0 * static_cast<double>(perRowMacs) *
        static_cast<double>(rows);
    const double eff =
        dynamic ? p.dynamicEfficiency : p.computeEfficiency;
    const double tCompute =
        flops / (p.peakTflops * 1e12 * eff * occupancy);

    const double bytes = static_cast<double>(
        node.inputBytesAt(rows) + node.weightBytes() +
        node.outputBytesAt(rows));
    const double tMem = bytes / (p.memBwGBs * 1e9 * p.memEfficiency);
    return launch + std::max(tCompute, tMem);
}

} // namespace

core::RunReport
runGpu(const graph::DynGraph &dg, const trace::TraceConfig &trace_cfg,
       const GpuParams &params, int num_batches, std::uint64_t seed)
{
    trace::TraceGenerator trace(dg, trace_cfg, seed);

    double totalSeconds = 0.0;
    core::RunReport report;
    report.workload = dg.name();
    report.design = "GPU";

    for (int b = 0; b < num_batches; ++b) {
        const trace::BatchRouting routing = trace.next();
        double batchSeconds = 0.0;

        for (OpId id : dg.topo()) {
            const OpNode &node = dg.graph().node(id);
            switch (node.kind) {
              case OpKind::Input:
              case OpKind::Output:
              case OpKind::Sink:
                break;
              case OpKind::Switch: {
                // Host reads the routing mask, synchronizes, and
                // launches the ScatterRouter; the scatter moves the
                // routed rows once.
                batchSeconds += params.hostSyncUs * 1e-6;
                const std::int64_t rows = routing.dynValue(dg, id);
                const double bytes = static_cast<double>(
                    node.outputBytesAt(std::max<std::int64_t>(rows,
                                                              0)));
                batchSeconds +=
                    params.kernelLaunchUs * 1e-6 +
                    bytes / (params.memBwGBs * 1e9 *
                             params.routeEfficiency);
                break;
              }
              case OpKind::Merge: {
                // GatherRouter: one more launch + strided gather.
                const std::int64_t rows = routing.dynValue(dg, id);
                const double bytes = static_cast<double>(
                    node.outputBytesAt(std::max<std::int64_t>(rows,
                                                              0)));
                batchSeconds +=
                    params.kernelLaunchUs * 1e-6 +
                    bytes / (params.memBwGBs * 1e9 *
                             params.routeEfficiency);
                break;
              }
              default: {
                // Diverged branches execute sequentially on the one
                // device: every operator adds its own time, and
                // dynamic (sub-batched, ragged) operators run at the
                // degraded DynNN efficiency.
                const std::int64_t rows = routing.dynValue(dg, id);
                batchSeconds += opSeconds(node, rows,
                                          dg.isDynamic(id), params);
                break;
              }
            }
        }
        totalSeconds += batchSeconds;
        report.batchEnds.push_back(
            static_cast<Tick>(totalSeconds * 1e9));
    }

    report.timeMs = totalSeconds * 1e3;
    report.cycles = static_cast<Tick>(totalSeconds * 1e9);
    report.batchesPerSecond =
        totalSeconds > 0.0 ? num_batches / totalSeconds : 0.0;
    return report;
}

} // namespace adyna::baselines
