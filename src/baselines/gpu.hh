/**
 * @file
 * Analytic GPU baseline (an NVIDIA A100-class device running batched
 * DynNN execution with Brainstorm-style scatter/gather routing, as
 * in Section VIII). The model is a roofline per operator plus the
 * three DynNN-specific penalties the paper identifies: sequential
 * (not spatial) execution of diverged branches, per-decision
 * CPU-GPU synchronization, and kernel-launch overheads -- each an
 * explicit parameter. See DESIGN.md, substitutions.
 */

#ifndef ADYNA_BASELINES_GPU_HH
#define ADYNA_BASELINES_GPU_HH

#include <cstdint>

#include "core/system.hh"
#include "graph/dyngraph.hh"
#include "trace/trace.hh"

namespace adyna::baselines {

/** GPU device and software-stack parameters (A100 80 GB defaults). */
struct GpuParams
{
    double peakTflops = 312.0;     ///< FP16 tensor-core peak
    double memBwGBs = 1935.0;      ///< HBM2e bandwidth
    double computeEfficiency = 0.45; ///< autotuned static GEMMs
    double memEfficiency = 0.75;

    /**
     * Efficiency of *dynamic* operators: ragged, per-branch
     * sub-batch kernels cannot use autotuned fixed-shape GEMMs, pad
     * to tile boundaries, and thrash the L2 between scatter/gather
     * epochs. Measured DynNN GPU implementations run far below
     * static-model efficiency (Section II-C; Brainstorm/Cocktailer
     * report batch-1-like regimes) -- this factor is the model's
     * stand-in for that gap.
     */
    double dynamicEfficiency = 0.12;

    int numSms = 108;
    int gemmTileM = 128; ///< thread-block tile rows
    int gemmTileN = 128; ///< thread-block tile cols

    /** Kernel launch latency per operator, microseconds. */
    double kernelLaunchUs = 3.0;

    /** CPU-GPU synchronization per dynamic routing decision: device
     * sync + D2H mask copy + host-side routing + relaunch,
     * microseconds. */
    double hostSyncUs = 50.0;

    /** Scatter/gather data-movement efficiency (strided copies). */
    double routeEfficiency = 0.3;
};

/**
 * Simulate @p num_batches batches of the workload on the GPU model
 * and report in the same RunReport format as the accelerator
 * designs (energy/utilization fields are left zero: the paper's
 * Figures 10/11 cover accelerator designs only).
 */
core::RunReport runGpu(const graph::DynGraph &dg,
                       const trace::TraceConfig &trace_cfg,
                       const GpuParams &params, int num_batches,
                       std::uint64_t seed);

} // namespace adyna::baselines

#endif // ADYNA_BASELINES_GPU_HH
