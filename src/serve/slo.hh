/**
 * @file
 * Per-request latency accounting for the serving runtime: queueing
 * plus execution latency of every completed request, summarized as
 * p50/p95/p99 percentiles (common/stats percentile) and
 * goodput-under-deadline — the fraction and rate of requests that
 * met their latency SLO.
 */

#ifndef ADYNA_SERVE_SLO_HH
#define ADYNA_SERVE_SLO_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace adyna::serve {

/** Latency service-level objective. */
struct SloConfig
{
    /** End-to-end (arrival to completion) deadline, milliseconds. */
    double deadlineMs = 5.0;
};

/** Collects per-request latencies and SLO attainment. */
class SloTracker
{
  public:
    SloTracker(SloConfig cfg, double freq_ghz);

    /** Record one completed request: @p arrival -> queued until
     * @p dispatch -> finished at @p end (all ticks). */
    void record(Tick arrival, Tick dispatch, Tick end);

    std::uint64_t completed() const { return latencyMs_.size(); }

    /** Requests that met the deadline. */
    std::uint64_t met() const { return met_; }

    /** Fraction of completed requests within the deadline; 1 when
     * nothing completed yet. */
    double sloAttainment() const;

    /** Requests-per-second of deadline-meeting completions over
     * @p horizon_ticks (the goodput of the run). */
    double goodputRps(Tick horizon_ticks) const;

    /** End-to-end latency percentile in milliseconds (q in [0,1]). */
    double latencyPercentileMs(double q) const;

    double meanLatencyMs() const { return latency_.mean(); }
    double maxLatencyMs() const { return latency_.max(); }

    /** Mean time spent queued before dispatch, milliseconds. */
    double meanQueueMs() const { return queue_.mean(); }

    /** Completion tick of the latest recorded request. */
    Tick lastEnd() const { return lastEnd_; }

    const SloConfig &config() const { return cfg_; }

  private:
    SloConfig cfg_;
    double freqGhz_;
    std::vector<double> latencyMs_;
    RunningStats latency_;
    RunningStats queue_;
    std::uint64_t met_ = 0;
    Tick lastEnd_ = 0;
};

} // namespace adyna::serve

#endif // ADYNA_SERVE_SLO_HH
