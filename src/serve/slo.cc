#include "serve/slo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::serve {

SloTracker::SloTracker(SloConfig cfg, double freq_ghz)
    : cfg_(cfg), freqGhz_(freq_ghz)
{
    ADYNA_ASSERT(freqGhz_ > 0.0, "bad clock frequency");
    ADYNA_ASSERT(cfg_.deadlineMs > 0.0, "deadline must be positive");
}

void
SloTracker::record(Tick arrival, Tick dispatch, Tick end)
{
    ADYNA_ASSERT(dispatch >= arrival && end >= dispatch,
                 "request timestamps out of order");
    const double toMs = 1e3 / (freqGhz_ * 1e9);
    const double latMs = static_cast<double>(end - arrival) * toMs;
    latencyMs_.push_back(latMs);
    latency_.add(latMs);
    queue_.add(static_cast<double>(dispatch - arrival) * toMs);
    if (latMs <= cfg_.deadlineMs)
        ++met_;
    lastEnd_ = std::max(lastEnd_, end);
}

double
SloTracker::sloAttainment() const
{
    return latencyMs_.empty()
               ? 1.0
               : static_cast<double>(met_) /
                     static_cast<double>(latencyMs_.size());
}

double
SloTracker::goodputRps(Tick horizon_ticks) const
{
    if (horizon_ticks == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(horizon_ticks) / (freqGhz_ * 1e9);
    return static_cast<double>(met_) / seconds;
}

double
SloTracker::latencyPercentileMs(double q) const
{
    return percentile(latencyMs_, q);
}

} // namespace adyna::serve
