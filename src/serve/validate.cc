#include "serve/validate.hh"

#include <set>

#include "common/logging.hh"
#include "serve/tenant.hh"

namespace adyna::serve {

const char *
sloClassName(SloClass cls)
{
    switch (cls) {
    case SloClass::LatencyCritical:
        return "latency-critical";
    case SloClass::Standard:
        return "standard";
    case SloClass::BestEffort:
        return "best-effort";
    }
    return "?";
}

double
sloClassWeight(SloClass cls)
{
    switch (cls) {
    case SloClass::LatencyCritical:
        return 4.0;
    case SloClass::Standard:
        return 2.0;
    case SloClass::BestEffort:
        return 1.0;
    }
    return 1.0;
}

void
validateArrivalConfig(const ArrivalConfig &cfg)
{
    if (cfg.ratePerSec <= 0.0)
        ADYNA_FATAL("ArrivalConfig.ratePerSec must be > 0 "
                    "requests/sec (got ",
                    cfg.ratePerSec, ")");
    if (cfg.freqGhz <= 0.0)
        ADYNA_FATAL("ArrivalConfig.freqGhz must be > 0 (got ",
                    cfg.freqGhz, ")");
    if (cfg.kind == ArrivalKind::Bursty) {
        if (cfg.burstRateMultiplier < 1.0)
            ADYNA_FATAL("ArrivalConfig.burstRateMultiplier must be "
                        ">= 1 (got ",
                        cfg.burstRateMultiplier, ")");
        if (cfg.burstFraction <= 0.0 || cfg.burstFraction >= 1.0)
            ADYNA_FATAL("ArrivalConfig.burstFraction must be in "
                        "(0, 1) (got ",
                        cfg.burstFraction, ")");
        if (cfg.burstDwellSec <= 0.0)
            ADYNA_FATAL("ArrivalConfig.burstDwellSec must be > 0 "
                        "seconds (got ",
                        cfg.burstDwellSec, ")");
    }
    if (cfg.kind == ArrivalKind::Replay && cfg.traceFile.empty())
        ADYNA_FATAL("ArrivalConfig.traceFile must name an "
                    "arrival-timestamp file when kind is Replay");
}

void
validateBatchPolicy(const BatchPolicy &policy)
{
    if (policy.maxBatch < 1)
        ADYNA_FATAL("BatchPolicy.maxBatch must be >= 1 (got ",
                    policy.maxBatch, ")");
}

void
validateSloConfig(const SloConfig &cfg)
{
    if (cfg.deadlineMs <= 0.0)
        ADYNA_FATAL("SloConfig.deadlineMs must be > 0 milliseconds "
                    "(got ",
                    cfg.deadlineMs, ")");
}

void
validateDriftConfig(const DriftConfig &cfg)
{
    if (cfg.windowRequests <= 0)
        ADYNA_FATAL("DriftConfig.windowRequests must be > 0 (got ",
                    cfg.windowRequests, ")");
    if (cfg.threshold < 0.0)
        ADYNA_FATAL("DriftConfig.threshold must be >= 0 (got ",
                    cfg.threshold, ")");
    if (cfg.noiseMultiplier < 0.0)
        ADYNA_FATAL("DriftConfig.noiseMultiplier must be >= 0 (got ",
                    cfg.noiseMultiplier, ")");
    if (cfg.hysteresisWindows < 1)
        ADYNA_FATAL("DriftConfig.hysteresisWindows must be >= 1 "
                    "(got ",
                    cfg.hysteresisWindows, ")");
    if (cfg.cooldownWindows < 0)
        ADYNA_FATAL("DriftConfig.cooldownWindows must be >= 0 (got ",
                    cfg.cooldownWindows, ")");
    if (cfg.l1Buckets < 1)
        ADYNA_FATAL("DriftConfig.l1Buckets must be >= 1 (got ",
                    cfg.l1Buckets, ")");
}

void
validateServeConfig(const ServeConfig &cfg)
{
    validateArrivalConfig(cfg.arrival);
    validateBatchPolicy(cfg.batching);
    validateSloConfig(cfg.slo);
    validateDriftConfig(cfg.drift);
    if (cfg.numRequests <= 0)
        ADYNA_FATAL("ServeConfig.numRequests must be > 0 (got ",
                    cfg.numRequests, ")");
    if (cfg.profileBatches < 0)
        ADYNA_FATAL("ServeConfig.profileBatches must be >= 0 (got ",
                    cfg.profileBatches, ")");
    if (cfg.shedLatencyFactor <= 0.0)
        ADYNA_FATAL("ServeConfig.shedLatencyFactor must be > 0 "
                    "(got ",
                    cfg.shedLatencyFactor, ")");
    if (cfg.deltaExpectationTol < 0.0)
        ADYNA_FATAL("ServeConfig.deltaExpectationTol must be >= 0 "
                    "(got ",
                    cfg.deltaExpectationTol, ")");
    if (cfg.searchOnDrift) {
        if (cfg.searchProbeBatches < 1)
            ADYNA_FATAL("ServeConfig.searchProbeBatches must be "
                        ">= 1 (got ",
                        cfg.searchProbeBatches, ")");
        if (cfg.search.chains < 1)
            ADYNA_FATAL("SearchConfig.chains must be >= 1 (got ",
                        cfg.search.chains, ")");
        if (cfg.search.mutationBudget < 0)
            ADYNA_FATAL("SearchConfig.mutationBudget must be >= 0 "
                        "(got ",
                        cfg.search.mutationBudget, ")");
        if (cfg.search.materializeTop < 1)
            ADYNA_FATAL("SearchConfig.materializeTop must be >= 1 "
                        "(got ",
                        cfg.search.materializeTop, ")");
        if (cfg.search.refineFraction < 0.0 ||
            cfg.search.refineFraction > 1.0)
            ADYNA_FATAL("SearchConfig.refineFraction must be in "
                        "[0, 1] (got ",
                        cfg.search.refineFraction, ")");
        if (cfg.search.initTemp <= 0.0 ||
            cfg.search.tempDecayTo <= 0.0 ||
            cfg.search.tempDecayTo > cfg.search.initTemp)
            ADYNA_FATAL("SearchConfig temperatures must satisfy "
                        "0 < tempDecayTo <= initTemp (got initTemp ",
                        cfg.search.initTemp, ", tempDecayTo ",
                        cfg.search.tempDecayTo, ")");
    }
}

void
validateTenantSpecs(const std::vector<TenantSpec> &tenants)
{
    if (tenants.empty())
        ADYNA_FATAL("a multi-tenant config needs at least one "
                    "TenantSpec (tenants is empty)");
    std::set<std::string> ids;
    for (const TenantSpec &t : tenants) {
        if (t.id.empty())
            ADYNA_FATAL("TenantSpec.id must be non-empty (tenant #",
                        ids.size(), ")");
        if (!ids.insert(t.id).second)
            ADYNA_FATAL("duplicate tenant id \"", t.id,
                        "\" — TenantSpec.id must be unique per run");
        validateServeConfig(t.serve);
        // validateServeConfig already rejects rate <= 0; restate the
        // per-tenant framing so a bad mix points at the tenant.
        if (t.serve.arrival.ratePerSec <= 0.0)
            ADYNA_FATAL("tenant \"", t.id,
                        "\": arrival.ratePerSec must be > 0 "
                        "requests/sec (got ",
                        t.serve.arrival.ratePerSec, ")");
        if (t.loadWeight < 0.0)
            ADYNA_FATAL("tenant \"", t.id,
                        "\": loadWeight must be >= 0 (0 derives it "
                        "from the arrival rate; got ",
                        t.loadWeight, ")");
        if (!t.serve.faultPlan.empty())
            ADYNA_FATAL("tenant \"", t.id,
                        "\": per-tenant fault plans are not "
                        "supported — configure the chip-level "
                        "MTenantConfig.faultPlan instead");
    }
}

} // namespace adyna::serve
