/**
 * @file
 * The admission / dynamic-batching queue of the serving runtime:
 * timestamped requests enter FIFO, and batches leave under the
 * classic max-batch / max-wait policy — a batch forms as soon as
 * maxBatch requests are queued, or when the oldest queued request
 * has waited maxWait cycles, whichever comes first. Forming merges
 * the requests' single-sample routing draws into the routing of the
 * concatenated engine batch (trace::mergeRoutings).
 */

#ifndef ADYNA_SERVE_BATCHER_HH
#define ADYNA_SERVE_BATCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace adyna::serve {

/** Dynamic batching policy. */
struct BatchPolicy
{
    /** Largest number of requests merged into one engine batch (and
     * the batch size the workload graph is compiled for — partial
     * batches pad static operators up to it). */
    int maxBatch = 32;

    /** Longest time a request may sit in the queue before a (possibly
     * partial) batch is formed around it, cycles. */
    Cycles maxWaitCycles = 500000;
};

/** One inference request. */
struct Request
{
    std::uint64_t id = 0;

    /** Arrival tick (cycles). */
    Tick arrival = 0;

    /** The request's own dynamism draw (a batchSize-1 routing). */
    trace::BatchRouting routing;
};

/** A batch handed to the engine. */
struct FormedBatch
{
    /** Tick at which the batch was formed (dispatch barrier). */
    Tick formedAt = 0;

    /** The member requests, in arrival order. */
    std::vector<Request> requests;

    /** Merged routing of the concatenated batch. */
    trace::BatchRouting routing;
};

/** FIFO admission queue with max-batch / max-wait batch formation. */
class Batcher
{
  public:
    /** Sentinel: no batch can form (empty queue). */
    static constexpr Tick kNever = ~Tick{0};

    explicit Batcher(BatchPolicy policy);

    /** Admit one request; arrivals must be non-decreasing. */
    void enqueue(Request r);

    /**
     * Earliest tick a batch could be formed from the current queue:
     * the arrival of the maxBatch-th request when the queue is full
     * enough, otherwise the oldest request's arrival plus maxWait;
     * kNever when empty. Admitting more requests can only move this
     * earlier.
     */
    Tick nextFormTick() const;

    /**
     * Form the next batch at @p now (which must be >= nextFormTick());
     * takes the oldest min(maxBatch, queued) requests.
     */
    FormedBatch form(Tick now);

    /**
     * Empty the queue, returning the queued requests in arrival
     * order. Used by the pod runtime when a chip goes dark: the dark
     * chip's queue is drained and re-routed onto the survivors (or
     * shed, under static pinning). The monotone-arrival guard keeps
     * its high-water mark, so a drained batcher still rejects
     * out-of-order re-use.
     */
    std::vector<Request> drain();

    /**
     * Remove the queued request with @p id before it forms a batch;
     * false when no such request is queued (it already formed,
     * or was never here). Used by the pod's hedging layer to cancel
     * the losing copy of a hedged request.
     */
    bool cancel(std::uint64_t id);

    std::size_t queued() const { return queue_.size(); }

    const BatchPolicy &policy() const { return policy_; }

  private:
    BatchPolicy policy_;
    std::deque<Request> queue_;
    Tick lastArrival_ = 0;
};

} // namespace adyna::serve

#endif // ADYNA_SERVE_BATCHER_HH
