#include "serve/drift.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::serve {

DriftMonitor::DriftMonitor(DriftConfig cfg) : cfg_(cfg)
{
    ADYNA_ASSERT(cfg_.windowRequests >= 1, "window must be >= 1");
    ADYNA_ASSERT(cfg_.threshold >= 0.0 && cfg_.threshold <= 2.0,
                 "L1 threshold out of range");
    ADYNA_ASSERT(cfg_.hysteresisWindows >= 1,
                 "hysteresis must be >= 1");
    ADYNA_ASSERT(cfg_.cooldownWindows >= 0, "bad cooldown");
    ADYNA_ASSERT(cfg_.noiseMultiplier >= 1.0,
                 "noise multiplier below 1 triggers on noise");
}

void
DriftMonitor::setReference(std::map<OpId, FreqHistogram> reference)
{
    reference_ = std::move(reference);
    hotStreak_ = 0;
    cooldown_ = cfg_.cooldownWindows;
}

void
DriftMonitor::setNoiseFloor(double floor)
{
    ADYNA_ASSERT(floor >= 0.0, "negative noise floor");
    noiseFloor_ = floor;
}

double
DriftMonitor::effectiveThreshold() const
{
    return std::max(cfg_.threshold,
                    cfg_.noiseMultiplier * noiseFloor_);
}

double
DriftMonitor::distanceTo(const arch::Profiler &profiler) const
{
    const double shape = profiler.driftL1(reference_, cfg_.l1Buckets);
    // Total expected load across the comparable ops. Summing before
    // dividing keeps the ratio out of the hands of rare ops whose
    // tiny expectations are pure sampling noise.
    double refSum = 0.0;
    double curSum = 0.0;
    for (const auto &[op, ref] : reference_) {
        if (ref.empty())
            continue;
        const FreqHistogram &cur = profiler.table(op);
        if (cur.empty())
            continue;
        refSum += ref.expectation();
        curSum += cur.expectation();
    }
    const double scale =
        refSum <= 0.0
            ? 0.0
            : std::min(std::abs(curSum - refSum) / refSum, 2.0);
    return std::max(shape, scale);
}

bool
DriftMonitor::observe(const arch::Profiler &profiler)
{
    ++windows_;
    lastDistance_ = distanceTo(profiler);

    if (cooldown_ > 0) {
        --cooldown_;
        hotStreak_ = 0;
        return false;
    }
    if (lastDistance_ > effectiveThreshold())
        ++hotStreak_;
    else
        hotStreak_ = 0;
    return hotStreak_ >= cfg_.hysteresisWindows;
}

} // namespace adyna::serve
