#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace adyna::serve {

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed)
{
    ADYNA_ASSERT(cfg_.freqGhz > 0.0, "bad clock frequency");
    switch (cfg_.kind) {
      case ArrivalKind::Poisson:
        ADYNA_ASSERT(cfg_.ratePerSec > 0.0,
                     "arrival rate must be positive");
        break;
      case ArrivalKind::Bursty: {
        ADYNA_ASSERT(cfg_.ratePerSec > 0.0,
                     "arrival rate must be positive");
        ADYNA_ASSERT(cfg_.burstRateMultiplier >= 1.0,
                     "burst multiplier must be >= 1");
        ADYNA_ASSERT(cfg_.burstFraction > 0.0 &&
                         cfg_.burstFraction < 1.0,
                     "burst fraction must be in (0, 1)");
        ADYNA_ASSERT(cfg_.burstDwellSec > 0.0,
                     "burst dwell must be positive");
        // Split the mean rate so that
        //   rate = normal * (1 - f) + normal * mult * f.
        normalRate_ =
            cfg_.ratePerSec /
            (1.0 - cfg_.burstFraction +
             cfg_.burstRateMultiplier * cfg_.burstFraction);
        // Start in the normal state with an exponential dwell.
        stateEndSec_ = expDraw(
            cfg_.burstFraction /
            (cfg_.burstDwellSec * (1.0 - cfg_.burstFraction)));
        break;
      }
      case ArrivalKind::Replay:
        replaySec_ = loadArrivalTrace(cfg_.traceFile);
        ADYNA_ASSERT(!replaySec_.empty(),
                     "empty arrival trace: ", cfg_.traceFile);
        break;
    }
}

double
ArrivalProcess::expDraw(double rate_per_sec)
{
    // Inverse-CDF draw; 1 - uniform() is in (0, 1].
    return -std::log(1.0 - rng_.uniform()) / rate_per_sec;
}

Tick
ArrivalProcess::next()
{
    switch (cfg_.kind) {
      case ArrivalKind::Poisson:
        nowSec_ += expDraw(cfg_.ratePerSec);
        break;
      case ArrivalKind::Bursty: {
        // By memorylessness, re-drawing the inter-arrival after a
        // state switch is exact, not an approximation.
        for (;;) {
            const double rate =
                inBurst_ ? normalRate_ * cfg_.burstRateMultiplier
                         : normalRate_;
            const double dt = expDraw(rate);
            if (nowSec_ + dt <= stateEndSec_) {
                nowSec_ += dt;
                break;
            }
            nowSec_ = stateEndSec_;
            inBurst_ = !inBurst_;
            const double meanDwell =
                inBurst_ ? cfg_.burstDwellSec
                         : cfg_.burstDwellSec *
                               (1.0 - cfg_.burstFraction) /
                               cfg_.burstFraction;
            stateEndSec_ = nowSec_ + expDraw(1.0 / meanDwell);
        }
        break;
      }
      case ArrivalKind::Replay: {
        if (replayCursor_ == replaySec_.size()) {
            // Wrap: shift the whole trace by its span (plus one mean
            // gap so back-to-back copies do not collide).
            const double span = replaySec_.back() - replaySec_.front();
            const double gap =
                replaySec_.size() > 1
                    ? span / static_cast<double>(replaySec_.size() - 1)
                    : 1e-6;
            replayOffsetSec_ += span + gap;
            replayCursor_ = 0;
        }
        const double t = replayOffsetSec_ + replaySec_[replayCursor_] -
                         replaySec_.front();
        ++replayCursor_;
        nowSec_ = std::max(nowSec_, t);
        break;
      }
    }
    ++generated_;
    return static_cast<Tick>(
        std::llround(nowSec_ * cfg_.freqGhz * 1e9));
}

TrafficSplitter::TrafficSplitter(std::vector<double> fractions,
                                 std::uint64_t seed)
    : rng_(seed)
{
    ADYNA_ASSERT(!fractions.empty(),
                 "traffic split needs >= 1 model");
    double sum = 0.0;
    for (double f : fractions) {
        ADYNA_ASSERT(f > 0.0, "traffic fractions must be > 0");
        sum += f;
    }
    ADYNA_ASSERT(sum > 0.99 && sum < 1.01,
                 "traffic fractions must sum to 1, got ", sum);
    cdf_.reserve(fractions.size());
    double acc = 0.0;
    for (double f : fractions) {
        acc += f / sum;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0; // exact, despite rounding
    counts_.assign(fractions.size(), 0);
}

int
TrafficSplitter::next()
{
    int pick = 0;
    if (cdf_.size() > 1) {
        const double u = rng_.uniform();
        while (pick + 1 < static_cast<int>(cdf_.size()) &&
               u >= cdf_[pick])
            ++pick;
    }
    ++counts_[pick];
    return pick;
}

std::vector<double>
loadArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ADYNA_FATAL("cannot open arrival trace: ", path);
    std::vector<double> out;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        double t = 0.0;
        if (!(ls >> t))
            ADYNA_FATAL("bad arrival timestamp at ", path, ":",
                        lineNo, ": '", line, "'");
        if (t < 0.0 || (!out.empty() && t < out.back()))
            ADYNA_FATAL("arrival trace not ascending at ", path, ":",
                        lineNo);
        out.push_back(t);
    }
    return out;
}

void
saveArrivalTrace(const std::string &path,
                 const std::vector<double> &timestamps_sec)
{
    std::ofstream out(path);
    if (!out)
        ADYNA_FATAL("cannot write arrival trace: ", path);
    out << "# adyna-arrivals v1: one ascending timestamp (seconds) "
           "per line\n";
    char buf[64];
    for (double t : timestamps_sec) {
        std::snprintf(buf, sizeof(buf), "%.9f\n", t);
        out << buf;
    }
}

} // namespace adyna::serve
