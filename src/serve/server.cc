#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "common/logging.hh"
#include "core/sampling.hh"
#include "core/validate.hh"
#include "serve/validate.hh"

namespace adyna::serve {

namespace {

/**
 * Synthetic drift-monitor series: the request's total dynamic load
 * (sum of its dyn-op values). Exit/skip gates are binary per request
 * and all shift together under a drift phase, so each op's own
 * distribution moves only slightly while the execution-path-length
 * distribution moves a lot — this series captures that correlated
 * shift. The id lives far outside any real graph's op-id range and
 * only ever enters the drift profiler, never the scheduler.
 */
constexpr OpId kLoadSeriesOp = 0xFFFFFFFFu;

/** Record one request's dyn-value draws into a drift profiler. */
void
recordRequest(arch::Profiler &prof, const graph::DynGraph &dg,
              const trace::BatchRouting &routing)
{
    prof.noteBatch();
    std::int64_t totalLoad = 0;
    for (OpId op : dg.dynamicOps()) {
        const std::int64_t v = routing.dynValue(dg, op);
        prof.recordValue(op, v);
        totalLoad += v;
    }
    prof.recordValue(kLoadSeriesOp, totalLoad);
}

} // namespace

std::string
toJson(const ServeReport &r)
{
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\"workload\": \"%s\", \"mode\": \"%s\", "
        "\"requests\": %llu, \"batches\": %llu, "
        "\"mean_batch\": %.3f, \"offered_rps\": %.2f, "
        "\"achieved_rps\": %.2f, \"p50_ms\": %.4f, "
        "\"p95_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f, "
        "\"max_ms\": %.4f, \"mean_queue_ms\": %.4f, "
        "\"slo_attainment\": %.4f, \"goodput_rps\": %.2f, "
        "\"reschedules\": %d, \"delta_reschedules\": %d, "
        "\"segments_rebuilt\": %llu, \"segments_spliced\": %llu, "
        "\"drift_windows\": %d, "
        "\"last_drift_l1\": %.4f, \"drift_threshold\": %.4f, "
        "\"horizon_ticks\": %llu, "
        "\"mapper_hits\": %llu, \"mapper_misses\": %llu, "
        "\"store_hits\": %llu, \"store_misses\": %llu, "
        "\"exec_hits\": %llu, \"exec_misses\": %llu}",
        r.workload.c_str(), r.mode.c_str(),
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.batches), r.meanBatchSize,
        r.offeredRps, r.achievedRps, r.p50Ms, r.p95Ms, r.p99Ms,
        r.meanMs, r.maxMs, r.meanQueueMs, r.sloAttainment,
        r.goodputRps, r.reschedules, r.deltaReschedules,
        static_cast<unsigned long long>(r.segmentsRebuilt),
        static_cast<unsigned long long>(r.segmentsSpliced),
        r.driftWindows, r.lastDriftDistance, r.driftThreshold,
        static_cast<unsigned long long>(r.horizonTicks),
        static_cast<unsigned long long>(r.mapperHits),
        static_cast<unsigned long long>(r.mapperMisses),
        static_cast<unsigned long long>(r.storeHits),
        static_cast<unsigned long long>(r.storeMisses),
        static_cast<unsigned long long>(r.execHits),
        static_cast<unsigned long long>(r.execMisses));
    std::string out = buf;
    if (r.faultActive) {
        // Appended only when fault machinery was active so
        // default-configured reports keep the pre-fault bytes.
        char fbuf[1024];
        std::snprintf(
            fbuf, sizeof(fbuf),
            ", \"shed_requests\": %llu, \"failovers\": %d, "
            "\"watchdog_fallbacks\": %d, \"store_fit_failures\": %d, "
            "\"failed_tiles\": %d, \"down_links\": %d, "
            "\"degraded_links\": %d, \"probe_drops\": %llu, "
            "\"probe_retries\": %llu, \"probe_give_ups\": %llu, "
            "\"noc_detours\": %llu, \"unroutable_paths\": %llu}",
            static_cast<unsigned long long>(r.shedRequests),
            r.failovers, r.watchdogFallbacks, r.storeFitFailures,
            r.failedTiles, r.downLinks, r.degradedLinks,
            static_cast<unsigned long long>(r.probeDrops),
            static_cast<unsigned long long>(r.probeRetries),
            static_cast<unsigned long long>(r.probeGiveUps),
            static_cast<unsigned long long>(r.nocDetours),
            static_cast<unsigned long long>(r.unroutablePaths));
        out.pop_back(); // drop the closing brace
        out += fbuf;
    }
    if (r.searchActive) {
        // Appended only when the schedule search was enabled so
        // search-off reports keep the pre-search bytes.
        char sbuf[1024];
        std::snprintf(
            sbuf, sizeof(sbuf),
            ", \"search_reschedules\": %d, "
            "\"max_reschedule_cycles\": %llu, "
            "\"search_tried\": %llu, \"search_accepted\": %llu, "
            "\"search_materialized\": %llu, "
            "\"search_segments_rebuilt\": %llu, "
            "\"search_segments_spliced\": %llu, "
            "\"search_full_rebuilds\": %llu, "
            "\"search_budget_spent\": %llu, "
            "\"search_budget_exhausted\": %s, "
            "\"search_improved_last\": %s}",
            r.searchReschedules,
            static_cast<unsigned long long>(r.maxRescheduleCycles),
            static_cast<unsigned long long>(
                r.search.candidatesTried),
            static_cast<unsigned long long>(
                r.search.candidatesAccepted),
            static_cast<unsigned long long>(r.search.materialized),
            static_cast<unsigned long long>(
                r.search.segmentsRebuilt),
            static_cast<unsigned long long>(
                r.search.segmentsSpliced),
            static_cast<unsigned long long>(r.search.fullRebuilds),
            static_cast<unsigned long long>(
                r.search.budgetSpentCycles),
            r.search.budgetExhausted ? "true" : "false",
            r.search.improved ? "true" : "false");
        out.pop_back(); // drop the closing brace
        out += sbuf;
    }
    return out;
}

ServeRuntime::ServeRuntime(const graph::DynGraph &dg,
                           trace::TraceConfig trace_cfg,
                           arch::HwConfig hw,
                           core::SchedulerConfig sched_cfg,
                           core::ExecPolicy policy,
                           ServeConfig serve_cfg,
                           std::string workload_name)
    : dg_(dg), traceCfg_(trace_cfg), hw_(hw), schedCfg_(sched_cfg),
      policy_(policy), cfg_(std::move(serve_cfg)),
      workloadName_(std::move(workload_name))
{
    validateServeConfig(cfg_);
    ADYNA_ASSERT(traceCfg_.batchSize ==
                     static_cast<std::int64_t>(cfg_.batching.maxBatch),
                 "the workload graph must be compiled at the "
                 "batcher's maxBatch (got trace batchSize ",
                 traceCfg_.batchSize, " vs maxBatch ",
                 cfg_.batching.maxBatch, ")");
}

void
ServeRuntime::setSharedMapper(costmodel::Mapper *mapper)
{
    sharedMapper_ = mapper;
}

void
ServeRuntime::setSharedStoreCache(kernels::KernelStoreCache *cache)
{
    sharedStoreCache_ = cache;
}

void
ServeRuntime::setSchedulerPool(ThreadPool *pool)
{
    schedulerPool_ = pool;
}

ServeReport
ServeRuntime::run()
{
    std::optional<costmodel::Mapper> localMapper;
    if (!sharedMapper_)
        localMapper.emplace(hw_.tech);
    costmodel::Mapper &mapper =
        sharedMapper_ ? *sharedMapper_ : *localMapper;
    const std::uint64_t mHits0 = mapper.hits();
    const std::uint64_t mMisses0 = mapper.misses();

    kernels::KernelStoreCache &storeCache =
        sharedStoreCache_ ? *sharedStoreCache_
                          : kernels::KernelStoreCache::global();
    const std::uint64_t sHits0 = storeCache.hits();
    const std::uint64_t sMisses0 = storeCache.misses();

    core::Scheduler scheduler(dg_, hw_, mapper, schedCfg_);
    scheduler.setStoreCache(&storeCache); // no-op unless storeCache
                                          // is configured on
    if (schedulerPool_)
        scheduler.setThreadPool(schedulerPool_);
    core::Engine engine(dg_, hw_, mapper, policy_);
    arch::Chip chip(hw_);

    // Online schedule search (searchOnDrift): owns its own engine so
    // the serving engine's exec counters never see rejected
    // candidates; counters it does move on the shared mapper/store
    // cache are snapshot-scoped into searchStats and subtracted from
    // the run-level report below.
    std::optional<search::ScheduleSearch> searcher;
    core::SearchStats searchStats;
    core::PlanOverride installedOverride;
    search::TreeState installedTree;
    bool haveTree = false;
    std::vector<trace::BatchRouting> probeRing;
    int searchReschedules = 0;
    Cycles maxRescheduleCycles = 0;
    if (cfg_.searchOnDrift) {
        search::SearchConfig scfg = cfg_.search;
        scfg.storeCompileCycles = cfg_.storeCompileCycles;
        searcher.emplace(dg_, hw_, mapper, policy_, scfg);
        if (schedulerPool_)
            searcher->setThreadPool(schedulerPool_);
    }

    // Two observation streams: merged-batch statistics feed the
    // scheduler (allocation expectations, kernel re-sampling), while
    // per-request statistics feed the drift monitor — per-request
    // distributions are invariant to the realized batch sizes, so
    // bursty arrivals alone cannot fake a routing-distribution shift.
    arch::Profiler engineProf;
    arch::Profiler driftProf;

    trace::TraceConfig reqCfg = traceCfg_;
    reqCfg.batchSize = 1;

    // ---- offline profiling (compiled-batch statistics) -------------
    std::map<OpId, double> expectations;
    std::map<OpId, std::vector<std::int64_t>> kernelValues =
        scheduler.initialKernelValues();
    if (!schedCfg_.worstCase && cfg_.profileBatches > 0) {
        trace::TraceGenerator probe(dg_, traceCfg_,
                                    cfg_.seed ^
                                        0x517cc1b727220a95ULL);
        for (int b = 0; b < cfg_.profileBatches; ++b) {
            const trace::BatchRouting routing = probe.next();
            engineProf.noteBatch();
            for (const auto &[sw, oc] : routing.outcomes)
                engineProf.recordBranchLoads(sw, oc.branchCounts);
            for (OpId op : dg_.dynamicOps())
                engineProf.recordValue(op,
                                       routing.dynValue(dg_, op));
        }
        core::refreshScheduleInputs(engineProf,
                                    cfg_.resampleKernels &&
                                        !policy_.exactKernels,
                                    expectations, kernelValues);
        engineProf.resetTables();
    }

    // Drift reference: the per-request distribution the first
    // schedule implicitly targets. The probe shares the profiling
    // probe's seed so a drifting trace's phase tilt — drawn before
    // the first sample, hence identical across batch sizes — matches
    // the one the schedule inputs were measured under; referencing
    // an independently-tilted stream would blind the monitor to a
    // schedule mismatch that is present from the very first request.
    // Two same-distribution windows calibrate the noise floor (the
    // distance identical traffic shows at this window size).
    DriftMonitor monitor(cfg_.drift);
    {
        trace::TraceGenerator refProbe(dg_, reqCfg,
                                       cfg_.seed ^
                                           0x517cc1b727220a95ULL);
        const int half = cfg_.drift.windowRequests;
        for (int i = 0; i < half; ++i)
            recordRequest(driftProf, dg_, refProbe.next());
        auto reference = driftProf.tablesSnapshot();
        driftProf.resetTables();
        for (int i = 0; i < half; ++i)
            recordRequest(driftProf, dg_, refProbe.next());
        monitor.setReference(reference);
        monitor.setNoiseFloor(monitor.distanceTo(driftProf));
        // The reference keeps both windows' worth of samples.
        for (const auto &[op, hist] : driftProf.tablesSnapshot())
            reference[op].merge(hist);
        monitor.setReference(std::move(reference));
        driftProf.resetTables();
    }

    core::Schedule schedule = scheduler.build(
        expectations, kernelValues,
        schedCfg_.worstCase ? nullptr : &engineProf);
    const auto checkSchedule = [&](const core::Schedule &sch) {
        const auto issues = core::validateSchedule(sch, dg_, hw_);
        ADYNA_ASSERT(issues.empty(), "invalid schedule:\n",
                     core::issuesToString(issues));
    };
    checkSchedule(schedule);

    // The schedule inputs the installed schedule actually embodies.
    // Delta re-schedules compare fresh inputs against these — not
    // against the previous refresh — so repeated sub-tolerance
    // drifts accumulate until some op genuinely moves past the
    // tolerance relative to what is serving.
    std::map<OpId, double> installedExp = expectations;
    std::map<OpId, std::vector<std::int64_t>> installedKv =
        kernelValues;

    // ---- the serving loop ------------------------------------------
    ArrivalConfig arrivalCfg = cfg_.arrival;
    arrivalCfg.freqGhz = hw_.tech.freqGhz;
    ArrivalProcess arrivals(arrivalCfg,
                            cfg_.seed ^ 0x9e3779b97f4a7c15ULL);
    trace::TraceGenerator reqGen(dg_, reqCfg, cfg_.seed);
    Batcher batcher(cfg_.batching);
    SloTracker slo(cfg_.slo, hw_.tech.freqGhz);

    // With an empty plan the injector never exists and no loop branch
    // below fires, keeping the run byte-identical to the pre-fault
    // runtime.
    std::optional<fault::FaultInjector> injector;
    if (!cfg_.faultPlan.empty())
        injector.emplace(cfg_.faultPlan,
                         cfg_.faultSeed
                             ? cfg_.faultSeed
                             : cfg_.seed ^ 0xda3e39cb94b95bdbULL);

    const auto total = static_cast<std::uint64_t>(cfg_.numRequests);
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t batches = 0;
    int reschedules = 0;
    int driftWindows = 0;
    int failovers = 0;
    int watchdogFallbacks = 0;
    int storeFitFailures = 0;
    int deltaReschedules = 0;
    std::uint64_t segmentsRebuilt = 0;
    std::uint64_t segmentsSpliced = 0;
    Tick engineFree = 0;
    Tick nextArrival = arrivals.next();
    const Tick firstArrival = nextArrival;
    Tick lastArrival = nextArrival;

    // Admission control projects each arrival's completion from the
    // engine backlog plus an EWMA of recent dispatch-to-completion
    // times, and sheds it when the projection overshoots the SLO.
    const double deadlineTicks =
        cfg_.slo.deadlineMs * hw_.tech.freqGhz * 1e6;
    double serviceEwma = 0.0;
    bool haveService = false;

    /** Ops whose allocation expectation moved beyond the delta
     * tolerance relative to the installed schedule's build inputs
     * (plus ops whose expectation appeared or vanished). */
    const auto changedOps = [&]() {
        std::vector<OpId> changed;
        for (OpId op : dg_.dynamicOps()) {
            const auto ne = expectations.find(op);
            const auto oe = installedExp.find(op);
            const bool haveNew = ne != expectations.end();
            const bool haveOld = oe != installedExp.end();
            bool moved = haveNew != haveOld;
            if (!moved && haveNew) {
                const double ref =
                    std::max(std::abs(oe->second), 1.0);
                moved = std::abs(ne->second - oe->second) >
                        cfg_.deltaExpectationTol * ref;
            }
            if (moved)
                changed.push_back(op);
        }
        return changed;
    };

    /** Rebuild the schedule from the current expectations / kernel
     * values; returns the candidate plus its modeled runtime cost.
     * @p delta, when non-null, routes through
     * Scheduler::buildDelta, splicing segments untouched by the
     * listed ops from the installed schedule. An active
     * store-fit-failure window forces a cold full compile (the
     * cached stores no longer fit — spliced ones included), which
     * the watchdog model sees as a full-cost rebuild. */
    struct Rebuild
    {
        core::Schedule schedule;
        Cycles cost = 0;
        bool delta = false;
        core::DeltaStats stats;
    };
    const auto rebuildSchedule =
        [&](Tick now, const std::vector<OpId> *delta) -> Rebuild {
        const bool bypassStores =
            injector && injector->storeFitFailActive(now);
        if (bypassStores) {
            scheduler.setStoreCache(nullptr);
            ++storeFitFailures;
        }
        const std::uint64_t misses0 = storeCache.misses();
        Rebuild rb;
        if (delta && !bypassStores) {
            rb.schedule = scheduler.buildDelta(
                schedule, expectations, kernelValues, &engineProf,
                *delta, &rb.stats);
            rb.delta = true;
        } else {
            rb.schedule = scheduler.build(expectations, kernelValues,
                                          &engineProf);
        }
        if (bypassStores)
            scheduler.setStoreCache(&storeCache);
        checkSchedule(rb.schedule);
        const std::uint64_t compiled =
            schedCfg_.storeCache && !bypassStores
                ? storeCache.misses() - misses0
                : (rb.delta ? rb.stats.segmentsRebuilt
                            : rb.schedule.segments.size());
        rb.cost = cfg_.reconfigOverheadCycles +
                  static_cast<Cycles>(compiled) *
                      cfg_.storeCompileCycles;
        return rb;
    };

    while (completed + shed < total) {
        // Admit every arrival that lands no later than the next
        // dispatch moment. Admission can only pull the dispatch
        // moment earlier (the batch fills up), so iterate to the
        // fixpoint.
        for (;;) {
            const Tick form = batcher.nextFormTick();
            const Tick dispatchAt =
                form == Batcher::kNever
                    ? Batcher::kNever
                    : std::max(engineFree, form);
            if (issued < total && nextArrival <= dispatchAt) {
                if (cfg_.admissionControl && haveService) {
                    const double backlog =
                        engineFree > nextArrival
                            ? static_cast<double>(engineFree -
                                                  nextArrival)
                            : 0.0;
                    // Projected completion: engine backlog, plus the
                    // batches already queued ahead of this arrival,
                    // plus its own service. Without the queued term
                    // an open-loop overload admits everything before
                    // the engine's busy horizon ever moves.
                    const double queuedAhead =
                        static_cast<double>(batcher.queued()) /
                        cfg_.batching.maxBatch;
                    if (backlog + (1.0 + queuedAhead) * serviceEwma >
                        cfg_.shedLatencyFactor * deadlineTicks) {
                        // Shed: draw (and discard) the routing so
                        // the dynamism stream stays aligned with a
                        // non-shedding run of the same seed.
                        (void)reqGen.next();
                        lastArrival = nextArrival;
                        ++issued;
                        ++shed;
                        nextArrival = arrivals.next();
                        continue;
                    }
                }
                Request r;
                r.id = issued;
                r.arrival = nextArrival;
                r.routing = reqGen.next();
                lastArrival = nextArrival;
                batcher.enqueue(std::move(r));
                ++issued;
                nextArrival = arrivals.next();
                continue;
            }
            break;
        }
        if (batcher.queued() == 0)
            break; // every remaining arrival was shed

        // Dispatch every batch formable at the dispatch moment in
        // one engine period: batches formed while the engine was
        // busy stream through the pipeline back to back.
        const Tick dispatchAt =
            std::max(engineFree, batcher.nextFormTick());

        // Fault events due by the dispatch moment strike before the
        // batch leaves. A healthy-tile change forces a fail-over
        // rebuild onto the survivors — never subject to the
        // watchdog, because the installed schedule targets dead
        // tiles and keeping it is strictly worse than any rebuild
        // cost. The static setting (failover off) keeps serving on
        // the stale schedule and eats the degraded lockstep
        // execution instead.
        if (injector && injector->advanceTo(dispatchAt, chip) &&
            cfg_.failover && !schedCfg_.worstCase) {
            if (searcher && haveTree) {
                // The searched structure was tuned for the healthy
                // grid; fail-over falls back to the pure heuristic.
                scheduler.setPlanOverride(nullptr);
                haveTree = false;
            }
            scheduler.setHealthyTiles(chip.healthyTiles());
            Rebuild rb = rebuildSchedule(dispatchAt, nullptr);
            schedule = std::move(rb.schedule);
            installedExp = expectations;
            installedKv = kernelValues;
            engineFree = dispatchAt + rb.cost;
            ++failovers;
            continue; // re-admit against the new engine-free time
        }
        std::vector<FormedBatch> formed;
        while (batcher.queued() > 0 &&
               batcher.nextFormTick() <= dispatchAt)
            formed.push_back(batcher.form(dispatchAt));

        std::vector<trace::BatchRouting> routings;
        routings.reserve(formed.size());
        for (const FormedBatch &fb : formed)
            routings.push_back(fb.routing);
        if (searcher) {
            // Ring of the most recent dispatched batches: the
            // search's scoring probe.
            for (const trace::BatchRouting &r : routings) {
                if (static_cast<int>(probeRing.size()) >=
                    cfg_.searchProbeBatches)
                    probeRing.erase(probeRing.begin());
                probeRing.push_back(r);
            }
        }
        const core::PeriodResult res = engine.runPeriod(
            chip, schedule, routings, &engineProf, dispatchAt);
        engineFree = res.endTime;
        batches += formed.size();
        if (!res.batchEnds.empty()) {
            const double service = static_cast<double>(
                res.batchEnds.back() - dispatchAt);
            serviceEwma = haveService
                              ? 0.8 * serviceEwma + 0.2 * service
                              : service;
            haveService = true;
        }

        // Window boundary: score the drift and, in adaptive mode,
        // close the loop through the scheduler. Checked per request
        // (not per dispatch) so windows stay exactly windowRequests
        // wide even when a backlogged engine completes hundreds of
        // requests in one dispatch group — wider windows would smear
        // several drift phases into one near-reference mixture.
        const auto closeWindow = [&]() {
            ++driftWindows;
            const bool fire = monitor.observe(driftProf);
            if (fire && cfg_.driftReschedule &&
                !schedCfg_.worstCase) {
                // The new schedule targets the drifted window: its
                // per-request snapshot becomes the new reference.
                auto reference = driftProf.tablesSnapshot();
                core::refreshScheduleInputs(
                    engineProf,
                    cfg_.resampleKernels && !policy_.exactKernels,
                    expectations, kernelValues);
                engineProf.resetTables();
                const std::vector<OpId> changed = changedOps();
                Rebuild rb = rebuildSchedule(
                    engineFree,
                    cfg_.deltaReschedule ? &changed : nullptr);
                if (cfg_.rescheduleBudgetCycles > 0 &&
                    rb.cost > cfg_.rescheduleBudgetCycles) {
                    // Watchdog: the rebuild blew its cycle budget.
                    // Abandon it, keep the last-known-good schedule
                    // (and its reference, so the monitor keeps
                    // scoring against what is actually installed),
                    // and charge only the budget the watchdog let
                    // the rebuild burn before killing it.
                    engineFree += cfg_.rescheduleBudgetCycles;
                    ++watchdogFallbacks;
                    maxRescheduleCycles =
                        std::max(maxRescheduleCycles,
                                 cfg_.rescheduleBudgetCycles);
                } else {
                    Cycles charge = rb.cost;
                    if (searcher && !probeRing.empty()) {
                        // Anytime search inside the watchdog's
                        // leftover: its modeled spend is capped at
                        // budget - rb.cost, so charge never exceeds
                        // the budget (0 budget = unbounded).
                        searcher->setCycleBudget(
                            cfg_.rescheduleBudgetCycles > 0
                                ? cfg_.rescheduleBudgetCycles -
                                      rb.cost
                                : 0);
                        searcher->setSeed(
                            cfg_.search.seed ^
                            (0x2545f4914f6cdd1dULL *
                             static_cast<std::uint64_t>(
                                 reschedules + 1)));
                        search::ScheduleSearch::Result sr =
                            searcher->run(
                                scheduler, rb.schedule,
                                haveTree ? &installedTree : nullptr,
                                expectations, kernelValues,
                                &engineProf, probeRing,
                                schedCfg_.storeCache ? &storeCache
                                                     : nullptr,
                                &searchStats);
                        charge += sr.spentCycles;
                        if (sr.improved) {
                            rb.schedule = std::move(sr.schedule);
                            installedOverride =
                                std::move(sr.planOverride);
                            installedTree = sr.tree;
                            haveTree = true;
                            // Later delta re-schedules splice
                            // against the searched structure.
                            scheduler.setPlanOverride(
                                &installedOverride);
                            ++searchReschedules;
                        }
                        ADYNA_ASSERT(
                            cfg_.rescheduleBudgetCycles == 0 ||
                                charge <=
                                    cfg_.rescheduleBudgetCycles,
                            "search overshot the watchdog budget");
                        engineFree += sr.spentCycles;
                    }
                    maxRescheduleCycles =
                        std::max(maxRescheduleCycles, charge);
                    schedule = std::move(rb.schedule);
                    monitor.setReference(std::move(reference));
                    if (rb.delta) {
                        // Spliced segments still embody the old
                        // inputs, so only the changed ops' installed
                        // references advance.
                        ++deltaReschedules;
                        segmentsRebuilt += rb.stats.segmentsRebuilt;
                        segmentsSpliced += rb.stats.segmentsTotal -
                                           rb.stats.segmentsRebuilt;
                        for (OpId op : changed) {
                            const auto e = expectations.find(op);
                            if (e != expectations.end())
                                installedExp[op] = e->second;
                            else
                                installedExp.erase(op);
                            const auto k = kernelValues.find(op);
                            if (k != kernelValues.end())
                                installedKv[op] = k->second;
                            else
                                installedKv.erase(op);
                        }
                    } else {
                        installedExp = expectations;
                        installedKv = kernelValues;
                    }
                    // The dispatch barrier already drained the
                    // pipeline; charge the kernel/metadata reload on
                    // top.
                    engineFree += cfg_.reconfigOverheadCycles;
                    ++reschedules;
                }
            }
            driftProf.resetTables();
        };

        for (std::size_t b = 0; b < formed.size(); ++b) {
            for (const Request &r : formed[b].requests) {
                slo.record(r.arrival, dispatchAt, res.batchEnds[b]);
                ++completed;
                recordRequest(driftProf, dg_, r.routing);
                if (driftProf.windowBatches() >=
                    static_cast<std::uint64_t>(
                        cfg_.drift.windowRequests))
                    closeWindow();
            }
        }
    }

    // ---- report -----------------------------------------------------
    ServeReport report;
    report.workload = workloadName_;
    report.mode = cfg_.driftReschedule ? "adaptive" : "static";
    report.requests = completed;
    report.batches = batches;
    report.meanBatchSize =
        batches == 0 ? 0.0
                     : static_cast<double>(completed) /
                           static_cast<double>(batches);
    const double tickSec = 1.0 / (hw_.tech.freqGhz * 1e9);
    if (issued > 1 && lastArrival > firstArrival)
        report.offeredRps =
            static_cast<double>(issued - 1) /
            (static_cast<double>(lastArrival - firstArrival) *
             tickSec);
    report.horizonTicks = slo.lastEnd();
    if (report.horizonTicks > 0)
        report.achievedRps =
            static_cast<double>(completed) /
            (static_cast<double>(report.horizonTicks) * tickSec);
    report.p50Ms = slo.latencyPercentileMs(0.50);
    report.p95Ms = slo.latencyPercentileMs(0.95);
    report.p99Ms = slo.latencyPercentileMs(0.99);
    report.meanMs = slo.meanLatencyMs();
    report.maxMs = slo.maxLatencyMs();
    report.meanQueueMs = slo.meanQueueMs();
    report.sloAttainment = slo.sloAttainment();
    report.goodputRps = slo.goodputRps(report.horizonTicks);
    report.reschedules = reschedules;
    report.deltaReschedules = deltaReschedules;
    report.segmentsRebuilt = segmentsRebuilt;
    report.segmentsSpliced = segmentsSpliced;
    report.driftWindows = driftWindows;
    report.lastDriftDistance = monitor.lastDistance();
    report.driftThreshold = monitor.effectiveThreshold();
    // Counter scoping: lookups the search burned on rejected
    // candidates are carved out of the run-level counters, so these
    // reflect the schedules that actually served (the search's own
    // share is reported under report.search).
    report.mapperHits =
        mapper.hits() - mHits0 - searchStats.mapperHits;
    report.mapperMisses =
        mapper.misses() - mMisses0 - searchStats.mapperMisses;
    if (schedCfg_.storeCache) {
        report.storeHits =
            storeCache.hits() - sHits0 - searchStats.storeHits;
        report.storeMisses =
            storeCache.misses() - sMisses0 - searchStats.storeMisses;
    }
    report.execHits = engine.execHits();
    report.execMisses = engine.execMisses();
    report.shedRequests = shed;
    report.failovers = failovers;
    report.watchdogFallbacks = watchdogFallbacks;
    report.storeFitFailures = storeFitFailures;
    report.faultActive = injector.has_value() ||
                         cfg_.admissionControl ||
                         cfg_.rescheduleBudgetCycles > 0;
    report.searchReschedules = searchReschedules;
    report.maxRescheduleCycles = maxRescheduleCycles;
    report.search = searchStats;
    report.searchActive = cfg_.searchOnDrift;
    if (injector) {
        const fault::FaultStats fs = injector->stats(chip);
        report.failedTiles = fs.failedTiles;
        report.downLinks = fs.downLinks;
        report.degradedLinks = fs.degradedLinks;
        report.probeDrops = fs.probeDrops;
        report.probeRetries = fs.probeRetries;
        report.probeGiveUps = fs.probeGiveUps;
        report.nocDetours = fs.detourRoutes;
        report.unroutablePaths = fs.unroutablePaths;
    }
    return report;
}

} // namespace adyna::serve
