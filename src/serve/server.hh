/**
 * @file
 * The online serving runtime: an open-loop, request-driven layer on
 * top of the batch engine that closes the paper's profiler →
 * scheduler loop against live traffic. Requests arrive from an
 * ArrivalProcess, each carrying its own single-sample dynamism draw;
 * the Batcher merges them into engine batches under a max-batch /
 * max-wait policy; every dispatch streams the formed batches through
 * Engine::runPeriod on the shared chip clock (reusing the schedule
 * plan cache across dispatches); an SloTracker turns completions
 * into latency percentiles and goodput; and a DriftMonitor watches
 * the per-request dyn-value distributions, re-segmenting and
 * re-allocating through the Scheduler — and charging the paper's
 * reconfiguration cost — when the serving distribution drifts away
 * from the one the schedule was built for.
 *
 * Static operators always execute at the compiled batch size
 * (partial batches are padded, like a fixed-shape compiled engine),
 * while dynamic operators see only the actually-routed load — which
 * makes the batching policy a real latency/throughput trade-off.
 */

#ifndef ADYNA_SERVE_SERVER_HH
#define ADYNA_SERVE_SERVER_HH

#include <cstdint>
#include <string>

#include "arch/hwconfig.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "core/search_stats.hh"
#include "costmodel/mapper.hh"
#include "fault/fault.hh"
#include "graph/dyngraph.hh"
#include "search/search.hh"
#include "serve/arrival.hh"
#include "serve/batcher.hh"
#include "serve/drift.hh"
#include "serve/slo.hh"
#include "trace/trace.hh"

namespace adyna::serve {

/** Serving-run options. */
struct ServeConfig
{
    ArrivalConfig arrival;
    BatchPolicy batching;
    SloConfig slo;
    DriftConfig drift;

    /** Run the drift-triggered re-scheduling loop; false serves the
     * whole run on the initial (static) schedule. The monitor still
     * observes either way, so lastDriftDistance stays comparable. */
    bool driftReschedule = true;

    /** Requests to serve. */
    int numRequests = 2000;

    /** Seed for the request dynamism stream (arrivals and the probe
     * streams derive their own independent streams from it). */
    std::uint64_t seed = 1;

    /** Offline profiling batches (at the compiled batch size) before
     * the first schedule. */
    int profileBatches = 40;

    /** Fixed reconfiguration overhead charged per re-schedule on top
     * of the natural pipeline drain, cycles. */
    Cycles reconfigOverheadCycles = 10000;

    /** Run Algorithm 1 kernel re-sampling at each re-schedule. */
    bool resampleKernels = true;

    /**
     * Drift re-schedules rebuild only the segments whose ops'
     * allocation expectations moved beyond deltaExpectationTol,
     * splicing every other segment — with its compiled kernel
     * stores — from the installed schedule
     * (Scheduler::buildDelta). false forces the full rebuild path
     * on every drift trigger. Fail-over and store-fit-failure
     * rebuilds always rebuild in full: their premise is that the
     * installed schedule's tiles or stores are no longer usable.
     */
    bool deltaReschedule = true;

    /**
     * Relative expectation shift below which an op counts as
     * unchanged for delta segment selection. Kernel-value
     * re-sampling alone never marks an op changed: the samples
     * follow the same histograms that drive the expectations, so a
     * sub-tolerance expectation shift means the installed store's
     * value set is still representative.
     */
    double deltaExpectationTol = 0.05;

    // ---- fault tolerance / overload protection ---------------------
    // All defaults leave every simulation path untouched, so a
    // default-configured run stays byte-identical to the pre-fault
    // runtime (the empty-plan equivalence gate).

    /** Fault timeline replayed on the chip clock (see fault/fault.hh
     * for the plan grammar); empty injects nothing. */
    fault::FaultPlan faultPlan;

    /** Seed for the probe-drop streams; 0 derives one from `seed`. */
    std::uint64_t faultSeed = 0;

    /** Re-schedule onto the surviving tiles when the healthy-tile
     * set changes (fail-over); false keeps the installed schedule and
     * eats the degraded lockstep execution instead. */
    bool failover = true;

    /** Watchdog budget for a drift-triggered re-schedule, cycles: a
     * rebuild whose modeled cost (reconfigOverheadCycles +
     * compiled stores x storeCompileCycles) exceeds the budget is
     * abandoned and the last-known-good schedule keeps serving.
     * 0 disables the watchdog. Fail-over rebuilds are exempt — the
     * old schedule targets dead tiles, so falling back to it is
     * strictly worse than any rebuild cost. */
    Cycles rescheduleBudgetCycles = 0;

    /** Modeled cycles to compile one kernel store (the watchdog's
     * per-store cost term). */
    Cycles storeCompileCycles = 2000;

    /**
     * Run the anytime schedule search (search/search.hh) after each
     * drift-triggered heuristic rebuild, adopting the searched
     * schedule when it strictly beats the heuristic one on a probe
     * of recent batches. The search's modeled cycle spend is capped
     * at whatever rescheduleBudgetCycles leaves after the heuristic
     * rebuild's own cost, so the watchdog budget is never exceeded;
     * with the watchdog off the search runs unbounded. Off keeps
     * every simulation path and report byte-identical to the
     * pre-search runtime.
     */
    bool searchOnDrift = false;

    /** Search policy when searchOnDrift is set. cycleBudget and
     * storeCompileCycles are overridden per re-schedule from the
     * watchdog state; the rest apply as configured. */
    search::SearchConfig search;

    /** Most recent dispatched batches retained as the search's
     * scoring probe (drift-fires before any dispatch skip the
     * search). */
    int searchProbeBatches = 8;

    /** Deadline-aware admission control: shed arrivals whose
     * projected completion would overshoot the SLO deadline by
     * shedLatencyFactor, bounding queue growth under overload. */
    bool admissionControl = false;

    /** Shed when projected latency > factor x deadline. */
    double shedLatencyFactor = 1.5;
};

/** Everything one serving run reports. */
struct ServeReport
{
    std::string workload;
    std::string mode; ///< "adaptive" or "static"

    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0.0;

    /** Mean offered load measured from the realized arrivals. */
    double offeredRps = 0.0;

    /** Completed requests over the serving horizon. */
    double achievedRps = 0.0;

    // End-to-end latency (queueing + execution), milliseconds.
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;
    double meanQueueMs = 0.0;

    /** Fraction of requests that met the deadline. */
    double sloAttainment = 0.0;

    /** Deadline-meeting completions per second. */
    double goodputRps = 0.0;

    int reschedules = 0;
    int driftWindows = 0;
    double lastDriftDistance = 0.0;

    /** Drift re-schedules served through the delta-splice path
     * (always <= reschedules; 0 when deltaReschedule is off). */
    int deltaReschedules = 0;

    /** Segments rebuilt vs spliced, summed over all delta
     * re-schedules. */
    std::uint64_t segmentsRebuilt = 0;
    std::uint64_t segmentsSpliced = 0;

    /**
     * Cache counters of the serving run: mapper memo and
     * kernel-store cache lookups (best-effort snapshot deltas when
     * the cache is shared across concurrent runtimes) plus the
     * engine's exec-cost memo (exact). Store counters stay zero when
     * SchedulerConfig::storeCache is off; warm store hits are what
     * make drift-triggered re-schedules cheap.
     */
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;

    /** Noise-calibrated trigger threshold the monitor settled on. */
    double driftThreshold = 0.0;

    /** Completion tick of the last request. */
    Tick horizonTicks = 0;

    // ---- fault tolerance / overload protection ---------------------
    // Serialized into the JSON report only while faultActive is set,
    // so default-configured runs keep the pre-fault report bytes.

    /** Arrivals shed by admission control (never enqueued). */
    std::uint64_t shedRequests = 0;

    /** Degraded re-schedules forced by a healthy-tile change. */
    int failovers = 0;

    /** Drift re-schedules abandoned by the watchdog. */
    int watchdogFallbacks = 0;

    /** Re-schedules built under an active store-fit-failure window
     * (compiled without kernel-store cache reuse). */
    int storeFitFailures = 0;

    // Live fault state at the end of the run.
    int failedTiles = 0;
    int downLinks = 0;
    int degradedLinks = 0;

    // NoC fault-handling counters.
    std::uint64_t probeDrops = 0;
    std::uint64_t probeRetries = 0;
    std::uint64_t probeGiveUps = 0;
    std::uint64_t nocDetours = 0;
    std::uint64_t unroutablePaths = 0;

    /** Any fault-tolerance machinery was active this run (a fault
     * plan, admission control, or a watchdog budget). */
    bool faultActive = false;

    // ---- schedule search --------------------------------------------
    // Serialized into the JSON report only while searchActive is set,
    // so search-off runs keep the pre-search report bytes.

    /** Drift re-schedules where the searched schedule beat the
     * heuristic rebuild and was installed. */
    int searchReschedules = 0;

    /** Largest modeled cycle charge of any drift re-schedule
     * (heuristic rebuild + search spend); the serve-side proof that
     * the search stayed inside rescheduleBudgetCycles. */
    Cycles maxRescheduleCycles = 0;

    /** Aggregate search counters (see core/search_stats.hh); the
     * cache counters here are already subtracted from the run-level
     * mapper/store counters above, so those keep reflecting the
     * installed schedules only. */
    core::SearchStats search;

    /** ServeConfig::searchOnDrift was set. */
    bool searchActive = false;
};

/** One serving run as a JSON object (for BENCH_serve.json). */
std::string toJson(const ServeReport &report);

/** Request-driven serving simulation over one workload graph. */
class ServeRuntime
{
  public:
    /**
     * @param trace_cfg dynamism model of the workload; its batchSize
     *        must equal the compiled batch size the graph was built
     *        with (requests draw from a batchSize-1 copy).
     */
    ServeRuntime(const graph::DynGraph &dg,
                 trace::TraceConfig trace_cfg, arch::HwConfig hw,
                 core::SchedulerConfig sched_cfg,
                 core::ExecPolicy policy, ServeConfig serve_cfg,
                 std::string workload_name);

    /** Share a mapping-search memo across concurrent runtimes (same
     * contract as System::setSharedMapper). */
    void setSharedMapper(costmodel::Mapper *mapper);

    /** Use @p cache instead of KernelStoreCache::global() for
     * compiled-store reuse (same contract as
     * System::setSharedStoreCache). */
    void setSharedStoreCache(kernels::KernelStoreCache *cache);

    /** Build per-stage kernel stores on @p pool during (re-)schedules
     * (same contract as System::setSchedulerPool). */
    void setSchedulerPool(ThreadPool *pool);

    /** Serve ServeConfig::numRequests requests and report. */
    ServeReport run();

  private:
    const graph::DynGraph &dg_;
    trace::TraceConfig traceCfg_;
    arch::HwConfig hw_;
    core::SchedulerConfig schedCfg_;
    core::ExecPolicy policy_;
    ServeConfig cfg_;
    std::string workloadName_;
    costmodel::Mapper *sharedMapper_ = nullptr;
    kernels::KernelStoreCache *sharedStoreCache_ = nullptr;
    ThreadPool *schedulerPool_ = nullptr;
};

} // namespace adyna::serve

#endif // ADYNA_SERVE_SERVER_HH
