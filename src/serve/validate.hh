/**
 * @file
 * Serving-config validation: every user-facing knob of the serving
 * runtime is range-checked up front with a clear, field-naming error
 * message (ADYNA_FATAL, exit code 1) instead of failing deep inside
 * the run with an internal assertion. ServeRuntime validates its
 * ServeConfig on construction; the free functions are exposed so CLI
 * front-ends can validate before building the heavier runtime state.
 */

#ifndef ADYNA_SERVE_VALIDATE_HH
#define ADYNA_SERVE_VALIDATE_HH

#include "serve/server.hh"

namespace adyna::serve {

/** Fatal on non-positive rates, out-of-range burst parameters, or a
 * Replay config without a trace file. */
void validateArrivalConfig(const ArrivalConfig &cfg);

/** Fatal on a zero/negative maxBatch. */
void validateBatchPolicy(const BatchPolicy &policy);

/** Fatal on a non-positive deadline. */
void validateSloConfig(const SloConfig &cfg);

/** Fatal on non-positive windows / buckets or negative thresholds,
 * hysteresis, or cooldown. */
void validateDriftConfig(const DriftConfig &cfg);

/** Validate every nested config plus the serve-level knobs
 * (numRequests, profileBatches, shedLatencyFactor, fault plan
 * targets). */
void validateServeConfig(const ServeConfig &cfg);

} // namespace adyna::serve

#endif // ADYNA_SERVE_VALIDATE_HH
