/**
 * @file
 * Distribution-shift detection for the serving runtime: the monitor
 * keeps the per-request dyn-value distributions the current schedule
 * was built from (a Profiler table snapshot) and compares each
 * observation window against them with the windowed L1 distance
 * (arch::Profiler::driftL1). A re-schedule triggers only after a
 * configurable number of consecutive hot windows (hysteresis) and is
 * followed by a cooldown, so sampling noise on a stationary stream
 * cannot cause re-schedule storms.
 */

#ifndef ADYNA_SERVE_DRIFT_HH
#define ADYNA_SERVE_DRIFT_HH

#include <map>

#include "arch/profiler.hh"
#include "common/types.hh"

namespace adyna::serve {

/** Drift detection policy. */
struct DriftConfig
{
    /** Requests per observation window. */
    int windowRequests = 256;

    /** Absolute drift distance (see DriftMonitor::distanceTo, in
     * [0, 2]) above which a window counts as hot; the floor of the
     * effective threshold. */
    double threshold = 0.15;

    /** The effective threshold is max(threshold, noiseMultiplier x
     * the measured same-distribution noise floor), so one policy
     * works across workloads whose sampling noise differs by an
     * order of magnitude (binary skip gates vs expert histograms). */
    double noiseMultiplier = 2.5;

    /** Consecutive hot windows required to trigger a re-schedule. */
    int hysteresisWindows = 2;

    /** Windows after a trigger during which no new trigger fires
     * (the pipeline-drain + re-sampling cost must amortize). */
    int cooldownWindows = 2;

    /** Equal-width buckets for the L1 distance on wide domains. */
    int l1Buckets = 8;
};

/** Windowed L1 drift detector with hysteresis and cooldown. */
class DriftMonitor
{
  public:
    explicit DriftMonitor(DriftConfig cfg);

    /** Install the reference distributions the active schedule was
     * built from (typically Profiler::tablesSnapshot()). Clears the
     * hot streak and starts the cooldown. */
    void setReference(std::map<OpId, FreqHistogram> reference);

    /** Calibrate the same-distribution noise floor: the L1 distance
     * measured between two windows of known-identical traffic (e.g.
     * two halves of the reference probe stream). */
    void setNoiseFloor(double floor);

    /** The threshold actually compared against. */
    double effectiveThreshold() const;

    /**
     * Distance of @p profiler's current tables from the reference:
     * the worse of the bucketed shape distance (Profiler::driftL1)
     * and the per-op relative expectation shift, clamped to the same
     * [0, 2] scale. The expectation term is what bucketing can hide:
     * a tail that moves a lot of compute (deeper early-exits, say)
     * barely dents the bucket masses but moves the mean — and the
     * scheduler allocates tiles by exactly these expectations, so a
     * mean shift is by definition a stale schedule.
     */
    double distanceTo(const arch::Profiler &profiler) const;

    /**
     * Score one completed window held in @p profiler's frequency
     * tables against the reference. Returns true when the hysteresis
     * criterion is met and the cooldown has expired — the caller
     * should re-schedule and install a new reference. The caller
     * owns resetting the profiler window afterwards.
     */
    bool observe(const arch::Profiler &profiler);

    /** Distance of the most recent window. */
    double lastDistance() const { return lastDistance_; }

    /** Current consecutive-hot-window count. */
    int hotStreak() const { return hotStreak_; }

    /** Windows observed since construction. */
    int windowsObserved() const { return windows_; }

    const DriftConfig &config() const { return cfg_; }
    const std::map<OpId, FreqHistogram> &reference() const
    {
        return reference_;
    }

  private:
    DriftConfig cfg_;
    std::map<OpId, FreqHistogram> reference_;
    double noiseFloor_ = 0.0;
    double lastDistance_ = 0.0;
    int hotStreak_ = 0;
    int cooldown_ = 0;
    int windows_ = 0;
};

} // namespace adyna::serve

#endif // ADYNA_SERVE_DRIFT_HH
