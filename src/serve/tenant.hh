/**
 * @file
 * Tenant descriptions for multi-tenant serving: a tenant is one
 * workload with its own serving configuration (arrival process,
 * batching, SLO, drift policy) plus an SLO class that ranks it
 * against the chip's other tenants. The classes drive partition
 * sizing (latency-critical tenants get proportionally more tiles per
 * unit of offered load), priority preemption, and shed ordering in
 * the multi-tenant runtime (`src/mtenant`). The types live in serve
 * so the serving-config validators (`serve/validate.cc`) can check
 * tenant lists without depending on the runtime built on top of
 * them.
 */

#ifndef ADYNA_SERVE_TENANT_HH
#define ADYNA_SERVE_TENANT_HH

#include <string>
#include <vector>

#include "serve/server.hh"

namespace adyna::serve {

/** Service classes, strongest isolation first. */
enum class SloClass {
    LatencyCritical, ///< user-facing tail-latency SLO; may preempt
    Standard,        ///< throughput-oriented, deadline still tracked
    BestEffort,      ///< fills leftover capacity, shed first
};

/** Canonical lower-case class name ("latency-critical", ...). */
const char *sloClassName(SloClass cls);

/** Partition-sizing weight of a class: a tenant's tile share is
 * proportional to offered load x this weight (4 / 2 / 1). */
double sloClassWeight(SloClass cls);

/** One tenant of a multi-tenant serving run. */
struct TenantSpec
{
    /** Unique tenant identifier (serve JSON key; must be non-empty
     * and unique across the run). */
    std::string id;

    SloClass cls = SloClass::Standard;

    /**
     * The tenant's own serving knobs — arrival process, batching,
     * SLO deadline, drift policy, admission control, per-tenant
     * watchdog budget. The chip-level fault timeline belongs to the
     * multi-tenant config, so serve.faultPlan must stay empty here.
     */
    ServeConfig serve;

    /**
     * Offered-load hint for initial partition sizing, in requests
     * per second; 0 (the default) derives it from
     * serve.arrival.ratePerSec. The elastic repartition controller
     * replaces this with measured load once traffic flows.
     */
    double loadWeight = 0.0;
};

/**
 * Validate a multi-tenant tenant list: at least one tenant, every
 * nested ServeConfig valid, non-empty unique ids, non-negative load
 * weights, positive per-tenant rates, and no per-tenant fault plans
 * (chip-level faults are configured once for the whole chip).
 * ADYNA_FATAL with the offending tenant id / field on violation.
 */
void validateTenantSpecs(const std::vector<TenantSpec> &tenants);

} // namespace adyna::serve

#endif // ADYNA_SERVE_TENANT_HH
