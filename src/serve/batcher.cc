#include "serve/batcher.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::serve {

Batcher::Batcher(BatchPolicy policy) : policy_(policy)
{
    ADYNA_ASSERT(policy_.maxBatch >= 1, "maxBatch must be >= 1");
}

void
Batcher::enqueue(Request r)
{
    ADYNA_ASSERT(queue_.empty() ? r.arrival >= lastArrival_
                                : r.arrival >= queue_.back().arrival,
                 "arrivals must be non-decreasing");
    lastArrival_ = r.arrival;
    queue_.push_back(std::move(r));
}

Tick
Batcher::nextFormTick() const
{
    if (queue_.empty())
        return kNever;
    const auto maxBatch = static_cast<std::size_t>(policy_.maxBatch);
    if (queue_.size() >= maxBatch)
        return queue_[maxBatch - 1].arrival;
    // Saturating add: a huge maxWait must not wrap around.
    const Tick deadline =
        queue_.front().arrival > kNever - policy_.maxWaitCycles
            ? kNever
            : queue_.front().arrival + policy_.maxWaitCycles;
    return deadline;
}

FormedBatch
Batcher::form(Tick now)
{
    ADYNA_ASSERT(now >= nextFormTick(),
                 "batch formed before its form tick");
    FormedBatch out;
    out.formedAt = now;
    const auto take = std::min<std::size_t>(
        queue_.size(), static_cast<std::size_t>(policy_.maxBatch));
    out.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        out.requests.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    std::vector<const trace::BatchRouting *> parts;
    parts.reserve(out.requests.size());
    for (const Request &r : out.requests)
        parts.push_back(&r.routing);
    out.routing = trace::mergeRoutings(parts);
    return out;
}

bool
Batcher::cancel(std::uint64_t id)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->id == id) {
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<Request>
Batcher::drain()
{
    std::vector<Request> out(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.end()));
    queue_.clear();
    return out;
}

} // namespace adyna::serve
