/**
 * @file
 * Request arrival processes for the online serving runtime: open-loop
 * load generators producing monotone request timestamps in simulated
 * accelerator cycles. Three kinds are supported — Poisson (the
 * classic open-loop assumption), a 2-state Markov-modulated Poisson
 * process (bursty traffic: a high-rate burst state with exponential
 * dwell times), and replay of a recorded arrival-timestamp file (the
 * hook for driving the simulator with production traffic traces).
 * Deterministic given (config, seed).
 */

#ifndef ADYNA_SERVE_ARRIVAL_HH
#define ADYNA_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace adyna::serve {

/** The supported arrival process families. */
enum class ArrivalKind {
    Poisson, ///< memoryless arrivals at a fixed mean rate
    Bursty,  ///< 2-state MMPP: burst state multiplies the rate
    Replay,  ///< timestamps replayed from a trace file
};

/** Arrival process parameters. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Long-run mean arrival rate, requests per second (Poisson and
     * Bursty; the burst/normal split is derived so the mean holds). */
    double ratePerSec = 2000.0;

    /** Bursty: rate multiplier while in the burst state. */
    double burstRateMultiplier = 4.0;

    /** Bursty: long-run fraction of time spent in the burst state,
     * in (0, 1). */
    double burstFraction = 0.15;

    /** Bursty: mean dwell time in the burst state, seconds. */
    double burstDwellSec = 0.02;

    /** Replay: path of an arrival-timestamp file (one ascending
     * timestamp in seconds per line; '#' comments allowed). The
     * trace wraps around, shifted by its span, when exhausted. */
    std::string traceFile;

    /** Clock used to convert seconds to ticks. */
    double freqGhz = 1.0;
};

/** One timestamped arrival stream. */
class ArrivalProcess
{
  public:
    ArrivalProcess(ArrivalConfig cfg, std::uint64_t seed);

    /** Tick of the next arrival; non-decreasing across calls. */
    Tick next();

    /** Arrivals drawn so far. */
    std::uint64_t generated() const { return generated_; }

    const ArrivalConfig &config() const { return cfg_; }

  private:
    /** Exponential inter-arrival draw at @p rate_per_sec. */
    double expDraw(double rate_per_sec);

    ArrivalConfig cfg_;
    Rng rng_;
    std::uint64_t generated_ = 0;
    double nowSec_ = 0.0;

    // Bursty (MMPP-2) state.
    bool inBurst_ = false;
    double stateEndSec_ = 0.0;
    double normalRate_ = 0.0; ///< base-state rate achieving the mean

    // Replay state.
    std::vector<double> replaySec_;
    std::size_t replayCursor_ = 0;
    double replayOffsetSec_ = 0.0;
};

/**
 * Splits one pod-level arrival stream across M models: each arrival
 * draws a model index from a fixed categorical distribution, so a
 * single open-loop process feeds a pod serving a model mix (the
 * multi-model analogue of per-tenant arrival processes). Seeded and
 * deterministic; with one model it degenerates to the identity and
 * draws nothing, so single-model pods consume the same random
 * streams as a bare ArrivalProcess.
 */
class TrafficSplitter
{
  public:
    /** @param fractions per-model traffic shares; must be positive
     * and sum to ~1 (re-normalized exactly). One entry disables the
     * split. */
    TrafficSplitter(std::vector<double> fractions,
                    std::uint64_t seed);

    /** Model index of the next arrival. */
    int next();

    int models() const { return static_cast<int>(cdf_.size()); }

    /** Arrivals handed to each model so far. */
    const std::vector<std::uint64_t> &counts() const
    {
        return counts_;
    }

  private:
    std::vector<double> cdf_; ///< inclusive prefix sums, back() = 1
    std::vector<std::uint64_t> counts_;
    Rng rng_;
};

/**
 * Load an arrival-timestamp trace: one timestamp in seconds per
 * line, ascending, '#'-prefixed comments and blank lines ignored.
 * fatal() on unreadable files or non-monotone timestamps.
 */
std::vector<double> loadArrivalTrace(const std::string &path);

/** Write an arrival-timestamp trace in the loadArrivalTrace format. */
void saveArrivalTrace(const std::string &path,
                      const std::vector<double> &timestamps_sec);

} // namespace adyna::serve

#endif // ADYNA_SERVE_ARRIVAL_HH
