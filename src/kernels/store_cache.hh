/**
 * @file
 * A process-wide, thread-safe cache of compiled kernel stores.
 *
 * Compiling a store is the expensive half of a (re-)schedule: one
 * mapping search plus one 128-byte metadata encode per sampled value
 * per tile count per stage. Re-schedules (periodic reconfiguration,
 * drift-triggered serving reconfiguration) and bench sweeps rebuild
 * stores for the same (operator, value set, tile count) triples over
 * and over; this cache turns those rebuilds into lookups.
 *
 * The key captures everything a compiled store depends on: the
 * operator's loop-nest signature (extents with N zeroed -- the
 * sampled values supersede the batch extent, mirroring the Mapper
 * memo key), stride, dtype, the exact clamped value set, the tile
 * count, and a hash of the technology parameters (so one global
 * cache can serve hardware-sweep benches with different chips).
 * Store compilation is deterministic given the key, so sharing a
 * cache across runs or threads never changes simulation outputs;
 * only the hit/miss counters depend on the interleaving (the same
 * contract as the shared Mapper memo).
 */

#ifndef ADYNA_KERNELS_STORE_CACHE_HH
#define ADYNA_KERNELS_STORE_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "costmodel/mapper.hh"
#include "graph/op.hh"
#include "kernels/store.hh"

namespace adyna::kernels {

/** Deterministic hash of every TechParams field a compiled store can
 * depend on (array shape, buffer capacities, metadata budget). */
std::uint64_t techHash(const costmodel::TechParams &tech);

/**
 * Compile one kernel store from scratch: for each value, search the
 * best mapping on @p tiles tiles and encode its metadata image.
 * @p values must be clamped/deduplicated by the caller (the
 * scheduler's "clean" set); the store keeps them sorted.
 */
KernelStore compileStore(const graph::OpNode &op,
                         const std::vector<std::int64_t> &values,
                         int tiles, costmodel::Mapper &mapper,
                         const costmodel::TechParams &tech);

/** Memoizing cache of compiled kernel stores. */
class KernelStoreCache
{
  public:
    KernelStoreCache() = default;
    KernelStoreCache(const KernelStoreCache &) = delete;
    KernelStoreCache &operator=(const KernelStoreCache &) = delete;

    /**
     * The store for (@p op signature, @p values, @p tiles, @p tech),
     * compiling through @p mapper on a miss. Concurrent racers may
     * duplicate the compile for one key; the first insertion wins
     * and results are identical either way.
     */
    std::shared_ptr<const KernelStore>
    getOrCompile(const graph::OpNode &op,
                 const std::vector<std::int64_t> &values, int tiles,
                 costmodel::Mapper &mapper,
                 const costmodel::TechParams &tech);

    /** Drop every cached store (e.g. cold-start benchmarking). */
    void clear();

    /** Cached stores. */
    std::size_t size() const;

    /** Cache statistics (monotone; safe to read concurrently). */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** The process-wide instance every System / ServeRuntime uses by
     * default, so re-schedules and sweeps share compiles. */
    static KernelStoreCache &global();

  private:
    struct Key
    {
        /** Loop extents with N zeroed (the value set supersedes the
         * batch extent). */
        std::array<std::int64_t, graph::kNumDims> ext{};
        int stride = 1;
        int dtypeBytes = 2;
        int tiles = 1;
        std::uint64_t tech = 0;
        std::vector<std::int64_t> values;

        auto operator<=>(const Key &) const = default;
    };

    static Key makeKey(const graph::OpNode &op,
                       const std::vector<std::int64_t> &values,
                       int tiles, const costmodel::TechParams &tech);

    mutable std::shared_mutex mutex_;
    std::map<Key, std::shared_ptr<const KernelStore>> cache_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace adyna::kernels

#endif // ADYNA_KERNELS_STORE_CACHE_HH
