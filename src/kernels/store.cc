#include "kernels/store.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::kernels {

void
KernelStore::add(Kernel kernel)
{
    const auto it = std::lower_bound(
        kernels_.begin(), kernels_.end(), kernel.value,
        [](const Kernel &k, std::int64_t v) { return k.value < v; });
    if (it != kernels_.end() && it->value == kernel.value)
        *it = std::move(kernel);
    else
        kernels_.insert(it, std::move(kernel));
}

bool
KernelStore::remove(std::int64_t value)
{
    const auto it = std::lower_bound(
        kernels_.begin(), kernels_.end(), value,
        [](const Kernel &k, std::int64_t v) { return k.value < v; });
    if (it == kernels_.end() || it->value != value)
        return false;
    kernels_.erase(it);
    return true;
}

void
KernelStore::clear()
{
    kernels_.clear();
}

const Kernel &
KernelStore::at(std::size_t i) const
{
    ADYNA_ASSERT(i < kernels_.size(), "kernel index out of range");
    return kernels_[i];
}

std::vector<std::int64_t>
KernelStore::values() const
{
    std::vector<std::int64_t> out;
    out.reserve(kernels_.size());
    for (const Kernel &k : kernels_)
        out.push_back(k.value);
    return out;
}

Dispatch
KernelStore::dispatch(std::int64_t actual) const
{
    ADYNA_ASSERT(!kernels_.empty(), "dispatch on empty kernel store");
    ADYNA_ASSERT(actual > 0, "dispatch needs a positive value, got ",
                 actual);
    const auto it = std::lower_bound(
        kernels_.begin(), kernels_.end(), actual,
        [](const Kernel &k, std::int64_t v) { return k.value < v; });
    Dispatch d;
    if (it != kernels_.end()) {
        d.index = static_cast<std::size_t>(it - kernels_.begin());
        d.passes = 1;
        d.perPass = actual;
        return d;
    }
    // Actual exceeds every kernel: run the largest one repeatedly.
    d.index = kernels_.size() - 1;
    const std::int64_t vmax = kernels_.back().value;
    d.passes = (actual + vmax - 1) / vmax;
    d.perPass = vmax;
    return d;
}

std::vector<std::int64_t>
uniformKernelValues(std::int64_t max_value, int count)
{
    ADYNA_ASSERT(max_value >= 1, "max kernel value must be >= 1");
    ADYNA_ASSERT(count >= 1, "kernel count must be >= 1");
    std::vector<std::int64_t> values;
    if (max_value <= static_cast<std::int64_t>(count)) {
        // Few distinct values: enumerate them all.
        for (std::int64_t v = 1; v <= max_value; ++v)
            values.push_back(v);
        return values;
    }
    if (count == 1)
        return {max_value};
    for (int i = 0; i < count; ++i) {
        const double frac =
            count == 1 ? 1.0
                       : static_cast<double>(i) / (count - 1);
        const std::int64_t v = 1 + static_cast<std::int64_t>(
                                       std::llround(
                                           frac * static_cast<double>(
                                                      max_value - 1)));
        if (values.empty() || values.back() != v)
            values.push_back(v);
    }
    if (values.back() != max_value)
        values.push_back(max_value);
    return values;
}

} // namespace adyna::kernels
