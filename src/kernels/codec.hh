/**
 * @file
 * The hardware template-kernel metadata format (Figure 8).
 *
 * A kernel is stored on-chip not as a program but as per-(dim, level)
 * metadata interpreted by the tile's instruction-issuer FSM: a 16-bit
 * blocking factor, a 4-bit iteration stride, and a 4-bit loop-order
 * slot, for 7 data dimensions at 5 loop levels, plus the 16-bit total
 * extent of each dimension. That is 7*5*3 + 7*2 = 119 bytes, padded
 * with a small header to the paper's 128-byte kernel size.
 *
 * Level assignment used by this implementation:
 *   L0 = PE-array block (innermost temporal),
 *   L1 = reserved (all ones),
 *   L2 = scratchpad block,
 *   L3 = spatial split across the tile group,
 *   L4 = DRAM-level block trip counts (order nibbles at this level
 *        encode the canonical loop order).
 */

#ifndef ADYNA_KERNELS_CODEC_HH
#define ADYNA_KERNELS_CODEC_HH

#include <array>
#include <cstdint>

#include "costmodel/mapping.hh"
#include "costmodel/tech.hh"

namespace adyna::kernels {

/** Size of one encoded kernel, in bytes. */
inline constexpr std::size_t kKernelBytes = 128;

/** On-chip representation of one kernel. */
using KernelImage = std::array<std::uint8_t, kKernelBytes>;

/**
 * Encode a mapping into the 128-byte metadata image.
 * fatal() if any extent exceeds the 16-bit field.
 */
KernelImage encodeKernel(const costmodel::Mapping &mapping, int stride,
                         const costmodel::TechParams &tech);

/**
 * Decode a metadata image back into a mapping. The decode is the
 * hardware dispatcher's view: it reconstructs exactly the loop
 * structure the instruction issuer iterates.
 */
costmodel::Mapping decodeKernel(const KernelImage &image);

} // namespace adyna::kernels

#endif // ADYNA_KERNELS_CODEC_HH
