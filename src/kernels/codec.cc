#include "kernels/codec.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::kernels {

using costmodel::LoopOrder;
using costmodel::Mapping;
using costmodel::SpatialSplit;
using graph::Dim;
using graph::kNumDims;
using graph::LoopDims;

namespace {

// Layout (all offsets in bytes):
//   [0]      magic 0xAD
//   [1]      format version
//   [2]      tile-group size
//   [3]      canonical loop-order id
//   [4..7]   reserved
//   [8..77]  blocking factors: 5 levels x 7 dims x u16 (LE)
//   [78..95] iteration strides: 5 levels x 7 dims x 4-bit nibbles
//   [96..113] loop-order slots: 5 levels x 7 dims x 4-bit nibbles
//   [114..127] total dim extents: 7 x u16 (LE)
constexpr std::size_t kOffFactors = 8;
constexpr std::size_t kOffStrides = 78;
constexpr std::size_t kOffOrders = 96;
constexpr std::size_t kOffTotals = 114;
constexpr int kNumLevels = 5;

void
putU16(KernelImage &img, std::size_t off, std::uint64_t v)
{
    ADYNA_ASSERT(v <= 0xffff, "kernel metadata field overflow: ", v);
    img[off] = static_cast<std::uint8_t>(v & 0xff);
    img[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

std::uint16_t
getU16(const KernelImage &img, std::size_t off)
{
    return static_cast<std::uint16_t>(img[off] |
                                      (img[off + 1] << 8));
}

void
putNibble(KernelImage &img, std::size_t base, int index,
          std::uint8_t value)
{
    ADYNA_ASSERT(value <= 0xf, "nibble overflow: ", int{value});
    const std::size_t byte = base + static_cast<std::size_t>(index / 2);
    if (index % 2 == 0)
        img[byte] =
            static_cast<std::uint8_t>((img[byte] & 0xf0) | value);
    else
        img[byte] = static_cast<std::uint8_t>((img[byte] & 0x0f) |
                                              (value << 4));
}

std::uint8_t
getNibble(const KernelImage &img, std::size_t base, int index)
{
    const std::size_t byte = base + static_cast<std::size_t>(index / 2);
    return index % 2 == 0
               ? static_cast<std::uint8_t>(img[byte] & 0x0f)
               : static_cast<std::uint8_t>(img[byte] >> 4);
}

std::size_t
factorOff(int level, int dim)
{
    return kOffFactors +
           static_cast<std::size_t>(level * static_cast<int>(kNumDims) +
                                    dim) *
               2;
}

int
slotIndex(int level, int dim)
{
    return level * static_cast<int>(kNumDims) + dim;
}

} // namespace

KernelImage
encodeKernel(const Mapping &mapping, int stride,
             const costmodel::TechParams &tech)
{
    KernelImage img{};
    img[0] = 0xad;
    img[1] = 1;
    ADYNA_ASSERT(mapping.tiles >= 1 && mapping.tiles <= 255,
                 "tile-group size out of range: ", mapping.tiles);
    img[2] = static_cast<std::uint8_t>(mapping.tiles);
    img[3] = static_cast<std::uint8_t>(mapping.order);

    const LoopDims perTile = mapping.perTileDims();

    // L0: PE-array block.
    LoopDims arrayBlock;
    arrayBlock[Dim::N] = 1;
    arrayBlock[Dim::K] =
        std::min<std::int64_t>(tech.peRows, perTile.k());
    arrayBlock[Dim::C] =
        std::min<std::int64_t>(tech.peCols, perTile.c());
    arrayBlock[Dim::P] = 1;
    arrayBlock[Dim::Q] = 1;
    arrayBlock[Dim::R] = perTile.r();
    arrayBlock[Dim::S] = perTile.s();

    // L2: scratchpad block (clamped to per-tile extents).
    LoopDims spad = mapping.spadBlock;
    for (std::size_t d = 0; d < kNumDims; ++d) {
        const Dim dd = static_cast<Dim>(d);
        spad[dd] = std::clamp<std::int64_t>(spad[dd], 1, perTile[dd]);
    }

    // L3: spatial split factors; L4: DRAM-level trip counts.
    LoopDims spatial;
    for (std::size_t d = 0; d < kNumDims; ++d)
        spatial[static_cast<Dim>(d)] =
            mapping.splitFactor(static_cast<Dim>(d));
    LoopDims dram;
    for (std::size_t d = 0; d < kNumDims; ++d) {
        const Dim dd = static_cast<Dim>(d);
        dram[dd] = (perTile[dd] + spad[dd] - 1) / spad[dd];
    }

    const LoopDims *levels[kNumLevels] = {&arrayBlock, nullptr, &spad,
                                          &spatial, &dram};
    for (int level = 0; level < kNumLevels; ++level) {
        for (int d = 0; d < static_cast<int>(kNumDims); ++d) {
            const std::int64_t f =
                levels[level] == nullptr
                    ? 1
                    : (*levels[level])[static_cast<Dim>(d)];
            putU16(img, factorOff(level, d),
                   static_cast<std::uint64_t>(f));
        }
    }

    // Strides: the conv stride applies to the spatial output dims at
    // the innermost level; everything else iterates by 1.
    for (int level = 0; level < kNumLevels; ++level) {
        for (int d = 0; d < static_cast<int>(kNumDims); ++d) {
            std::uint8_t s = 1;
            const Dim dd = static_cast<Dim>(d);
            if (level == 0 && (dd == Dim::P || dd == Dim::Q))
                s = static_cast<std::uint8_t>(
                    std::min(stride, 15));
            putNibble(img, kOffStrides, slotIndex(level, d), s);
        }
    }

    // Loop-order slots: the canonical permutation, repeated per level.
    const auto perm = costmodel::orderPermutation(mapping.order);
    std::array<std::uint8_t, kNumDims> slotOf{};
    for (std::size_t pos = 0; pos < kNumDims; ++pos)
        slotOf[static_cast<std::size_t>(
            static_cast<std::uint8_t>(perm[pos]))] =
            static_cast<std::uint8_t>(pos);
    for (int level = 0; level < kNumLevels; ++level)
        for (int d = 0; d < static_cast<int>(kNumDims); ++d)
            putNibble(img, kOffOrders, slotIndex(level, d),
                      slotOf[static_cast<std::size_t>(d)]);

    // Total extents.
    for (int d = 0; d < static_cast<int>(kNumDims); ++d)
        putU16(img, kOffTotals + static_cast<std::size_t>(d) * 2,
               static_cast<std::uint64_t>(
                   mapping.compiledDims[static_cast<Dim>(d)]));
    return img;
}

Mapping
decodeKernel(const KernelImage &image)
{
    ADYNA_ASSERT(image[0] == 0xad && image[1] == 1,
                 "bad kernel image header");
    Mapping m;
    m.tiles = image[2];

    // Reconstruct the loop order from the order-slot nibbles (the
    // header byte is redundant and cross-checked here).
    std::array<Dim, kNumDims> perm{};
    for (int d = 0; d < static_cast<int>(kNumDims); ++d) {
        const std::uint8_t pos =
            getNibble(image, kOffOrders, slotIndex(/*level=*/4, d));
        ADYNA_ASSERT(pos < kNumDims, "bad order slot ", int{pos});
        perm[pos] = static_cast<Dim>(d);
    }
    bool matched = false;
    for (int o = 0; o < costmodel::kNumLoopOrders; ++o) {
        if (costmodel::orderPermutation(static_cast<LoopOrder>(o)) ==
            perm) {
            m.order = static_cast<LoopOrder>(o);
            matched = true;
            break;
        }
    }
    ADYNA_ASSERT(matched, "order nibbles encode no canonical order");
    ADYNA_ASSERT(static_cast<LoopOrder>(image[3]) == m.order,
                 "order header/nibble mismatch");

    for (int d = 0; d < static_cast<int>(kNumDims); ++d)
        m.compiledDims[static_cast<Dim>(d)] =
            getU16(image, kOffTotals + static_cast<std::size_t>(d) * 2);

    for (int d = 0; d < static_cast<int>(kNumDims); ++d) {
        const int f =
            getU16(image, factorOff(/*level=*/3, d));
        if (f > 1)
            m.splits.push_back(
                SpatialSplit{static_cast<Dim>(d), f});
    }
    for (int d = 0; d < static_cast<int>(kNumDims); ++d)
        m.spadBlock[static_cast<Dim>(d)] =
            getU16(image, factorOff(/*level=*/2, d));
    return m;
}

} // namespace adyna::kernels
