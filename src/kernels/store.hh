/**
 * @file
 * Per-operator multi-kernel stores and the hardware dispatch rule
 * (Section VI-B): each tile keeps several kernels compiled for
 * different dyn_dim values; at runtime the dispatcher selects the
 * kernel with the smallest compiled value that is no less than the
 * actual value. If the actual value exceeds every compiled value the
 * largest kernel runs in multiple passes.
 */

#ifndef ADYNA_KERNELS_STORE_HH
#define ADYNA_KERNELS_STORE_HH

#include <cstdint>
#include <vector>

#include "costmodel/mapping.hh"
#include "costmodel/tech.hh"
#include "kernels/codec.hh"

namespace adyna::kernels {

/** One compiled kernel: a mapping at a concrete dyn_dim value plus
 * its encoded 128-byte on-chip metadata image (Figure 8). */
struct Kernel
{
    std::int64_t value = 0; ///< the compiled dyn_dim (batch) value
    costmodel::Mapping mapping;
    KernelImage image{}; ///< what the tile actually stores
};

/** Result of a dispatch: which kernel, and in how many passes. */
struct Dispatch
{
    /** Index of the selected kernel in the store. */
    std::size_t index = 0;

    /** Number of sequential passes (1 unless the actual value
     * exceeds every compiled value). */
    std::int64_t passes = 1;

    /** Actual rows processed in each pass (last pass may be
     * partial). */
    std::int64_t perPass = 0;
};

/** Sorted set of kernels for one operator on one tile group. */
class KernelStore
{
  public:
    KernelStore() = default;

    /** Add a kernel; keeps the store sorted by compiled value.
     * Replaces an existing kernel with the same value. */
    void add(Kernel kernel);

    /** Remove the kernel compiled for @p value; false if absent. */
    bool remove(std::int64_t value);

    /** Drop all kernels. */
    void clear();

    std::size_t size() const { return kernels_.size(); }
    bool empty() const { return kernels_.empty(); }

    const Kernel &at(std::size_t i) const;
    const std::vector<Kernel> &kernels() const { return kernels_; }

    /** Sorted compiled values. */
    std::vector<std::int64_t> values() const;

    /** Total metadata bytes this store occupies on-chip. */
    Bytes
    metadataBytes() const
    {
        return static_cast<Bytes>(kernels_.size()) * kKernelBytes;
    }

    /**
     * The hardware dispatch rule. @p actual must be positive and the
     * store non-empty.
     */
    Dispatch dispatch(std::int64_t actual) const;

  private:
    std::vector<Kernel> kernels_; // sorted by value ascending
};

/**
 * Initial kernel placement (Section VII): values uniformly spanned
 * between 1 and @p max_value, inclusive of both endpoints, at most
 * @p count values.
 */
std::vector<std::int64_t> uniformKernelValues(std::int64_t max_value,
                                              int count);

} // namespace adyna::kernels

#endif // ADYNA_KERNELS_STORE_HH
