#include "kernels/store_cache.hh"

#include <mutex>

#include "common/logging.hh"

namespace adyna::kernels {

namespace {

/** FNV-1a over a little stream of 64-bit words. */
class Fnv64
{
  public:
    void
    mix(std::uint64_t word)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (word >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ull;
        }
    }

    void
    mix(double value)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        mix(bits);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t
techHash(const costmodel::TechParams &tech)
{
    // Conservative: hash every numeric field, including energy/area
    // constants a compiled store does not depend on. A false
    // negative only costs one redundant compile; a false positive
    // would silently share stores across incompatible chips.
    Fnv64 h;
    h.mix(static_cast<std::uint64_t>(tech.peRows));
    h.mix(static_cast<std::uint64_t>(tech.peCols));
    h.mix(tech.freqGhz);
    h.mix(static_cast<std::uint64_t>(tech.spadBytes));
    h.mix(static_cast<std::uint64_t>(tech.rfBytes));
    h.mix(tech.kernelSpadFraction);
    h.mix(static_cast<std::uint64_t>(tech.kernelMetadataBytes));
    h.mix(tech.eMacPj);
    h.mix(tech.eSramPerBytePj);
    h.mix(tech.eDramPerBytePj);
    h.mix(tech.eNocPerByteHopPj);
    h.mix(tech.peArrayAreaMm2);
    h.mix(tech.peArrayPowerMw);
    h.mix(tech.spadAreaMm2);
    h.mix(tech.spadPowerMw);
    h.mix(tech.dispatcherCtrlAreaMm2);
    h.mix(tech.dispatcherCtrlPowerMw);
    h.mix(tech.routerNicAreaMm2);
    h.mix(tech.routerNicPowerMw);
    return h.value();
}

KernelStore
compileStore(const graph::OpNode &op,
             const std::vector<std::int64_t> &values, int tiles,
             costmodel::Mapper &mapper,
             const costmodel::TechParams &tech)
{
    KernelStore store;
    for (std::int64_t v : values) {
        Kernel k;
        k.value = v;
        k.mapping = mapper.search(op, v, tiles);
        k.image = encodeKernel(k.mapping, op.stride, tech);
        store.add(std::move(k));
    }
    return store;
}

std::shared_ptr<const KernelStore>
KernelStoreCache::getOrCompile(const graph::OpNode &op,
                               const std::vector<std::int64_t> &values,
                               int tiles, costmodel::Mapper &mapper,
                               const costmodel::TechParams &tech)
{
    Key key = makeKey(op, values, tiles, tech);
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Compile outside the lock: concurrent racers may duplicate the
    // work for one key, but compilation is deterministic and emplace
    // keeps the first insertion.
    auto store = std::make_shared<const KernelStore>(
        compileStore(op, values, tiles, mapper, tech));
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const auto [it, inserted] =
        cache_.emplace(std::move(key), std::move(store));
    (void)inserted;
    return it->second;
}

void
KernelStoreCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    cache_.clear();
}

std::size_t
KernelStoreCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return cache_.size();
}

KernelStoreCache &
KernelStoreCache::global()
{
    static KernelStoreCache instance;
    return instance;
}

KernelStoreCache::Key
KernelStoreCache::makeKey(const graph::OpNode &op,
                          const std::vector<std::int64_t> &values,
                          int tiles, const costmodel::TechParams &tech)
{
    Key key;
    key.ext = op.dims.ext;
    // The N extent is superseded by the compiled value set (the same
    // normalization as the Mapper memo key).
    key.ext[0] = 0;
    key.stride = op.stride;
    key.dtypeBytes = op.dtypeBytes;
    key.tiles = tiles;
    key.tech = techHash(tech);
    key.values = values;
    return key;
}

} // namespace adyna::kernels
