/**
 * @file
 * The whole accelerator: tile compute occupancy, the torus NoC, the
 * HBM stacks, and the energy/utilization accounting the evaluation
 * figures are built from.
 */

#ifndef ADYNA_ARCH_CHIP_HH
#define ADYNA_ARCH_CHIP_HH

#include <vector>

#include "arch/hbm.hh"
#include "arch/hwconfig.hh"
#include "arch/noc.hh"
#include "des/resource.hh"

namespace adyna::arch {

/** Energy breakdown in picojoules (Figure 11's categories). */
struct EnergyBreakdown
{
    PicoJoules pe = 0.0;   ///< MAC array (incl. register files)
    PicoJoules sram = 0.0; ///< scratchpad traffic
    PicoJoules hbm = 0.0;  ///< off-chip DRAM traffic
    PicoJoules noc = 0.0;  ///< on-chip interconnect traffic

    PicoJoules total() const { return pe + sram + hbm + noc; }
};

/** The modelled accelerator chip. */
class Chip
{
  public:
    explicit Chip(const HwConfig &cfg);

    const HwConfig &config() const { return cfg_; }
    Noc &noc() { return noc_; }
    const Noc &noc() const { return noc_; }
    Hbm &hbm() { return hbm_; }
    const Hbm &hbm() const { return hbm_; }

    /**
     * Occupy @p tiles for @p duration cycles starting no earlier
     * than @p earliest; all tiles start together (SIMD tile group).
     * @return the [start, end) reservation.
     */
    des::Reservation occupyTiles(Tick earliest,
                                 const std::vector<TileId> &tiles,
                                 Tick duration);

    /** Earliest time all of @p tiles are free. */
    Tick tilesFreeAt(const std::vector<TileId> &tiles) const;

    /** Latest busy-until over every tile (pipeline drain point). */
    Tick allTilesFreeAt() const;

    /** Charge PE (MAC array) energy. */
    void chargePeEnergy(PicoJoules pj) { energy_.pe += pj; }

    /** Charge scratchpad traffic energy. */
    void chargeSramEnergy(PicoJoules pj) { energy_.sram += pj; }

    /** Charge DRAM traffic energy for @p bytes. */
    void chargeHbmEnergy(Bytes bytes);

    /** Charge NoC energy for @p byte_hops. */
    void chargeNocEnergy(Bytes byte_hops);

    /** Record issued MACs (PE utilization numerator, incl. redundant
     * work) and useful MACs. */
    void recordMacs(MacCount issued, MacCount useful);

    /** Record tile busy cycles (sum over tiles of occupancy). */
    void recordBusy(Tick tile_cycles) { busyTileCycles_ += tile_cycles; }

    // --- fault state (driven by fault::FaultInjector) ---------------

    /** Mark a tile failed: it stops contributing compute until
     * recoverTile(). Reservations it already holds stand (in-flight
     * work is drained by the degraded-execution model). */
    void failTile(TileId tile);

    /** Bring a failed tile back. */
    void recoverTile(TileId tile);

    bool tileHealthy(TileId tile) const
    {
        return failedMask_.empty() || !failedMask_[tile];
    }

    /** Cheap gate for the engine's degraded-execution branch. */
    bool anyTileFailed() const { return failedTiles_ > 0; }

    int failedTileCount() const { return failedTiles_; }

    /** Ascending ids of the currently healthy tiles. */
    std::vector<TileId> healthyTiles() const;

    // --- metrics ----------------------------------------------------

    const EnergyBreakdown &energy() const { return energy_; }
    MacCount issuedMacs() const { return issuedMacs_; }
    MacCount usefulMacs() const { return usefulMacs_; }
    Tick busyTileCycles() const { return busyTileCycles_; }

    /** PE utilization over a run of @p total_cycles: issued MACs /
     * (peak MACs in that window). Matches Figure 10's semantics
     * (redundant work counts as busy). */
    double peUtilization(Tick total_cycles) const;

    /** DRAM bandwidth utilization over @p total_cycles. */
    double hbmUtilization(Tick total_cycles) const;

    /** Drop all reservations and metrics. */
    void reset();

  private:
    HwConfig cfg_;
    Noc noc_;
    Hbm hbm_;
    std::vector<des::SerialResource> tileCompute_;

    EnergyBreakdown energy_;
    MacCount issuedMacs_ = 0;
    MacCount usefulMacs_ = 0;
    Tick busyTileCycles_ = 0;

    /** Failed-tile mask; empty until the first failTile() so the
     * fault-free tileHealthy() fast path is one emptiness test. */
    std::vector<char> failedMask_;
    int failedTiles_ = 0;
};

} // namespace adyna::arch

#endif // ADYNA_ARCH_CHIP_HH
