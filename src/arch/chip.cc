#include "arch/chip.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::arch {

Chip::Chip(const HwConfig &cfg)
    : cfg_(cfg), noc_(cfg), hbm_(cfg),
      tileCompute_(static_cast<std::size_t>(cfg.tiles()))
{
}

des::Reservation
Chip::occupyTiles(Tick earliest, const std::vector<TileId> &tiles,
                  Tick duration)
{
    ADYNA_ASSERT(!tiles.empty(), "occupyTiles with empty group");
    Tick start = earliest;
    for (TileId t : tiles) {
        ADYNA_ASSERT(t < tileCompute_.size(), "bad tile id ", t);
        start = std::max(start, tileCompute_[t].busyUntil());
    }
    for (TileId t : tiles)
        tileCompute_[t].acquire(start, duration);
    recordBusy(duration * static_cast<Tick>(tiles.size()));
    return {start, start + duration};
}

Tick
Chip::tilesFreeAt(const std::vector<TileId> &tiles) const
{
    Tick at = 0;
    for (TileId t : tiles) {
        ADYNA_ASSERT(t < tileCompute_.size(), "bad tile id ", t);
        at = std::max(at, tileCompute_[t].busyUntil());
    }
    return at;
}

Tick
Chip::allTilesFreeAt() const
{
    Tick at = 0;
    for (const auto &res : tileCompute_)
        at = std::max(at, res.busyUntil());
    return at;
}

void
Chip::failTile(TileId tile)
{
    ADYNA_ASSERT(tile < tileCompute_.size(), "bad tile id ", tile);
    if (failedMask_.empty())
        failedMask_.assign(tileCompute_.size(), 0);
    if (failedMask_[tile])
        return;
    failedMask_[tile] = 1;
    ++failedTiles_;
}

void
Chip::recoverTile(TileId tile)
{
    ADYNA_ASSERT(tile < tileCompute_.size(), "bad tile id ", tile);
    if (failedMask_.empty() || !failedMask_[tile])
        return;
    failedMask_[tile] = 0;
    --failedTiles_;
}

std::vector<TileId>
Chip::healthyTiles() const
{
    std::vector<TileId> out;
    out.reserve(tileCompute_.size());
    for (TileId t = 0; t < tileCompute_.size(); ++t)
        if (tileHealthy(t))
            out.push_back(t);
    return out;
}

void
Chip::chargeHbmEnergy(Bytes bytes)
{
    energy_.hbm +=
        cfg_.tech.eDramPerBytePj * static_cast<double>(bytes);
}

void
Chip::chargeNocEnergy(Bytes byte_hops)
{
    energy_.noc +=
        cfg_.tech.eNocPerByteHopPj * static_cast<double>(byte_hops);
}

void
Chip::recordMacs(MacCount issued, MacCount useful)
{
    issuedMacs_ += issued;
    usefulMacs_ += useful;
}

double
Chip::peUtilization(Tick total_cycles) const
{
    if (total_cycles == 0)
        return 0.0;
    const double peak = static_cast<double>(total_cycles) *
                        cfg_.tiles() *
                        static_cast<double>(cfg_.tech.macsPerCycle());
    return static_cast<double>(issuedMacs_) / peak;
}

double
Chip::hbmUtilization(Tick total_cycles) const
{
    if (total_cycles == 0)
        return 0.0;
    const double peak = static_cast<double>(total_cycles) *
                        hbm_.totalBandwidth();
    return static_cast<double>(hbm_.bytesServed()) / peak;
}

void
Chip::reset()
{
    noc_.reset();
    hbm_.reset();
    for (auto &t : tileCompute_)
        t.reset();
    energy_ = EnergyBreakdown{};
    issuedMacs_ = 0;
    usefulMacs_ = 0;
    busyTileCycles_ = 0;
}

} // namespace adyna::arch
