/**
 * @file
 * The hardware profiler (Sections IV, VI-A): per dynamic operator it
 * tracks the frequency of observed dyn_dim values (the frequency
 * track table) and, per switch, the recent per-branch load vectors
 * used by the scheduler for tile-sharing pair selection. Reports are
 * pulled periodically by the scheduler on the host.
 */

#ifndef ADYNA_ARCH_PROFILER_HH
#define ADYNA_ARCH_PROFILER_HH

#include <deque>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace adyna::arch {

/** Per-run profiler state. */
class Profiler
{
  public:
    /** @param history batches of per-branch loads kept per switch. */
    explicit Profiler(std::size_t history = 64);

    /** Record the dyn_dim value an operator observed in one batch. */
    void recordValue(OpId op, std::int64_t value);

    /** Note one completed batch (or request) in the current
     * observation window; cleared by resetTables(). */
    void noteBatch() { ++windowBatches_; }

    /** Batches noted since the last resetTables() — the length of
     * the observation window the frequency tables cover. */
    std::uint64_t windowBatches() const { return windowBatches_; }

    /** Record one batch's per-branch loads at a switch. */
    void recordBranchLoads(OpId switch_op,
                           const std::vector<std::int64_t> &loads);

    /** Frequency track table of an operator (empty if never seen). */
    const FreqHistogram &table(OpId op) const;

    /** All tracked operators. */
    std::vector<OpId> trackedOps() const;

    /** Recent per-branch load history of a switch (newest last). */
    const std::deque<std::vector<std::int64_t>> &
    branchHistory(OpId switch_op) const;

    /**
     * Covariance of the loads of two branches of a switch over the
     * recorded history; 0 if fewer than two batches recorded.
     */
    double branchCovariance(OpId switch_op, int a, int b) const;

    /** Fraction of recorded batches in which a branch was active
     * (load > 0); 1.0 if no history. */
    double branchActivity(OpId switch_op, int branch) const;

    /** Copy of every current frequency table — the snapshot a drift
     * monitor keeps as its reference distribution at schedule time. */
    std::map<OpId, FreqHistogram> tablesSnapshot() const
    {
        return tables_;
    }

    /**
     * Drift of the current window against a reference snapshot: the
     * worst (maximum) normalized-L1 distance (see distributionL1,
     * in [0, 2]) over the ops present with data on both sides,
     * folding wide value domains onto @p buckets equal-width
     * buckets. The max rather than the mean: one strongly-shifted
     * op (a repopularized expert, say) must not be averaged away by
     * many stationary ones. Returns 0 when nothing is comparable.
     */
    double driftL1(const std::map<OpId, FreqHistogram> &reference,
                   int buckets = 8) const;

    /** Clear the frequency tables (start of a profiling period);
     * branch history is kept rolling. */
    void resetTables();

    /** Clear everything. */
    void reset();

  private:
    std::size_t history_;
    std::uint64_t windowBatches_ = 0;
    std::map<OpId, FreqHistogram> tables_;
    std::map<OpId, std::deque<std::vector<std::int64_t>>> branches_;

    static const FreqHistogram kEmptyTable;
    static const std::deque<std::vector<std::int64_t>> kEmptyHistory;
};

} // namespace adyna::arch

#endif // ADYNA_ARCH_PROFILER_HH
