#include "arch/hbm.hh"

#include "common/logging.hh"

namespace adyna::arch {

Hbm::Hbm(const HwConfig &cfg) : cfg_(cfg)
{
    ADYNA_ASSERT(cfg_.hbmStacks >= 1, "need at least one HBM stack");
    const double perChannel =
        cfg_.hbmTotalBytesPerCycle / cfg_.hbmStacks;
    channels_.reserve(static_cast<std::size_t>(cfg_.hbmStacks));
    for (int i = 0; i < cfg_.hbmStacks; ++i)
        channels_.emplace_back(perChannel);
}

int
Hbm::channelOf(TileId tile) const
{
    // Interfaces spread along the chip edge: map by column band.
    const int col = cfg_.tileCol(tile);
    return col * cfg_.hbmStacks / cfg_.gridCols;
}

HbmAccess
Hbm::access(Tick earliest, TileId tile, Bytes bytes)
{
    HbmAccess a;
    a.start = earliest;
    if (bytes == 0) {
        a.end = earliest;
        return a;
    }
    auto &channel =
        channels_[static_cast<std::size_t>(channelOf(tile))];
    const auto res = channel.acquire(earliest, bytes);
    a.end = res.end + cfg_.hbmLatency;
    return a;
}

Bytes
Hbm::bytesServed() const
{
    Bytes total = 0;
    for (const auto &c : channels_)
        total += c.bytesServed();
    return total;
}

Tick
Hbm::busyTicks() const
{
    Tick total = 0;
    for (const auto &c : channels_)
        total += c.busyTicks();
    return total;
}

double
Hbm::totalBandwidth() const
{
    return cfg_.hbmTotalBytesPerCycle;
}

void
Hbm::trim(Tick before)
{
    for (auto &c : channels_)
        c.trim(before);
}

std::size_t
Hbm::reservationCount() const
{
    std::size_t total = 0;
    for (const auto &c : channels_)
        total += c.reservationCount();
    return total;
}

void
Hbm::reset()
{
    for (auto &c : channels_)
        c.reset();
}

} // namespace adyna::arch
