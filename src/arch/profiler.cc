#include "arch/profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::arch {

const FreqHistogram Profiler::kEmptyTable{};
const std::deque<std::vector<std::int64_t>> Profiler::kEmptyHistory{};

Profiler::Profiler(std::size_t history) : history_(history)
{
    ADYNA_ASSERT(history_ >= 2, "profiler history too short");
}

void
Profiler::recordValue(OpId op, std::int64_t value)
{
    tables_[op].add(value);
}

void
Profiler::recordBranchLoads(OpId switch_op,
                            const std::vector<std::int64_t> &loads)
{
    auto &hist = branches_[switch_op];
    hist.push_back(loads);
    while (hist.size() > history_)
        hist.pop_front();
}

const FreqHistogram &
Profiler::table(OpId op) const
{
    const auto it = tables_.find(op);
    return it == tables_.end() ? kEmptyTable : it->second;
}

std::vector<OpId>
Profiler::trackedOps() const
{
    std::vector<OpId> out;
    out.reserve(tables_.size());
    for (const auto &[op, table] : tables_)
        out.push_back(op);
    return out;
}

const std::deque<std::vector<std::int64_t>> &
Profiler::branchHistory(OpId switch_op) const
{
    const auto it = branches_.find(switch_op);
    return it == branches_.end() ? kEmptyHistory : it->second;
}

double
Profiler::branchCovariance(OpId switch_op, int a, int b) const
{
    const auto &hist = branchHistory(switch_op);
    if (hist.size() < 2)
        return 0.0;
    double meanA = 0.0, meanB = 0.0;
    for (const auto &loads : hist) {
        meanA += static_cast<double>(loads[static_cast<std::size_t>(a)]);
        meanB += static_cast<double>(loads[static_cast<std::size_t>(b)]);
    }
    meanA /= static_cast<double>(hist.size());
    meanB /= static_cast<double>(hist.size());
    double cov = 0.0;
    for (const auto &loads : hist) {
        cov += (static_cast<double>(
                    loads[static_cast<std::size_t>(a)]) -
                meanA) *
               (static_cast<double>(
                    loads[static_cast<std::size_t>(b)]) -
                meanB);
    }
    return cov / static_cast<double>(hist.size());
}

double
Profiler::branchActivity(OpId switch_op, int branch) const
{
    const auto &hist = branchHistory(switch_op);
    if (hist.empty())
        return 1.0;
    std::size_t active = 0;
    for (const auto &loads : hist)
        active += loads[static_cast<std::size_t>(branch)] > 0;
    return static_cast<double>(active) /
           static_cast<double>(hist.size());
}

double
Profiler::driftL1(const std::map<OpId, FreqHistogram> &reference,
                  int buckets) const
{
    double worst = 0.0;
    int compared = 0;
    for (const auto &[op, ref] : reference) {
        if (ref.empty())
            continue;
        const auto it = tables_.find(op);
        if (it == tables_.end() || it->second.empty())
            continue;
        worst = std::max(worst,
                         distributionL1(ref, it->second, buckets));
        ++compared;
    }
    return compared == 0 ? 0.0 : worst;
}

void
Profiler::resetTables()
{
    tables_.clear();
    windowBatches_ = 0;
}

void
Profiler::reset()
{
    tables_.clear();
    branches_.clear();
    windowBatches_ = 0;
}

} // namespace adyna::arch
