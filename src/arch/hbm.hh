/**
 * @file
 * Off-chip HBM2 model: one bandwidth channel per stack, tiles mapped
 * to the nearest memory interface by column, plus a fixed access
 * latency.
 */

#ifndef ADYNA_ARCH_HBM_HH
#define ADYNA_ARCH_HBM_HH

#include <vector>

#include "arch/hwconfig.hh"
#include "des/resource.hh"

namespace adyna::arch {

/** Completed DRAM access summary. */
struct HbmAccess
{
    Tick start = 0;
    Tick end = 0;
};

/** HBM stacks as contended bandwidth channels. */
class Hbm
{
  public:
    explicit Hbm(const HwConfig &cfg);

    /** Channel serving a given tile (nearest interface). */
    int channelOf(TileId tile) const;

    /**
     * Access @p bytes (read or write) from @p tile, no earlier than
     * @p earliest.
     */
    HbmAccess access(Tick earliest, TileId tile, Bytes bytes);

    /** Total bytes moved to/from DRAM. */
    Bytes bytesServed() const;

    /** Aggregate channel busy ticks. */
    Tick busyTicks() const;

    /** Aggregate bandwidth in bytes per cycle. */
    double totalBandwidth() const;

    /**
     * Drop channel reservations ending at or before @p before. Safe
     * only when every later access passes earliest >= @p before; the
     * engine calls this with the monotone period barrier.
     */
    void trim(Tick before);

    /** Live reservations across all channels (bookkeeping bound). */
    std::size_t reservationCount() const;

    void reset();

  private:
    const HwConfig cfg_;
    std::vector<des::GapBandwidthResource> channels_;
};

} // namespace adyna::arch

#endif // ADYNA_ARCH_HBM_HH
