/**
 * @file
 * 2D-torus network-on-chip model with X-Y routing (Section VI-A/C).
 *
 * Links are modelled as bandwidth resources with busy-until
 * reservations; a message reserves every link on its X-Y path and
 * finishes after the slowest link plus per-hop router latency. The
 * probe/ack synchronization of Section VI-C is a small round trip
 * charged before a data transfer may begin.
 */

#ifndef ADYNA_ARCH_NOC_HH
#define ADYNA_ARCH_NOC_HH

#include <vector>

#include "arch/hwconfig.hh"
#include "des/resource.hh"

namespace adyna::arch {

/** Completed NoC transfer summary. */
struct NocTransfer
{
    Tick start = 0;
    Tick end = 0;
    int hops = 0;
    Bytes byteHops = 0; ///< bytes x hops, for NoC energy
};

/** Torus NoC with per-directed-link bandwidth accounting. */
class Noc
{
  public:
    explicit Noc(const HwConfig &cfg);

    /** Hop count of the X-Y torus route between two tiles. */
    int hops(TileId src, TileId dst) const;

    /**
     * Transfer @p bytes from @p src to @p dst, no earlier than
     * @p earliest. Reserves every link on the path.
     */
    NocTransfer transfer(Tick earliest, TileId src, TileId dst,
                         Bytes bytes);

    /**
     * Multicast @p bytes from @p src to every tile in @p dsts: the
     * message is injected once and replicated at routing-tree branch
     * points, so each link on the union of the X-Y paths is reserved
     * exactly once (the instruction issuer's multicast support,
     * Section VI-B).
     */
    NocTransfer multicast(Tick earliest, TileId src,
                          const std::vector<TileId> &dsts, Bytes bytes);

    /**
     * Probe/ack round trip latency between two tiles (no bandwidth
     * reservation; probes are single-flit packets).
     */
    Tick probeAckLatency(TileId src, TileId dst) const;

    /** Total bytes x hops served (NoC energy accounting). */
    Bytes byteHopsServed() const { return byteHops_; }

    /** Aggregate busy ticks over all links. */
    Tick linkBusyTicks() const;

    /** Forget all reservations. */
    void reset();

  private:
    /** Directed link index: 4 links (E, W, S, N) per tile. */
    std::size_t linkIndex(TileId tile, int dir) const;

    /** Torus X-Y path as a sequence of directed link indices. */
    std::vector<std::size_t> path(TileId src, TileId dst) const;

    const HwConfig cfg_;
    std::vector<des::BandwidthResource> links_;
    Bytes byteHops_ = 0;
};

} // namespace adyna::arch

#endif // ADYNA_ARCH_NOC_HH
