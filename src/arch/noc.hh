/**
 * @file
 * 2D-torus network-on-chip model with X-Y routing (Section VI-A/C).
 *
 * Links are modelled as bandwidth resources with busy-until
 * reservations; a message reserves every link on its X-Y path and
 * finishes after the slowest link plus per-hop router latency. The
 * probe/ack synchronization of Section VI-C is a small round trip
 * charged before a data transfer may begin.
 *
 * Fault model: individual directed links can be marked down (routing
 * falls back to Y-X order, then to a deterministic BFS detour over
 * the surviving links) or bandwidth-degraded (reservations stretch by
 * the inverse of the degradation factor); probe/ack packets can be
 * dropped inside a fault window, in which case the probing tile
 * retries after an exponentially backed-off timeout until a bounded
 * retry budget escalates to a host-coordinated sync. With no fault
 * installed every query takes the exact pre-fault fast path, so
 * fault-free runs stay byte-identical.
 */

#ifndef ADYNA_ARCH_NOC_HH
#define ADYNA_ARCH_NOC_HH

#include <cstdint>
#include <vector>

#include "arch/hwconfig.hh"
#include "common/rng.hh"
#include "des/resource.hh"

namespace adyna::arch {

/** Directed link directions per tile (the 4 torus neighbours). */
enum LinkDir : int {
    kLinkEast = 0,
    kLinkWest = 1,
    kLinkSouth = 2,
    kLinkNorth = 3,
};

/** The tile reached by leaving @p tile along @p dir (a LinkDir),
 * with torus wrap-around — the target of directed link (tile, dir).
 * Shared by the NoC router and the multi-tenant partition-boundary
 * analysis. */
TileId torusNeighbor(const HwConfig &cfg, TileId tile, int dir);

/** Completed NoC transfer summary. */
struct NocTransfer
{
    Tick start = 0;
    Tick end = 0;
    int hops = 0;
    Bytes byteHops = 0; ///< bytes x hops, for NoC energy
};

/** Torus NoC with per-directed-link bandwidth accounting. */
class Noc
{
  public:
    explicit Noc(const HwConfig &cfg);

    /** Hop count of the X-Y torus route between two tiles. */
    int hops(TileId src, TileId dst) const;

    /**
     * Transfer @p bytes from @p src to @p dst, no earlier than
     * @p earliest. Reserves every link on the path.
     */
    NocTransfer transfer(Tick earliest, TileId src, TileId dst,
                         Bytes bytes);

    /**
     * Multicast @p bytes from @p src to every tile in @p dsts: the
     * message is injected once and replicated at routing-tree branch
     * points, so each link on the union of the X-Y paths is reserved
     * exactly once (the instruction issuer's multicast support,
     * Section VI-B).
     */
    NocTransfer multicast(Tick earliest, TileId src,
                          const std::vector<TileId> &dsts, Bytes bytes);

    /**
     * Probe/ack round trip latency between two tiles (no bandwidth
     * reservation; probes are single-flit packets).
     */
    Tick probeAckLatency(TileId src, TileId dst) const;

    /**
     * Probe/ack round trip at @p now, charging retransmission
     * timeouts when a probe-drop fault window is active: each dropped
     * round trip costs the current timeout and doubles it, and an
     * exhausted retry budget escalates to the host-sync penalty.
     * Identical to probeAckLatency() outside a drop window.
     */
    Tick probeAck(Tick now, TileId src, TileId dst);

    // --- fault controls (driven by fault::FaultInjector) -----------

    /** Mark a directed link down (true) or back up (false). */
    void setLinkDown(TileId tile, int dir, bool down);

    /** Scale a link's bandwidth by @p factor in (0, 1]; 1 restores
     * full bandwidth. */
    void setLinkBandwidthFactor(TileId tile, int dir, double factor);

    /** Drop probe/ack round trips with probability @p prob until tick
     * @p until (exclusive); the drop draws come from a stream seeded
     * with @p seed so fault runs replay exactly. */
    void setProbeDropWindow(double prob, Tick until,
                            std::uint64_t seed);

    /** Clear every link fault and drop window (metrics survive). */
    void clearFaults();

    bool linkDown(TileId tile, int dir) const;
    int downLinks() const { return downLinks_; }
    int degradedLinks() const { return degradedLinks_; }

    /**
     * The directed-link route a transfer from @p src to @p dst takes
     * under the current fault state: the X-Y path when it is healthy,
     * else the Y-X path, else a deterministic shortest detour over
     * the surviving links. An unroutable pair (the fault set
     * partitions the torus) falls back to the X-Y path and counts in
     * unroutablePaths().
     */
    std::vector<std::size_t> route(TileId src, TileId dst) const;

    // --- fault metrics ---------------------------------------------

    std::uint64_t detourRoutes() const { return detourRoutes_; }
    std::uint64_t unroutablePaths() const { return unroutablePaths_; }
    std::uint64_t probeDrops() const { return probeDrops_; }
    std::uint64_t probeRetries() const { return probeRetries_; }
    std::uint64_t probeGiveUps() const { return probeGiveUps_; }

    /** Total bytes x hops served (NoC energy accounting). */
    Bytes byteHopsServed() const { return byteHops_; }

    /** Aggregate busy ticks over all links. */
    Tick linkBusyTicks() const;

    /**
     * Drop link reservations ending at or before @p before. Same
     * contract as Hbm::trim: every later acquire must pass
     * earliest >= @p before (the engine trims at the monotone
     * period barrier), so expired intervals can never change a
     * grant and the per-link interval lists stay bounded.
     */
    void trim(Tick before);

    /** Forget all reservations (fault state survives; see
     * clearFaults()). */
    void reset();

  private:
    /** Directed link index: 4 links (E, W, S, N) per tile. */
    std::size_t linkIndex(TileId tile, int dir) const;

    /** Torus X-Y path as a sequence of directed link indices. */
    std::vector<std::size_t> path(TileId src, TileId dst) const;

    /** Append the X-Y path's directed link indices to @p out. */
    void appendPathXY(TileId src, TileId dst,
                      std::vector<std::size_t> &out) const;

    /** Y-X (rows first) variant of path(). */
    std::vector<std::size_t> pathYX(TileId src, TileId dst) const;

    /** Shortest path over healthy links only; empty when @p src and
     * @p dst are disconnected. Deterministic BFS in link-index order. */
    std::vector<std::size_t> bfsPath(TileId src, TileId dst) const;

    /** Every link on @p route is up. */
    bool routeHealthy(const std::vector<std::size_t> &route) const;

    /** The tile a link leads to. */
    TileId linkTarget(std::size_t link) const;

#ifdef ADYNA_SANITIZE
    /** Walk @p route and panic unless it is a valid src->dst chain
     * of directed links. */
    void validateRoute(const std::vector<std::size_t> &route,
                       TileId src, TileId dst) const;
#endif

    /** Reserve @p bytes on @p link no earlier than @p earliest,
     * honouring the link's degradation factor. */
    des::Reservation acquireLink(std::size_t link, Tick earliest,
                                 Bytes bytes);

    /**
     * Directed links as gap-filling bandwidth reservations (the
     * same model as the HBM channels). The serial appender used
     * previously (BandwidthResource) makes grants order-sensitive:
     * under multi-tenant interleaving, a tenant running ahead in
     * simulated time pushes a shared link's busy horizon to its own
     * period end, serializing every co-tenant behind it no matter
     * how little bandwidth either uses. Gap search keeps grants a
     * function of the reserved intervals alone.
     */
    const HwConfig cfg_;
    std::vector<des::GapBandwidthResource> links_;
    Bytes byteHops_ = 0;

    /** Reused multicast link-union buffer (capacity persists). */
    std::vector<std::size_t> scratchLinks_;

    // Fault state. anyLinkFault_ gates every hot-path branch so the
    // healthy case costs one bool test.
    bool anyLinkFault_ = false;
    int downLinks_ = 0;
    int degradedLinks_ = 0;
    std::vector<char> linkDown_;
    std::vector<double> linkFactor_;

    double probeDropProb_ = 0.0;
    Tick probeDropUntil_ = 0;
    Rng probeRng_{0};

    // Metrics are mutable so const route computations can count.
    mutable std::uint64_t detourRoutes_ = 0;
    mutable std::uint64_t unroutablePaths_ = 0;
    std::uint64_t probeDrops_ = 0;
    std::uint64_t probeRetries_ = 0;
    std::uint64_t probeGiveUps_ = 0;
};

} // namespace adyna::arch

#endif // ADYNA_ARCH_NOC_HH
