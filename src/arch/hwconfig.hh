/**
 * @file
 * Accelerator hardware configuration (the paper's Table III): a 2D
 * grid of tiles on a torus NoC with HBM2 stacks at the chip edges.
 */

#ifndef ADYNA_ARCH_HWCONFIG_HH
#define ADYNA_ARCH_HWCONFIG_HH

#include <vector>

#include "common/types.hh"
#include "costmodel/tech.hh"

namespace adyna::arch {

/** Chip-level configuration; defaults reproduce Table III. */
struct HwConfig
{
    /** Tile grid (12 x 12 = 144 tiles). */
    int gridRows = 12;
    int gridCols = 12;

    /** Per-tile compute / storage / energy parameters. */
    costmodel::TechParams tech;

    /** NoC link bandwidth per tile, bytes per cycle (192 GB/s at
     * 1 GHz = 192 B/cycle). */
    double nocLinkBytesPerCycle = 192.0;

    /** Per-hop router latency, cycles. */
    Cycles nocHopLatency = 2;

    /** Probe/ack retransmission timeout, cycles: how long a probing
     * tile waits for the ack before re-sending (fault model; only
     * charged while a probe-drop fault window is active). */
    Cycles probeTimeoutCycles = 64;

    /** Probe retransmissions budgeted before the runtime escalates
     * to a host-coordinated synchronization. */
    int probeMaxRetries = 6;

    /** Cycle cost of the host-coordinated fallback sync after the
     * retry budget is exhausted. */
    Cycles probeGiveUpPenaltyCycles = 2048;

    /** Number of HBM2 stacks (each one channel in the model). */
    int hbmStacks = 6;

    /** Aggregate HBM bandwidth, bytes per cycle (1842 GB/s at
     * 1 GHz). */
    double hbmTotalBytesPerCycle = 1842.0;

    /** Fixed DRAM access latency, cycles. */
    Cycles hbmLatency = 120;

    int tiles() const { return gridRows * gridCols; }

    /** Peak FP16 throughput in TFLOPS (2 flops per MAC). */
    double
    peakTflops() const
    {
        return 2.0 * tiles() *
               static_cast<double>(tech.macsPerCycle()) *
               tech.freqGhz * 1e9 / 1e12;
    }

    /** Total on-chip scratchpad capacity. */
    Bytes
    totalSpad() const
    {
        return static_cast<Bytes>(tiles()) * tech.spadBytes;
    }

    /** Row / column of a tile id (row-major). */
    int tileRow(TileId t) const { return static_cast<int>(t) / gridCols; }
    int tileCol(TileId t) const { return static_cast<int>(t) % gridCols; }
};

/**
 * Boustrophedon (snake) enumeration of the tile grid: consecutive
 * positions are always grid neighbours, so consecutive pipeline
 * stages receive adjacent tile ranges and NoC paths stay short.
 */
inline std::vector<TileId>
snakeTileOrder(const HwConfig &cfg)
{
    std::vector<TileId> order;
    order.reserve(static_cast<std::size_t>(cfg.tiles()));
    for (int r = 0; r < cfg.gridRows; ++r) {
        for (int c = 0; c < cfg.gridCols; ++c) {
            const int col = r % 2 == 0 ? c : cfg.gridCols - 1 - c;
            order.push_back(static_cast<TileId>(r * cfg.gridCols + col));
        }
    }
    return order;
}

} // namespace adyna::arch

#endif // ADYNA_ARCH_HWCONFIG_HH
