#include "arch/noc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::arch {

namespace {

/** Signed shortest torus step direction from a to b over size n:
 * +1 = increasing index, -1 = decreasing, 0 = equal. */
int
torusDir(int a, int b, int n)
{
    if (a == b)
        return 0;
    const int fwd = (b - a + n) % n;  // steps in + direction
    const int back = (a - b + n) % n; // steps in - direction
    return fwd <= back ? +1 : -1;
}

int
torusDist(int a, int b, int n)
{
    const int fwd = (b - a + n) % n;
    const int back = (a - b + n) % n;
    return std::min(fwd, back);
}

// Directed link directions per tile.
constexpr int kEast = 0;
constexpr int kWest = 1;
constexpr int kSouth = 2;
constexpr int kNorth = 3;

} // namespace

Noc::Noc(const HwConfig &cfg) : cfg_(cfg)
{
    links_.reserve(static_cast<std::size_t>(cfg_.tiles()) * 4);
    for (int i = 0; i < cfg_.tiles() * 4; ++i)
        links_.emplace_back(cfg_.nocLinkBytesPerCycle);
}

std::size_t
Noc::linkIndex(TileId tile, int dir) const
{
    return static_cast<std::size_t>(tile) * 4 +
           static_cast<std::size_t>(dir);
}

int
Noc::hops(TileId src, TileId dst) const
{
    return torusDist(cfg_.tileCol(src), cfg_.tileCol(dst),
                     cfg_.gridCols) +
           torusDist(cfg_.tileRow(src), cfg_.tileRow(dst),
                     cfg_.gridRows);
}

std::vector<std::size_t>
Noc::path(TileId src, TileId dst) const
{
    std::vector<std::size_t> out;
    int row = cfg_.tileRow(src);
    int col = cfg_.tileCol(src);
    const int dstRow = cfg_.tileRow(dst);
    const int dstCol = cfg_.tileCol(dst);

    // X first (columns), then Y (rows): deadlock-free on the torus
    // with the usual dateline virtual channels abstracted away.
    while (col != dstCol) {
        const int dir = torusDir(col, dstCol, cfg_.gridCols);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(linkIndex(here, dir > 0 ? kEast : kWest));
        col = (col + dir + cfg_.gridCols) % cfg_.gridCols;
    }
    while (row != dstRow) {
        const int dir = torusDir(row, dstRow, cfg_.gridRows);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(linkIndex(here, dir > 0 ? kSouth : kNorth));
        row = (row + dir + cfg_.gridRows) % cfg_.gridRows;
    }
    return out;
}

NocTransfer
Noc::transfer(Tick earliest, TileId src, TileId dst, Bytes bytes)
{
    NocTransfer t;
    t.start = earliest;
    if (src == dst || bytes == 0) {
        t.end = earliest;
        return t;
    }
    const auto route = path(src, dst);
    t.hops = static_cast<int>(route.size());
    Tick latest = earliest;
    for (std::size_t link : route) {
        const auto res = links_[link].acquire(earliest, bytes);
        latest = std::max(latest, res.end);
    }
    t.end = latest + static_cast<Tick>(t.hops) * cfg_.nocHopLatency;
    t.byteHops = bytes * static_cast<Bytes>(t.hops);
    byteHops_ += t.byteHops;
    return t;
}

NocTransfer
Noc::multicast(Tick earliest, TileId src,
               const std::vector<TileId> &dsts, Bytes bytes)
{
    NocTransfer t;
    t.start = earliest;
    t.end = earliest;
    if (bytes == 0 || dsts.empty())
        return t;

    // Union of the X-Y paths: each link carries the payload once.
    std::vector<std::size_t> links;
    int maxHops = 0;
    for (TileId dst : dsts) {
        if (dst == src)
            continue;
        maxHops = std::max(maxHops, hops(src, dst));
        for (std::size_t link : path(src, dst))
            links.push_back(link);
    }
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());

    Tick latest = earliest;
    for (std::size_t link : links) {
        const auto res = links_[link].acquire(earliest, bytes);
        latest = std::max(latest, res.end);
    }
    t.hops = maxHops;
    t.end = latest + static_cast<Tick>(maxHops) * cfg_.nocHopLatency;
    t.byteHops = bytes * static_cast<Bytes>(links.size());
    byteHops_ += t.byteHops;
    return t;
}

Tick
Noc::probeAckLatency(TileId src, TileId dst) const
{
    return 2 * static_cast<Tick>(hops(src, dst)) * cfg_.nocHopLatency;
}

Tick
Noc::linkBusyTicks() const
{
    Tick total = 0;
    for (const auto &link : links_)
        total += link.busyTicks();
    return total;
}

void
Noc::reset()
{
    for (auto &link : links_)
        link.reset();
    byteHops_ = 0;
}

} // namespace adyna::arch
