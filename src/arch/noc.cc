#include "arch/noc.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.hh"

namespace adyna::arch {

namespace {

/** Signed shortest torus step direction from a to b over size n:
 * +1 = increasing index, -1 = decreasing, 0 = equal. */
int
torusDir(int a, int b, int n)
{
    if (a == b)
        return 0;
    const int fwd = (b - a + n) % n;  // steps in + direction
    const int back = (a - b + n) % n; // steps in - direction
    return fwd <= back ? +1 : -1;
}

int
torusDist(int a, int b, int n)
{
    const int fwd = (b - a + n) % n;
    const int back = (a - b + n) % n;
    return std::min(fwd, back);
}

} // namespace

Noc::Noc(const HwConfig &cfg) : cfg_(cfg)
{
    const auto n = static_cast<std::size_t>(cfg_.tiles()) * 4;
    links_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        links_.emplace_back(cfg_.nocLinkBytesPerCycle);
    linkDown_.assign(n, 0);
    linkFactor_.assign(n, 1.0);
}

std::size_t
Noc::linkIndex(TileId tile, int dir) const
{
    return static_cast<std::size_t>(tile) * 4 +
           static_cast<std::size_t>(dir);
}

TileId
torusNeighbor(const HwConfig &cfg, TileId tile, int dir)
{
    int row = cfg.tileRow(tile);
    int col = cfg.tileCol(tile);
    switch (dir) {
      case kLinkEast:
        col = (col + 1) % cfg.gridCols;
        break;
      case kLinkWest:
        col = (col + cfg.gridCols - 1) % cfg.gridCols;
        break;
      case kLinkSouth:
        row = (row + 1) % cfg.gridRows;
        break;
      default:
        row = (row + cfg.gridRows - 1) % cfg.gridRows;
        break;
    }
    return static_cast<TileId>(row * cfg.gridCols + col);
}

TileId
Noc::linkTarget(std::size_t link) const
{
    return torusNeighbor(cfg_, static_cast<TileId>(link / 4),
                         static_cast<int>(link % 4));
}

int
Noc::hops(TileId src, TileId dst) const
{
    return torusDist(cfg_.tileCol(src), cfg_.tileCol(dst),
                     cfg_.gridCols) +
           torusDist(cfg_.tileRow(src), cfg_.tileRow(dst),
                     cfg_.gridRows);
}

std::vector<std::size_t>
Noc::path(TileId src, TileId dst) const
{
    std::vector<std::size_t> out;
    appendPathXY(src, dst, out);
    return out;
}

void
Noc::appendPathXY(TileId src, TileId dst,
                  std::vector<std::size_t> &out) const
{
    int row = cfg_.tileRow(src);
    int col = cfg_.tileCol(src);
    const int dstRow = cfg_.tileRow(dst);
    const int dstCol = cfg_.tileCol(dst);

    // X first (columns), then Y (rows): deadlock-free on the torus
    // with the usual dateline virtual channels abstracted away.
    while (col != dstCol) {
        const int dir = torusDir(col, dstCol, cfg_.gridCols);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(linkIndex(here, dir > 0 ? kLinkEast : kLinkWest));
        col = (col + dir + cfg_.gridCols) % cfg_.gridCols;
    }
    while (row != dstRow) {
        const int dir = torusDir(row, dstRow, cfg_.gridRows);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(
            linkIndex(here, dir > 0 ? kLinkSouth : kLinkNorth));
        row = (row + dir + cfg_.gridRows) % cfg_.gridRows;
    }
}

std::vector<std::size_t>
Noc::pathYX(TileId src, TileId dst) const
{
    std::vector<std::size_t> out;
    int row = cfg_.tileRow(src);
    int col = cfg_.tileCol(src);
    const int dstRow = cfg_.tileRow(dst);
    const int dstCol = cfg_.tileCol(dst);

    while (row != dstRow) {
        const int dir = torusDir(row, dstRow, cfg_.gridRows);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(
            linkIndex(here, dir > 0 ? kLinkSouth : kLinkNorth));
        row = (row + dir + cfg_.gridRows) % cfg_.gridRows;
    }
    while (col != dstCol) {
        const int dir = torusDir(col, dstCol, cfg_.gridCols);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        out.push_back(linkIndex(here, dir > 0 ? kLinkEast : kLinkWest));
        col = (col + dir + cfg_.gridCols) % cfg_.gridCols;
    }
    return out;
}

bool
Noc::routeHealthy(const std::vector<std::size_t> &route) const
{
    for (std::size_t link : route)
        if (linkDown_[link])
            return false;
    return true;
}

std::vector<std::size_t>
Noc::bfsPath(TileId src, TileId dst) const
{
    // Deterministic BFS over healthy directed links, expanding the
    // four directions in fixed E/W/S/N order, so the detour a given
    // fault set produces is always the same.
    const auto tiles = static_cast<std::size_t>(cfg_.tiles());
    std::vector<std::size_t> viaLink(tiles, ~std::size_t{0});
    std::vector<char> seen(tiles, 0);
    std::deque<TileId> frontier{src};
    seen[src] = 1;
    while (!frontier.empty() && !seen[dst]) {
        const TileId here = frontier.front();
        frontier.pop_front();
        for (int dir = 0; dir < 4; ++dir) {
            const std::size_t link = linkIndex(here, dir);
            if (linkDown_[link])
                continue;
            const TileId next = linkTarget(link);
            if (seen[next])
                continue;
            seen[next] = 1;
            viaLink[next] = link;
            frontier.push_back(next);
        }
    }
    if (!seen[dst])
        return {};
    std::vector<std::size_t> out;
    for (TileId at = dst; at != src;) {
        const std::size_t link = viaLink[at];
        out.push_back(link);
        at = static_cast<TileId>(link / 4);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::vector<std::size_t>
Noc::route(TileId src, TileId dst) const
{
    std::vector<std::size_t> xy = path(src, dst);
    if (downLinks_ == 0 || routeHealthy(xy))
        return xy;
    // Y-X fallback: the cheap dimension-order alternative most
    // single-link faults are routed around with.
    std::vector<std::size_t> yx = pathYX(src, dst);
    if (routeHealthy(yx)) {
        ++detourRoutes_;
        return yx;
    }
    std::vector<std::size_t> detour = bfsPath(src, dst);
    if (!detour.empty()) {
        ++detourRoutes_;
        return detour;
    }
    // The fault set disconnects the pair; the caller still makes
    // forward progress on the nominal path (a real chip would have
    // been taken offline before this point).
    ++unroutablePaths_;
    return xy;
}

des::Reservation
Noc::acquireLink(std::size_t link, Tick earliest, Bytes bytes)
{
    Bytes effective = bytes;
    if (anyLinkFault_ && linkFactor_[link] < 1.0) {
        // A degraded link moves the same payload at factor x the
        // bandwidth: stretch the reservation by 1/factor.
        effective = static_cast<Bytes>(std::ceil(
            static_cast<double>(bytes) / linkFactor_[link]));
    }
    return links_[link].acquire(earliest, effective);
}

NocTransfer
Noc::transfer(Tick earliest, TileId src, TileId dst, Bytes bytes)
{
    NocTransfer t;
    t.start = earliest;
    if (src == dst || bytes == 0) {
        t.end = earliest;
        return t;
    }
    if (anyLinkFault_) {
        const auto rt = route(src, dst);
        t.hops = static_cast<int>(rt.size());
        Tick latest = earliest;
        for (std::size_t link : rt) {
            const auto res = acquireLink(link, earliest, bytes);
            latest = std::max(latest, res.end);
        }
        t.end =
            latest + static_cast<Tick>(t.hops) * cfg_.nocHopLatency;
        t.byteHops = bytes * static_cast<Bytes>(t.hops);
        byteHops_ += t.byteHops;
#ifdef ADYNA_SANITIZE
        validateRoute(rt, src, dst);
        ADYNA_ASSERT(t.hops >= 0, "negative hop count");
        ADYNA_ASSERT(t.byteHops ==
                         bytes * static_cast<Bytes>(t.hops),
                     "byteHops inconsistent with the route");
#endif
        return t;
    }

    // Fault-free fast path: walk the X-Y route inline, reserving each
    // link as it is visited, instead of materializing the path in a
    // heap-allocated vector. Link visit order matches path() exactly,
    // so reports stay byte-identical.
    int row = cfg_.tileRow(src);
    int col = cfg_.tileCol(src);
    const int dstRow = cfg_.tileRow(dst);
    const int dstCol = cfg_.tileCol(dst);
    Tick latest = earliest;
    int hopCount = 0;
    while (col != dstCol) {
        const int dir = torusDir(col, dstCol, cfg_.gridCols);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        const auto link =
            linkIndex(here, dir > 0 ? kLinkEast : kLinkWest);
        latest = std::max(latest,
                          acquireLink(link, earliest, bytes).end);
        col = (col + dir + cfg_.gridCols) % cfg_.gridCols;
        ++hopCount;
    }
    while (row != dstRow) {
        const int dir = torusDir(row, dstRow, cfg_.gridRows);
        const TileId here =
            static_cast<TileId>(row * cfg_.gridCols + col);
        const auto link =
            linkIndex(here, dir > 0 ? kLinkSouth : kLinkNorth);
        latest = std::max(latest,
                          acquireLink(link, earliest, bytes).end);
        row = (row + dir + cfg_.gridRows) % cfg_.gridRows;
        ++hopCount;
    }
    t.hops = hopCount;
    t.end = latest + static_cast<Tick>(hopCount) * cfg_.nocHopLatency;
    t.byteHops = bytes * static_cast<Bytes>(hopCount);
    byteHops_ += t.byteHops;
#ifdef ADYNA_SANITIZE
    ADYNA_ASSERT(hopCount == hops(src, dst),
                 "inline walk hop count diverged from hops()");
#endif
    return t;
}

NocTransfer
Noc::multicast(Tick earliest, TileId src,
               const std::vector<TileId> &dsts, Bytes bytes)
{
    NocTransfer t;
    t.start = earliest;
    t.end = earliest;
    if (bytes == 0 || dsts.empty())
        return t;

    // Union of the per-destination paths: each link carries the
    // payload once (replication happens at branch points). The link
    // list lives in a member scratch buffer so steady-state
    // multicasts reuse its capacity instead of allocating.
    auto &links = scratchLinks_;
    links.clear();
    int maxHops = 0;
    for (TileId dst : dsts) {
        if (dst == src)
            continue;
        if (anyLinkFault_) {
            const auto rt = route(src, dst);
#ifdef ADYNA_SANITIZE
            validateRoute(rt, src, dst);
#endif
            maxHops = std::max(maxHops, static_cast<int>(rt.size()));
            for (std::size_t link : rt)
                links.push_back(link);
        } else {
            const auto before = links.size();
            appendPathXY(src, dst, links);
            maxHops = std::max(
                maxHops, static_cast<int>(links.size() - before));
        }
    }
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());

    Tick latest = earliest;
    for (std::size_t link : links) {
        const auto res = acquireLink(link, earliest, bytes);
        latest = std::max(latest, res.end);
    }
    t.hops = maxHops;
    t.end = latest + static_cast<Tick>(maxHops) * cfg_.nocHopLatency;
    t.byteHops = bytes * static_cast<Bytes>(links.size());
    byteHops_ += t.byteHops;
    return t;
}

Tick
Noc::probeAckLatency(TileId src, TileId dst) const
{
    return 2 * static_cast<Tick>(hops(src, dst)) * cfg_.nocHopLatency;
}

Tick
Noc::probeAck(Tick now, TileId src, TileId dst)
{
    const int h = anyLinkFault_ && downLinks_ > 0
                      ? static_cast<int>(route(src, dst).size())
                      : hops(src, dst);
    const Tick clean =
        2 * static_cast<Tick>(h) * cfg_.nocHopLatency;
    if (probeDropProb_ <= 0.0 || now >= probeDropUntil_ || src == dst)
        return clean;

    // Inside a drop window: each lost round trip costs the current
    // retransmission timeout and doubles it; an exhausted budget
    // escalates to a host-coordinated sync.
    Tick waited = 0;
    Tick timeout = cfg_.probeTimeoutCycles;
    for (int attempt = 0; attempt <= cfg_.probeMaxRetries; ++attempt) {
        if (!probeRng_.bernoulli(probeDropProb_))
            return waited + clean;
        ++probeDrops_;
        if (attempt < cfg_.probeMaxRetries) {
            ++probeRetries_;
            waited += timeout;
            timeout *= 2;
        }
    }
    ++probeGiveUps_;
    return waited + clean + cfg_.probeGiveUpPenaltyCycles;
}

void
Noc::setLinkDown(TileId tile, int dir, bool down)
{
    const std::size_t link = linkIndex(tile, dir);
    ADYNA_ASSERT(link < linkDown_.size(), "bad link ", tile, "/", dir);
    if (static_cast<bool>(linkDown_[link]) == down)
        return;
    linkDown_[link] = down ? 1 : 0;
    downLinks_ += down ? 1 : -1;
    anyLinkFault_ =
        downLinks_ > 0 || degradedLinks_ > 0 || probeDropProb_ > 0.0;
}

void
Noc::setLinkBandwidthFactor(TileId tile, int dir, double factor)
{
    const std::size_t link = linkIndex(tile, dir);
    ADYNA_ASSERT(link < linkFactor_.size(), "bad link ", tile, "/",
                 dir);
    ADYNA_ASSERT(factor > 0.0 && factor <= 1.0,
                 "bandwidth factor must be in (0, 1], got ", factor);
    const bool was = linkFactor_[link] < 1.0;
    const bool is = factor < 1.0;
    linkFactor_[link] = factor;
    degradedLinks_ += (is ? 1 : 0) - (was ? 1 : 0);
    anyLinkFault_ =
        downLinks_ > 0 || degradedLinks_ > 0 || probeDropProb_ > 0.0;
}

void
Noc::setProbeDropWindow(double prob, Tick until, std::uint64_t seed)
{
    ADYNA_ASSERT(prob >= 0.0 && prob <= 1.0,
                 "drop probability must be in [0, 1], got ", prob);
    probeDropProb_ = prob;
    probeDropUntil_ = until;
    if (prob > 0.0)
        probeRng_ = Rng(seed);
    anyLinkFault_ =
        downLinks_ > 0 || degradedLinks_ > 0 || probeDropProb_ > 0.0;
}

void
Noc::clearFaults()
{
    std::fill(linkDown_.begin(), linkDown_.end(), 0);
    std::fill(linkFactor_.begin(), linkFactor_.end(), 1.0);
    downLinks_ = 0;
    degradedLinks_ = 0;
    probeDropProb_ = 0.0;
    probeDropUntil_ = 0;
    anyLinkFault_ = false;
}

bool
Noc::linkDown(TileId tile, int dir) const
{
    return linkDown_[linkIndex(tile, dir)] != 0;
}

#ifdef ADYNA_SANITIZE
void
Noc::validateRoute(const std::vector<std::size_t> &route, TileId src,
                   TileId dst) const
{
    TileId at = src;
    for (std::size_t link : route) {
        ADYNA_ASSERT(link < linkDown_.size(), "route uses bad link ",
                     link);
        ADYNA_ASSERT(static_cast<TileId>(link / 4) == at,
                     "route link ", link, " does not leave tile ", at);
        at = linkTarget(link);
    }
    ADYNA_ASSERT(at == dst, "route from ", src, " ends at ", at,
                 " instead of ", dst);
}
#endif

Tick
Noc::linkBusyTicks() const
{
    Tick total = 0;
    for (const auto &link : links_)
        total += link.busyTicks();
    return total;
}

void
Noc::trim(Tick before)
{
    for (auto &link : links_)
        link.trim(before);
}

void
Noc::reset()
{
    for (auto &link : links_)
        link.reset();
    byteHops_ = 0;
}

} // namespace adyna::arch
