/**
 * @file
 * Operator nodes of Adyna computation graphs, including the paper's
 * customized switch / merge / sink operators (Section IV).
 */

#ifndef ADYNA_GRAPH_OP_HH
#define ADYNA_GRAPH_OP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/dims.hh"

namespace adyna::graph {

/** Kinds of operators in a (dynamic) computation graph. */
enum class OpKind : std::uint8_t {
    Input,   ///< graph input (activations fetched from DRAM)
    Output,  ///< graph output (results written to DRAM)
    Conv2d,  ///< dense convolution (full 7-dim nest)
    MatMul,  ///< dense matmul / fully-connected (N, K, C)
    Eltwise, ///< element-wise binary op (residual add, mul)
    Pool,    ///< pooling (spatial reduction)
    Act,     ///< activation function (ReLU, GeLU, sigmoid)
    Norm,    ///< normalization (BatchNorm, LayerNorm)
    Softmax, ///< softmax over the K dimension
    Switch,  ///< dynamic split along dyn_dim by a routing mask
    Merge,   ///< join of branches created by a switch
    Sink,    ///< discards its input (early exit, dropped patches)
};

/** Short name of an operator kind. */
const char *opKindName(OpKind kind);

/** True for kinds that perform MAC work on the PE array. */
bool isCompute(OpKind kind);

/**
 * True for kinds the kernel template can fuse as an epilogue of the
 * preceding compute operator (element-wise and in-place ops,
 * Section VI-B).
 */
bool isFusable(OpKind kind);

/** True for switch / merge / sink routing operators. */
bool isRouting(OpKind kind);

/**
 * Descriptor of the runtime decision a switch operator implements.
 * The graph stores only the *policy*; the dynamism trace generator
 * (src/trace) interprets it to produce concrete routing masks. This
 * substitutes for a trained gate network evaluated on a real dataset
 * (see DESIGN.md, substitutions).
 */
struct RoutingPolicy
{
    enum class Kind : std::uint8_t {
        /** Branch 0 = exit (sink), branch 1 = continue. The exit
         * probability grows with gate depth and sample easiness. */
        EarlyExit,
        /** Branch 0 = shortcut (skip), branch 1 = backbone block. */
        LayerSkip,
        /** Each sample activates exactly k of the branches (MoE). */
        TopKExperts,
        /** Branch i = channel block i of a channel-pruned operator;
         * each sample activates a difficulty-dependent prefix. */
        ChannelBlocks,
        /** Branch 0 = keep patch, branch 1 = drop (sink). Samples are
         * patch-folded rows; selection keeps an input-dependent
         * subset. */
        PatchSelect,
    };

    Kind kind = Kind::LayerSkip;

    /** Number of outgoing branches of the switch. */
    int numBranches = 2;

    /** Policy-specific scalar, e.g. base skip/exit probability or the
     * expected keep fraction for PatchSelect. */
    double param = 0.5;

    /** TopKExperts: number of experts activated per sample. */
    int topK = 1;

    /** Gate index along the model (0-based); later gates see easier
     * residual distributions for EarlyExit. */
    int gateIndex = 0;

    /** Optional per-branch prior weights (expert popularity skew). */
    std::vector<double> branchBias;

    /**
     * Rows of the batch dimension one routed unit occupies. A gate
     * deciding per sequence over token-folded rows uses the sequence
     * length (PABEE); a per-token MoE router uses 1 but sees
     * batch x seq rows. PatchSelect interprets this as the number of
     * folded patches per sample. Gates nested *inside* a
     * patch-selected region must keep this at 1: the dynamism trace
     * already tracks each sample's surviving row count there.
     */
    std::int64_t unitsPerSample = 1;
};

/**
 * One operator node. Nodes are owned by a Graph and addressed by
 * OpId (their index). `inputs` holds the data-dependency edges; for
 * a Merge the inputs are the branch tails, and for an operator
 * consuming a switch output, `switchBranch` records which branch of
 * the producing switch feeds it.
 */
struct OpNode
{
    OpId id = kInvalidOp;
    std::string name;
    OpKind kind = OpKind::Conv2d;

    /** Maximum (worst-case) extents of the loop nest. */
    LoopDims dims;

    /** Convolution stride (output-to-input spatial scaling). */
    int stride = 1;

    /** Element size of activations/weights in bytes (FP16 = 2). */
    int dtypeBytes = 2;

    /** Data-dependency producers. */
    std::vector<OpId> inputs;

    /**
     * Which branch of the producing switch this op consumes
     * (meaningful only when the corresponding producer is a Switch).
     * Parallel to `inputs`; -1 for non-switch producers.
     */
    std::vector<int> inputBranch;

    /** Dimension declared dynamic *before* parsing (builders may mark
     * e.g. C for channel pruning); the parser folds everything onto
     * N. Unset means fully static unless dynamism propagates in. */
    std::optional<Dim> declaredDynDim;

    /** Routing policy; meaningful only for Switch nodes. */
    RoutingPolicy policy;

    /**
     * Merge-only: this merge restores the pre-fold batch extent
     * (e.g. DPSNet's per-sample aggregation over folded patches), so
     * its output dynamism follows the switch input rather than
     * becoming post-merge dynamic.
     */
    bool unfoldsBatch = false;

    /** MAC count of the worst-case nest (0 for non-compute ops). */
    std::int64_t macs() const;

    /** Input activation tensor bytes at the worst-case extents. */
    Bytes inputBytes() const;

    /** Output activation tensor bytes at the worst-case extents. */
    Bytes outputBytes() const;

    /** Weight tensor bytes (0 for ops without weights). */
    Bytes weightBytes() const;

    /**
     * Input/output bytes for a specific batch extent @p n (used for
     * dynamic sub-batches at runtime).
     */
    Bytes inputBytesAt(std::int64_t n) const;
    Bytes outputBytesAt(std::int64_t n) const;
};

} // namespace adyna::graph

#endif // ADYNA_GRAPH_OP_HH
