#include "graph/transforms.hh"

#include "common/logging.hh"

namespace adyna::graph {

OpId
buildBranch(Graph &g, OpId sw, int branch, const BranchBuilder &body)
{
    ADYNA_ASSERT(g.node(sw).kind == OpKind::Switch,
                 "buildBranch on non-switch op ", sw);
    const std::size_t before = g.size();
    const OpId tail = body(g, sw);
    for (OpId id = static_cast<OpId>(before); id < g.size(); ++id) {
        OpNode &n = g.node(id);
        for (std::size_t i = 0; i < n.inputs.size(); ++i)
            if (n.inputs[i] == sw && n.inputBranch[i] < 0)
                n.inputBranch[i] = branch;
    }
    return tail;
}

OpId
addEarlyExit(Graph &g, const std::string &name, OpId input,
             std::int64_t gate_classes, double exit_prob, int gate_index)
{
    const OpNode &in = g.node(input);
    // The exit head / gate classifier producing the routing mask.
    const std::int64_t feat = in.dims.k();
    OpId gate = g.addMatMul(name + ".gate", input, gate_classes, feat);

    RoutingPolicy policy;
    policy.kind = RoutingPolicy::Kind::EarlyExit;
    policy.numBranches = 2;
    policy.param = exit_prob;
    policy.gateIndex = gate_index;

    OpId sw = g.addSwitch(name + ".switch", input, policy, gate);
    g.addSink(name + ".exit", sw, /*branch=*/0);
    return sw;
}

OpId
addLayerSkip(Graph &g, const std::string &name, OpId input,
             double skip_prob, int gate_index, const BranchBuilder &block)
{
    const OpNode &in = g.node(input);
    OpId gate = g.addMatMul(name + ".gate", input, 2, in.dims.k());

    RoutingPolicy policy;
    policy.kind = RoutingPolicy::Kind::LayerSkip;
    policy.numBranches = 2;
    policy.param = skip_prob;
    policy.gateIndex = gate_index;

    OpId sw = g.addSwitch(name + ".switch", input, policy, gate);

    // Branch 1: backbone block.
    OpId tail = buildBranch(g, sw, 1, block);

    // Branch 0: shortcut straight to the merge.
    OpId merge = g.addMerge(name + ".merge", {tail});
    g.connectBranch(sw, 0, merge);
    g.node(merge).dims = g.node(tail).dims;
    return merge;
}

OpId
addMoE(Graph &g, const std::string &name, OpId input, int num_experts,
       int top_k, const std::vector<double> &expert_bias,
       const BranchBuilder &expert, std::int64_t units_per_sample)
{
    ADYNA_ASSERT(num_experts >= 2, "MoE needs >= 2 experts");
    ADYNA_ASSERT(top_k >= 1 && top_k <= num_experts,
                 "bad top_k ", top_k, " for ", num_experts, " experts");
    const OpNode &in = g.node(input);
    OpId router =
        g.addMatMul(name + ".router", input, num_experts, in.dims.k());

    RoutingPolicy policy;
    policy.kind = RoutingPolicy::Kind::TopKExperts;
    policy.numBranches = num_experts;
    policy.topK = top_k;
    policy.branchBias = expert_bias;
    policy.unitsPerSample = units_per_sample;

    OpId sw = g.addSwitch(name + ".switch", input, policy, router);

    std::vector<OpId> tails;
    tails.reserve(num_experts);
    for (int e = 0; e < num_experts; ++e)
        tails.push_back(buildBranch(g, sw, e, expert));

    OpId merge = g.addMerge(name + ".merge", tails);
    g.node(merge).dims = g.node(tails.front()).dims;
    return merge;
}

OpId
addChannelPrunedConv(Graph &g, const std::string &name, OpId input,
                     const LoopDims &conv_dims, int stride,
                     int num_blocks, double keep_frac, int gate_index)
{
    ADYNA_ASSERT(num_blocks >= 2, "channel pruning needs >= 2 blocks");
    ADYNA_ASSERT(conv_dims.c() % num_blocks == 0,
                 "C = ", conv_dims.c(), " not divisible by ", num_blocks,
                 " blocks");
    const OpNode &in = g.node(input);
    // FBS-style saliency predictor producing the channel mask.
    OpId gate =
        g.addMatMul(name + ".gate", input, conv_dims.c(), in.dims.k());

    RoutingPolicy policy;
    policy.kind = RoutingPolicy::Kind::ChannelBlocks;
    policy.numBranches = num_blocks;
    policy.param = keep_frac;
    policy.gateIndex = gate_index;

    OpId sw = g.addSwitch(name + ".switch", input, policy, gate);

    const LoopDims blockDims =
        conv_dims.with(Dim::C, conv_dims.c() / num_blocks);
    std::vector<OpId> tails;
    tails.reserve(num_blocks);
    for (int b = 0; b < num_blocks; ++b) {
        OpId conv = g.addConv(name + ".c" + std::to_string(b), sw,
                              blockDims, stride);
        g.connectBranch(sw, b, conv);
        tails.push_back(conv);
    }
    OpId merge = g.addMerge(name + ".merge", tails);
    g.node(merge).dims = conv_dims;
    return merge;
}

OpId
addPatchSelect(Graph &g, const std::string &name, OpId folded_input,
               double keep_frac, int gate_index)
{
    const OpNode &in = g.node(folded_input);
    // Patch scorer over the folded rows.
    OpId scorer =
        g.addMatMul(name + ".scorer", folded_input, 1, in.dims.k());

    RoutingPolicy policy;
    policy.kind = RoutingPolicy::Kind::PatchSelect;
    policy.numBranches = 2;
    policy.param = keep_frac;
    policy.gateIndex = gate_index;

    OpId sw = g.addSwitch(name + ".switch", folded_input, policy, scorer);
    g.addSink(name + ".drop", sw, /*branch=*/1);
    return sw;
}

} // namespace adyna::graph
