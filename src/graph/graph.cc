#include "graph/graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adyna::graph {

Graph::Graph(std::string name) : name_(std::move(name)) {}

const OpNode &
Graph::node(OpId id) const
{
    ADYNA_ASSERT(id < nodes_.size(), "bad OpId ", id);
    return nodes_[id];
}

OpNode &
Graph::node(OpId id)
{
    ADYNA_ASSERT(id < nodes_.size(), "bad OpId ", id);
    return nodes_[id];
}

OpId
Graph::addNode(OpNode n)
{
    const OpId id = static_cast<OpId>(nodes_.size());
    n.id = id;
    if (n.inputBranch.size() != n.inputs.size())
        n.inputBranch.assign(n.inputs.size(), -1);
    nodes_.push_back(std::move(n));
    return id;
}

OpId
Graph::addInput(const std::string &name, const LoopDims &dims,
                int dtype_bytes)
{
    OpNode n;
    n.name = name;
    n.kind = OpKind::Input;
    n.dims = dims;
    n.dtypeBytes = dtype_bytes;
    return addNode(std::move(n));
}

OpId
Graph::addConv(const std::string &name, OpId input, const LoopDims &dims,
               int stride)
{
    OpNode n;
    n.name = name;
    n.kind = OpKind::Conv2d;
    n.dims = dims;
    n.stride = stride;
    n.inputs = {input};
    return addNode(std::move(n));
}

OpId
Graph::addMatMul(const std::string &name, OpId input, std::int64_t k,
                 std::int64_t c)
{
    const OpNode &producer = node(input);
    OpNode n;
    n.name = name;
    n.kind = OpKind::MatMul;
    n.dims = LoopDims::matmul(producer.dims.n(), k, c);
    n.inputs = {input};
    return addNode(std::move(n));
}

OpId
Graph::addFusable(const std::string &name, OpKind kind,
                  std::vector<OpId> inputs, const LoopDims &dims,
                  int stride)
{
    ADYNA_ASSERT(isFusable(kind), "addFusable with non-fusable kind ",
                 opKindName(kind));
    OpNode n;
    n.name = name;
    n.kind = kind;
    n.dims = dims;
    n.stride = stride;
    n.inputs = std::move(inputs);
    return addNode(std::move(n));
}

OpId
Graph::addSwitch(const std::string &name, OpId input,
                 const RoutingPolicy &policy, OpId mask)
{
    ADYNA_ASSERT(policy.numBranches >= 2,
                 "switch needs >= 2 branches, got ", policy.numBranches);
    OpNode n;
    n.name = name;
    n.kind = OpKind::Switch;
    n.dims = node(input).dims;
    n.inputs = {input};
    if (mask != kInvalidOp)
        n.inputs.push_back(mask);
    n.policy = policy;
    return addNode(std::move(n));
}

OpId
Graph::addMerge(const std::string &name, std::vector<OpId> inputs)
{
    ADYNA_ASSERT(!inputs.empty(), "merge needs inputs");
    OpNode n;
    n.name = name;
    n.kind = OpKind::Merge;
    n.dims = node(inputs.front()).dims;
    n.inputs = std::move(inputs);
    return addNode(std::move(n));
}

OpId
Graph::addUnfoldMerge(const std::string &name, std::vector<OpId> inputs,
                      const LoopDims &out_dims)
{
    const OpId id = addMerge(name, std::move(inputs));
    node(id).unfoldsBatch = true;
    node(id).dims = out_dims;
    return id;
}

OpId
Graph::addSink(const std::string &name, OpId input, int branch)
{
    OpNode n;
    n.name = name;
    n.kind = OpKind::Sink;
    n.dims = node(input).dims;
    n.inputs = {input};
    n.inputBranch = {branch};
    return addNode(std::move(n));
}

OpId
Graph::addOutput(const std::string &name, OpId input)
{
    OpNode n;
    n.name = name;
    n.kind = OpKind::Output;
    n.dims = node(input).dims;
    n.inputs = {input};
    return addNode(std::move(n));
}

void
Graph::connectBranch(OpId switch_op, int branch, OpId consumer)
{
    ADYNA_ASSERT(node(switch_op).kind == OpKind::Switch,
                 "connectBranch on non-switch node ", switch_op);
    ADYNA_ASSERT(branch >= 0 &&
                     branch < node(switch_op).policy.numBranches,
                 "branch index ", branch, " out of range");
    OpNode &c = node(consumer);
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
        if (c.inputs[i] == switch_op) {
            c.inputBranch[i] = branch;
            return;
        }
    }
    // Not yet an input: add the edge.
    c.inputs.push_back(switch_op);
    c.inputBranch.push_back(branch);
}

std::vector<OpId>
Graph::successors(OpId id) const
{
    std::vector<OpId> out;
    for (const OpNode &n : nodes_)
        for (OpId in : n.inputs)
            if (in == id)
                out.push_back(n.id);
    return out;
}

std::vector<OpId>
Graph::topoOrder() const
{
    std::vector<int> indeg(nodes_.size(), 0);
    for (const OpNode &n : nodes_)
        indeg[n.id] = static_cast<int>(n.inputs.size());

    // Successor adjacency built once for O(V + E) traversal.
    std::vector<std::vector<OpId>> succ(nodes_.size());
    for (const OpNode &n : nodes_)
        for (OpId in : n.inputs)
            succ[in].push_back(n.id);

    std::vector<OpId> frontier;
    for (const OpNode &n : nodes_)
        if (indeg[n.id] == 0)
            frontier.push_back(n.id);

    std::vector<OpId> order;
    order.reserve(nodes_.size());
    while (!frontier.empty()) {
        const OpId id = frontier.back();
        frontier.pop_back();
        order.push_back(id);
        for (OpId next : succ[id])
            if (--indeg[next] == 0)
                frontier.push_back(next);
    }
    if (order.size() != nodes_.size())
        ADYNA_FATAL("graph '", name_, "' contains a cycle");
    return order;
}

std::vector<OpId>
Graph::inputIds() const
{
    std::vector<OpId> out;
    for (const OpNode &n : nodes_)
        if (n.kind == OpKind::Input)
            out.push_back(n.id);
    return out;
}

std::vector<OpId>
Graph::outputIds() const
{
    std::vector<OpId> out;
    for (const OpNode &n : nodes_)
        if (n.kind == OpKind::Output)
            out.push_back(n.id);
    return out;
}

std::int64_t
Graph::totalMacs() const
{
    std::int64_t total = 0;
    for (const OpNode &n : nodes_)
        total += n.macs();
    return total;
}

Bytes
Graph::totalWeightBytes() const
{
    Bytes total = 0;
    for (const OpNode &n : nodes_)
        total += n.weightBytes();
    return total;
}

void
Graph::validate() const
{
    for (const OpNode &n : nodes_) {
        if (!n.dims.valid())
            ADYNA_FATAL("op '", n.name, "' has non-positive dims ",
                        n.dims.str());
        if (n.inputs.size() != n.inputBranch.size())
            ADYNA_FATAL("op '", n.name,
                        "' has mismatched inputs/inputBranch sizes");
        for (OpId in : n.inputs) {
            if (in >= nodes_.size())
                ADYNA_FATAL("op '", n.name, "' references bad input ", in);
            if (in == n.id)
                ADYNA_FATAL("op '", n.name, "' is self-referential");
        }
        if (n.kind == OpKind::Switch) {
            if (n.policy.numBranches < 2)
                ADYNA_FATAL("switch '", n.name, "' has < 2 branches");
            if (n.inputs.empty())
                ADYNA_FATAL("switch '", n.name, "' has no input");
        }
        if (n.kind == OpKind::Merge && n.inputs.empty())
            ADYNA_FATAL("merge '", n.name, "' has no inputs");
        if (n.kind == OpKind::Input && !n.inputs.empty())
            ADYNA_FATAL("input '", n.name, "' must not have producers");
    }
    topoOrder(); // fatal() on cycles
}

} // namespace adyna::graph
