#include "graph/dot.hh"

#include <sstream>

namespace adyna::graph {

namespace {

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char *
shapeFor(OpKind kind)
{
    switch (kind) {
      case OpKind::Switch: return "diamond";
      case OpKind::Merge: return "invtriangle";
      case OpKind::Sink: return "point";
      case OpKind::Input:
      case OpKind::Output: return "ellipse";
      default: return "box";
    }
}

void
emitEdges(std::ostringstream &os, const Graph &g)
{
    for (const OpNode &n : g.nodes()) {
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            os << "  n" << n.inputs[i] << " -> n" << n.id;
            if (n.inputBranch[i] >= 0)
                os << " [label=\"b" << n.inputBranch[i] << "\"]";
            os << ";\n";
        }
    }
}

} // namespace

std::string
toDot(const Graph &g)
{
    std::ostringstream os;
    os << "digraph \"" << escape(g.name()) << "\" {\n"
       << "  rankdir=TB;\n  node [fontsize=10];\n";
    for (const OpNode &n : g.nodes()) {
        os << "  n" << n.id << " [label=\"" << escape(n.name) << "\\n"
           << opKindName(n.kind) << "\", shape=" << shapeFor(n.kind)
           << "];\n";
    }
    emitEdges(os, g);
    os << "}\n";
    return os.str();
}

std::string
toDot(const DynGraph &dg)
{
    const Graph &g = dg.graph();
    std::ostringstream os;
    os << "digraph \"" << escape(g.name()) << "\" {\n"
       << "  rankdir=TB;\n  node [fontsize=10];\n";
    for (const OpNode &n : g.nodes()) {
        const DynOpInfo &di = dg.info(n.id);
        os << "  n" << n.id << " [label=\"" << escape(n.name) << "\\n"
           << opKindName(n.kind);
        if (di.dynamic)
            os << "\\ndyn<=" << di.maxDyn;
        os << "\", shape=" << shapeFor(n.kind);
        if (di.dynamic)
            os << ", style=filled, fillcolor=lightgray";
        os << "];\n";
    }
    emitEdges(os, g);
    os << "}\n";
    return os.str();
}

} // namespace adyna::graph
