/**
 * @file
 * Graph construction transforms that realize the paper's Figure 5:
 * lowering each DynNN dynamism category onto switch / merge / sink
 * structures with all dynamism on the batch dimension.
 *
 * These helpers operate on a user-level Graph before parsing and are
 * what the model zoo (src/models) uses to express early exiting,
 * layer skipping, MoE routing, dynamic channel pruning, and patch
 * selection.
 */

#ifndef ADYNA_GRAPH_TRANSFORMS_HH
#define ADYNA_GRAPH_TRANSFORMS_HH

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace adyna::graph {

/**
 * Builds the operators of one branch body: receives the branch input
 * id (the switch) and returns the branch tail id.
 */
using BranchBuilder = std::function<OpId(Graph &, OpId)>;

/**
 * Run @p body with @p sw as its input and tag every op it created
 * that directly consumes @p sw as lying on @p branch.
 * @return the branch tail id returned by the body.
 */
OpId buildBranch(Graph &g, OpId sw, int branch, const BranchBuilder &body);

/**
 * Early exiting (Figure 5(a)): a gate classifier computes the mask;
 * exiting samples leave through a sink on branch 0.
 *
 * @param gate_classes output features of the gate / exit head.
 * @param exit_prob marginal probability that a sample exits here.
 * @param gate_index position of this gate along the model.
 * @return the switch id; attach the continuing ops to branch 1 with
 *         buildBranch(g, sw, 1, ...).
 */
OpId addEarlyExit(Graph &g, const std::string &name, OpId input,
                  std::int64_t gate_classes, double exit_prob,
                  int gate_index);

/**
 * Layer skipping (Figure 5(c)): a gate decides per sample whether to
 * run the block (branch 1) or take the shortcut (branch 0); a merge
 * rejoins the batch.
 *
 * @param skip_prob marginal probability that a sample skips the block.
 * @return the merge output id (full batch again).
 */
OpId addLayerSkip(Graph &g, const std::string &name, OpId input,
                  double skip_prob, int gate_index,
                  const BranchBuilder &block);

/**
 * Mixture-of-Experts routing (Figure 5(b)): a router matmul computes
 * expert scores; each sample activates top-k experts; a merge
 * combines expert outputs.
 *
 * @param expert_bias optional per-expert popularity weights.
 * @param units_per_sample rows per routed unit holder: tokens route
 *        independently, so this is the token fold of the batch rows
 *        (see RoutingPolicy::unitsPerSample).
 * @return the merge output id.
 */
OpId addMoE(Graph &g, const std::string &name, OpId input,
            int num_experts, int top_k,
            const std::vector<double> &expert_bias,
            const BranchBuilder &expert,
            std::int64_t units_per_sample = 1);

/**
 * Dynamic channel pruning (Figure 5(b), FBSNet-style): splits a
 * convolution with a dynamic input-channel dimension into
 * @p num_blocks dense sub-operators along C, each a branch of a
 * ChannelBlocks switch; a merge sums the partial outputs.
 *
 * @param conv_dims full (unpruned) dims of the convolution.
 * @param keep_frac expected fraction of channel blocks each sample
 *        activates.
 * @return the merge output id.
 */
OpId addChannelPrunedConv(Graph &g, const std::string &name, OpId input,
                          const LoopDims &conv_dims, int stride,
                          int num_blocks, double keep_frac,
                          int gate_index);

/**
 * Patch selection (Figure 5(d), DPSNet-style): the input batch is
 * already patch-folded (N = samples x patches); a scorer network
 * computes patch importances, unselected patches are discarded
 * through a sink on branch 1, and the selected (dynamic) rows on
 * branch 0 continue.
 *
 * @param keep_frac expected fraction of patches kept per sample.
 * @return the switch id; attach the kept-patch ops to branch 0 with
 *         buildBranch(g, sw, 0, ...).
 */
OpId addPatchSelect(Graph &g, const std::string &name, OpId folded_input,
                    double keep_frac, int gate_index);

} // namespace adyna::graph

#endif // ADYNA_GRAPH_TRANSFORMS_HH
