/**
 * @file
 * The paper's unified representation: dynamic operator graphs
 * (Section IV). Produced by the model parser from a user-level Graph;
 * all dynamism is folded onto the batch dimension (N), each dynamic
 * operator knows its controlling switch, and a frequency track table
 * slot exists for every dynamic operator.
 */

#ifndef ADYNA_GRAPH_DYNGRAPH_HH
#define ADYNA_GRAPH_DYNGRAPH_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "graph/graph.hh"

namespace adyna::graph {

/**
 * Dynamism annotation of one operator in a dynamic operator graph.
 * `branch >= 0` means the op lies on that branch of `ownerSwitch`;
 * `branch == -1` with a valid ownerSwitch means the op executes after
 * the switch's merge but still sees a dynamic batch (samples may have
 * left through a sink, e.g. early exiting).
 */
struct DynOpInfo
{
    /** Batch extent varies at runtime. */
    bool dynamic = false;

    /** Nearest switch controlling this op's batch extent. */
    OpId ownerSwitch = kInvalidOp;

    /** Branch index on ownerSwitch, or -1 for post-merge ops. */
    int branch = -1;

    /** Worst-case dyn_dim (batch) value. */
    std::int64_t maxDyn = 0;

    /** Number of epilogue operators fused into this node. */
    int epilogueOps = 0;

    /** Effective output dims after fusion (tail of the fused chain). */
    LoopDims outDims;
};

/** Branch structure of one switch operator. */
struct SwitchInfo
{
    OpId switchOp = kInvalidOp;

    /** Per-branch operator ids, in topological order. */
    std::vector<std::vector<OpId>> branches;

    /** The merge joining the branches, if any. */
    OpId mergeOp = kInvalidOp;

    /** True if any branch terminates in a sink (samples can leave,
     * making post-merge batch extents dynamic). */
    bool hasSink = false;

    int numBranches() const { return static_cast<int>(branches.size()); }
};

/**
 * A parsed dynamic operator graph: the fused computation graph plus
 * per-op dynamism annotations and per-switch branch structure. The
 * structure is immutable after parsing; runtime frequency track
 * tables are kept by the profiler (adyna::arch) keyed by OpId.
 */
class DynGraph
{
  public:
    DynGraph(Graph graph, std::vector<DynOpInfo> info,
             std::vector<SwitchInfo> switches);

    const Graph &graph() const { return graph_; }
    const std::string &name() const { return graph_.name(); }

    const DynOpInfo &info(OpId id) const;
    const std::vector<SwitchInfo> &switches() const { return switches_; }

    /** The switch structure owning @p switch_op; fatal if absent. */
    const SwitchInfo &switchInfo(OpId switch_op) const;

    bool isDynamic(OpId id) const { return info(id).dynamic; }
    std::int64_t maxDyn(OpId id) const { return info(id).maxDyn; }

    /** Ids of all dynamic operators (frequency-table owners). */
    std::vector<OpId> dynamicOps() const;

    /** Ids of all compute operators, topologically ordered. */
    std::vector<OpId> computeOps() const;

    /** Cached topological order over all nodes. */
    const std::vector<OpId> &topo() const { return topo_; }

    /** Worst-case MACs of the whole graph (one batch). */
    std::int64_t worstCaseMacs() const;

    /**
     * Expected MACs of one batch under the given per-op expected
     * batch extents (op id -> E[dyn]); ops absent from the map use
     * their worst case.
     */
    double expectedMacs(
        const std::vector<std::pair<OpId, double>> &expected) const;

    /** One line per op: kind, dims, dynamism annotation. */
    std::string summary() const;

  private:
    Graph graph_;
    std::vector<DynOpInfo> info_;
    std::vector<SwitchInfo> switches_;
    std::vector<OpId> topo_;
};

} // namespace adyna::graph

#endif // ADYNA_GRAPH_DYNGRAPH_HH
