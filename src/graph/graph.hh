/**
 * @file
 * Computation graph container with builder helpers for both static
 * operators and the paper's switch / merge / sink dynamic operators.
 */

#ifndef ADYNA_GRAPH_GRAPH_HH
#define ADYNA_GRAPH_GRAPH_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/op.hh"

namespace adyna::graph {

/**
 * A directed acyclic graph of operators. Node identifiers are stable
 * indices into an internal vector; edges are recorded as per-node
 * input lists with a lazily built successor index.
 */
class Graph
{
  public:
    explicit Graph(std::string name = {});

    const std::string &name() const { return name_; }

    /** Number of nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** Node access; @p id must be valid. */
    const OpNode &node(OpId id) const;
    OpNode &node(OpId id);

    /** All nodes in insertion order. */
    const std::vector<OpNode> &nodes() const { return nodes_; }

    // --- builder API -----------------------------------------------

    /** Add a graph input producing a tensor of the given dims. */
    OpId addInput(const std::string &name, const LoopDims &dims,
                  int dtype_bytes = 2);

    /** Add a dense convolution. */
    OpId addConv(const std::string &name, OpId input,
                 const LoopDims &dims, int stride = 1);

    /** Add a matmul / fully-connected operator. */
    OpId addMatMul(const std::string &name, OpId input, std::int64_t k,
                   std::int64_t c);

    /** Add a fusable epilogue op (Eltwise/Pool/Act/Norm/Softmax). */
    OpId addFusable(const std::string &name, OpKind kind,
                    std::vector<OpId> inputs, const LoopDims &dims,
                    int stride = 1);

    /**
     * Add a switch operator splitting @p input along the batch
     * dimension according to @p policy. @p mask, if valid, is the
     * operator producing the routing mask (a data dependency; its
     * compute cost is part of the model, Section IV).
     */
    OpId addSwitch(const std::string &name, OpId input,
                   const RoutingPolicy &policy, OpId mask = kInvalidOp);

    /**
     * Add a merge joining the given branch tails back into one
     * tensor (concatenation along the dynamic dimension).
     */
    OpId addMerge(const std::string &name, std::vector<OpId> inputs);

    /**
     * Add a merge that also restores a pre-fold batch extent
     * (unfoldsBatch = true) with explicit output dims.
     */
    OpId addUnfoldMerge(const std::string &name, std::vector<OpId> inputs,
                        const LoopDims &out_dims);

    /** Add a sink that discards its input. */
    OpId addSink(const std::string &name, OpId input, int branch = -1);

    /** Add a graph output consuming @p input. */
    OpId addOutput(const std::string &name, OpId input);

    /** Add a fully specified node (advanced; used by transforms). */
    OpId addNode(OpNode node);

    /**
     * Record that @p consumer reads branch @p branch of switch
     * @p switch_op (instead of its whole output).
     */
    void connectBranch(OpId switch_op, int branch, OpId consumer);

    // --- queries ----------------------------------------------------

    /** Successor node ids of @p id (consumers of its output). */
    std::vector<OpId> successors(OpId id) const;

    /** Topological order of all node ids; fatal() if cyclic. */
    std::vector<OpId> topoOrder() const;

    /** Ids of Input nodes. */
    std::vector<OpId> inputIds() const;

    /** Ids of Output nodes. */
    std::vector<OpId> outputIds() const;

    /** Total worst-case MACs over all compute nodes. */
    std::int64_t totalMacs() const;

    /** Total weight bytes over all compute nodes. */
    Bytes totalWeightBytes() const;

    /**
     * Structural validation: edges in range, acyclic, switches have
     * >= 2 branches, merges >= 1 input, dims positive. fatal() with a
     * diagnostic on the first violation.
     */
    void validate() const;

  private:
    std::string name_;
    std::vector<OpNode> nodes_;
};

} // namespace adyna::graph

#endif // ADYNA_GRAPH_GRAPH_HH
