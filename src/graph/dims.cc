#include "graph/dims.hh"

#include <sstream>

namespace adyna::graph {

const char *
dimName(Dim d)
{
    static const char *const names[kNumDims] = {"N", "K", "C", "P",
                                                "Q", "R", "S"};
    return names[static_cast<std::size_t>(d)];
}

LoopDims
LoopDims::conv(std::int64_t n, std::int64_t k, std::int64_t c,
               std::int64_t p, std::int64_t q, std::int64_t r,
               std::int64_t s)
{
    LoopDims d;
    d[Dim::N] = n;
    d[Dim::K] = k;
    d[Dim::C] = c;
    d[Dim::P] = p;
    d[Dim::Q] = q;
    d[Dim::R] = r;
    d[Dim::S] = s;
    return d;
}

LoopDims
LoopDims::matmul(std::int64_t n, std::int64_t k, std::int64_t c)
{
    return conv(n, k, c, 1, 1, 1, 1);
}

std::int64_t
LoopDims::macs() const
{
    std::int64_t total = 1;
    for (std::int64_t e : ext)
        total *= e;
    return total;
}

LoopDims
LoopDims::with(Dim d, std::int64_t extent) const
{
    LoopDims copy = *this;
    copy[d] = extent;
    return copy;
}

bool
LoopDims::valid() const
{
    for (std::int64_t e : ext)
        if (e <= 0)
            return false;
    return true;
}

std::string
LoopDims::str() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < kNumDims; ++i) {
        if (i)
            os << ' ';
        os << dimName(static_cast<Dim>(i)) << ext[i];
    }
    os << ']';
    return os.str();
}

} // namespace adyna::graph
