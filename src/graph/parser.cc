#include "graph/parser.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace adyna::graph {

namespace {

/** Result of the epilogue-fusion rewrite. */
struct FusedGraph
{
    Graph graph;
    /** Per-new-op count of fused epilogue operators. */
    std::vector<int> epilogueOps;
    /** Per-new-op effective output dims (tail of the fused chain). */
    std::vector<LoopDims> outDims;
};

/**
 * Fuse linear chains of fusable operators into their compute
 * producers. A fusable op joins its producer's cluster when the
 * producer resolves to a compute op and the fusable op is the
 * producer's only consumer.
 */
FusedGraph
fuseEpilogues(const Graph &user, bool enabled)
{
    const std::vector<OpId> topo = user.topoOrder();

    // Consumer counts in the original graph.
    std::vector<int> consumers(user.size(), 0);
    for (const OpNode &n : user.nodes())
        for (OpId in : n.inputs)
            ++consumers[in];

    // root[i]: cluster representative of node i.
    std::vector<OpId> root(user.size());
    for (OpId id : topo) {
        const OpNode &n = user.node(id);
        root[id] = id;
        if (!enabled || !isFusable(n.kind) || n.inputs.empty())
            continue;
        const OpId p = n.inputs[0];
        if (isCompute(user.node(root[p]).kind) && consumers[p] == 1)
            root[id] = root[p];
    }

    // The topologically last member of each cluster is the chain
    // tail whose dims define the cluster's effective output.
    std::vector<OpId> tail(user.size());
    std::vector<int> members(user.size(), 0);
    for (OpId id : topo) {
        tail[root[id]] = id;
        ++members[root[id]];
    }

    FusedGraph out{Graph(user.name()), {}, {}};
    std::vector<OpId> newId(user.size(), kInvalidOp);
    for (OpId id : topo) {
        if (root[id] != id)
            continue;
        const OpNode &orig = user.node(id);
        OpNode n;
        n.name = orig.name;
        n.kind = orig.kind;
        n.dims = orig.dims;
        n.stride = orig.stride;
        n.dtypeBytes = orig.dtypeBytes;
        n.declaredDynDim = orig.declaredDynDim;
        n.policy = orig.policy;
        n.unfoldsBatch = orig.unfoldsBatch;

        // External inputs of the whole cluster, in discovery order,
        // with duplicate edges collapsed.
        std::vector<OpId> ins;
        std::vector<int> branches;
        auto addEdge = [&](OpId producer, int branch) {
            const OpId mapped = newId[root[producer]];
            ADYNA_ASSERT(mapped != kInvalidOp,
                         "producer not yet emitted for op '", orig.name,
                         "'");
            for (std::size_t i = 0; i < ins.size(); ++i)
                if (ins[i] == mapped && branches[i] == branch)
                    return;
            ins.push_back(mapped);
            branches.push_back(branch);
        };
        for (OpId member : topo) {
            if (root[member] != id)
                continue;
            const OpNode &m = user.node(member);
            for (std::size_t i = 0; i < m.inputs.size(); ++i)
                if (root[m.inputs[i]] != id)
                    addEdge(m.inputs[i], m.inputBranch[i]);
        }
        n.inputs = std::move(ins);
        n.inputBranch = std::move(branches);

        const OpId nid = out.graph.addNode(std::move(n));
        newId[id] = nid;
        out.epilogueOps.push_back(members[id] - 1);
        out.outDims.push_back(user.node(tail[id]).dims);
    }
    return out;
}

/** Annotation of an op lying on a concrete switch branch. */
struct BranchAnn
{
    OpId switchOp;
    int branch;

    bool operator==(const BranchAnn &other) const = default;
};

} // namespace

DynGraph
parseModel(const Graph &user, const ParseOptions &opts)
{
    user.validate();
    FusedGraph fused = fuseEpilogues(user, opts.fuseEpilogues);
    const Graph &g = fused.graph;
    const std::vector<OpId> topo = g.topoOrder();

    // ---- pass A: propagate branch membership -----------------------
    std::vector<std::optional<BranchAnn>> branchAnn(g.size());
    std::map<OpId, OpId> mergeOf; // switch id -> merge id
    for (OpId id : topo) {
        const OpNode &n = g.node(id);
        if (n.kind == OpKind::Input || n.kind == OpKind::Switch)
            continue;

        std::optional<BranchAnn> ann;
        std::optional<OpId> mergedSwitch;
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            const OpId in = n.inputs[i];
            const OpNode &p = g.node(in);
            std::optional<BranchAnn> candidate;
            if (p.kind == OpKind::Switch) {
                if (n.inputBranch[i] < 0)
                    ADYNA_FATAL("op '", n.name,
                                "' consumes switch '", p.name,
                                "' without naming a branch");
                candidate = BranchAnn{in, n.inputBranch[i]};
            } else if (branchAnn[in]) {
                candidate = branchAnn[in];
            }
            if (!candidate)
                continue;
            if (ann && !(*ann == *candidate)) {
                if (n.kind == OpKind::Merge &&
                    ann->switchOp == candidate->switchOp) {
                    mergedSwitch = ann->switchOp;
                    continue; // joining branches of one switch: fine
                }
                ADYNA_FATAL("op '", n.name,
                            "' is controlled by two switches/branches "
                            "(switch ", ann->switchOp, " branch ",
                            ann->branch, " vs switch ",
                            candidate->switchOp, " branch ",
                            candidate->branch, ")");
            }
            ann = candidate;
        }

        if (n.kind == OpKind::Merge) {
            if (ann) {
                mergeOf[ann->switchOp] = id;
            }
            branchAnn[id].reset(); // merge output leaves the branches
        } else if (n.kind == OpKind::Sink) {
            branchAnn[id] = ann; // terminal; keeps branch for hasSink
        } else {
            branchAnn[id] = ann;
        }
        if (mergedSwitch)
            mergeOf[*mergedSwitch] = id;
    }

    // hasSink per switch: any sink annotated with one of its branches.
    std::map<OpId, bool> hasSink;
    for (OpId id : topo) {
        const OpNode &n = g.node(id);
        if (n.kind == OpKind::Sink && branchAnn[id])
            hasSink[branchAnn[id]->switchOp] = true;
    }

    // ---- pass B: batch dynamism ------------------------------------
    struct DynState
    {
        bool dynamic = false;
        OpId owner = kInvalidOp;
        int branch = -1;
    };
    std::vector<DynState> dyn(g.size());
    for (OpId id : topo) {
        const OpNode &n = g.node(id);
        if (branchAnn[id]) {
            dyn[id] = {true, branchAnn[id]->switchOp,
                       branchAnn[id]->branch};
            continue;
        }
        switch (n.kind) {
          case OpKind::Input:
            dyn[id] = {};
            break;
          case OpKind::Merge: {
            // Which switch does this merge join?
            OpId sw = kInvalidOp;
            for (const auto &[s, m] : mergeOf)
                if (m == id)
                    sw = s;
            if (sw == kInvalidOp) {
                DynState inherited =
                    n.inputs.empty() ? DynState{} : dyn[n.inputs[0]];
                if (n.unfoldsBatch && inherited.dynamic) {
                    // Unfold-merge fed through nested structures
                    // (e.g. skip blocks inside a patch-select
                    // region): restore the controlling switch's
                    // input dynamism.
                    dyn[id] = dyn[inherited.owner];
                } else {
                    // Plain concat; inherit from the first input.
                    dyn[id] = inherited;
                }
            } else if (hasSink[sw] && !n.unfoldsBatch) {
                dyn[id] = {true, sw, -1};
            } else {
                dyn[id] = dyn[sw]; // restore the switch input's state
            }
            break;
          }
          default:
            dyn[id] = n.inputs.empty() ? DynState{} : dyn[n.inputs[0]];
            break;
        }
    }

    // ---- assemble DynOpInfo and SwitchInfo --------------------------
    std::vector<DynOpInfo> info(g.size());
    for (OpId id : topo) {
        const OpNode &n = g.node(id);
        DynOpInfo &di = info[id];
        di.dynamic = dyn[id].dynamic;
        di.ownerSwitch = dyn[id].owner;
        di.branch = dyn[id].branch;
        di.maxDyn = di.dynamic ? n.dims.n() : n.dims.n();
        di.epilogueOps = fused.epilogueOps[id];
        di.outDims = fused.outDims[id];
    }

    std::vector<SwitchInfo> switches;
    for (OpId id : topo) {
        const OpNode &n = g.node(id);
        if (n.kind != OpKind::Switch)
            continue;
        SwitchInfo sw;
        sw.switchOp = id;
        sw.branches.resize(n.policy.numBranches);
        for (OpId other : topo)
            if (branchAnn[other] && branchAnn[other]->switchOp == id)
                sw.branches[branchAnn[other]->branch].push_back(other);
        const auto it = mergeOf.find(id);
        sw.mergeOp = it == mergeOf.end() ? kInvalidOp : it->second;
        sw.hasSink = hasSink[id];
        switches.push_back(std::move(sw));
    }

    return DynGraph(std::move(fused.graph), std::move(info),
                    std::move(switches));
}

} // namespace adyna::graph
