/**
 * @file
 * Graphviz DOT export of (dynamic) operator graphs for documentation
 * and debugging.
 */

#ifndef ADYNA_GRAPH_DOT_HH
#define ADYNA_GRAPH_DOT_HH

#include <string>

#include "graph/dyngraph.hh"
#include "graph/graph.hh"

namespace adyna::graph {

/** Render a user-level graph as DOT. */
std::string toDot(const Graph &g);

/** Render a parsed dynamic operator graph as DOT; dynamic operators
 * are shaded, matching the paper's Figure 5. */
std::string toDot(const DynGraph &dg);

} // namespace adyna::graph

#endif // ADYNA_GRAPH_DOT_HH
