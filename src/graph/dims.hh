/**
 * @file
 * The 7-dimensional loop-nest abstraction of tensor operators.
 *
 * Every compute operator in Adyna lowers to a dense nested loop over
 * the dimensions (N, K, C, P, Q, R, S): batch, output channels, input
 * channels, output rows, output columns, filter rows, filter columns.
 * A fully-connected / matmul operator is the special case with
 * P = Q = R = S = 1. This is the canonical abstraction used by DNN
 * dataflow schedulers (Timeloop, Interstellar) and by the paper's
 * kernel template (Figure 8).
 */

#ifndef ADYNA_GRAPH_DIMS_HH
#define ADYNA_GRAPH_DIMS_HH

#include <array>
#include <cstdint>
#include <string>

namespace adyna::graph {

/** Loop dimensions of the canonical 7-dim operator nest. */
enum class Dim : std::uint8_t {
    N = 0, ///< batch (always the dynamic dimension after parsing)
    K = 1, ///< output channels / matmul output features
    C = 2, ///< input channels / matmul input features
    P = 3, ///< output feature-map rows
    Q = 4, ///< output feature-map columns
    R = 5, ///< filter rows
    S = 6, ///< filter columns
};

inline constexpr std::size_t kNumDims = 7;

/** Short name ("N", "K", ...) of a dimension. */
const char *dimName(Dim d);

/** Per-dimension extents of one operator's loop nest. */
struct LoopDims
{
    std::array<std::int64_t, kNumDims> ext{1, 1, 1, 1, 1, 1, 1};

    std::int64_t
    operator[](Dim d) const
    {
        return ext[static_cast<std::size_t>(d)];
    }

    std::int64_t &
    operator[](Dim d)
    {
        return ext[static_cast<std::size_t>(d)];
    }

    std::int64_t n() const { return (*this)[Dim::N]; }
    std::int64_t k() const { return (*this)[Dim::K]; }
    std::int64_t c() const { return (*this)[Dim::C]; }
    std::int64_t p() const { return (*this)[Dim::P]; }
    std::int64_t q() const { return (*this)[Dim::Q]; }
    std::int64_t r() const { return (*this)[Dim::R]; }
    std::int64_t s() const { return (*this)[Dim::S]; }

    /** Convolution-style dims. */
    static LoopDims conv(std::int64_t n, std::int64_t k, std::int64_t c,
                         std::int64_t p, std::int64_t q, std::int64_t r,
                         std::int64_t s);

    /** Matmul dims: [n, c] x [c, k] -> [n, k]. */
    static LoopDims matmul(std::int64_t n, std::int64_t k, std::int64_t c);

    /** Total multiply-accumulate count of the full nest. */
    std::int64_t macs() const;

    /** Copy with a different extent for one dimension. */
    LoopDims with(Dim d, std::int64_t extent) const;

    /** All extents positive. */
    bool valid() const;

    /** Human-readable form, e.g. "[N8 K64 C64 P56 Q56 R3 S3]". */
    std::string str() const;

    bool operator==(const LoopDims &other) const = default;
};

} // namespace adyna::graph

#endif // ADYNA_GRAPH_DIMS_HH
