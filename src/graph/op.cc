#include "graph/op.hh"

#include "common/logging.hh"

namespace adyna::graph {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "Input";
      case OpKind::Output: return "Output";
      case OpKind::Conv2d: return "Conv2d";
      case OpKind::MatMul: return "MatMul";
      case OpKind::Eltwise: return "Eltwise";
      case OpKind::Pool: return "Pool";
      case OpKind::Act: return "Act";
      case OpKind::Norm: return "Norm";
      case OpKind::Softmax: return "Softmax";
      case OpKind::Switch: return "Switch";
      case OpKind::Merge: return "Merge";
      case OpKind::Sink: return "Sink";
    }
    ADYNA_PANIC("unknown OpKind ", static_cast<int>(kind));
}

bool
isCompute(OpKind kind)
{
    return kind == OpKind::Conv2d || kind == OpKind::MatMul;
}

bool
isFusable(OpKind kind)
{
    switch (kind) {
      case OpKind::Eltwise:
      case OpKind::Pool:
      case OpKind::Act:
      case OpKind::Norm:
      case OpKind::Softmax:
        return true;
      default:
        return false;
    }
}

bool
isRouting(OpKind kind)
{
    return kind == OpKind::Switch || kind == OpKind::Merge ||
           kind == OpKind::Sink;
}

std::int64_t
OpNode::macs() const
{
    return isCompute(kind) ? dims.macs() : 0;
}

Bytes
OpNode::inputBytesAt(std::int64_t n) const
{
    // Input spatial extents from output extents, stride, and filter.
    const std::int64_t ih =
        (dims.p() - 1) * stride + dims.r();
    const std::int64_t iw =
        (dims.q() - 1) * stride + dims.s();
    const std::int64_t elems = n * dims.c() * ih * iw;
    return static_cast<Bytes>(elems) * dtypeBytes;
}

Bytes
OpNode::outputBytesAt(std::int64_t n) const
{
    const std::int64_t elems = n * dims.k() * dims.p() * dims.q();
    return static_cast<Bytes>(elems) * dtypeBytes;
}

Bytes
OpNode::inputBytes() const
{
    return inputBytesAt(dims.n());
}

Bytes
OpNode::outputBytes() const
{
    return outputBytesAt(dims.n());
}

Bytes
OpNode::weightBytes() const
{
    if (!isCompute(kind))
        return 0;
    const std::int64_t elems = dims.k() * dims.c() * dims.r() * dims.s();
    return static_cast<Bytes>(elems) * dtypeBytes;
}

} // namespace adyna::graph
