#include "graph/dyngraph.hh"

#include <sstream>

#include "common/logging.hh"

namespace adyna::graph {

DynGraph::DynGraph(Graph graph, std::vector<DynOpInfo> info,
                   std::vector<SwitchInfo> switches)
    : graph_(std::move(graph)), info_(std::move(info)),
      switches_(std::move(switches))
{
    ADYNA_ASSERT(info_.size() == graph_.size(),
                 "DynOpInfo count mismatch: ", info_.size(), " vs ",
                 graph_.size());
    topo_ = graph_.topoOrder();
}

const DynOpInfo &
DynGraph::info(OpId id) const
{
    ADYNA_ASSERT(id < info_.size(), "bad OpId ", id);
    return info_[id];
}

const SwitchInfo &
DynGraph::switchInfo(OpId switch_op) const
{
    for (const SwitchInfo &sw : switches_)
        if (sw.switchOp == switch_op)
            return sw;
    ADYNA_PANIC("no SwitchInfo for op ", switch_op);
}

std::vector<OpId>
DynGraph::dynamicOps() const
{
    std::vector<OpId> out;
    for (OpId id : topo_)
        if (info_[id].dynamic)
            out.push_back(id);
    return out;
}

std::vector<OpId>
DynGraph::computeOps() const
{
    std::vector<OpId> out;
    for (OpId id : topo_)
        if (isCompute(graph_.node(id).kind))
            out.push_back(id);
    return out;
}

std::int64_t
DynGraph::worstCaseMacs() const
{
    return graph_.totalMacs();
}

double
DynGraph::expectedMacs(
    const std::vector<std::pair<OpId, double>> &expected) const
{
    double total = 0.0;
    for (const OpNode &n : graph_.nodes()) {
        if (n.macs() == 0)
            continue;
        double scale = 1.0;
        for (const auto &[id, exp_n] : expected) {
            if (id == n.id && n.dims.n() > 0) {
                scale = exp_n / static_cast<double>(n.dims.n());
                break;
            }
        }
        total += scale * static_cast<double>(n.macs());
    }
    return total;
}

std::string
DynGraph::summary() const
{
    std::ostringstream os;
    os << "DynGraph '" << name() << "': " << graph_.size() << " ops, "
       << switches_.size() << " switches, " << dynamicOps().size()
       << " dynamic ops\n";
    for (OpId id : topo_) {
        const OpNode &n = graph_.node(id);
        const DynOpInfo &di = info_[id];
        os << "  #" << id << ' ' << opKindName(n.kind) << " '" << n.name
           << "' " << n.dims.str();
        if (di.dynamic) {
            os << " dyn(max=" << di.maxDyn << ", switch=" << di.ownerSwitch
               << ", branch=" << di.branch << ")";
        }
        if (di.epilogueOps > 0)
            os << " +" << di.epilogueOps << " fused";
        os << '\n';
    }
    return os.str();
}

} // namespace adyna::graph
