/**
 * @file
 * The model parser (Section IV): lowers a user-level Graph into a
 * DynGraph by (1) fusing element-wise / in-place epilogue operators
 * into their producing compute operators (matching the hardware
 * kernel template's fusion support, Section VI-B), (2) propagating
 * dynamism from switch operators onto the batch dimension of every
 * affected operator, and (3) enforcing the representation's
 * structural constraints.
 */

#ifndef ADYNA_GRAPH_PARSER_HH
#define ADYNA_GRAPH_PARSER_HH

#include "graph/dyngraph.hh"
#include "graph/graph.hh"

namespace adyna::graph {

/** Options controlling the parse. */
struct ParseOptions
{
    /** Fuse epilogue chains into compute producers. */
    bool fuseEpilogues = true;
};

/**
 * Parse @p user into a dynamic operator graph.
 *
 * Constraints enforced (fatal() on violation, Section IV):
 *  - every consumer of a switch output names a concrete branch;
 *  - an operator may lie on at most one branch of one switch (only a
 *    merge may join branches, and only branches of a single switch);
 *  - an operator may be controlled by at most one switch (nested
 *    switches hand over control at the inner switch).
 */
DynGraph parseModel(const Graph &user, const ParseOptions &opts = {});

} // namespace adyna::graph

#endif // ADYNA_GRAPH_PARSER_HH
