/**
 * @file
 * Dataflow schedule structures: graph segments, per-operator stage
 * assignments (tile groups + multi-kernel stores), tile-sharing
 * pairs (Section V-B), and branch groups.
 */

#ifndef ADYNA_CORE_SCHEDULE_HH
#define ADYNA_CORE_SCHEDULE_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "kernels/store.hh"

namespace adyna::core {

/** One operator spatially scheduled onto a tile group. */
struct StageAssign
{
    OpId op = kInvalidOp;

    /**
     * The full tile range this stage may use. Without sharing the
     * stage always uses all of them; with sharing the per-batch
     * configuration selects a prefix / suffix.
     */
    std::vector<TileId> tiles;

    /** Tiles used in the default configuration. */
    int baseTiles = 1;

    /** Kernel stores per tile-group size (sharing configurations
     * need kernels for each possible size, Section VII). */
    std::map<int, kernels::KernelStore> stores;

    /** Weights stay resident in the scratchpads (vs streamed from
     * DRAM every batch). */
    bool weightsResident = true;

    /** Index into Segment::pairs, -1 if unshared. */
    int sharePair = -1;

    /** True if this stage is the first member of its share pair
     * (uses the range prefix; the second member uses the suffix). */
    bool shareFirst = false;
};

/** A tile-sharing pair: two stages on complementary branches share
 * boundary tiles under three allocation ratios (Section V-B). */
struct SharePair
{
    int stageA = -1; ///< index into Segment::stages
    int stageB = -1;

    /** (tilesA, tilesB) per configuration: base ratio a:b, then
     * 2a:b, then a:2b. */
    std::array<std::pair<int, int>, 3> alloc{};
};

/** A pipelined group of operators resident on-chip together. */
struct Segment
{
    /** Stages in topological order. */
    std::vector<StageAssign> stages;

    /** Tile-sharing pairs among the stages. */
    std::vector<SharePair> pairs;

    /** Total resident weight bytes (loaded at segment activation). */
    Bytes residentWeightBytes = 0;

    /** Stage index of an op, -1 if not in this segment. */
    int stageOf(OpId op) const;
};

/** A full dataflow schedule. */
struct Schedule
{
    std::vector<Segment> segments;

    /** Total kernels stored, over all stages and tile counts. */
    std::size_t totalKernels() const;

    /** Human-readable summary. */
    std::string str() const;
};

} // namespace adyna::core

#endif // ADYNA_CORE_SCHEDULE_HH
