/**
 * @file
 * Dataflow schedule structures: graph segments, per-operator stage
 * assignments (tile groups + multi-kernel stores), tile-sharing
 * pairs (Section V-B), and branch groups.
 */

#ifndef ADYNA_CORE_SCHEDULE_HH
#define ADYNA_CORE_SCHEDULE_HH

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "kernels/store.hh"

namespace adyna::core {

/** One operator spatially scheduled onto a tile group. */
struct StageAssign
{
    OpId op = kInvalidOp;

    /**
     * The full tile range this stage may use. Without sharing the
     * stage always uses all of them; with sharing the per-batch
     * configuration selects a prefix / suffix.
     */
    std::vector<TileId> tiles;

    /** Tiles used in the default configuration. */
    int baseTiles = 1;

    /**
     * Kernel stores per tile-group size (sharing configurations
     * need kernels for each possible size, Section VII). Held by
     * shared_ptr so schedule copies — warm rebuilds, delta splices,
     * cache-served builds — share the compiled images instead of
     * deep-copying them; stores are immutable once built.
     */
    std::map<int, std::shared_ptr<const kernels::KernelStore>> stores;

    /** Weights stay resident in the scratchpads (vs streamed from
     * DRAM every batch). */
    bool weightsResident = true;

    /** Index into Segment::pairs, -1 if unshared. */
    int sharePair = -1;

    /** True if this stage is the first member of its share pair
     * (uses the range prefix; the second member uses the suffix). */
    bool shareFirst = false;
};

/** A tile-sharing pair: two stages on complementary branches share
 * boundary tiles under three allocation ratios (Section V-B). */
struct SharePair
{
    int stageA = -1; ///< index into Segment::stages
    int stageB = -1;

    /** (tilesA, tilesB) per configuration: base ratio a:b, then
     * 2a:b, then a:2b. */
    std::array<std::pair<int, int>, 3> alloc{};
};

/** A pipelined group of operators resident on-chip together. */
struct Segment
{
    /** Stages in topological order. */
    std::vector<StageAssign> stages;

    /** Tile-sharing pairs among the stages. */
    std::vector<SharePair> pairs;

    /** Total resident weight bytes (loaded at segment activation). */
    Bytes residentWeightBytes = 0;

    /** Stage index of an op, -1 if not in this segment. */
    int stageOf(OpId op) const;
};

/** A full dataflow schedule. */
struct Schedule
{
    /**
     * Segments are immutable once built and held by shared_ptr, so
     * copying a schedule — and, critically, splicing untouched
     * segments from a last-known-good schedule during a delta
     * re-schedule — costs refcount bumps instead of deep copies of
     * every stage's tile ranges and store maps. Mutate through
     * mutableSegment(), which clones first (copy-on-write).
     */
    std::vector<std::shared_ptr<const Segment>> segments;

    /** Clone-on-write access to segment @p i: replaces the shared
     * segment with a private copy and returns it. For tests and
     * tools that edit a built schedule; never needed on the build or
     * serve paths. */
    Segment &mutableSegment(std::size_t i);

    /** Total kernels stored, over all stages and tile counts. */
    std::size_t totalKernels() const;

    /** Human-readable summary. */
    std::string str() const;
};

} // namespace adyna::core

#endif // ADYNA_CORE_SCHEDULE_HH
