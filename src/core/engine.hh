/**
 * @file
 * The pipelined execution engine: simulates batches streaming
 * through a schedule on the modelled chip. One engine serves every
 * design point via ExecPolicy flags -- the Adyna modes, the M-tile
 * worst-case baseline, the M-tenant (Planaria-like) baseline, and
 * the idealized full-kernel setting.
 */

#ifndef ADYNA_CORE_ENGINE_HH
#define ADYNA_CORE_ENGINE_HH

#include <map>
#include <vector>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "core/schedule.hh"
#include "costmodel/mapper.hh"
#include "graph/dyngraph.hh"
#include "trace/trace.hh"

namespace adyna::core {

/** Execution-mode flags distinguishing the design points. */
struct ExecPolicy
{
    /** Execute every operator at its worst-case size with a single
     * max-size kernel (the M-tile baseline's static schedule). */
    bool worstCaseExec = false;

    /** Runtime kernel fitting clamps loop bounds to actual values
     * (Section VI-B). */
    bool kernelFitting = true;

    /** Inter-operator pipelining over the NoC; false routes every
     * inter-stage tensor through DRAM (M-tenant). */
    bool pipelining = true;

    /** Switch/merge handled by the host CPU: edges crossing routing
     * operators pay a synchronization round trip (M-tenant). */
    bool hostRouting = false;

    /** Host switch/merge latency, cycles (~20 us at 1 GHz). */
    Cycles hostSyncCycles = 20000;

    /** Re-partition tile groups every batch proportional to actual
     * loads (M-tenant's fast runtime adjustment). */
    bool perBatchRepartition = false;

    /** Generate the exact kernel for every actual value instead of
     * dispatching from on-chip stores (full-kernel upper bound; also
     * the optimistic M-tenant pre-compilation assumption). */
    bool exactKernels = false;

    /** Honor the schedule's tile-sharing pairs at runtime. */
    bool tileSharing = true;
};

/** Outcome of executing a group of batches. */
struct PeriodResult
{
    /** Completion time of the last batch. */
    Tick endTime = 0;

    /** Per-batch completion times (last segment). */
    std::vector<Tick> batchEnds;

    /** Per-batch, per-stage-op makespan cycles of the final segment
     * run (used by the Figure 6 trace bench). */
    std::map<OpId, std::vector<Cycles>> stageCycles;
};

/** Batch-streaming simulator over a fixed schedule. */
class Engine
{
  public:
    Engine(const graph::DynGraph &dg, arch::HwConfig hw,
           costmodel::Mapper &mapper, ExecPolicy policy);

    /**
     * Stream @p batches through @p schedule on @p chip, starting no
     * earlier than @p barrier. Records dyn values and branch loads
     * into @p profiler when non-null.
     */
    PeriodResult runPeriod(arch::Chip &chip, const Schedule &schedule,
                           const std::vector<trace::BatchRouting>
                               &batches,
                           arch::Profiler *profiler, Tick barrier);

    const ExecPolicy &policy() const { return policy_; }

  private:
    struct Edge
    {
        /** Producer stage index within the segment, or -1 for an
         * external producer (earlier segment / graph input). */
        int producerStage = -1;

        /** Resolved producer op (stage op or Input node). */
        OpId producerOp = kInvalidOp;

        /** Bytes per batch row of the producer's output. */
        Bytes perRowBytes = 0;

        /** The edge passes through switch/merge routing nodes. */
        bool crossesRouting = false;
    };

    struct StagePlan
    {
        std::vector<Edge> edges;
        bool writesOut = false;
    };

    /** Resolve the compute/input producers of @p op through routing
     * nodes. */
    void resolveProducers(OpId op, bool crossed,
                          std::vector<std::pair<OpId, bool>> &out,
                          std::vector<char> &visited) const;

    std::vector<StagePlan> planSegment(const Schedule &schedule,
                                       std::size_t seg_index) const;

    const graph::DynGraph &dg_;
    arch::HwConfig hw_; // by value: small, and callers may pass
                        // temporaries
    costmodel::Mapper &mapper_;
    ExecPolicy policy_;

    /** Last M-tenant partition (per-batch repartition hysteresis). */
    std::vector<int> repartCount_;
};

} // namespace adyna::core

#endif // ADYNA_CORE_ENGINE_HH
