/**
 * @file
 * The pipelined execution engine: simulates batches streaming
 * through a schedule on the modelled chip. One engine serves every
 * design point via ExecPolicy flags -- the Adyna modes, the M-tile
 * worst-case baseline, the M-tenant (Planaria-like) baseline, and
 * the idealized full-kernel setting.
 */

#ifndef ADYNA_CORE_ENGINE_HH
#define ADYNA_CORE_ENGINE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "core/schedule.hh"
#include "costmodel/mapper.hh"
#include "des/resource.hh"
#include "graph/dyngraph.hh"
#include "trace/trace.hh"

namespace adyna::core {

/** Execution-mode flags distinguishing the design points. */
struct ExecPolicy
{
    /** Execute every operator at its worst-case size with a single
     * max-size kernel (the M-tile baseline's static schedule). */
    bool worstCaseExec = false;

    /** Runtime kernel fitting clamps loop bounds to actual values
     * (Section VI-B). */
    bool kernelFitting = true;

    /** Inter-operator pipelining over the NoC; false routes every
     * inter-stage tensor through DRAM (M-tenant). */
    bool pipelining = true;

    /** Switch/merge handled by the host CPU: edges crossing routing
     * operators pay a synchronization round trip (M-tenant). */
    bool hostRouting = false;

    /** Host switch/merge latency, cycles (~20 us at 1 GHz). */
    Cycles hostSyncCycles = 20000;

    /** Re-partition tile groups every batch proportional to actual
     * loads (M-tenant's fast runtime adjustment). */
    bool perBatchRepartition = false;

    /** Generate the exact kernel for every actual value instead of
     * dispatching from on-chip stores (full-kernel upper bound; also
     * the optimistic M-tenant pre-compilation assumption). */
    bool exactKernels = false;

    /** Honor the schedule's tile-sharing pairs at runtime. */
    bool tileSharing = true;

    /**
     * Memoize per-schedule segment plans (producer edges + write-out
     * flags) so they are computed once per schedule instead of once
     * per period, using a precomputed reverse producer index instead
     * of the quadratic consumer scan. Behaviour-preserving; disable
     * to force the legacy per-period planner (used by the
     * equivalence tests).
     */
    bool planCache = true;

    /**
     * Cycle multiplier for a stage whose tile group is entirely dead
     * (no survivor can re-execute the shards; the host steps in).
     * Groups with survivors instead stretch by (1 + dead tiles):
     * SIMD lockstep means each dead shard costs one extra full pass
     * on a surviving member. Only consulted while the chip reports a
     * failed tile, so fault-free runs never read it.
     */
    double deadGroupPenalty = 32.0;

    /**
     * Memoize the accumulated kernel-dispatch cost (the possibly
     * multi-pass evalKernel chain) per (op, executed value, tile
     * count). Dynamic values are bucketed draws from a small
     * discrete set, so the per-batch stage loop keeps redoing
     * identical cost math; entries are invalidated whenever the
     * schedule's kernel stores change. Behaviour-preserving; disable
     * to force the seed per-batch path (used by the equivalence
     * tests).
     */
    bool execCostMemo = true;
};

/**
 * Bytes of slice @p i when @p total bytes are split across @p parts
 * NoC transfers: the first total % parts slices carry one extra byte
 * so the slices sum exactly to the total (no remainder is dropped).
 */
constexpr Bytes
nocSliceBytes(Bytes total, std::size_t parts, std::size_t i)
{
    const Bytes per = total / static_cast<Bytes>(parts);
    const Bytes rem = total % static_cast<Bytes>(parts);
    return per + (static_cast<Bytes>(i) < rem ? 1 : 0);
}

/** Outcome of executing a group of batches. */
struct PeriodResult
{
    /** Completion time of the last batch. */
    Tick endTime = 0;

    /** Per-batch completion times (last segment). */
    std::vector<Tick> batchEnds;

    /** Per-batch, per-stage-op makespan cycles of the final segment
     * run (used by the Figure 6 trace bench). */
    std::map<OpId, std::vector<Cycles>> stageCycles;
};

/** Batch-streaming simulator over a fixed schedule. */
class Engine
{
  public:
    Engine(const graph::DynGraph &dg, arch::HwConfig hw,
           costmodel::Mapper &mapper, ExecPolicy policy);

    /**
     * Stream @p batches through @p schedule on @p chip, starting no
     * earlier than @p barrier. Records dyn values and branch loads
     * into @p profiler when non-null.
     */
    PeriodResult runPeriod(arch::Chip &chip, const Schedule &schedule,
                           const std::vector<trace::BatchRouting>
                               &batches,
                           arch::Profiler *profiler, Tick barrier);

    /**
     * Allocation-free variant: results land in @p out, whose vectors
     * and map nodes are reused across calls. With the plan cache and
     * exec memo warm (same schedule, same dyn-value set), a
     * steady-state call performs zero heap allocations — the
     * invariant the allocation-guard test enforces.
     */
    void runPeriod(arch::Chip &chip, const Schedule &schedule,
                   const std::vector<trace::BatchRouting> &batches,
                   arch::Profiler *profiler, Tick barrier,
                   PeriodResult &out);

    const ExecPolicy &policy() const { return policy_; }

    /** Exec-cost memo statistics (monotone over the engine's life;
     * the engine is single-threaded, so plain counters suffice). */
    std::uint64_t execHits() const { return execHits_; }
    std::uint64_t execMisses() const { return execMisses_; }

  private:
    struct Edge
    {
        /** Producer stage index within the segment, or -1 for an
         * external producer (earlier segment / graph input). */
        int producerStage = -1;

        /** Resolved producer op (stage op or Input node). */
        OpId producerOp = kInvalidOp;

        /** Bytes per batch row of the producer's output. */
        Bytes perRowBytes = 0;

        /** The edge passes through switch/merge routing nodes. */
        bool crossesRouting = false;
    };

    struct StagePlan
    {
        std::vector<Edge> edges;
        bool writesOut = false;

        /** Single-tile cycles per batch row of the stage op (the
         * allocation weight); a per-schedule constant hoisted out of
         * the per-batch tile-sharing / repartition loops. */
        double perRowWork = 0.0;
    };

    /** Aggregate cost of one stage execution (possibly multi-pass). */
    struct ExecCost
    {
        Cycles cycles = 0;
        MacCount useful = 0;
        MacCount issued = 0;
        Bytes spill = 0;
        Bytes sram = 0;
    };

    /** One exec-cost memo entry: the accumulated dispatch cost
     * (before the per-batch useful-MACs clamp) plus the selected
     * mapping's row-split property. */
    struct ExecEntry
    {
        ExecCost cost;
        bool rowSplit = true;
    };

    /**
     * Graph-structural producer/consumer relationships, independent
     * of any schedule. Built once per engine; turns the legacy
     * planner's repeated DFS walks into table lookups.
     */
    struct ProducerIndex
    {
        /** Resolved (producer, crossesRouting) pairs per op, in the
         * legacy DFS discovery order. */
        std::vector<std::vector<std::pair<OpId, bool>>> producers;

        /** Ops that list the key op among their resolved producers
         * (compute consumers only; the reverse of `producers`). */
        std::vector<std::vector<OpId>> consumers;

        /** The op is a resolved producer of some graph output. */
        std::vector<char> feedsOutput;
    };

    /** Resolve the compute/input producers of @p op through routing
     * nodes. */
    void resolveProducers(OpId op, bool crossed,
                          std::vector<std::pair<OpId, bool>> &out,
                          std::vector<char> &visited) const;

    void buildProducerIndex();

    /** The seed per-period planner: per-stage DFS producer
     * resolution plus an all-segments consumer scan. Kept as the
     * reference path for ExecPolicy::planCache == false. */
    std::vector<StagePlan> planSegmentLegacy(const Schedule &schedule,
                                             std::size_t seg_index) const;

    /** Index-based planner: identical output to planSegmentLegacy in
     * one linear pass. @p seg_of maps op -> segment index (-1 when
     * unscheduled). */
    std::vector<StagePlan>
    planSegmentIndexed(const Schedule &schedule, std::size_t seg_index,
                       const std::vector<int> &seg_of) const;

    /** All segments' plans for @p schedule, memoized by the
     * schedule's segment/stage-op layout. */
    const std::vector<std::vector<StagePlan>> &
    cachedPlans(const Schedule &schedule);

    static ExecCost accumulate(ExecCost acc,
                               const costmodel::KernelCost &c);

    /** Accumulate @p c scaled by @p n passes. All fields are
     * integers, so this equals @p n repeated accumulate() calls. */
    static ExecCost accumulateN(ExecCost acc,
                                const costmodel::KernelCost &c,
                                std::int64_t n);

    /** Identity of the kernel stores memoized exec costs depend on:
     * a hash over every stage's op, tile counts, and compiled
     * values (mappings and images derive deterministically from
     * those plus the fixed tech parameters). */
    static std::uint64_t storeSignature(const Schedule &schedule);

    /** Per-op slice of storeSignature(): the stores one op's memo
     * entries depend on (the segment-level invalidation key). */
    static std::uint64_t storeOpSignature(const StageAssign &st);

    /** Drop exec-memo entries of ops whose stores changed relative
     * to the previous schedule, keeping every other op's entries
     * warm across a delta re-schedule. */
    void invalidateExecMemo(const Schedule &schedule);

    const graph::DynGraph &dg_;
    arch::HwConfig hw_; // by value: small, and callers may pass
                        // temporaries
    costmodel::Mapper &mapper_;
    ExecPolicy policy_;

    ProducerIndex pindex_;

    /** Plan-relevant schedule identity: stage ops per segment, in
     * order (edges depend on stage order, write-out flags on the
     * op->segment partition; both are captured here). */
    using PlanKey = std::vector<std::vector<OpId>>;
    std::map<PlanKey, std::vector<std::vector<StagePlan>>> planCache_;

    /** Scratch visited buffer for resolveProducers (reused across
     * calls instead of reallocating per resolution). */
    mutable std::vector<char> scratchVisited_;

    /** Last M-tenant partition (per-batch repartition hysteresis). */
    std::vector<int> repartCount_;

    /** Exec-cost memo keyed by packed (op, tile count, executed
     * value); entries are invalidated per op when that op's stores
     * change (whole-schedule signature match is the no-op fast
     * path). */
    std::unordered_map<std::uint64_t, ExecEntry> execMemo_;
    std::uint64_t execMemoSig_ = 0;
    std::uint64_t execHits_ = 0;
    std::uint64_t execMisses_ = 0;

    /** Per-op store signatures of the schedule the memo was filled
     * against, plus the scratch map for the next comparison. */
    std::map<OpId, std::uint64_t> opSig_;
    std::map<OpId, std::uint64_t> opSigScratch_;

    // --- reusable runPeriod scratch state ---------------------------
    // Hoisted out of the hot loop so a steady-state period performs
    // zero allocations: capacity persists across batches, segments,
    // and calls.

    /** Snake tile order (fixed by the hw config). */
    std::vector<TileId> snake_;

    /** Host-CPU routing resource, reset at each period start. */
    des::GapBandwidthResource hostCpu_{1.0};

    /** Reused plan-cache lookup key (insertion copies it). */
    PlanKey scratchKey_;

    /** Flattened per-stage/per-batch start and end times,
     * indexed [stage * numBatches + batch]. */
    std::vector<Tick> starts_;
    std::vector<Tick> ends_;

    /** Per-stage effective tile groups for the current batch. */
    std::vector<std::vector<TileId>> usedTiles_;

    /** The schedule's tile union (the segment-barrier drain scope)
     * and its membership bitmap, rebuilt each period. */
    std::vector<TileId> periodTiles_;
    std::vector<char> periodTileSeen_;

    /** Per-pair tile-sharing configuration for the current batch. */
    std::vector<int> pairConfig_;

    /** M-tenant repartition scratch (loads and ideal counts). */
    std::vector<double> works_;
    std::vector<int> ideal_;
};

} // namespace adyna::core

#endif // ADYNA_CORE_ENGINE_HH
