/**
 * @file
 * Run-report serialization: JSON (one report) and CSV (a matrix of
 * reports) exporters so bench results can feed external plotting
 * pipelines without scraping the text tables.
 */

#ifndef ADYNA_CORE_REPORT_IO_HH
#define ADYNA_CORE_REPORT_IO_HH

#include <string>
#include <vector>

#include "core/system.hh"

namespace adyna::core {

/**
 * Serialize one report as a JSON object. Includes scalar metrics and
 * the energy breakdown; per-batch series are included only when
 * @p include_batches is set.
 */
std::string toJson(const RunReport &report,
                   bool include_batches = false);

/** Serialize several reports as a JSON array. */
std::string toJson(const std::vector<RunReport> &reports,
                   bool include_batches = false);

/**
 * Serialize the run's cache counters (mapper memo, kernel-store
 * cache, exec-cost memo) as one JSON object. Kept out of toJson()
 * deliberately: the counters depend on cache state and job
 * interleaving, and the machine-readable reports must stay
 * byte-identical across cache settings (the equivalence gates).
 */
std::string cacheStatsJson(const RunReport &report);

/**
 * Serialize the run's fault-injection counters as one JSON object.
 * Kept out of toJson() for the same reason as the cache counters: a
 * fault-free run's machine-readable reports must stay byte-identical
 * to the pre-fault code (the empty-plan equivalence gate).
 */
std::string faultStatsJson(const RunReport &report);

/**
 * Serialize the run's schedule-search counters as one JSON object.
 * Kept out of toJson() for the same reason as the cache counters: a
 * search-off run's machine-readable reports must stay byte-identical
 * to the pre-search code.
 */
std::string searchStatsJson(const RunReport &report);

/** CSV header matching toCsvRow(). */
std::string csvHeader();

/** One CSV row of scalar metrics. */
std::string toCsvRow(const RunReport &report);

/** Full CSV document (header + one row per report). */
std::string toCsv(const std::vector<RunReport> &reports);

} // namespace adyna::core

#endif // ADYNA_CORE_REPORT_IO_HH
