#include "core/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "des/resource.hh"

namespace adyna::core {

using costmodel::KernelCost;
using costmodel::Mapping;
using graph::OpKind;
using graph::OpNode;

namespace {

/** One FNV-1a step over a 64-bit word. */
std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Exec-memo key: (op, tile count, executed value) packed into 64
 * bits. The fitting / worst-case / exact-kernel policy flags are
 * engine constants, so they need no key bits. */
std::uint64_t
execMemoKey(OpId op, int tiles, std::int64_t v_exec)
{
    ADYNA_ASSERT(op < (1u << 16) && tiles >= 0 && tiles < (1 << 16) &&
                     v_exec >= 0 &&
                     v_exec < (std::int64_t{1} << 32),
                 "exec memo key overflow: op ", op, " tiles ", tiles,
                 " v ", v_exec);
    return (static_cast<std::uint64_t>(op) << 48) |
           (static_cast<std::uint64_t>(tiles) << 32) |
           static_cast<std::uint64_t>(v_exec);
}

/** Per-row output bytes of an op given its fused output dims. */
Bytes
perRowOutBytes(const OpNode &node, const graph::LoopDims &out_dims)
{
    return static_cast<Bytes>(out_dims.k() * out_dims.p() *
                              out_dims.q()) *
           node.dtypeBytes;
}

/** Single-tile cycles per batch row (allocation weight). */
double
perRowWork(const OpNode &node, const costmodel::TechParams &tech)
{
    if (graph::isCompute(node.kind))
        return costmodel::computeCyclesPerRow(node.dims, tech);
    return static_cast<double>(node.dims.k() * node.dims.p() *
                               node.dims.q()) /
           static_cast<double>(tech.macsPerCycle());
}

} // namespace

Engine::ExecCost
Engine::accumulate(ExecCost acc, const KernelCost &c)
{
    acc.cycles += c.cycles;
    acc.useful += c.usefulMacs;
    acc.issued += c.issuedMacs;
    acc.spill += c.dramSpillBytes;
    acc.sram += c.sramBytes;
    return acc;
}

Engine::ExecCost
Engine::accumulateN(ExecCost acc, const KernelCost &c, std::int64_t n)
{
    if (n <= 0)
        return acc;
    const auto k = static_cast<std::uint64_t>(n);
    acc.cycles += c.cycles * k;
    acc.useful += c.usefulMacs * static_cast<MacCount>(k);
    acc.issued += c.issuedMacs * static_cast<MacCount>(k);
    acc.spill += c.dramSpillBytes * k;
    acc.sram += c.sramBytes * k;
    return acc;
}

std::uint64_t
Engine::storeOpSignature(const StageAssign &st)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnvMix(h, st.op);
    for (const auto &[count, store] : st.stores) {
        h = fnvMix(h, static_cast<std::uint64_t>(count));
        for (const kernels::Kernel &k : store->kernels())
            h = fnvMix(h, static_cast<std::uint64_t>(k.value));
    }
    return h;
}

std::uint64_t
Engine::storeSignature(const Schedule &schedule)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &seg : schedule.segments) {
        for (const StageAssign &st : seg->stages) {
            h = fnvMix(h, st.op);
            for (const auto &[count, store] : st.stores) {
                h = fnvMix(h, static_cast<std::uint64_t>(count));
                for (const kernels::Kernel &k : store->kernels())
                    h = fnvMix(h,
                               static_cast<std::uint64_t>(k.value));
            }
        }
    }
    return h;
}

void
Engine::invalidateExecMemo(const Schedule &schedule)
{
    // Memo values are deterministic functions of (op, tile count,
    // executed value) given that op's stores, so only ops whose
    // stores actually changed lose their entries. A delta
    // re-schedule that splices most segments unchanged keeps their
    // ops' memo warm.
    opSigScratch_.clear();
    for (const auto &seg : schedule.segments)
        for (const StageAssign &st : seg->stages)
            opSigScratch_.emplace(st.op, storeOpSignature(st));

    for (auto it = execMemo_.begin(); it != execMemo_.end();) {
        const OpId op = static_cast<OpId>(it->first >> 48);
        const auto nit = opSigScratch_.find(op);
        const auto oit = opSig_.find(op);
        const bool keep = nit != opSigScratch_.end() &&
                          oit != opSig_.end() &&
                          nit->second == oit->second;
        it = keep ? std::next(it) : execMemo_.erase(it);
    }
    opSig_.swap(opSigScratch_);
}

Engine::Engine(const graph::DynGraph &dg, arch::HwConfig hw,
               costmodel::Mapper &mapper, ExecPolicy policy)
    : dg_(dg), hw_(std::move(hw)), mapper_(mapper), policy_(policy),
      scratchVisited_(dg.graph().size(), 0),
      snake_(arch::snakeTileOrder(hw_))
{
    if (policy_.perBatchRepartition)
        ADYNA_ASSERT(policy_.exactKernels,
                     "per-batch repartition requires exact kernels");
    buildProducerIndex();
}

void
Engine::buildProducerIndex()
{
    const std::size_t n = dg_.graph().size();
    pindex_.producers.resize(n);
    pindex_.consumers.resize(n);
    pindex_.feedsOutput.assign(n, 0);

    std::vector<char> &visited = scratchVisited_;
    for (OpId op = 0; op < n; ++op) {
        std::fill(visited.begin(), visited.end(), 0);
        resolveProducers(op, false, pindex_.producers[op], visited);
        for (const auto &[pid, crossed] : pindex_.producers[op]) {
            (void)crossed;
            pindex_.consumers[pid].push_back(op);
        }
    }
    for (OpId outId : dg_.graph().outputIds())
        for (const auto &[pid, crossed] : pindex_.producers[outId]) {
            (void)crossed;
            pindex_.feedsOutput[pid] = 1;
        }
}

void
Engine::resolveProducers(OpId op, bool crossed,
                         std::vector<std::pair<OpId, bool>> &out,
                         std::vector<char> &visited) const
{
    const OpNode &node = dg_.graph().node(op);
    for (OpId in : node.inputs) {
        if (visited[in])
            continue;
        visited[in] = 1;
        const OpNode &p = dg_.graph().node(in);
        if (p.kind == OpKind::Switch || p.kind == OpKind::Merge) {
            resolveProducers(in, /*crossed=*/true, out, visited);
        } else if (p.kind == OpKind::Sink ||
                   p.kind == OpKind::Output) {
            // never a data producer
        } else {
            out.emplace_back(in, crossed);
        }
    }
}

std::vector<Engine::StagePlan>
Engine::planSegmentLegacy(const Schedule &schedule,
                          std::size_t seg_index) const
{
    const Segment &seg = *schedule.segments[seg_index];
    std::vector<StagePlan> plans(seg.stages.size());

    std::vector<char> &visited = scratchVisited_;
    const auto resolve =
        [&](OpId op, std::vector<std::pair<OpId, bool>> &out) {
            std::fill(visited.begin(), visited.end(), 0);
            resolveProducers(op, false, out, visited);
        };

    for (std::size_t si = 0; si < seg.stages.size(); ++si) {
        const OpId op = seg.stages[si].op;
        plans[si].perRowWork =
            perRowWork(dg_.graph().node(op), hw_.tech);
        std::vector<std::pair<OpId, bool>> producers;
        resolve(op, producers);
        for (const auto &[pid, crossed] : producers) {
            Edge e;
            e.producerOp = pid;
            e.producerStage = seg.stageOf(pid);
            e.crossesRouting = crossed;
            const OpNode &pnode = dg_.graph().node(pid);
            const graph::LoopDims outDims =
                pnode.kind == OpKind::Input ? pnode.dims
                                            : dg_.info(pid).outDims;
            e.perRowBytes = perRowOutBytes(pnode, outDims);
            plans[si].edges.push_back(e);
        }
    }

    // A stage writes to DRAM if any consumer resolves to it from
    // outside this segment (a later segment or a graph output), or
    // unconditionally without pipelining.
    for (std::size_t si = 0; si < seg.stages.size(); ++si) {
        if (!policy_.pipelining) {
            plans[si].writesOut = true;
            continue;
        }
        const OpId op = seg.stages[si].op;
        for (std::size_t s2 = 0; s2 < schedule.segments.size(); ++s2) {
            if (plans[si].writesOut)
                break;
            if (s2 == seg_index)
                continue;
            for (const StageAssign &st : schedule.segments[s2]->stages) {
                std::vector<std::pair<OpId, bool>> producers;
                resolve(st.op, producers);
                for (const auto &[pid, crossed] : producers) {
                    (void)crossed;
                    if (pid == op) {
                        plans[si].writesOut = true;
                        break;
                    }
                }
                if (plans[si].writesOut)
                    break;
            }
        }
        for (OpId outId : dg_.graph().outputIds()) {
            if (plans[si].writesOut)
                break;
            std::vector<std::pair<OpId, bool>> producers;
            resolve(outId, producers);
            for (const auto &[pid, crossed] : producers) {
                (void)crossed;
                if (pid == op)
                    plans[si].writesOut = true;
            }
        }
    }
    return plans;
}

std::vector<Engine::StagePlan>
Engine::planSegmentIndexed(const Schedule &schedule,
                           std::size_t seg_index,
                           const std::vector<int> &seg_of) const
{
    const Segment &seg = *schedule.segments[seg_index];
    std::vector<StagePlan> plans(seg.stages.size());

    for (std::size_t si = 0; si < seg.stages.size(); ++si) {
        const OpId op = seg.stages[si].op;
        plans[si].perRowWork =
            perRowWork(dg_.graph().node(op), hw_.tech);
        for (const auto &[pid, crossed] : pindex_.producers[op]) {
            Edge e;
            e.producerOp = pid;
            e.producerStage = seg.stageOf(pid);
            e.crossesRouting = crossed;
            const OpNode &pnode = dg_.graph().node(pid);
            const graph::LoopDims outDims =
                pnode.kind == OpKind::Input ? pnode.dims
                                            : dg_.info(pid).outDims;
            e.perRowBytes = perRowOutBytes(pnode, outDims);
            plans[si].edges.push_back(e);
        }

        // Write-out: any consumer scheduled in ANOTHER segment, or a
        // graph output, resolves to this stage (one reverse-index
        // walk replaces the legacy all-segments rescan).
        if (!policy_.pipelining) {
            plans[si].writesOut = true;
            continue;
        }
        if (pindex_.feedsOutput[op]) {
            plans[si].writesOut = true;
            continue;
        }
        for (OpId consumer : pindex_.consumers[op]) {
            const int s2 = seg_of[consumer];
            if (s2 >= 0 && s2 != static_cast<int>(seg_index)) {
                plans[si].writesOut = true;
                break;
            }
        }
    }
    return plans;
}

const std::vector<std::vector<Engine::StagePlan>> &
Engine::cachedPlans(const Schedule &schedule)
{
    // The lookup key is rebuilt into a member scratch buffer so a
    // cache hit (the steady state) allocates nothing; insertion on a
    // miss copies it.
    PlanKey &key = scratchKey_;
    key.resize(schedule.segments.size());
    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        auto &ops = key[s];
        ops.clear();
        for (const StageAssign &st : schedule.segments[s]->stages)
            ops.push_back(st.op);
    }

    const auto it = planCache_.find(key);
    if (it != planCache_.end())
        return it->second;

    // A run sees at most one new schedule per reconfiguration; the
    // bound only guards against a pathological caller.
    if (planCache_.size() > 256)
        planCache_.clear();

    std::vector<int> segOf(dg_.graph().size(), -1);
    for (std::size_t s = 0; s < key.size(); ++s)
        for (OpId op : key[s])
            segOf[op] = static_cast<int>(s);

    std::vector<std::vector<StagePlan>> plans;
    plans.reserve(schedule.segments.size());
    for (std::size_t s = 0; s < schedule.segments.size(); ++s)
        plans.push_back(planSegmentIndexed(schedule, s, segOf));
    return planCache_.emplace(key, std::move(plans)).first->second;
}

PeriodResult
Engine::runPeriod(arch::Chip &chip, const Schedule &schedule,
                  const std::vector<trace::BatchRouting> &batches,
                  arch::Profiler *profiler, Tick barrier)
{
    PeriodResult result;
    runPeriod(chip, schedule, batches, profiler, barrier, result);
    return result;
}

void
Engine::runPeriod(arch::Chip &chip, const Schedule &schedule,
                  const std::vector<trace::BatchRouting> &batches,
                  arch::Profiler *profiler, Tick barrier,
                  PeriodResult &result)
{
    const std::size_t numBatches = batches.size();
    result.endTime = 0;
    result.batchEnds.assign(numBatches, barrier);
    // Reuse the map nodes and vector capacity of the previous
    // period; ops that end up recording nothing are dropped at the
    // end so the content matches a freshly built result exactly.
    for (auto &[op, cycles] : result.stageCycles)
        cycles.clear();

    // Every HBM access and NoC transfer this period uses
    // earliest >= barrier, and the barrier is monotone across
    // periods on one chip, so reservations ending at or before it
    // can no longer affect any grant.
    chip.hbm().trim(barrier);
    chip.noc().trim(barrier);

    // Memoized exec costs are valid only against the kernel stores
    // they were dispatched from; a re-schedule drops the entries of
    // the ops whose stores changed (and only those).
    if (policy_.execCostMemo) {
        const std::uint64_t sig = storeSignature(schedule);
        if (sig != execMemoSig_) {
            invalidateExecMemo(schedule);
            execMemoSig_ = sig;
        }
    }

    const std::vector<TileId> &snake = snake_;
    // Switch/merge on the host CPU (M-tenant): a serial processor
    // that executes routing tasks in time order (gap-filling, one
    // cycle-unit per tick). Member state so its interval buffer is
    // reused; reset restores the fresh-per-period semantics.
    des::GapBandwidthResource &hostCpu = hostCpu_;
    hostCpu.reset();

    // Record per-switch branch loads once per batch.
    if (profiler) {
        for (const auto &routing : batches) {
            profiler->noteBatch();
            for (const auto &[sw, oc] : routing.outcomes)
                profiler->recordBranchLoads(sw, oc.branchCounts);
        }
    }

    const std::vector<std::vector<StagePlan>> *allPlans =
        policy_.planCache ? &cachedPlans(schedule) : nullptr;

    // The inter-segment reconfiguration barrier drains only the
    // tiles this schedule can touch. For a full-grid schedule that
    // is every tile it ever occupies, so the value is identical to
    // a whole-chip drain; for a schedule restricted to a tile
    // region (multi-tenant partitions, fail-over survivors) it
    // scopes the drain to the region — co-tenants on disjoint tiles
    // no longer serialize each other's segment boundaries. The
    // per-batch repartition policy draws tiles from the global
    // snake order instead of the stage ranges, so it keeps the
    // whole-chip barrier.
    const bool wholeChipBarrier = policy_.perBatchRepartition;
    if (!wholeChipBarrier) {
        periodTileSeen_.assign(
            static_cast<std::size_t>(hw_.tiles()), 0);
        periodTiles_.clear();
        for (const auto &segp : schedule.segments)
            for (const StageAssign &st : segp->stages)
                for (TileId tile : st.tiles)
                    if (!periodTileSeen_[tile]) {
                        periodTileSeen_[tile] = 1;
                        periodTiles_.push_back(tile);
                    }
    }

    Tick segBarrier = barrier;
    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        const Segment &seg = *schedule.segments[s];
        if (seg.stages.empty())
            continue;
        std::vector<StagePlan> legacyPlans;
        if (!allPlans)
            legacyPlans = planSegmentLegacy(schedule, s);
        const std::vector<StagePlan> &plans =
            allPlans ? (*allPlans)[s] : legacyPlans;

        // Load resident weights at segment activation.
        if (seg.residentWeightBytes > 0) {
            const auto acc = chip.hbm().access(
                segBarrier, seg.stages.front().tiles.front(),
                seg.residentWeightBytes);
            chip.chargeHbmEnergy(seg.residentWeightBytes);
            segBarrier = acc.end;
        }

        repartCount_.clear(); // fresh partition per segment

        // Per-stage start/completion times (flattened to
        // [stage * numBatches + batch]) and per-batch used tiles,
        // all in member scratch whose capacity persists.
        starts_.assign(seg.stages.size() * numBatches, 0);
        ends_.assign(seg.stages.size() * numBatches, 0);
        if (usedTiles_.size() < seg.stages.size())
            usedTiles_.resize(seg.stages.size());
        const auto at = [numBatches](std::size_t si, std::size_t b) {
            return si * numBatches + b;
        };

        Tick segEnd = segBarrier;
        for (std::size_t b = 0; b < numBatches; ++b) {
            const trace::BatchRouting &routing = batches[b];

            const auto vActualOf = [&](OpId op) {
                return routing.dynValue(dg_, op);
            };
            const auto vExecOf = [&](OpId op) {
                return policy_.worstCaseExec ? dg_.maxDyn(op)
                                             : vActualOf(op);
            };

            // Tile-sharing configuration per pair for this batch.
            pairConfig_.assign(seg.pairs.size(), 0);
            std::vector<int> &pairConfig = pairConfig_;
            if (policy_.tileSharing) {
                for (std::size_t p = 0; p < seg.pairs.size(); ++p) {
                    const SharePair &pair = seg.pairs[p];
                    const std::size_t ia =
                        static_cast<std::size_t>(pair.stageA);
                    const std::size_t ib =
                        static_cast<std::size_t>(pair.stageB);
                    const double loadA =
                        static_cast<double>(
                            vExecOf(seg.stages[ia].op)) *
                        plans[ia].perRowWork;
                    const double loadB =
                        static_cast<double>(
                            vExecOf(seg.stages[ib].op)) *
                        plans[ib].perRowWork;
                    double best = -1.0;
                    for (int c = 0; c < 3; ++c) {
                        const auto [ta, tb] =
                            pair.alloc[static_cast<std::size_t>(c)];
                        const double makespan =
                            std::max(loadA / ta, loadB / tb);
                        if (best < 0.0 || makespan < best) {
                            best = makespan;
                            pairConfig[p] = c;
                        }
                    }
                }
            }

            // M-tenant: re-partition the segment's tiles for this
            // batch proportional to the actual loads, with
            // hysteresis -- the partition only moves when some
            // stage's ideal share drifts substantially, as frequent
            // subarray reassignment would thrash the pipeline.
            if (policy_.perBatchRepartition) {
                works_.assign(seg.stages.size(), 0.0);
                std::vector<double> &works = works_;
                double total = 0.0;
                for (std::size_t si = 0; si < seg.stages.size(); ++si) {
                    works[si] =
                        std::max<double>(
                            1.0, static_cast<double>(vExecOf(
                                     seg.stages[si].op))) *
                        plans[si].perRowWork;
                    total += works[si];
                }
                const int T = hw_.tiles();
                ideal_.assign(seg.stages.size(), 0);
                std::vector<int> &ideal = ideal_;
                int used = 0;
                for (std::size_t si = 0; si < seg.stages.size(); ++si) {
                    ideal[si] = std::max(
                        1, static_cast<int>(works[si] / total * T));
                    used += ideal[si];
                }
                // Trim overshoot from the largest allocations.
                while (used > T) {
                    const auto it =
                        std::max_element(ideal.begin(), ideal.end());
                    if (*it <= 1)
                        break;
                    --*it;
                    --used;
                }
                bool move = repartCount_.size() != ideal.size();
                if (!move) {
                    for (std::size_t si = 0; si < ideal.size(); ++si) {
                        const double cur =
                            static_cast<double>(repartCount_[si]);
                        const double want =
                            static_cast<double>(ideal[si]);
                        if (std::abs(want - cur) >
                            0.25 * std::max(cur, 1.0)) {
                            move = true;
                            break;
                        }
                    }
                }
                if (move)
                    std::swap(repartCount_, ideal_);
            }
            const std::vector<int> &repartCount = repartCount_;

            int repartBase = 0;
            for (std::size_t si = 0; si < seg.stages.size(); ++si) {
                const StageAssign &st = seg.stages[si];
                const OpNode &node = dg_.graph().node(st.op);
                const std::int64_t vActual = vActualOf(st.op);
                const std::int64_t vExec = vExecOf(st.op);

                if (profiler && dg_.isDynamic(st.op))
                    profiler->recordValue(st.op, vActual);

                // Effective tile group for this batch, built in
                // place in the per-stage scratch slot (its capacity
                // survives across batches and periods).
                std::vector<TileId> &tiles = usedTiles_[si];
                tiles.clear();
                if (policy_.perBatchRepartition) {
                    const int count = repartCount[si];
                    for (int t = 0; t < count; ++t)
                        tiles.push_back(
                            snake[static_cast<std::size_t>(
                                (repartBase + t) %
                                hw_.tiles())]);
                    repartBase += count;
                } else if (st.sharePair >= 0 && policy_.tileSharing) {
                    const SharePair &pair =
                        seg.pairs[static_cast<std::size_t>(
                            st.sharePair)];
                    const auto [ta, tb] =
                        pair.alloc[static_cast<std::size_t>(
                            pairConfig[static_cast<std::size_t>(
                                st.sharePair)])];
                    const int count = st.shareFirst ? ta : tb;
                    if (st.shareFirst) {
                        tiles.assign(st.tiles.begin(),
                                     st.tiles.begin() + count);
                    } else {
                        tiles.assign(st.tiles.end() - count,
                                     st.tiles.end());
                    }
                } else {
                    tiles.assign(st.tiles.begin(),
                                 st.tiles.begin() + st.baseTiles);
                }
                const int tileCount = static_cast<int>(tiles.size());

                // Empty sub-batch with fitting: nothing to execute.
                if (vExec == 0 && policy_.kernelFitting) {
                    Tick ready = segBarrier;
                    for (const Edge &e : plans[si].edges)
                        if (e.producerStage >= 0)
                            ready = std::max(
                                ready,
                                ends_[at(static_cast<std::size_t>(
                                             e.producerStage),
                                         b)]);
                    starts_[at(si, b)] = ready;
                    ends_[at(si, b)] = ready;
                    segEnd = std::max(segEnd, ready);
                    continue;
                }

                // --- kernel selection and cost -----------------------
                // The accumulated dispatch cost depends only on
                // (op, vExec, tileCount) given fixed stores, so it
                // memoizes; the useful-MACs clamp depends on the
                // per-batch vActual and is applied after the lookup.
                ExecCost cost;
                bool rowSplit = true; // consumer splits rows (N)?
                bool memoized = false;
                const std::uint64_t memoKey =
                    policy_.execCostMemo
                        ? execMemoKey(st.op, tileCount, vExec)
                        : 0;
                if (policy_.execCostMemo) {
                    const auto it = execMemo_.find(memoKey);
                    if (it != execMemo_.end()) {
                        cost = it->second.cost;
                        rowSplit = it->second.rowSplit;
                        ++execHits_;
                        memoized = true;
                    }
                }
                if (!memoized && policy_.exactKernels) {
                    const Mapping m = mapper_.search(
                        node, std::max<std::int64_t>(vExec, 1),
                        tileCount);
                    rowSplit = m.splitFactor(graph::Dim::N) > 1 ||
                               tileCount == 1;
                    cost = accumulate(
                        cost, evalKernel(node, m, vExec,
                                         policy_.kernelFitting,
                                         hw_.tech));
                } else if (!memoized) {
                    const auto storeIt = st.stores.find(tileCount);
                    ADYNA_ASSERT(storeIt != st.stores.end(),
                                 "no kernel store for op ", st.op,
                                 " at ", tileCount, " tiles");
                    const auto &store = *storeIt->second;
                    const auto d = store.dispatch(
                        std::max<std::int64_t>(vExec, 1));
                    const Mapping &m = store.at(d.index).mapping;
                    rowSplit = m.splitFactor(graph::Dim::N) > 1 ||
                               tileCount == 1;
                    const std::int64_t full = d.perPass;
                    // Every non-final pass evaluates the kernel with
                    // identical arguments; one evaluation scaled by
                    // the pass count is exact (all-integer costs), so
                    // the per-row event work collapses to a per-stage
                    // aggregate without changing a single byte.
                    if (d.passes > 1)
                        cost = accumulateN(
                            cost,
                            evalKernel(node, m, full,
                                       policy_.kernelFitting,
                                       hw_.tech),
                            d.passes - 1);
                    const std::int64_t lastRows =
                        vExec - (d.passes - 1) * full;
                    cost = accumulate(
                        cost,
                        evalKernel(node, m,
                                   std::max<std::int64_t>(lastRows, 0),
                                   policy_.kernelFitting, hw_.tech));
                }
                if (!memoized && policy_.execCostMemo) {
                    ++execMisses_;
                    execMemo_.emplace(memoKey,
                                      ExecEntry{cost, rowSplit});
                }
                if (!policy_.exactKernels) {
                    // Useful work never exceeds the actual rows.
                    cost.useful = std::min<MacCount>(
                        cost.useful,
                        static_cast<MacCount>(vActual) *
                            static_cast<MacCount>(
                                node.macs() /
                                std::max<std::int64_t>(node.dims.n(),
                                                       1)));
                }

                // --- input readiness ----------------------------------
                // Pipelined (NoC) producers hand blocks over as they
                // are produced (Section II-B's inter-operator
                // pipelining): the consumer may START once the first
                // blocks arrive, but cannot FINISH before the
                // producer's last block plus its transfer. DRAM /
                // host edges remain store-and-forward.
                Tick startLB = segBarrier;
                Tick endLB = 0;
                for (const Edge &e : plans[si].edges) {
                    const std::int64_t vProd =
                        dg_.graph().node(e.producerOp).kind ==
                                OpKind::Input
                            ? vExec
                            : vExecOf(e.producerOp);
                    const Bytes bytes =
                        static_cast<Bytes>(
                            std::min(vProd, vExec)) *
                        e.perRowBytes;
                    if (bytes == 0)
                        continue;

                    const bool internal = e.producerStage >= 0;
                    const bool viaHost =
                        policy_.hostRouting && e.crossesRouting;
                    if (internal && policy_.pipelining && !viaHost) {
                        const std::size_t pi =
                            static_cast<std::size_t>(e.producerStage);
                        const auto &src = usedTiles_[pi];
                        const Tick sync = chip.noc().probeAck(
                            starts_[at(pi, b)], src.front(),
                            tiles.front());
                        Tick t0 = starts_[at(pi, b)] + sync;
                        // Double-buffered input slots: wait for the
                        // slot freed by batch b-2.
                        if (b >= 2)
                            t0 = std::max(t0, ends_[at(si, b - 2)]);
                        Tick done = t0;
                        if (rowSplit) {
                            // Row-split consumer: each destination
                            // tile receives its own row slice. The
                            // slices sum exactly to the produced
                            // bytes (remainder spread one byte per
                            // leading slice); empty slices move
                            // nothing.
                            for (std::size_t i = 0; i < src.size();
                                 ++i) {
                                const Bytes slice = nocSliceBytes(
                                    bytes, src.size(), i);
                                if (slice == 0)
                                    continue;
                                const auto tr = chip.noc().transfer(
                                    t0, src[i],
                                    tiles[i % tiles.size()], slice);
                                done = std::max(done, tr.end);
                                chip.chargeNocEnergy(tr.byteHops);
                            }
                        } else {
                            // Feature-split consumer: every tile
                            // needs the whole tensor -> each source
                            // slice is multicast to the group
                            // (Section VI-B's multicast support).
                            for (std::size_t i = 0; i < src.size();
                                 ++i) {
                                const Bytes slice = nocSliceBytes(
                                    bytes, src.size(), i);
                                if (slice == 0)
                                    continue;
                                const auto tr = chip.noc().multicast(
                                    t0, src[i], tiles, slice);
                                done = std::max(done, tr.end);
                                chip.chargeNocEnergy(tr.byteHops);
                            }
                        }
                        startLB = std::max(startLB, t0);
                        endLB = std::max(
                            {endLB, done, ends_[at(pi, b)] + sync});
                    } else {
                        // DRAM round trip (and host switch/merge).
                        Tick t0 =
                            internal
                                ? ends_[at(static_cast<std::size_t>(
                                               e.producerStage),
                                           b)]
                                : segBarrier;
                        if (viaHost) {
                            t0 = hostCpu
                                     .acquire(t0,
                                              policy_.hostSyncCycles)
                                     .end;
                        }
                        const auto acc = chip.hbm().access(
                            t0, tiles.front(), bytes);
                        chip.chargeHbmEnergy(bytes);
                        startLB = std::max(startLB, acc.end);
                    }
                }

                // Streamed weights and scratchpad spills overlap
                // with the computation (double-buffered prefetch):
                // they bound the completion, not the start.
                if (!st.weightsResident && node.weightBytes() > 0) {
                    const auto acc = chip.hbm().access(
                        startLB, tiles.front(), node.weightBytes());
                    chip.chargeHbmEnergy(node.weightBytes());
                    endLB = std::max(endLB, acc.end);
                }
                if (cost.spill > 0) {
                    const auto acc = chip.hbm().access(
                        startLB, tiles.front(), cost.spill);
                    chip.chargeHbmEnergy(cost.spill);
                    endLB = std::max(endLB, acc.end);
                }

                // --- compute -----------------------------------------
                // Fault degradation: a SIMD tile group runs in
                // lockstep, so every dead member's shard costs one
                // extra full pass on a surviving neighbour while the
                // group stalls; a fully dead group escalates to host
                // execution. Gated on anyTileFailed() so fault-free
                // runs take the exact legacy path.
                Cycles execCycles = cost.cycles;
                if (chip.anyTileFailed()) {
                    int healthy = 0;
                    for (TileId t : tiles)
                        healthy += chip.tileHealthy(t) ? 1 : 0;
                    const int dead = tileCount - healthy;
                    if (healthy == 0) {
                        execCycles = static_cast<Cycles>(
                            static_cast<double>(execCycles) *
                            policy_.deadGroupPenalty);
                    } else if (dead > 0) {
                        execCycles *=
                            static_cast<Cycles>(1 + dead);
                    }
                }
                const Tick start =
                    std::max(startLB, chip.tilesFreeAt(tiles));
                const Tick duration = std::max<Tick>(
                    execCycles, endLB > start ? endLB - start : 0);
                const auto res =
                    chip.occupyTiles(start, tiles, duration);
                starts_[at(si, b)] = res.start;
                ends_[at(si, b)] = res.end;
                segEnd = std::max(segEnd, res.end);
                chip.recordMacs(cost.issued, cost.useful);
                chip.chargePeEnergy(hw_.tech.eMacPj *
                                    static_cast<double>(cost.issued));
                chip.chargeSramEnergy(
                    hw_.tech.eSramPerBytePj *
                    static_cast<double>(cost.sram));
                result.stageCycles[st.op].push_back(cost.cycles);

                // --- output write-back --------------------------------
                if (plans[si].writesOut) {
                    const Bytes outBytes =
                        static_cast<Bytes>(vExec) *
                        perRowOutBytes(node, dg_.info(st.op).outDims);
                    if (outBytes > 0) {
                        const auto acc = chip.hbm().access(
                            res.end, tiles.front(), outBytes);
                        chip.chargeHbmEnergy(outBytes);
                        segEnd = std::max(segEnd, acc.end);
                        if (!policy_.pipelining)
                            ends_[at(si, b)] = acc.end;
                    }
                }
            }

            // Batch completion at the last stage of this segment.
            Tick batchEnd = result.batchEnds[b];
            for (std::size_t si = 0; si < seg.stages.size(); ++si)
                batchEnd = std::max(batchEnd, ends_[at(si, b)]);
            result.batchEnds[b] = batchEnd;
        }
        segBarrier = std::max(segEnd,
                              wholeChipBarrier
                                  ? chip.allTilesFreeAt()
                                  : chip.tilesFreeAt(periodTiles_));
        result.endTime = segBarrier;
    }

    // Drop ops that recorded nothing this period so the map's key
    // set matches a freshly built result (erase frees only nodes,
    // never allocates).
    for (auto it = result.stageCycles.begin();
         it != result.stageCycles.end();) {
        it = it->second.empty() ? result.stageCycles.erase(it)
                                : std::next(it);
    }
}

} // namespace adyna::core
