#include "core/sampling.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace adyna::core {

std::vector<double>
redistributeFrequencies(const std::vector<std::int64_t> &vals,
                        const std::vector<double> &freq,
                        const std::vector<std::int64_t> &new_vals)
{
    ADYNA_ASSERT(vals.size() == freq.size(),
                 "vals/freq length mismatch");
    ADYNA_ASSERT(!new_vals.empty(), "empty re-sampled value set");

    std::vector<double> newFreq(new_vals.size(), 0.0);
    for (std::size_t pos = 0; pos < vals.size(); ++pos) {
        const double f = freq[pos];
        if (f <= 0.0)
            continue;
        const std::int64_t ub = vals[pos];
        if (ub < new_vals.front()) {
            // Below every new sample: served by the smallest kernel.
            newFreq.front() += f;
            continue;
        }
        const std::int64_t lb = pos == 0 ? 0 : vals[pos - 1];

        // New samples inside (lb, ub], uniform mass split by the
        // widths of the sub-ranges they cover.
        std::int64_t pv = lb;
        double assigned = 0.0;
        bool any = false;
        for (std::size_t p = 0; p < new_vals.size(); ++p) {
            const std::int64_t v = new_vals[p];
            if (v <= lb || v > ub)
                continue;
            const double share =
                f * static_cast<double>(v - pv) /
                static_cast<double>(ub - lb);
            newFreq[p] += share;
            assigned += share;
            pv = v;
            any = true;
        }
        const double rest = f - assigned;
        if (rest > 0.0 || !any) {
            // Mass above the largest new sample inside the range
            // (or ranges with no new sample at all) is served by the
            // next kernel upward; the top kernel catches overflow.
            const auto it = std::lower_bound(new_vals.begin(),
                                             new_vals.end(), ub);
            const std::size_t idx =
                it == new_vals.end()
                    ? new_vals.size() - 1
                    : static_cast<std::size_t>(it - new_vals.begin());
            newFreq[idx] += any ? rest : f;
        }
    }
    return newFreq;
}

std::vector<std::int64_t>
resampleKernelValues(std::vector<std::int64_t> vals,
                     std::vector<double> freq, int iterations)
{
    ADYNA_ASSERT(vals.size() == freq.size(),
                 "vals/freq length mismatch");
    ADYNA_ASSERT(std::is_sorted(vals.begin(), vals.end()),
                 "kernel values must be sorted");
    if (vals.size() < 3)
        return vals; // nothing sensible to move

    constexpr double kInf = std::numeric_limits<double>::infinity();

    for (int iter = 0; iter < iterations; ++iter) {
        const std::size_t n = vals.size();

        // Punishment of removing vals[i] (Equation 1 under the
        // uniform assumption): its mass must fall back to the next
        // larger kernel. The largest value is never removable.
        std::size_t rmPos = n; // invalid
        double rmBest = kInf;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            const double punish =
                freq[i] * static_cast<double>(vals[i + 1] - vals[i]);
            if (punish < rmBest) {
                rmBest = punish;
                rmPos = i;
            }
        }
        if (rmPos == n)
            break;
        const std::int64_t rmVal = vals[rmPos];

        std::vector<std::int64_t> newVals = vals;
        std::vector<double> newFreq = freq;
        newVals.erase(newVals.begin() +
                      static_cast<std::ptrdiff_t>(rmPos));
        newFreq.erase(newFreq.begin() +
                      static_cast<std::ptrdiff_t>(rmPos));

        // Saving of inserting the midpoint of each remaining range
        // (v_{p-1}, v_p]: the lower half of the range's mass then
        // matches a kernel closer by half the width.
        std::size_t inPos = newVals.size(); // invalid
        double inBest = -1.0;
        for (std::size_t p = 0; p < newVals.size(); ++p) {
            const std::int64_t lo = p == 0 ? 0 : newVals[p - 1];
            const std::int64_t width = newVals[p] - lo;
            if (width < 2)
                continue; // no integer midpoint strictly inside
            const double saving = 0.5 * newFreq[p] *
                                  (static_cast<double>(width) / 2.0);
            if (saving > inBest) {
                inBest = saving;
                inPos = p;
            }
        }
        if (inPos == newVals.size()) {
            return vals; // recover the removed value and stop
        }
        const std::int64_t lo = inPos == 0 ? 0 : newVals[inPos - 1];
        const std::int64_t inVal = (lo + newVals[inPos]) / 2;
        if (inVal == rmVal || inVal <= lo || inBest <= rmBest) {
            return vals; // no profitable move left (Algorithm 1 L11)
        }
        newVals.insert(newVals.begin() +
                           static_cast<std::ptrdiff_t>(inPos),
                       inVal);

        // Redistribute the observed frequencies onto the new set.
        const std::vector<double> redist =
            redistributeFrequencies(vals, freq, newVals);
        vals = std::move(newVals);
        freq = redist;
    }
    return vals;
}

std::vector<double>
bucketFrequencies(const FreqHistogram &observed,
                  const std::vector<std::int64_t> &vals)
{
    std::vector<double> freq(vals.size(), 0.0);
    if (vals.empty())
        return freq;
    for (const auto &[value, count] : observed.sorted()) {
        const auto it =
            std::lower_bound(vals.begin(), vals.end(), value);
        const std::size_t idx =
            it == vals.end()
                ? vals.size() - 1
                : static_cast<std::size_t>(it - vals.begin());
        freq[idx] += static_cast<double>(count);
    }
    return freq;
}

void
refreshScheduleInputs(
    const arch::Profiler &profiler, bool resample,
    std::map<OpId, double> &expectations,
    std::map<OpId, std::vector<std::int64_t>> &kernel_values)
{
    std::map<OpId, double> newExp;
    for (OpId op : profiler.trackedOps()) {
        const auto &table = profiler.table(op);
        if (!table.empty())
            newExp[op] = table.expectation();
    }
    if (!newExp.empty())
        expectations = std::move(newExp);

    if (!resample)
        return;
    for (auto &[op, values] : kernel_values) {
        const auto &table = profiler.table(op);
        if (table.empty())
            continue;
        const auto freq = bucketFrequencies(table, values);
        values = resampleKernelValues(values, freq,
                                      static_cast<int>(values.size()));
    }
}

} // namespace adyna::core
