#include "core/system.hh"

#include <algorithm>
#include <optional>

#include "common/logging.hh"
#include "core/sampling.hh"
#include "core/validate.hh"

namespace adyna::core {

System::System(const graph::DynGraph &dg, trace::TraceConfig trace_cfg,
               arch::HwConfig hw, SchedulerConfig sched_cfg,
               ExecPolicy policy, RunOptions options,
               std::string design_name)
    : dg_(dg), traceCfg_(trace_cfg), hw_(hw), schedCfg_(sched_cfg),
      policy_(policy), options_(options),
      designName_(std::move(design_name))
{
    ADYNA_ASSERT(options_.numBatches > 0, "numBatches must be > 0");
}

void
System::setReplay(std::vector<trace::BatchRouting> replay)
{
    ADYNA_ASSERT(static_cast<int>(replay.size()) >=
                     options_.numBatches,
                 "replay trace holds ", replay.size(),
                 " batches but the run needs ", options_.numBatches);
    replay_ = std::move(replay);
}

void
System::setSharedMapper(costmodel::Mapper *mapper)
{
    sharedMapper_ = mapper;
}

void
System::setSharedStoreCache(kernels::KernelStoreCache *cache)
{
    sharedStoreCache_ = cache;
}

void
System::setSchedulerPool(ThreadPool *pool)
{
    schedulerPool_ = pool;
}

void
System::setFaultPlan(fault::FaultPlan plan, std::uint64_t seed)
{
    faultPlan_ = std::move(plan);
    faultSeed_ = seed;
}

RunReport
System::run()
{
    std::optional<costmodel::Mapper> localMapper;
    if (!sharedMapper_)
        localMapper.emplace(hw_.tech);
    costmodel::Mapper &mapper =
        sharedMapper_ ? *sharedMapper_ : *localMapper;
    const std::uint64_t hits0 = mapper.hits();
    const std::uint64_t misses0 = mapper.misses();

    kernels::KernelStoreCache &storeCache =
        sharedStoreCache_ ? *sharedStoreCache_
                          : kernels::KernelStoreCache::global();
    const std::uint64_t sHits0 = storeCache.hits();
    const std::uint64_t sMisses0 = storeCache.misses();

    Scheduler scheduler(dg_, hw_, mapper, schedCfg_);
    scheduler.setStoreCache(&storeCache); // no-op unless storeCache
                                          // is configured on
    if (schedulerPool_)
        scheduler.setThreadPool(schedulerPool_);
    Engine engine(dg_, hw_, mapper, policy_);
    arch::Chip chip(hw_);
    arch::Profiler profiler;

    trace::TraceGenerator trace(dg_, traceCfg_, options_.seed);
    std::size_t replayCursor = 0;

    // ---- offline profiling (Figure 4: initial statistics) ----------
    std::map<OpId, double> expectations;
    std::map<OpId, std::vector<std::int64_t>> kernelValues =
        scheduler.initialKernelValues();
    if (!schedCfg_.worstCase && options_.profileBatches > 0) {
        // Warm the profiler (and the expectations) with offline
        // statistics so the first schedule can pick sharing pairs /
        // grouped branches. With a replayed trace, its prefix doubles
        // as the offline profile.
        std::map<OpId, double> sums;
        trace::TraceGenerator probe(dg_, traceCfg_,
                                    options_.seed ^
                                        0x517cc1b727220a95ULL);
        for (int b = 0; b < options_.profileBatches; ++b) {
            const trace::BatchRouting routing =
                replay_.empty()
                    ? probe.next()
                    : replay_[static_cast<std::size_t>(b) %
                              replay_.size()];
            profiler.noteBatch();
            for (const auto &[sw, oc] : routing.outcomes)
                profiler.recordBranchLoads(sw, oc.branchCounts);
            for (OpId op : dg_.dynamicOps()) {
                const auto v = routing.dynValue(dg_, op);
                profiler.recordValue(op, v);
                sums[op] += static_cast<double>(v);
            }
        }
        for (auto &[op, sum] : sums)
            expectations[op] = sum / options_.profileBatches;

        // Initial kernel sampling against the offline profile.
        for (auto &[op, values] : kernelValues) {
            const auto freq =
                bucketFrequencies(profiler.table(op), values);
            values = resampleKernelValues(
                values, freq, static_cast<int>(values.size()));
        }
        profiler.resetTables();
    }

    Schedule schedule = scheduler.build(
        expectations, kernelValues,
        schedCfg_.worstCase ? nullptr : &profiler);
    const auto checkSchedule = [&](const Schedule &sch) {
        const auto issues = validateSchedule(sch, dg_, hw_);
        ADYNA_ASSERT(issues.empty(), "invalid schedule:\n",
                     issuesToString(issues));
    };
    checkSchedule(schedule);

    // ---- main loop with periodic reconfiguration --------------------
    RunReport report;
    report.workload = dg_.name();
    report.design = designName_;
    report.segments = static_cast<int>(schedule.segments.size());
    report.storedKernels = schedule.totalKernels();

    const int period = options_.reconfigPeriod > 0
                           ? options_.reconfigPeriod
                           : options_.numBatches;
    std::optional<fault::FaultInjector> injector;
    if (!faultPlan_.empty())
        injector.emplace(faultPlan_,
                         faultSeed_ ? faultSeed_
                                    : options_.seed ^
                                          0xda3e39cb94b95bdbULL);
    Tick barrier = 0;
    int done = 0;
    while (done < options_.numBatches) {
        // Fault events due by the current clock strike before the
        // period runs; a healthy-tile change triggers a degraded
        // re-schedule onto the survivors (the static worst-case
        // baseline keeps its schedule and eats the lockstep
        // degradation instead).
        if (injector && injector->advanceTo(barrier, chip) &&
            !schedCfg_.worstCase) {
            scheduler.setHealthyTiles(chip.healthyTiles());
            schedule = scheduler.build(expectations, kernelValues,
                                       &profiler);
            checkSchedule(schedule);
            report.storedKernels = std::max(report.storedKernels,
                                            schedule.totalKernels());
            barrier += options_.reconfigOverheadCycles;
            ++report.failovers;
        }
        const int count =
            std::min(period, options_.numBatches - done);
        std::vector<trace::BatchRouting> routings;
        routings.reserve(static_cast<std::size_t>(count));
        for (int b = 0; b < count; ++b)
            routings.push_back(replay_.empty()
                                   ? trace.next()
                                   : replay_[replayCursor++]);

        const PeriodResult res = engine.runPeriod(
            chip, schedule, routings, &profiler, barrier);
        barrier = res.endTime;
        report.batchEnds.insert(report.batchEnds.end(),
                                res.batchEnds.begin(),
                                res.batchEnds.end());
        for (const auto &[op, cycles] : res.stageCycles) {
            auto &dst = report.stageCycles[op];
            dst.insert(dst.end(), cycles.begin(), cycles.end());
        }
        done += count;

        const bool adjust = options_.reconfigPeriod > 0 &&
                            done < options_.numBatches &&
                            !schedCfg_.worstCase;
        if (!adjust)
            continue;

        // Scheduler pulls the profiler report (Section V):
        // frequency-weighted expectations and kernel re-sampling.
        refreshScheduleInputs(profiler,
                              options_.resampleKernels &&
                                  !policy_.exactKernels,
                              expectations, kernelValues);
        profiler.resetTables();

        schedule = scheduler.build(expectations, kernelValues,
                                   &profiler);
        checkSchedule(schedule);
        report.storedKernels = std::max(report.storedKernels,
                                        schedule.totalKernels());
        // Reconfiguration: the period boundary already drained the
        // pipeline; add the fixed kernel/metadata reload cost.
        barrier += options_.reconfigOverheadCycles;
        ++report.reconfigurations;
    }

    // ---- metrics ------------------------------------------------------
    report.cycles = barrier;
    const double seconds = static_cast<double>(barrier) /
                           (hw_.tech.freqGhz * 1e9);
    report.timeMs = seconds * 1e3;
    report.batchesPerSecond =
        seconds > 0.0 ? options_.numBatches / seconds : 0.0;
    report.peUtilization = chip.peUtilization(barrier);
    report.hbmUtilization = chip.hbmUtilization(barrier);
    report.energy = chip.energy();
    report.usefulMacs = chip.usefulMacs();
    report.issuedMacs = chip.issuedMacs();
    report.mapperHits = mapper.hits() - hits0;
    report.mapperMisses = mapper.misses() - misses0;
    if (schedCfg_.storeCache) {
        report.storeHits = storeCache.hits() - sHits0;
        report.storeMisses = storeCache.misses() - sMisses0;
    }
    report.execHits = engine.execHits();
    report.execMisses = engine.execMisses();
    if (injector)
        report.fault = injector->stats(chip);
    return report;
}

} // namespace adyna::core
