/**
 * @file
 * AdynaSystem: the public entry point. Owns the scheduler, the
 * execution engine, the chip model, and the profiler feedback loop
 * (Figure 4's overall workflow): offline profiling, initial
 * multi-kernel sampling, periodic frequency-weighted re-allocation
 * and kernel re-sampling with pipeline-drain reconfiguration costs.
 */

#ifndef ADYNA_CORE_SYSTEM_HH
#define ADYNA_CORE_SYSTEM_HH

#include <map>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "core/search_stats.hh"
#include "fault/fault.hh"
#include "graph/dyngraph.hh"
#include "trace/trace.hh"

namespace adyna::core {

/** Run-level options. */
struct RunOptions
{
    /** Batches to simulate. */
    int numBatches = 200;

    /** Seed for the dynamism trace. */
    std::uint64_t seed = 1;

    /**
     * Batches between runtime re-scheduling / re-sampling events
     * (the paper reconfigures every 40 batches); 0 disables runtime
     * adjustment entirely (the Adyna-static setting).
     */
    int reconfigPeriod = 40;

    /** Fixed reconfiguration overhead added on top of the natural
     * pipeline drain, cycles. */
    Cycles reconfigOverheadCycles = 10000;

    /** Offline profiling batches before the first schedule. */
    int profileBatches = 40;

    /** Run Algorithm 1 re-sampling at each reconfiguration. */
    bool resampleKernels = true;
};

/** Everything a run reports (feeds every evaluation figure). */
struct RunReport
{
    std::string workload;
    std::string design;

    Tick cycles = 0;
    double timeMs = 0.0;
    double batchesPerSecond = 0.0;

    double peUtilization = 0.0;
    double hbmUtilization = 0.0;
    arch::EnergyBreakdown energy;

    MacCount usefulMacs = 0;
    MacCount issuedMacs = 0;

    std::size_t storedKernels = 0;
    int segments = 0;
    int reconfigurations = 0;

    /**
     * Mapper memo-cache lookups attributed to this run (hits +
     * misses = searches). With a mapper shared across concurrent
     * runs the split is a best-effort snapshot delta -- simultaneous
     * runs may steal each other's hits -- but the numbers stay
     * usable as an effectiveness signal. Deliberately excluded from
     * the CSV/JSON exporters so machine-readable dumps stay
     * byte-identical across --jobs settings.
     */
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;

    /** Kernel-store cache lookups attributed to this run (same
     * best-effort snapshot-delta semantics and exporter exclusion as
     * the mapper counters; zero when the cache is disabled). */
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;

    /** Engine exec-cost memo lookups (exact: the engine is private
     * to the run; zero when the memo is disabled). Excluded from the
     * exporters like the other cache counters. */
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;

    /** Fault-injection counters (all zero without a fault plan).
     * Excluded from the CSV/JSON exporters like the cache counters so
     * fault-free reports stay byte-identical to the pre-fault code;
     * exported separately via faultStatsJson(). */
    fault::FaultStats fault;

    /** Degraded re-schedules triggered by a healthy-tile change (a
     * subset of `reconfigurations`' spirit but counted separately;
     * also excluded from the exporters). */
    int failovers = 0;

    /** Schedule-search counters (all zero unless a ScheduleSearch
     * filled them in; src/search). Excluded from the CSV/JSON
     * exporters like the cache and fault counters so search-off
     * reports stay byte-identical; exported separately via
     * searchStatsJson(). */
    SearchStats search;

    /** Per-batch completion times. */
    std::vector<Tick> batchEnds;

    /** Per-op per-batch stage makespans (Figure 6 trace bench). */
    std::map<OpId, std::vector<Cycles>> stageCycles;
};

/** One design point = scheduler config + engine policy + options. */
class System
{
  public:
    System(const graph::DynGraph &dg, trace::TraceConfig trace_cfg,
           arch::HwConfig hw, SchedulerConfig sched_cfg,
           ExecPolicy policy, RunOptions options,
           std::string design_name);

    /** Simulate and report. */
    RunReport run();

    /**
     * Replay a recorded routing trace instead of the synthetic
     * generator (see trace/replay.hh). Must hold at least
     * RunOptions::numBatches entries; the first profileBatches
     * entries double as the offline profile.
     */
    void setReplay(std::vector<trace::BatchRouting> replay);

    /**
     * Use @p mapper (shared, possibly with concurrent Systems)
     * instead of a private per-run Mapper, so identical mapping
     * searches are memoized once per sweep. The mapper must be built
     * from the same TechParams as this System's HwConfig (the memo
     * key does not include the tech) and must outlive the run.
     * Results are unaffected; only wall-clock and the cache counters
     * change. Pass nullptr to restore the private mapper.
     */
    void setSharedMapper(costmodel::Mapper *mapper);

    /**
     * Use @p cache instead of the process-wide
     * KernelStoreCache::global() for compiled kernel-store reuse
     * (honoured only while SchedulerConfig::storeCache is set). Must
     * outlive the run; pass nullptr to restore the global cache.
     * Results are unaffected; only wall-clock and the cache counters
     * change.
     */
    void setSharedStoreCache(kernels::KernelStoreCache *cache);

    /**
     * Build per-stage kernel stores on @p pool during (re-)schedules
     * instead of serially on the run's thread. The pool must outlive
     * the run; nullptr restores serial builds. Nested parallelFor
     * degrades to inline execution, so a System already running as a
     * pool task may safely receive the same pool.
     */
    void setSchedulerPool(ThreadPool *pool);

    /**
     * Inject @p plan during the run: events fire on the chip clock at
     * period boundaries, and a healthy-tile change triggers a
     * degraded re-schedule onto the survivors (unless the design is
     * the worst-case static baseline, which keeps its schedule and
     * eats the degraded execution cost). @p seed drives the
     * probe-drop streams; 0 derives one from RunOptions::seed. An
     * empty plan leaves every simulation path untouched.
     */
    void setFaultPlan(fault::FaultPlan plan, std::uint64_t seed = 0);

    const arch::HwConfig &hwConfig() const { return hw_; }

  private:
    const graph::DynGraph &dg_;
    trace::TraceConfig traceCfg_;
    arch::HwConfig hw_;
    SchedulerConfig schedCfg_;
    ExecPolicy policy_;
    RunOptions options_;
    std::string designName_;
    std::vector<trace::BatchRouting> replay_;
    costmodel::Mapper *sharedMapper_ = nullptr;
    kernels::KernelStoreCache *sharedStoreCache_ = nullptr;
    ThreadPool *schedulerPool_ = nullptr;
    fault::FaultPlan faultPlan_;
    std::uint64_t faultSeed_ = 0;
};

} // namespace adyna::core

#endif // ADYNA_CORE_SYSTEM_HH
