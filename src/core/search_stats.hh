/**
 * @file
 * Observability of one schedule-search run (src/search). Lives in
 * core so RunReport and the serving runtime can carry the counters
 * without depending on the search library (search depends on core,
 * never the reverse).
 */

#ifndef ADYNA_CORE_SEARCH_STATS_HH
#define ADYNA_CORE_SEARCH_STATS_HH

#include <cstdint>

#include "common/types.hh"

namespace adyna::core {

/** What one ScheduleSearch::run() did and cost. Counters accumulate
 * across runs when the same struct is passed repeatedly (the serving
 * runtime sums every drift-window search into one report). */
struct SearchStats
{
    /** Surrogate-evaluated mutations across all chains (SA proposals
     * plus beam-refine probes). */
    std::uint64_t candidatesTried = 0;

    /** Mutations the annealer/refiner kept (accepted moves). */
    std::uint64_t candidatesAccepted = 0;

    /** Candidate schedules materialized through Scheduler::buildDelta
     * and costed on the probe engine. */
    std::uint64_t materialized = 0;

    /** Segments rebuilt vs spliced across all materializations (the
     * cheap-mutate claim: most candidates splice most segments). */
    std::uint64_t segmentsRebuilt = 0;
    std::uint64_t segmentsSpliced = 0;

    /** Materializations that rebuilt every segment (no splice). */
    std::uint64_t fullRebuilds = 0;

    /** Modeled cycles the search consumed (mutations, evaluations,
     * store compiles) — what the serve watchdog charges. */
    Cycles budgetSpentCycles = 0;

    /** Searches that hit their cycle budget and stopped early. */
    std::uint64_t budgetExhausted = 0;

    /** Parallel chains the last run used. */
    int chains = 0;

    /** Probe makespan of the heuristic baseline vs the best searched
     * schedule (ticks; last run). searchedCost == heuristicCost when
     * the search fell back to the heuristic. */
    double heuristicCost = 0.0;
    double searchedCost = 0.0;

    /** The last run's best schedule beat the heuristic baseline. */
    bool improved = false;

    /**
     * Cache traffic attributed to candidate evaluation (store cache,
     * mapper memo, probe-engine exec memo). Scoped here so run-level
     * cacheStatsJson / serve cache counters reflect the installed
     * schedule, not the rejected candidates.
     */
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;
};

} // namespace adyna::core

#endif // ADYNA_CORE_SEARCH_STATS_HH
