#include "core/validate.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace adyna::core {

using graph::OpKind;

std::vector<ScheduleIssue>
validateSchedule(const Schedule &schedule, const graph::DynGraph &dg,
                 const arch::HwConfig &hw)
{
    std::vector<ScheduleIssue> issues;
    const auto add = [&](int seg, OpId op, std::string msg) {
        issues.push_back({seg, op, std::move(msg)});
    };

    // ---- coverage: every stage op in exactly one segment ----------
    std::map<OpId, int> segOf;
    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        for (const StageAssign &st : schedule.segments[s]->stages) {
            if (segOf.count(st.op))
                add(static_cast<int>(s), st.op,
                    "op appears in multiple segments");
            segOf[st.op] = static_cast<int>(s);
        }
    }
    for (OpId id : dg.topo()) {
        const OpKind kind = dg.graph().node(id).kind;
        if ((graph::isCompute(kind) || graph::isFusable(kind)) &&
            !segOf.count(id))
            add(-1, id, "stage op missing from every segment");
    }

    // ---- topological order within and across segments --------------
    std::map<OpId, std::size_t> topoPos;
    for (std::size_t i = 0; i < dg.topo().size(); ++i)
        topoPos[dg.topo()[i]] = i;
    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        const auto &stages = schedule.segments[s]->stages;
        for (std::size_t i = 1; i < stages.size(); ++i) {
            if (topoPos[stages[i - 1].op] > topoPos[stages[i].op])
                add(static_cast<int>(s), stages[i].op,
                    "stages out of topological order");
        }
    }

    // ---- switch regions with merges stay in one segment -------------
    for (const graph::SwitchInfo &sw : dg.switches()) {
        if (sw.mergeOp == kInvalidOp)
            continue;
        std::set<int> segs;
        for (const auto &branch : sw.branches)
            for (OpId op : branch)
                if (segOf.count(op))
                    segs.insert(segOf[op]);
        if (segs.size() > 1)
            add(-1, sw.switchOp,
                "merged switch region straddles segments");
    }

    // ---- per-stage checks --------------------------------------------
    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        const Segment &seg = *schedule.segments[s];
        for (const StageAssign &st : seg.stages) {
            const auto &node = dg.graph().node(st.op);
            if (st.baseTiles < 1 ||
                static_cast<std::size_t>(st.baseTiles) >
                    st.tiles.size())
                add(static_cast<int>(s), st.op,
                    "baseTiles outside the stage's tile range");
            for (TileId t : st.tiles)
                if (t >= static_cast<TileId>(hw.tiles()))
                    add(static_cast<int>(s), st.op,
                        "tile id out of range");

            // Tile counts this stage may run at.
            std::set<int> counts{st.baseTiles};
            if (st.sharePair >= 0) {
                if (static_cast<std::size_t>(st.sharePair) >=
                    seg.pairs.size()) {
                    add(static_cast<int>(s), st.op,
                        "share pair index out of range");
                } else {
                    const SharePair &pair =
                        seg.pairs[static_cast<std::size_t>(
                            st.sharePair)];
                    for (int c = 0; c < 3; ++c) {
                        const auto [a, b] = pair.alloc[
                            static_cast<std::size_t>(c)];
                        counts.insert(st.shareFirst ? a : b);
                    }
                }
            }
            Bytes metadata = 0;
            for (int count : counts) {
                const auto it = st.stores.find(count);
                if (it == st.stores.end()) {
                    add(static_cast<int>(s), st.op,
                        "missing kernel store for tile count " +
                            std::to_string(count));
                    continue;
                }
                if (it->second->empty()) {
                    add(static_cast<int>(s), st.op,
                        "empty kernel store");
                    continue;
                }
                if (it->second->values().back() < node.dims.n())
                    add(static_cast<int>(s), st.op,
                        "kernel store does not cover the worst case");
                metadata += it->second->metadataBytes();
            }
            if (metadata > hw.tech.kernelSpadBudget())
                add(static_cast<int>(s), st.op,
                    "kernel metadata exceeds the on-chip budget");

            if (st.weightsResident && st.baseTiles > 0) {
                const Bytes perTile =
                    node.weightBytes() /
                    static_cast<Bytes>(st.baseTiles);
                if (perTile > hw.tech.spadBytes)
                    add(static_cast<int>(s), st.op,
                        "resident weights exceed scratchpad");
            }
        }

        // Share pairs reference valid stages.
        for (const SharePair &pair : seg.pairs) {
            if (pair.stageA < 0 || pair.stageB < 0 ||
                static_cast<std::size_t>(pair.stageA) >=
                    seg.stages.size() ||
                static_cast<std::size_t>(pair.stageB) >=
                    seg.stages.size())
                add(static_cast<int>(s), kInvalidOp,
                    "share pair references missing stages");
        }
    }
    return issues;
}

std::string
issuesToString(const std::vector<ScheduleIssue> &issues)
{
    std::ostringstream os;
    for (const ScheduleIssue &issue : issues) {
        os << "segment " << issue.segment << " op " << issue.op << ": "
           << issue.message << '\n';
    }
    return os.str();
}

} // namespace adyna::core
