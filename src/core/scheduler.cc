#include "core/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.hh"
#include "kernels/store.hh"
#include "kernels/store_cache.hh"

namespace adyna::core {

using graph::Dim;
using graph::OpKind;
using graph::OpNode;
using graph::SwitchInfo;

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** An allocation unit: one stage op, or a group of branch-grouped
 * ops sharing tiles temporally. */
struct Unit
{
    std::vector<OpId> ops;
    double work = 0.0;
    int tiles = 1;
    bool resident = true;
    std::vector<TileId> range;

    Bytes
    weightBytes(const graph::Graph &g) const
    {
        Bytes total = 0;
        for (OpId op : ops)
            total += g.node(op).weightBytes();
        return total;
    }
};

} // namespace

Scheduler::Scheduler(const graph::DynGraph &dg, arch::HwConfig hw,
                     costmodel::Mapper &mapper, SchedulerConfig cfg)
    : dg_(dg), hw_(std::move(hw)), mapper_(mapper), cfg_(cfg)
{
}

void
Scheduler::setPlanOverride(const PlanOverride *override)
{
    override_ = override;
    segCacheValid_ = false; // the partition may change either way
}

double
Scheduler::allocBias(OpId op) const
{
    if (!override_)
        return 1.0;
    const auto it = override_->allocBias.find(op);
    return it != override_->allocBias.end() ? it->second : 1.0;
}

double
Scheduler::groupThreshold(OpId switch_op) const
{
    double scale = 1.0;
    if (override_) {
        const auto it = override_->groupScale.find(switch_op);
        if (it != override_->groupScale.end())
            scale = it->second;
    }
    return cfg_.groupActivityThreshold * scale;
}

void
Scheduler::setHealthyTiles(std::vector<TileId> healthy)
{
    std::sort(healthy.begin(), healthy.end());
    healthy.erase(std::unique(healthy.begin(), healthy.end()),
                  healthy.end());
    for (TileId t : healthy)
        ADYNA_ASSERT(static_cast<int>(t) < hw_.tiles(),
                     "healthy tile ", t, " outside the grid");
    segCacheValid_ = false; // the partition budgets healthy tiles
    if (healthy.empty() ||
        static_cast<int>(healthy.size()) == hw_.tiles()) {
        // Empty (the documented "clear" form) or everything healthy:
        // restore the exact full-grid path.
        healthyTiles_.clear();
        return;
    }
    healthyTiles_ = std::move(healthy);
}

std::vector<TileId>
Scheduler::activeTileOrder() const
{
    std::vector<TileId> order = arch::snakeTileOrder(hw_);
    if (healthyTiles_.empty())
        return order;
    std::vector<char> healthy(
        static_cast<std::size_t>(hw_.tiles()), 0);
    for (TileId t : healthyTiles_)
        healthy[t] = 1;
    order.erase(std::remove_if(order.begin(), order.end(),
                               [&](TileId t) { return !healthy[t]; }),
                order.end());
    return order;
}

std::vector<OpId>
Scheduler::stageOps() const
{
    std::vector<OpId> out;
    for (OpId id : dg_.topo()) {
        const OpKind kind = dg_.graph().node(id).kind;
        if (graph::isCompute(kind) || graph::isFusable(kind))
            out.push_back(id);
    }
    return out;
}

double
Scheduler::expectedWork(OpId op,
                        const std::map<OpId, double> &expectations) const
{
    const OpNode &node = dg_.graph().node(op);
    double rows = static_cast<double>(node.dims.n());
    if (!cfg_.worstCase && dg_.isDynamic(op)) {
        const auto it = expectations.find(op);
        if (it != expectations.end())
            rows = std::max(1.0, it->second);
    }
    const auto &tech = hw_.tech;
    double perRow;
    if (graph::isCompute(node.kind)) {
        perRow = costmodel::computeCyclesPerRow(node.dims, tech);
    } else {
        perRow = static_cast<double>(node.dims.k() * node.dims.p() *
                                     node.dims.q()) /
                 static_cast<double>(tech.macsPerCycle());
    }
    return rows * perRow;
}

std::vector<std::vector<OpId>>
Scheduler::segmentationAtoms() const
{
    const std::vector<OpId> ops = stageOps();

    // Atom of each op: a switch region [switch..merge] must stay
    // within one segment so its dynamic routing happens on-chip;
    // everything else is its own atom.
    const auto atomOf = [&](OpId op) -> OpId {
        const graph::DynOpInfo &di = dg_.info(op);
        if (di.dynamic && di.branch >= 0) {
            const SwitchInfo &sw = dg_.switchInfo(di.ownerSwitch);
            if (sw.mergeOp != kInvalidOp)
                return di.ownerSwitch;
        }
        return op;
    };

    // Atoms in first-occurrence order.
    std::vector<std::pair<OpId, std::vector<OpId>>> atoms;
    for (OpId op : ops) {
        const OpId key = atomOf(op);
        if (atoms.empty() || atoms.back().first != key) {
            bool merged = false;
            for (auto &[k, list] : atoms) {
                if (k == key) {
                    list.push_back(op); // non-contiguous member
                    merged = true;
                    break;
                }
            }
            if (!merged)
                atoms.push_back({key, {op}});
        } else {
            atoms.back().second.push_back(op);
        }
    }

    std::vector<std::vector<OpId>> out;
    out.reserve(atoms.size());
    for (auto &[key, list] : atoms)
        out.push_back(std::move(list));
    return out;
}

const std::vector<std::vector<OpId>> &
Scheduler::segmentOps() const
{
    if (segCacheValid_)
        return segCache_;
    if (override_ && !override_->partition.empty()) {
        // The override pins the partition; check it covers exactly
        // the stage ops (a stale override against a different graph
        // would otherwise build a silently wrong schedule).
        std::vector<OpId> flat;
        for (const auto &seg : override_->partition)
            flat.insert(flat.end(), seg.begin(), seg.end());
        std::vector<OpId> want = stageOps();
        std::vector<OpId> got = flat;
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ADYNA_ASSERT(got == want,
                     "PlanOverride partition must cover exactly the "
                     "stage ops (got ", got.size(), " ops, want ",
                     want.size(), ")");
        segCache_ = override_->partition;
        segCacheValid_ = true;
        return segCache_;
    }
    const std::vector<std::vector<OpId>> atoms = segmentationAtoms();

    // Degraded builds budget only the surviving tiles' scratchpad
    // (identical to totalSpad() when every tile is healthy).
    const Bytes spadAvail =
        static_cast<Bytes>(activeTileCount()) * hw_.tech.spadBytes;
    const Bytes budget = static_cast<Bytes>(
        static_cast<double>(spadAvail) * cfg_.spadFill);
    const std::size_t maxStages =
        static_cast<std::size_t>(activeTileCount());

    std::vector<std::vector<OpId>> segments;
    std::vector<OpId> current;
    Bytes currentWeights = 0;
    for (const auto &list : atoms) {
        Bytes atomWeights = 0;
        for (OpId op : list)
            atomWeights += dg_.graph().node(op).weightBytes();
        const bool overflow =
            !current.empty() &&
            (currentWeights + atomWeights > budget ||
             current.size() + list.size() > maxStages);
        if (overflow) {
            segments.push_back(std::move(current));
            current.clear();
            currentWeights = 0;
        }
        current.insert(current.end(), list.begin(), list.end());
        currentWeights += atomWeights;
    }
    if (!current.empty())
        segments.push_back(std::move(current));
    segCache_ = std::move(segments);
    segCacheValid_ = true;
    return segCache_;
}

int
Scheduler::effectiveKernelBudget() const
{
    // The per-operator value budget can never exceed what the
    // scratchpad's metadata region holds after tile sharing's 6x
    // amplification (2 operators x 3 allocation ratios, Section VII).
    const int hwCap =
        std::max(1, hw_.tech.maxKernelsPerTile() / 6);
    return std::min(cfg_.kernelBudgetPerOp, hwCap);
}

std::map<OpId, std::vector<std::int64_t>>
Scheduler::initialKernelValues() const
{
    std::map<OpId, std::vector<std::int64_t>> out;
    for (OpId op : dg_.dynamicOps()) {
        const OpKind kind = dg_.graph().node(op).kind;
        if (!graph::isCompute(kind) && !graph::isFusable(kind))
            continue;
        out[op] = kernels::uniformKernelValues(
            dg_.maxDyn(op), effectiveKernelBudget());
    }
    return out;
}

Schedule
Scheduler::build(const std::map<OpId, double> &expectations,
                 const std::map<OpId, std::vector<std::int64_t>>
                     &kernel_values,
                 const arch::Profiler *profiler) const
{
    const auto &segs = segmentOps();
    std::vector<Segment> built;
    built.reserve(segs.size());
    for (const auto &segOps : segs)
        built.push_back(buildSegment(segOps, expectations, profiler));
    compileStores(built, kernel_values);

    Schedule schedule;
    schedule.segments.reserve(built.size());
    for (Segment &seg : built)
        schedule.segments.push_back(
            std::make_shared<const Segment>(std::move(seg)));
    return schedule;
}

Schedule
Scheduler::buildDelta(const Schedule &base,
                      const std::map<OpId, double> &expectations,
                      const std::map<OpId, std::vector<std::int64_t>>
                          &kernel_values,
                      const arch::Profiler *profiler,
                      const std::vector<OpId> &changed_ops,
                      DeltaStats *stats) const
{
    const auto &segs = segmentOps();

    // changed_ops is a handful of dynamic ops at most, so a linear
    // scan beats hashing it into a set (which would allocate on the
    // serve loop's pure-splice fast path).
    const auto isChanged = [&changed_ops](OpId op) {
        return std::find(changed_ops.begin(), changed_ops.end(),
                         op) != changed_ops.end();
    };

    // A base segment is reusable when it covers exactly the same ops
    // in the same order -- tile allocation and sharing only depend on
    // the segment's own ops, so segments are independent given the
    // partition.
    const auto sameOps = [](const Segment &seg,
                            const std::vector<OpId> &ops) {
        if (seg.stages.size() != ops.size())
            return false;
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (seg.stages[i].op != ops[i])
                return false;
        return true;
    };

    Schedule schedule;
    schedule.segments.reserve(segs.size());
    std::vector<Segment> rebuiltSegs;
    std::vector<std::size_t> rebuiltAt;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        bool touched = false;
        for (OpId op : segs[i])
            touched |= isChanged(op);
        if (!touched && i < base.segments.size() &&
            sameOps(*base.segments[i], segs[i])) {
            // Splice: a refcount bump on the base's immutable
            // segment — stages, tile ranges, and compiled stores are
            // shared, not copied.
            schedule.segments.push_back(base.segments[i]);
        } else {
            rebuiltAt.push_back(i);
            rebuiltSegs.push_back(
                buildSegment(segs[i], expectations, profiler));
            schedule.segments.emplace_back(); // frozen below
        }
    }
    // Only rebuilt segments need stores; a pure splice skips the
    // compile pass entirely.
    if (!rebuiltSegs.empty()) {
        compileStores(rebuiltSegs, kernel_values);
        for (std::size_t j = 0; j < rebuiltSegs.size(); ++j)
            schedule.segments[rebuiltAt[j]] =
                std::make_shared<const Segment>(
                    std::move(rebuiltSegs[j]));
    }
    if (stats) {
        stats->segmentsTotal = segs.size();
        stats->segmentsRebuilt = rebuiltAt.size();
    }
    return schedule;
}

Segment
Scheduler::buildSegment(const std::vector<OpId> &segOps,
                        const std::map<OpId, double> &expectations,
                        const arch::Profiler *profiler) const
{
    {
        Segment seg;

        // ---- branch grouping --------------------------------------
        std::map<OpId, int> groupOf; // op -> unit group id
        int nextGroup = 0;
        if (cfg_.branchGrouping && profiler) {
            // Membership test built once per segment; the linear
            // std::find scan here made grouping O(stages^2) per
            // switch branch.
            const std::unordered_set<OpId> segSet(segOps.begin(),
                                                  segOps.end());
            for (const SwitchInfo &sw : dg_.switches()) {
                std::vector<int> lowBranches;
                for (int b = 0; b < sw.numBranches(); ++b) {
                    bool hasStage = false;
                    for (OpId op : sw.branches[static_cast<
                             std::size_t>(b)])
                        hasStage |= segSet.count(op) != 0;
                    if (!hasStage)
                        continue;
                    if (profiler->branchActivity(sw.switchOp, b) <
                        groupThreshold(sw.switchOp))
                        lowBranches.push_back(b);
                }
                if (lowBranches.size() < 2)
                    continue;
                const int gid = nextGroup++;
                for (int b : lowBranches)
                    for (OpId op : sw.branches[static_cast<
                             std::size_t>(b)])
                        groupOf[op] = gid;
            }
        }

        // ---- allocation units --------------------------------------
        std::vector<Unit> units;
        std::map<int, std::size_t> groupUnit;
        std::map<OpId, std::size_t> unitOf;
        for (OpId op : segOps) {
            const auto git = groupOf.find(op);
            if (git != groupOf.end()) {
                const auto uit = groupUnit.find(git->second);
                std::size_t ui;
                if (uit == groupUnit.end()) {
                    ui = units.size();
                    units.push_back({});
                    groupUnit[git->second] = ui;
                } else {
                    ui = uit->second;
                }
                units[ui].ops.push_back(op);
                units[ui].work +=
                    expectedWork(op, expectations) * allocBias(op);
                unitOf[op] = ui;
            } else {
                unitOf[op] = units.size();
                units.push_back({{op},
                                 expectedWork(op, expectations) *
                                     allocBias(op),
                                 1, true, {}});
            }
        }

        // ---- frequency-weighted tile counts ------------------------
        // More units than tiles (small chips / large switch regions):
        // fold the smallest-work units together; their ops then share
        // a tile range temporally, like grouped branches.
        const int T = activeTileCount();
        while (static_cast<int>(units.size()) > T) {
            std::size_t a = 0, b = 1;
            for (std::size_t i = 0; i < units.size(); ++i) {
                if (units[i].work < units[a].work) {
                    b = a;
                    a = i;
                } else if (i != a && units[i].work < units[b].work) {
                    b = i;
                }
            }
            if (a > b)
                std::swap(a, b);
            units[a].ops.insert(units[a].ops.end(),
                                units[b].ops.begin(),
                                units[b].ops.end());
            units[a].work += units[b].work;
            for (auto &[op, ui] : unitOf) {
                if (ui == b)
                    ui = a;
                else if (ui > b)
                    --ui;
            }
            for (auto &[gid, ui] : groupUnit) {
                if (ui == b)
                    ui = a;
                else if (ui > b)
                    --ui;
            }
            units.erase(units.begin() +
                        static_cast<std::ptrdiff_t>(b));
        }
        double totalWork = 0.0;
        for (const Unit &u : units)
            totalWork += u.work;
        if (totalWork <= 0.0)
            totalWork = 1.0;

        std::vector<double> fractional(units.size());
        int used = 0;
        for (std::size_t i = 0; i < units.size(); ++i) {
            const double ideal =
                units[i].work / totalWork * static_cast<double>(T);
            units[i].tiles = std::max(1, static_cast<int>(ideal));
            fractional[i] = ideal - static_cast<double>(units[i].tiles);
            used += units[i].tiles;
        }
        while (used > T) { // min-1 clamps may overshoot
            const auto it = std::max_element(
                units.begin(), units.end(),
                [](const Unit &a, const Unit &b) {
                    return a.tiles < b.tiles;
                });
            ADYNA_ASSERT(it->tiles > 1, "cannot fit units on tiles");
            --it->tiles;
            --used;
        }
        while (used < T) { // largest-remainder distribution
            std::size_t best = 0;
            for (std::size_t i = 1; i < units.size(); ++i)
                if (fractional[i] > fractional[best])
                    best = i;
            ++units[best].tiles;
            fractional[best] -= 1.0;
            ++used;
        }

        // ---- weight residency ---------------------------------------
        // Weights stay resident when the unit's tiles can hold them
        // next to the activation double buffers; otherwise they are
        // streamed from DRAM each batch. Compute balance is never
        // sacrificed for residency: streaming a few megabytes per
        // batch costs far less than starving the bottleneck stage.
        const Bytes perTileWeightBudget = static_cast<Bytes>(
            static_cast<double>(hw_.tech.spadBytes) * 0.6);
        for (std::size_t i = 0; i < units.size(); ++i) {
            const Bytes weights = units[i].weightBytes(dg_.graph());
            const int minT = static_cast<int>(ceilDiv(
                static_cast<std::int64_t>(weights),
                static_cast<std::int64_t>(perTileWeightBudget)));
            units[i].resident = units[i].tiles >= minT;
        }

        // ---- tile ranges (snake order) -------------------------------
        const auto snake = activeTileOrder();
        int cursor = 0;
        for (Unit &u : units) {
            for (int t = 0; t < u.tiles; ++t)
                u.range.push_back(
                    snake[static_cast<std::size_t>(cursor + t) %
                          snake.size()]);
            cursor += u.tiles;
        }

        // ---- stages ---------------------------------------------------
        for (OpId op : segOps) {
            const Unit &u = units[unitOf[op]];
            StageAssign st;
            st.op = op;
            st.tiles = u.range;
            st.baseTiles = u.tiles;
            st.weightsResident = u.resident;
            seg.stages.push_back(std::move(st));
            if (u.resident)
                seg.residentWeightBytes +=
                    dg_.graph().node(op).weightBytes();
        }

        // ---- tile sharing ----------------------------------------------
        if (cfg_.tileSharing && profiler) {
            for (const SwitchInfo &sw : dg_.switches()) {
                // Branches with stages in this segment, ungrouped.
                std::vector<int> cands;
                for (int b = 0; b < sw.numBranches(); ++b) {
                    bool ok = false;
                    for (OpId op : sw.branches[static_cast<
                             std::size_t>(b)]) {
                        if (seg.stageOf(op) >= 0 && !groupOf.count(op))
                            ok = true;
                    }
                    if (ok)
                        cands.push_back(b);
                }
                if (cands.size() < 2)
                    continue;
                // Greedy pairing by least load covariance: the two
                // branches least likely to peak together complement
                // each other best (Section V-B).
                std::vector<std::tuple<double, int, int>> covs;
                for (std::size_t i = 0; i < cands.size(); ++i)
                    for (std::size_t j = i + 1; j < cands.size(); ++j)
                        covs.emplace_back(
                            profiler->branchCovariance(
                                sw.switchOp, cands[i], cands[j]),
                            cands[i], cands[j]);
                std::sort(covs.begin(), covs.end());
                std::vector<char> taken(
                    static_cast<std::size_t>(sw.numBranches()), 0);
                for (const auto &[cov, ba, bb] : covs) {
                    (void)cov;
                    if (taken[static_cast<std::size_t>(ba)] ||
                        taken[static_cast<std::size_t>(bb)])
                        continue;
                    taken[static_cast<std::size_t>(ba)] = 1;
                    taken[static_cast<std::size_t>(bb)] = 1;

                    const auto &opsA =
                        sw.branches[static_cast<std::size_t>(ba)];
                    const auto &opsB =
                        sw.branches[static_cast<std::size_t>(bb)];
                    const std::size_t depth =
                        std::min(opsA.size(), opsB.size());
                    for (std::size_t d = 0; d < depth; ++d) {
                        const int ia = seg.stageOf(opsA[d]);
                        const int ib = seg.stageOf(opsB[d]);
                        if (ia < 0 || ib < 0)
                            continue;
                        StageAssign &sa =
                            seg.stages[static_cast<std::size_t>(ia)];
                        StageAssign &sb =
                            seg.stages[static_cast<std::size_t>(ib)];
                        if (sa.sharePair >= 0 || sb.sharePair >= 0)
                            continue;
                        const int ta = sa.baseTiles;
                        const int tb = sb.baseTiles;
                        const int tt = ta + tb;
                        if (tt < 2)
                            continue;
                        const double wa = std::max(
                            expectedWork(sa.op, expectations) *
                                allocBias(sa.op),
                            1.0);
                        const double wb = std::max(
                            expectedWork(sb.op, expectations) *
                                allocBias(sb.op),
                            1.0);
                        const auto ratioAlloc = [tt](double x,
                                                     double y) {
                            int a = static_cast<int>(
                                std::lround(x / (x + y) * tt));
                            a = std::clamp(a, 1, tt - 1);
                            return std::pair<int, int>{a, tt - a};
                        };
                        SharePair pair;
                        pair.stageA = ia;
                        pair.stageB = ib;
                        pair.alloc[0] = {ta, tb};
                        pair.alloc[1] = ratioAlloc(2 * wa, wb);
                        pair.alloc[2] = ratioAlloc(wa, 2 * wb);

                        // Union range: A's tiles then B's tiles; A
                        // allocates from the front, B from the back.
                        std::vector<TileId> unionRange = sa.tiles;
                        unionRange.insert(unionRange.end(),
                                          sb.tiles.begin(),
                                          sb.tiles.end());
                        sa.tiles = unionRange;
                        sb.tiles = unionRange;
                        sa.sharePair =
                            static_cast<int>(seg.pairs.size());
                        sb.sharePair = sa.sharePair;
                        sa.shareFirst = true;
                        sb.shareFirst = false;
                        seg.pairs.push_back(pair);
                    }
                }
            }
        }

        return seg;
    }
}

void
Scheduler::compileStores(std::vector<Segment> &segments,
                         const std::map<OpId,
                                        std::vector<std::int64_t>>
                             &kernel_values) const
{
    // Phase 1 (serial): the value set and tile counts each stage
    // needs, across every segment, so phase 2 can compile all stages
    // concurrently. Runs before the segments are frozen behind
    // shared_ptr<const> — spliced segments never pass through here.
    struct StoreJob
    {
        StageAssign *stage = nullptr;
        std::vector<std::int64_t> values;
        std::vector<int> counts;
    };
    std::vector<StoreJob> storeJobs;
    for (Segment &seg : segments) {
        for (StageAssign &st : seg.stages) {
            const OpNode &node = dg_.graph().node(st.op);

            std::vector<std::int64_t> values;
            if (cfg_.worstCase || !dg_.isDynamic(st.op)) {
                values = {node.dims.n()};
            } else {
                const auto it = kernel_values.find(st.op);
                values = it != kernel_values.end()
                             ? it->second
                             : kernels::uniformKernelValues(
                                   dg_.maxDyn(st.op),
                                   effectiveKernelBudget());
            }
            // Clamp, dedup, and always cover the worst case.
            std::vector<std::int64_t> clean;
            for (std::int64_t v : values) {
                v = std::clamp<std::int64_t>(v, 1, node.dims.n());
                if (clean.empty() || clean.back() != v)
                    clean.push_back(v);
            }
            std::sort(clean.begin(), clean.end());
            clean.erase(std::unique(clean.begin(), clean.end()),
                        clean.end());
            if (clean.empty() || clean.back() != node.dims.n())
                clean.push_back(node.dims.n());

            // Fit the on-chip metadata budget across all the tile
            // counts this stage can run at: thin the value set to an
            // evenly spaced subset that keeps the worst case.
            const int countVariants = st.sharePair >= 0 ? 3 : 1;
            const int maxValues = std::max(
                1, hw_.tech.maxKernelsPerTile() /
                       (2 * countVariants));
            if (static_cast<int>(clean.size()) > maxValues) {
                std::vector<std::int64_t> thin;
                for (int i = 0; i < maxValues; ++i) {
                    const std::size_t idx =
                        (clean.size() - 1) * static_cast<std::size_t>(
                            i) / static_cast<std::size_t>(
                            std::max(1, maxValues - 1));
                    if (thin.empty() || thin.back() != clean[idx])
                        thin.push_back(clean[idx]);
                }
                if (thin.back() != clean.back())
                    thin.push_back(clean.back());
                clean = std::move(thin);
            }

            std::vector<int> counts{st.baseTiles};
            if (st.sharePair >= 0) {
                const SharePair &pair =
                    seg.pairs[static_cast<std::size_t>(st.sharePair)];
                counts.clear();
                for (int c = 0; c < 3; ++c) {
                    const auto [a, b] =
                        pair.alloc[static_cast<std::size_t>(c)];
                    counts.push_back(st.shareFirst ? a : b);
                }
                std::sort(counts.begin(), counts.end());
                counts.erase(
                    std::unique(counts.begin(), counts.end()),
                    counts.end());
            }
            storeJobs.push_back(
                {&st, std::move(clean), std::move(counts)});
        }
    }

    // Phase 2 (parallel when a pool is attached): fetch or compile
    // each stage's stores. Each job writes only its own stage, and
    // both the Mapper memo and the store cache are thread-safe, so
    // the jobs are independent; compilation is deterministic, so the
    // schedule is identical whichever path produced each store.
    kernels::KernelStoreCache *cache =
        cfg_.storeCache ? storeCache_ : nullptr;
    const auto buildStores = [&](std::size_t i) {
        StoreJob &job = storeJobs[i];
        const OpNode &node = dg_.graph().node(job.stage->op);
        for (int count : job.counts) {
            if (cache) {
                job.stage->stores.emplace(
                    count,
                    cache->getOrCompile(node, job.values, count,
                                        mapper_, hw_.tech));
            } else {
                job.stage->stores.emplace(
                    count,
                    std::make_shared<const kernels::KernelStore>(
                        kernels::compileStore(node, job.values,
                                              count, mapper_,
                                              hw_.tech)));
            }
        }
    };
    if (pool_ && pool_->jobs() > 1) {
        pool_->parallelFor(storeJobs.size(), buildStores);
    } else {
        for (std::size_t i = 0; i < storeJobs.size(); ++i)
            buildStores(i);
    }
}

} // namespace adyna::core
