#include "core/report_io.hh"

#include <sstream>

namespace adyna::core {

namespace {

/** Escape a string for JSON. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

void
emitCommon(std::ostringstream &os, const RunReport &r)
{
    os << "\"workload\":\"" << jsonEscape(r.workload) << "\","
       << "\"design\":\"" << jsonEscape(r.design) << "\","
       << "\"cycles\":" << r.cycles << ","
       << "\"time_ms\":" << r.timeMs << ","
       << "\"batches_per_second\":" << r.batchesPerSecond << ","
       << "\"pe_utilization\":" << r.peUtilization << ","
       << "\"hbm_utilization\":" << r.hbmUtilization << ","
       << "\"useful_macs\":" << r.usefulMacs << ","
       << "\"issued_macs\":" << r.issuedMacs << ","
       << "\"stored_kernels\":" << r.storedKernels << ","
       << "\"segments\":" << r.segments << ","
       << "\"reconfigurations\":" << r.reconfigurations << ","
       << "\"energy_pj\":{"
       << "\"pe\":" << r.energy.pe << ","
       << "\"sram\":" << r.energy.sram << ","
       << "\"hbm\":" << r.energy.hbm << ","
       << "\"noc\":" << r.energy.noc << ","
       << "\"total\":" << r.energy.total() << "}";
}

} // namespace

std::string
toJson(const RunReport &report, bool include_batches)
{
    std::ostringstream os;
    os << "{";
    emitCommon(os, report);
    if (include_batches) {
        os << ",\"batch_ends\":[";
        for (std::size_t i = 0; i < report.batchEnds.size(); ++i) {
            if (i)
                os << ",";
            os << report.batchEnds[i];
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::string
toJson(const std::vector<RunReport> &reports, bool include_batches)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i)
            os << ",";
        os << toJson(reports[i], include_batches);
    }
    os << "]";
    return os.str();
}

std::string
cacheStatsJson(const RunReport &r)
{
    std::ostringstream os;
    os << "{\"mapper_hits\":" << r.mapperHits << ","
       << "\"mapper_misses\":" << r.mapperMisses << ","
       << "\"store_hits\":" << r.storeHits << ","
       << "\"store_misses\":" << r.storeMisses << ","
       << "\"exec_hits\":" << r.execHits << ","
       << "\"exec_misses\":" << r.execMisses << "}";
    return os.str();
}

std::string
faultStatsJson(const RunReport &r)
{
    const fault::FaultStats &f = r.fault;
    std::ostringstream os;
    os << "{\"failovers\":" << r.failovers << ","
       << "\"tile_fail_events\":" << f.tileFailEvents << ","
       << "\"tile_recoveries\":" << f.tileRecoveries << ","
       << "\"link_down_events\":" << f.linkDownEvents << ","
       << "\"link_degrade_events\":" << f.linkDegradeEvents << ","
       << "\"link_recoveries\":" << f.linkRecoveries << ","
       << "\"probe_drop_windows\":" << f.probeDropWindows << ","
       << "\"store_fit_windows\":" << f.storeFitWindows << ","
       << "\"failed_tiles\":" << f.failedTiles << ","
       << "\"down_links\":" << f.downLinks << ","
       << "\"degraded_links\":" << f.degradedLinks << ","
       << "\"probe_drops\":" << f.probeDrops << ","
       << "\"probe_retries\":" << f.probeRetries << ","
       << "\"probe_give_ups\":" << f.probeGiveUps << ","
       << "\"detour_routes\":" << f.detourRoutes << ","
       << "\"unroutable_paths\":" << f.unroutablePaths << "}";
    return os.str();
}

std::string
searchStatsJson(const RunReport &r)
{
    const SearchStats &s = r.search;
    std::ostringstream os;
    os << "{\"candidates_tried\":" << s.candidatesTried << ","
       << "\"candidates_accepted\":" << s.candidatesAccepted << ","
       << "\"materialized\":" << s.materialized << ","
       << "\"segments_rebuilt\":" << s.segmentsRebuilt << ","
       << "\"segments_spliced\":" << s.segmentsSpliced << ","
       << "\"full_rebuilds\":" << s.fullRebuilds << ","
       << "\"budget_spent_cycles\":" << s.budgetSpentCycles << ","
       << "\"budget_exhausted\":" << s.budgetExhausted << ","
       << "\"chains\":" << s.chains << ","
       << "\"heuristic_cost\":" << s.heuristicCost << ","
       << "\"searched_cost\":" << s.searchedCost << ","
       << "\"improved\":" << (s.improved ? "true" : "false") << ","
       << "\"store_hits\":" << s.storeHits << ","
       << "\"store_misses\":" << s.storeMisses << ","
       << "\"mapper_hits\":" << s.mapperHits << ","
       << "\"mapper_misses\":" << s.mapperMisses << ","
       << "\"exec_hits\":" << s.execHits << ","
       << "\"exec_misses\":" << s.execMisses << "}";
    return os.str();
}

std::string
csvHeader()
{
    return "workload,design,cycles,time_ms,batches_per_second,"
           "pe_utilization,hbm_utilization,useful_macs,issued_macs,"
           "stored_kernels,segments,reconfigurations,"
           "energy_pe_pj,energy_sram_pj,energy_hbm_pj,energy_noc_pj,"
           "energy_total_pj";
}

std::string
toCsvRow(const RunReport &r)
{
    std::ostringstream os;
    os << r.workload << ',' << r.design << ',' << r.cycles << ','
       << r.timeMs << ',' << r.batchesPerSecond << ','
       << r.peUtilization << ',' << r.hbmUtilization << ','
       << r.usefulMacs << ',' << r.issuedMacs << ','
       << r.storedKernels << ',' << r.segments << ','
       << r.reconfigurations << ',' << r.energy.pe << ','
       << r.energy.sram << ',' << r.energy.hbm << ',' << r.energy.noc
       << ',' << r.energy.total();
    return os.str();
}

std::string
toCsv(const std::vector<RunReport> &reports)
{
    std::ostringstream os;
    os << csvHeader() << '\n';
    for (const RunReport &r : reports)
        os << toCsvRow(r) << '\n';
    return os.str();
}

} // namespace adyna::core
