/**
 * @file
 * Schedule validation: a reusable checker for the invariants every
 * schedule must satisfy before it can run (used by tests, by the
 * fuzz suite, and available to users who hand-construct schedules).
 */

#ifndef ADYNA_CORE_VALIDATE_HH
#define ADYNA_CORE_VALIDATE_HH

#include <string>
#include <vector>

#include "arch/hwconfig.hh"
#include "core/schedule.hh"
#include "graph/dyngraph.hh"

namespace adyna::core {

/** One validation problem. */
struct ScheduleIssue
{
    /** Segment index, -1 for schedule-wide issues. */
    int segment = -1;

    /** Offending op, kInvalidOp for segment-wide issues. */
    OpId op = kInvalidOp;

    std::string message;
};

/**
 * Check a schedule against its graph and hardware:
 *  - every compute / standalone vector op appears in exactly one
 *    segment, in topological order within it;
 *  - tile ids are in range and base allocations are positive;
 *  - switch regions with a merge do not straddle segments;
 *  - each stage owns a kernel store for every tile count it can run
 *    at (base + all share-pair allocations), covering its worst case;
 *  - per-tile kernel metadata fits the 25.6 kB budget;
 *  - resident weights fit the stage's tiles.
 *
 * @return all found issues (empty = valid).
 */
std::vector<ScheduleIssue>
validateSchedule(const Schedule &schedule, const graph::DynGraph &dg,
                 const arch::HwConfig &hw);

/** Render issues for diagnostics. */
std::string issuesToString(const std::vector<ScheduleIssue> &issues);

} // namespace adyna::core

#endif // ADYNA_CORE_VALIDATE_HH
