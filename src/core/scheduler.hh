/**
 * @file
 * The dynamism-aware scheduler (Section V): graph segmentation,
 * frequency-weighted tile allocation, tile sharing, branch grouping,
 * and multi-kernel store construction.
 */

#ifndef ADYNA_CORE_SCHEDULER_HH
#define ADYNA_CORE_SCHEDULER_HH

#include <map>
#include <vector>

#include "arch/hwconfig.hh"
#include "arch/profiler.hh"
#include "common/parallel.hh"
#include "core/schedule.hh"
#include "costmodel/mapper.hh"
#include "graph/dyngraph.hh"
#include "kernels/store_cache.hh"

namespace adyna::core {

/** Scheduler policy knobs. */
struct SchedulerConfig
{
    /** Fraction of total scratchpad budgeted for resident weights
     * when cutting segments. */
    double spadFill = 0.5;

    /** Sampled kernel values per operator (Section VII derives ~32
     * from the 25.6 kB budget and tile sharing's 6x factor). */
    int kernelBudgetPerOp = 32;

    /** Branches active in fewer than this fraction of batches are
     * grouped (Section V-B). */
    double groupActivityThreshold = 0.25;

    bool tileSharing = true;
    bool branchGrouping = true;

    /** Use worst-case (maximum) sizes everywhere: the M-tile
     * baseline's static scheduling. */
    bool worstCase = false;

    /** Reuse compiled kernel stores across (re-)schedules through a
     * KernelStoreCache (set via Scheduler::setStoreCache). Off means
     * every build() recompiles every store from scratch. */
    bool storeCache = true;
};

/**
 * A structural plan imposed on the scheduler by the search layer
 * (src/search): an explicit segment partition plus per-op allocation
 * biases and per-switch grouping scales. The heuristic keeps making
 * every decision the override does not pin down (tile counts,
 * residency, sharing, store compilation), so an override is a small
 * set of knobs over the existing build path, not a second scheduler.
 *
 * An empty override (all fields at their defaults) leaves build()
 * bit-identical to the no-override path.
 */
struct PlanOverride
{
    /**
     * Segment partition over the stage ops, replacing the greedy
     * weight-budget fill. Must cover exactly the stage ops, in
     * topological order within each segment, and must not split a
     * merged switch region (validateSchedule enforces the latter).
     * Empty keeps the heuristic partition.
     */
    std::vector<std::vector<OpId>> partition;

    /**
     * Multiplier on an op's frequency-weighted allocation work:
     * biases the tile count (and share-pair allocation ratios) of
     * the unit containing the op. Missing ops use 1.0.
     */
    std::map<OpId, double> allocBias;

    /**
     * Multiplier on the branch-grouping activity threshold, keyed by
     * switch op: 0 disables grouping for that switch, values > 1
     * group more aggressively. Missing switches use 1.0.
     */
    std::map<OpId, double> groupScale;
};

/** What a delta re-schedule actually rebuilt (observability for the
 * serve loop and the perf harness). */
struct DeltaStats
{
    /** Segments in the produced schedule. */
    std::size_t segmentsTotal = 0;

    /** Segments rebuilt from scratch; the rest were spliced from the
     * base schedule, sharing its compiled kernel stores. */
    std::size_t segmentsRebuilt = 0;
};

/** Builds schedules for one dynamic operator graph on one chip. */
class Scheduler
{
  public:
    Scheduler(const graph::DynGraph &dg, arch::HwConfig hw,
              costmodel::Mapper &mapper, SchedulerConfig cfg);

    /**
     * Build a schedule.
     *
     * @param expectations E[dyn value] per dynamic op (frequency-
     *        weighted allocation); missing ops use their worst case.
     * @param kernel_values sampled kernel values per op; missing ops
     *        get a uniform initial placement.
     * @param profiler optional runtime profile (tile-sharing pair
     *        selection and branch-grouping activity); nullptr
     *        disables both optimizations.
     */
    Schedule build(const std::map<OpId, double> &expectations,
                   const std::map<OpId, std::vector<std::int64_t>>
                       &kernel_values,
                   const arch::Profiler *profiler) const;

    /**
     * Delta re-schedule: rebuild only the segments touched by
     * @p changed_ops, splicing every other segment from @p base
     * (sharing its compiled kernel stores instead of recompiling).
     *
     * A segment is spliced when its op partition matches the base
     * schedule's and none of its ops appear in @p changed_ops;
     * otherwise it is rebuilt through the exact full-build path, so
     * with the same @p profiler and unchanged per-op inputs the
     * result is byte-identical to build(). An empty @p changed_ops
     * with a matching partition therefore returns a pure splice —
     * the serve loop's sub-tolerance-drift fast path.
     *
     * The caller owns the contract that @p expectations and
     * @p kernel_values only differ from the base build's inputs on
     * ops listed in @p changed_ops.
     */
    Schedule buildDelta(const Schedule &base,
                        const std::map<OpId, double> &expectations,
                        const std::map<OpId, std::vector<std::int64_t>>
                            &kernel_values,
                        const arch::Profiler *profiler,
                        const std::vector<OpId> &changed_ops,
                        DeltaStats *stats = nullptr) const;

    /** Per-op uniform initial kernel values (Section VII). */
    std::map<OpId, std::vector<std::int64_t>> initialKernelValues() const;

    /** Value budget per operator after the hardware's metadata cap
     * (min of the configured budget and maxKernelsPerTile / 6). */
    int effectiveKernelBudget() const;

    const SchedulerConfig &config() const { return cfg_; }

    /**
     * Use @p cache to reuse compiled kernel stores across builds
     * (honoured only while cfg_.storeCache is set). nullptr restores
     * the compile-from-scratch path. The cache must outlive the
     * scheduler.
     */
    void setStoreCache(kernels::KernelStoreCache *cache)
    {
        storeCache_ = cache;
    }

    /**
     * Build per-stage kernel stores concurrently on @p pool. nullptr
     * (the default) builds serially; results are identical either
     * way because store compilation is deterministic per stage. The
     * pool must outlive the scheduler.
     */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Degraded mode: restrict subsequent build() calls to @p healthy
     * tiles — segmentation budgets, tile counts, and tile ranges all
     * use the surviving subset, so a fail-over re-schedule lands
     * entirely on live hardware. An empty vector (the default)
     * restores the full grid and the exact pre-fault build path.
     * Tile counts differ from the healthy build, so warm
     * KernelStoreCache entries are naturally keyed apart.
     */
    void setHealthyTiles(std::vector<TileId> healthy);

    /** Tiles build() currently allocates over. */
    int activeTileCount() const
    {
        return healthyTiles_.empty()
                   ? hw_.tiles()
                   : static_cast<int>(healthyTiles_.size());
    }

    /**
     * Impose @p override on subsequent builds (see PlanOverride).
     * The override must outlive the scheduler or be cleared with
     * nullptr, which restores the exact heuristic path. Invalidates
     * the memoized partition either way.
     */
    void setPlanOverride(const PlanOverride *override);

    const PlanOverride *planOverride() const { return override_; }

    /**
     * The indivisible partition units: each merged switch region
     * [switch..merge] is one atom (its dynamic routing must happen
     * on-chip, so a segment boundary may never cross it); every
     * other stage op is its own atom. Atoms are in first-occurrence
     * topological order — every legal partition, including the
     * heuristic one, is a split of this sequence into contiguous
     * runs. This is the search layer's mutation alphabet.
     */
    std::vector<std::vector<OpId>> segmentationAtoms() const;

    /** The partition build() would use right now (override or
     * heuristic; memoized). */
    const std::vector<std::vector<OpId>> &partition() const
    {
        return segmentOps();
    }

    /** Expected per-batch work of an op, in single-tile cycles (the
     * frequency-weighted allocation weight before any override
     * bias). Public so the search surrogate prices mutations with
     * the exact weights the real allocator uses. */
    double expectedWork(OpId op,
                        const std::map<OpId, double> &expectations) const;

  private:
    /** Ops that become pipeline stages (compute + standalone vector
     * ops), topologically ordered. */
    std::vector<OpId> stageOps() const;

    /** PlanOverride::allocBias multiplier for @p op (1.0 without an
     * override entry). */
    double allocBias(OpId op) const;

    /** Branch-grouping activity threshold for @p switch_op after the
     * override's groupScale. */
    double groupThreshold(OpId switch_op) const;

    /** Partition stage ops into segments respecting atoms. The
     * partition only depends on the graph, the hw config, and the
     * healthy-tile set, so it is computed once and memoized until
     * setHealthyTiles() invalidates it — the delta re-schedule
     * pure-splice path reduces to segment copies. */
    const std::vector<std::vector<OpId>> &segmentOps() const;

    /** Build one segment (branch grouping, allocation units, tile
     * counts, residency, ranges, stages, tile sharing) for @p
     * seg_ops. Kernel stores are left empty — compileStores() fills
     * them. */
    Segment buildSegment(const std::vector<OpId> &seg_ops,
                         const std::map<OpId, double> &expectations,
                         const arch::Profiler *profiler) const;

    /** Fetch or compile kernel stores for every stage of the
     * freshly built @p segments (before they are frozen behind
     * shared_ptr<const> in a Schedule). Spliced segments keep the
     * base schedule's stores and never pass through here. */
    void compileStores(std::vector<Segment> &segments,
                       const std::map<OpId,
                                      std::vector<std::int64_t>>
                           &kernel_values) const;

    /** Snake tile order restricted to the healthy tiles (the full
     * snake order when no degradation is installed). */
    std::vector<TileId> activeTileOrder() const;

    const graph::DynGraph &dg_;
    arch::HwConfig hw_; // by value: small, and callers may pass
                        // temporaries
    costmodel::Mapper &mapper_;
    SchedulerConfig cfg_;
    kernels::KernelStoreCache *storeCache_ = nullptr;
    ThreadPool *pool_ = nullptr;

    /** Sorted healthy-tile subset; empty = every tile is healthy. */
    std::vector<TileId> healthyTiles_;

    /** Structural override imposed by the search layer; nullptr =
     * pure heuristic. */
    const PlanOverride *override_ = nullptr;

    /** Memoized segmentOps() result (single-threaded: builds never
     * run concurrently on one scheduler). */
    mutable std::vector<std::vector<OpId>> segCache_;
    mutable bool segCacheValid_ = false;
};

} // namespace adyna::core

#endif // ADYNA_CORE_SCHEDULER_HH
