/**
 * @file
 * Multi-kernel sampling (Section VII, Algorithms 1 and 2).
 *
 * Given the current set of sampled dyn_dim values and the kernel
 * invocation frequencies reported by the hardware profiler, the
 * scheduler iteratively removes the value whose absence costs the
 * least (Equation 1's punishment) and inserts a new value where it
 * saves the most, redistributing frequencies under a uniform
 * within-range assumption.
 */

#ifndef ADYNA_CORE_SAMPLING_HH
#define ADYNA_CORE_SAMPLING_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch/profiler.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace adyna::core {

/**
 * Algorithm 2: redistribute the frequencies of the old sampled
 * values onto the re-sampled values, assuming a uniform distribution
 * inside each old range (v_{i-1}, v_i].
 *
 * @param vals old sampled values, ascending.
 * @param freq frequency of each old value (same length).
 * @param new_vals re-sampled values, ascending.
 * @return per-new-value frequencies (same length as new_vals).
 */
std::vector<double>
redistributeFrequencies(const std::vector<std::int64_t> &vals,
                        const std::vector<double> &freq,
                        const std::vector<std::int64_t> &new_vals);

/**
 * Algorithm 1: re-sample the kernel value set to match the observed
 * frequency distribution. The largest value is never removed (the
 * dispatcher needs a kernel covering the worst case).
 *
 * @param vals current sampled values, ascending.
 * @param freq observed frequency per value.
 * @param iterations maximum move iterations (N in the paper).
 * @return the new sampled values, ascending.
 */
std::vector<std::int64_t>
resampleKernelValues(std::vector<std::int64_t> vals,
                     std::vector<double> freq, int iterations);

/**
 * Bucket a raw dyn_dim value histogram onto a kernel value set: each
 * observed value counts toward the smallest sampled value that is no
 * less than it (the kernel the dispatcher would pick). Values above
 * the maximum count toward the maximum.
 */
std::vector<double>
bucketFrequencies(const FreqHistogram &observed,
                  const std::vector<std::int64_t> &vals);

/**
 * Pull the profiler report into the scheduler's inputs (the
 * reconfiguration step shared by the offline periodic loop and the
 * online serving runtime): replace @p expectations with the
 * frequency-table expectations of every tracked op (kept unchanged
 * if the profiler saw nothing), and, when @p resample is set, run
 * Algorithm 1 re-sampling on every kernel-value set whose op has a
 * non-empty table. The caller still owns resetting the profiler
 * window afterwards.
 */
void refreshScheduleInputs(
    const arch::Profiler &profiler, bool resample,
    std::map<OpId, double> &expectations,
    std::map<OpId, std::vector<std::int64_t>> &kernel_values);

} // namespace adyna::core

#endif // ADYNA_CORE_SAMPLING_HH
