#include "core/schedule.hh"

#include <sstream>

namespace adyna::core {

int
Segment::stageOf(OpId op) const
{
    for (std::size_t i = 0; i < stages.size(); ++i)
        if (stages[i].op == op)
            return static_cast<int>(i);
    return -1;
}

Segment &
Schedule::mutableSegment(std::size_t i)
{
    auto clone = std::make_shared<Segment>(*segments[i]);
    Segment &ref = *clone;
    segments[i] = std::move(clone);
    return ref;
}

std::size_t
Schedule::totalKernels() const
{
    std::size_t total = 0;
    for (const auto &seg : segments)
        for (const StageAssign &st : seg->stages)
            for (const auto &[tiles, store] : st.stores)
                total += store->size();
    return total;
}

std::string
Schedule::str() const
{
    std::ostringstream os;
    os << "Schedule: " << segments.size() << " segments, "
       << totalKernels() << " kernels\n";
    for (std::size_t s = 0; s < segments.size(); ++s) {
        const Segment &seg = *segments[s];
        os << " segment " << s << ": " << seg.stages.size()
           << " stages, " << seg.pairs.size() << " share pairs, "
           << (seg.residentWeightBytes >> 20) << " MiB weights\n";
        for (const StageAssign &st : seg.stages) {
            os << "  op#" << st.op << " tiles=" << st.baseTiles << "/"
               << st.tiles.size()
               << (st.weightsResident ? "" : " [streamed]")
               << (st.sharePair >= 0 ? " [shared]" : "") << '\n';
        }
    }
    return os.str();
}

} // namespace adyna::core
