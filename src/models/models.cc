#include "models/models.hh"

#include <functional>

#include "common/logging.hh"
#include "graph/transforms.hh"

namespace adyna::models {

using graph::Dim;
using graph::Graph;
using graph::LoopDims;
using graph::OpKind;

namespace {

/**
 * Two 3x3 convolutions with a residual add, the ResNet basic block.
 * @return the tail (the residual add, fused into conv2 at parse).
 */
OpId
basicBlock(Graph &g, const std::string &name, OpId input,
           std::int64_t batch, std::int64_t channels, std::int64_t hw)
{
    OpId c1 = g.addConv(
        name + ".conv1", input,
        LoopDims::conv(batch, channels, channels, hw, hw, 3, 3));
    OpId a1 = g.addFusable(name + ".relu1", OpKind::Act, {c1},
                           LoopDims::conv(batch, channels, channels,
                                          hw, hw, 1, 1));
    OpId c2 = g.addConv(
        name + ".conv2", a1,
        LoopDims::conv(batch, channels, channels, hw, hw, 3, 3));
    OpId add = g.addFusable(name + ".add", OpKind::Eltwise, {c2, input},
                            LoopDims::conv(batch, channels, channels,
                                           hw, hw, 1, 1));
    return add;
}

/** Downsampling block: stride-2 conv doubling channels. */
OpId
downBlock(Graph &g, const std::string &name, OpId input,
          std::int64_t batch, std::int64_t in_ch, std::int64_t out_ch,
          std::int64_t out_hw)
{
    OpId c1 = g.addConv(
        name + ".conv1", input,
        LoopDims::conv(batch, out_ch, in_ch, out_hw, out_hw, 3, 3), 2);
    OpId a1 = g.addFusable(name + ".relu1", OpKind::Act, {c1},
                           LoopDims::conv(batch, out_ch, out_ch,
                                          out_hw, out_hw, 1, 1));
    OpId c2 = g.addConv(
        name + ".conv2", a1,
        LoopDims::conv(batch, out_ch, out_ch, out_hw, out_hw, 3, 3));
    OpId a2 = g.addFusable(name + ".relu2", OpKind::Act, {c2},
                           LoopDims::conv(batch, out_ch, out_ch,
                                          out_hw, out_hw, 1, 1));
    return a2;
}

/**
 * Transformer encoder layer over token-folded rows. Attention is
 * lowered to matmuls (QKV projections, two score/context matmuls
 * with the sequence length as the contraction/output dim, and the
 * output projection), followed by a dense FFN unless the caller
 * supplies its own FFN builder.
 */
OpId
transformerLayer(Graph &g, const std::string &name, OpId input,
                 std::int64_t rows, std::int64_t hidden,
                 std::int64_t seq, std::int64_t ffn_hidden,
                 const std::function<OpId(Graph &, OpId)> &ffn = {})
{
    OpId q = g.addMatMul(name + ".q", input, hidden, hidden);
    OpId k = g.addMatMul(name + ".k", input, hidden, hidden);
    OpId v = g.addMatMul(name + ".v", input, hidden, hidden);
    // Attention scores and context as row-folded matmuls; K and V
    // are extra operands so their tensors route through the NoC.
    OpId scores = g.addMatMul(name + ".scores", q, seq, hidden);
    g.node(scores).inputs.push_back(k);
    g.node(scores).inputBranch.push_back(-1);
    OpId sm = g.addFusable(name + ".softmax", OpKind::Softmax, {scores},
                           LoopDims::matmul(rows, seq, seq));
    OpId ctx = g.addMatMul(name + ".context", sm, hidden, seq);
    g.node(ctx).inputs.push_back(v);
    g.node(ctx).inputBranch.push_back(-1);
    OpId proj = g.addMatMul(name + ".proj", ctx, hidden, hidden);
    OpId ln1 = g.addFusable(name + ".ln1", OpKind::Norm, {proj, input},
                            LoopDims::matmul(rows, hidden, hidden));
    if (ffn)
        return ffn(g, ln1);
    OpId up = g.addMatMul(name + ".ffn.up", ln1, ffn_hidden, hidden);
    OpId act = g.addFusable(name + ".ffn.gelu", OpKind::Act, {up},
                            LoopDims::matmul(rows, ffn_hidden,
                                             ffn_hidden));
    OpId down = g.addMatMul(name + ".ffn.down", act, hidden, ffn_hidden);
    OpId ln2 = g.addFusable(name + ".ln2", OpKind::Norm, {down, ln1},
                            LoopDims::matmul(rows, hidden, hidden));
    return ln2;
}

trace::TraceConfig
defaultTrace(std::int64_t batch)
{
    trace::TraceConfig cfg;
    cfg.batchSize = batch;
    return cfg;
}

} // namespace

ModelBundle
buildSkipNet(std::int64_t batch)
{
    Graph g("skipnet");
    OpId in = g.addInput("image", LoopDims::conv(batch, 3, 3, 224, 224,
                                                 1, 1));
    // Stem: 7x7/2 conv + pool to 56x56.
    OpId stem = g.addConv(
        "stem", in, LoopDims::conv(batch, 64, 3, 112, 112, 7, 7), 2);
    OpId pool = g.addFusable(
        "stem.pool", OpKind::Pool, {stem},
        LoopDims::conv(batch, 64, 64, 56, 56, 2, 2), 2);

    struct Stage
    {
        std::int64_t channels;
        std::int64_t hw;
        double skipProb;
    };
    const Stage stages[4] = {{64, 56, 0.35},
                             {128, 28, 0.50},
                             {256, 14, 0.60},
                             {512, 7, 0.70}};

    OpId cur = pool;
    int gate = 0;
    std::int64_t prevCh = 64;
    for (int s = 0; s < 4; ++s) {
        const Stage &st = stages[s];
        const std::string sname = "s" + std::to_string(s);
        if (s > 0) {
            cur = downBlock(g, sname + ".down", cur, batch, prevCh,
                            st.channels, st.hw);
        }
        // Every residual block is gated (SkipNet gates each block
        // and skips roughly half of them on ImageNet).
        for (int blk = 0; blk < 2; ++blk) {
            const std::string bname =
                sname + ".b" + std::to_string(blk);
            cur = graph::addLayerSkip(
                g, bname + ".skip", cur, st.skipProb, gate++,
                [&](Graph &gg, OpId sw) {
                    return basicBlock(gg, bname + ".blk", sw, batch,
                                      st.channels, st.hw);
                });
        }
        prevCh = st.channels;
    }

    OpId gap = g.addFusable("gap", OpKind::Pool, {cur},
                            LoopDims::conv(batch, 512, 512, 1, 1, 7, 7),
                            7);
    OpId fc = g.addMatMul("fc", gap, 1000, 512);
    g.addOutput("logits", fc);

    return {"SkipNet", std::move(g), defaultTrace(batch)};
}

ModelBundle
buildPabee(std::int64_t batch)
{
    constexpr std::int64_t kSeq = 128;
    constexpr std::int64_t kHidden = 768;
    constexpr std::int64_t kFfn = 3072;
    constexpr int kLayers = 12;
    const std::int64_t rows = batch * kSeq;

    // Marginal exit fractions per gate (of the original batch),
    // calibrated to PABEE's ~1.6x average compute saving on GLUE.
    const double exitFrac[kLayers - 1] = {0.02, 0.05, 0.09, 0.12,
                                          0.14, 0.13, 0.11, 0.09,
                                          0.07, 0.05, 0.04};

    Graph g("pabee");
    OpId in = g.addInput("tokens", LoopDims::matmul(rows, kHidden,
                                                    kHidden));
    OpId cur = g.addMatMul("embed", in, kHidden, kHidden);
    OpId pendingSwitch = kInvalidOp;
    for (int layer = 0; layer < kLayers; ++layer) {
        const std::string name = "l" + std::to_string(layer);
        const auto body = [&](Graph &gg, OpId inp) {
            return transformerLayer(gg, name, inp, rows, kHidden, kSeq,
                                    kFfn);
        };
        // Layers after a gate live on its "continue" branch.
        cur = pendingSwitch == kInvalidOp
                  ? body(g, cur)
                  : graph::buildBranch(g, pendingSwitch, 1, body);
        if (layer < kLayers - 1) {
            pendingSwitch = graph::addEarlyExit(
                g, name + ".exit", cur, 2, exitFrac[layer], layer);
            // The exit gate decides per sequence over token rows.
            g.node(pendingSwitch).policy.unitsPerSample = kSeq;
        }
    }
    OpId head = g.addMatMul("head", cur, 2, kHidden);
    g.addOutput("logits", head);

    return {"PABEE", std::move(g), defaultTrace(batch)};
}

ModelBundle
buildFbsNet(std::int64_t batch)
{
    Graph g("fbsnet");
    OpId in = g.addInput("image", LoopDims::conv(batch, 3, 3, 224, 224,
                                                 1, 1));
    OpId cur = g.addConv(
        "conv0", in, LoopDims::conv(batch, 64, 3, 112, 112, 7, 7), 2);

    struct Layer
    {
        std::int64_t channels;
        std::int64_t hw;
        int stride;
        double keep;
    };
    // Channel keep fractions ~0.5 give FBS's ~2x MAC reduction; the
    // Zipf popularity in the trace generator leaves the last blocks
    // rarely activated (exercising branch grouping).
    const Layer layers[7] = {{64, 56, 2, 0.60},  {128, 56, 1, 0.55},
                             {128, 28, 2, 0.50}, {256, 28, 1, 0.50},
                             {256, 14, 2, 0.45}, {512, 14, 1, 0.45},
                             {512, 7, 2, 0.40}};

    std::int64_t prevCh = 64;
    for (int i = 0; i < 7; ++i) {
        const Layer &l = layers[i];
        cur = graph::addChannelPrunedConv(
            g, "cp" + std::to_string(i), cur,
            LoopDims::conv(batch, l.channels, prevCh, l.hw, l.hw, 3, 3),
            l.stride, /*num_blocks=*/8, l.keep, i);
        prevCh = l.channels;
    }

    OpId gap = g.addFusable("gap", OpKind::Pool, {cur},
                            LoopDims::conv(batch, 512, 512, 1, 1, 7, 7),
                            7);
    OpId fc = g.addMatMul("fc", gap, 1000, 512);
    g.addOutput("logits", fc);

    return {"FBSNet", std::move(g), defaultTrace(batch)};
}

ModelBundle
buildTutelMoe(std::int64_t batch)
{
    constexpr std::int64_t kSeq = 196;
    constexpr std::int64_t kHidden = 384;
    constexpr std::int64_t kFfn = 1536;
    constexpr int kExperts = 8;
    const std::int64_t rows = batch * kSeq;

    Graph g("tutel-moe");
    OpId in = g.addInput("patches",
                         LoopDims::matmul(rows, 768, 768));
    OpId cur = g.addMatMul("embed", in, kHidden, 768);

    // Skewed expert popularity (a few hot experts), as observed in
    // production MoE traces.
    const std::vector<double> bias{4.0, 2.5, 2.0, 1.5,
                                   1.0, 0.8, 0.6, 0.4};

    for (int block = 0; block < 4; ++block) {
        const std::string name = "b" + std::to_string(block);
        const bool moeBlock = block % 2 == 1;
        if (!moeBlock) {
            cur = transformerLayer(g, name, cur, rows, kHidden, kSeq,
                                   kFfn);
            continue;
        }
        cur = transformerLayer(
            g, name, cur, rows, kHidden, kSeq, kFfn,
            [&](Graph &gg, OpId ln1) {
                // Tokens route independently: the router decides per
                // row, and each image holds kSeq rows.
                return graph::addMoE(
                    gg, name + ".moe", ln1, kExperts, /*top_k=*/2,
                    bias,
                    [&](Graph &g2, OpId sw) {
                        OpId up = g2.addMatMul(name + ".moe.up", sw,
                                               kFfn, kHidden);
                        OpId act = g2.addFusable(
                            name + ".moe.gelu", OpKind::Act, {up},
                            LoopDims::matmul(rows, kFfn, kFfn));
                        return g2.addMatMul(name + ".moe.down", act,
                                            kHidden, kFfn);
                    },
                    /*units_per_sample=*/kSeq);
            });
    }
    OpId head = g.addMatMul("head", cur, 1000, kHidden);
    g.addOutput("logits", head);

    ModelBundle bundle{"Tutel-MoE", std::move(g), defaultTrace(batch)};
    // Expert popularity drifts visibly across phases.
    bundle.traceConfig.driftStrength = 0.5;
    return bundle;
}

ModelBundle
buildDpsNet(std::int64_t batch)
{
    constexpr std::int64_t kPatches = 64;
    constexpr std::int64_t kHidden = 384;
    constexpr std::int64_t kFfn = 1536;
    const std::int64_t rows = batch * kPatches;

    Graph g("dpsnet");
    // Patch-folded input: 28x28x3 patches flattened to 2352.
    OpId in = g.addInput("patches", LoopDims::matmul(rows, 2352, 2352));
    // The scorer runs on cheap low-resolution features of every
    // patch; the expensive embedding is only computed for the
    // selected patches (Cordonnier et al.), so it sits inside the
    // dynamic region.
    OpId scoreFeat = g.addMatMul("score.feat", in, 64, 2352 / 16);
    OpId scorer = g.addMatMul("select.scorer", scoreFeat, 1, 64);

    graph::RoutingPolicy selPolicy;
    selPolicy.kind = graph::RoutingPolicy::Kind::PatchSelect;
    selPolicy.numBranches = 2;
    selPolicy.param = 0.30; // expected kept-patch fraction
    selPolicy.unitsPerSample = kPatches;
    OpId sw = g.addSwitch("select.switch", in, selPolicy, scorer);
    g.addSink("select.drop", sw, /*branch=*/1);

    OpId body = graph::buildBranch(g, sw, 0, [&](Graph &gg, OpId s) {
        OpId cur = gg.addMatMul("embed", s, kHidden, 2352);
        for (int block = 0; block < 6; ++block) {
            cur = transformerLayer(gg, "b" + std::to_string(block), cur,
                                   rows, kHidden, kPatches, kFfn);
        }
        return cur;
    });

    OpId agg = g.addUnfoldMerge(
        "aggregate", {body}, LoopDims::matmul(batch, kHidden, kHidden));
    OpId head = g.addMatMul("head", agg, 1000, kHidden);
    g.addOutput("logits", head);

    ModelBundle bundle{"DPSNet", std::move(g), defaultTrace(batch)};
    // Patch counts vary a lot between images (objects of arbitrary
    // size/position), per Section VII.
    bundle.traceConfig.patchSpread = 0.7;
    return bundle;
}

ModelBundle
buildAdaVit(std::int64_t batch)
{
    constexpr std::int64_t kPatches = 49;
    constexpr std::int64_t kHidden = 384;
    constexpr std::int64_t kFfn = 1536;
    const std::int64_t rows = batch * kPatches;

    Graph g("adavit");
    OpId in = g.addInput("patches", LoopDims::matmul(rows, 768, 768));
    OpId emb = g.addMatMul("embed", in, kHidden, 768);

    // Dynamic region: keep ~60% of patches.
    OpId sw = graph::addPatchSelect(g, "select", emb, 0.60, 0);
    g.node(sw).policy.unitsPerSample = kPatches;

    OpId body = graph::buildBranch(g, sw, 0, [&](Graph &gg, OpId s) {
        OpId cur = s;
        // Dynamic depth: every block can be skipped per sample. The
        // rows a sample occupies after patch selection are tracked
        // by the trace generator (Sample::rows).
        for (int block = 0; block < 4; ++block) {
            const std::string name = "b" + std::to_string(block);
            cur = graph::addLayerSkip(
                gg, name + ".skip", cur, 0.3, block + 1,
                [&](Graph &g2, OpId sw2) {
                    return transformerLayer(g2, name, sw2, rows,
                                            kHidden, kPatches, kFfn);
                });
        }
        return cur;
    });

    OpId agg = g.addUnfoldMerge(
        "aggregate", {body}, LoopDims::matmul(batch, kHidden, kHidden));
    OpId head = g.addMatMul("head", agg, 1000, kHidden);
    g.addOutput("logits", head);

    return {"AdaViT", std::move(g), defaultTrace(batch)};
}

std::vector<std::string>
workloadNames()
{
    return {"skipnet", "pabee", "fbsnet", "tutel-moe", "dpsnet"};
}

ModelBundle
buildByName(const std::string &name, std::int64_t batch)
{
    if (name == "skipnet")
        return buildSkipNet(batch);
    if (name == "pabee")
        return buildPabee(batch);
    if (name == "fbsnet")
        return buildFbsNet(batch);
    if (name == "tutel-moe")
        return buildTutelMoe(batch);
    if (name == "dpsnet")
        return buildDpsNet(batch);
    if (name == "adavit")
        return buildAdaVit(batch);
    ADYNA_FATAL("unknown workload '", name, "'");
}

} // namespace adyna::models
