/**
 * @file
 * Random DynNN generation: builds structurally valid dynamic
 * operator graphs with randomized backbones and randomized dynamism
 * (early exits, layer skips, MoE layers, channel pruning, patch
 * selection), for fuzz-testing the parser / scheduler / engine stack
 * and for stress experiments beyond the five paper workloads.
 */

#ifndef ADYNA_MODELS_RANDOM_HH
#define ADYNA_MODELS_RANDOM_HH

#include <cstdint>

#include "models/models.hh"

namespace adyna::models {

/** Knobs for the random model generator. */
struct RandomModelParams
{
    /** Batch size (samples; patch folding multiplies rows). */
    std::int64_t batch = 32;

    /** Backbone blocks to generate. */
    int minBlocks = 3;
    int maxBlocks = 10;

    /** Probability that a block carries some dynamism. */
    double dynamismProb = 0.6;

    /** Feature width bounds (rounded to multiples of 32). */
    std::int64_t minWidth = 64;
    std::int64_t maxWidth = 512;

    /** Allow a patch-select prologue (folds rows by 4-16x). */
    bool allowPatchSelect = true;

    /** Maximum experts for generated MoE layers. */
    int maxExperts = 6;
};

/**
 * Build a random, structurally valid DynNN. Deterministic in
 * (params, seed). The returned bundle's graph always passes
 * Graph::validate() and parses into a DynGraph.
 */
ModelBundle buildRandomDynNN(const RandomModelParams &params,
                             std::uint64_t seed);

} // namespace adyna::models

#endif // ADYNA_MODELS_RANDOM_HH
