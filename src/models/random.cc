#include "models/random.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/transforms.hh"

namespace adyna::models {

using graph::Graph;
using graph::LoopDims;
using graph::OpKind;

namespace {

/** Round to the nearest positive multiple of 32 (PE-array friendly). */
std::int64_t
roundWidth(std::int64_t w)
{
    return std::max<std::int64_t>(32, (w + 16) / 32 * 32);
}

/** A dense feed-forward block: matmul -> activation -> matmul. */
OpId
denseBlock(Graph &g, const std::string &name, OpId input,
           std::int64_t rows, std::int64_t width, std::int64_t hidden)
{
    OpId up = g.addMatMul(name + ".up", input, hidden, width);
    OpId act = g.addFusable(name + ".act", OpKind::Act, {up},
                            LoopDims::matmul(rows, hidden, hidden));
    return g.addMatMul(name + ".down", act, width, hidden);
}

} // namespace

ModelBundle
buildRandomDynNN(const RandomModelParams &params, std::uint64_t seed)
{
    ADYNA_ASSERT(params.minBlocks >= 1 &&
                     params.maxBlocks >= params.minBlocks,
                 "bad block count range");
    Rng rng(seed);

    const std::int64_t width = roundWidth(
        rng.uniformInt(params.minWidth, params.maxWidth));
    const int blocks = static_cast<int>(
        rng.uniformInt(params.minBlocks, params.maxBlocks));

    // Optional patch folding: rows = batch x fold.
    std::int64_t fold = 1;
    const bool patchSelect =
        params.allowPatchSelect && rng.bernoulli(0.35);
    if (patchSelect)
        fold = rng.uniformInt(4, 16);
    const std::int64_t rows = params.batch * fold;

    Graph g("random-dynnn-" + std::to_string(seed));
    OpId in = g.addInput("in", LoopDims::matmul(rows, width, width));
    OpId cur = g.addMatMul("embed", in, width, width);

    int gateIndex = 0;

    // Patch selection must be the outermost dynamism of its region.
    OpId selectSwitch = kInvalidOp;
    if (patchSelect) {
        selectSwitch = graph::addPatchSelect(
            g, "select", cur, rng.uniform(0.25, 0.75), gateIndex++);
        g.node(selectSwitch).policy.unitsPerSample = fold;
    }

    // The backbone body (possibly inside the kept-patch branch).
    const auto body = [&](Graph &gg, OpId start) {
        OpId c = start;
        // Early exits cannot nest inside another switch region in
        // this generator (their sinks would make the outer merge
        // semantics ambiguous), so only emit them at top level.
        const bool exitsAllowed = !patchSelect;
        double exitBudget = 0.6; // total marginal exit mass
        for (int b = 0; b < blocks; ++b) {
            const std::string name = "b" + std::to_string(b);
            const std::int64_t hidden =
                roundWidth(width * rng.uniformInt(1, 4));
            if (!rng.bernoulli(params.dynamismProb)) {
                c = denseBlock(gg, name, c, rows, width, hidden);
                continue;
            }
            switch (rng.uniformInt(0, exitsAllowed ? 3 : 2)) {
              case 0: { // layer skip
                c = graph::addLayerSkip(
                    gg, name + ".skip", c, rng.uniform(0.2, 0.7),
                    gateIndex++, [&](Graph &g2, OpId sw) {
                        return denseBlock(g2, name, sw, rows, width,
                                          hidden);
                    });
                break;
              }
              case 1: { // mixture of experts
                const int experts = static_cast<int>(
                    rng.uniformInt(2, params.maxExperts));
                const int topk = static_cast<int>(
                    rng.uniformInt(1, std::min(2, experts)));
                std::vector<double> bias;
                for (int e = 0; e < experts; ++e)
                    bias.push_back(rng.uniform(0.3, 3.0));
                // Inside a patch-selected region the trace already
                // tracks per-sample row counts (Sample::rows), so
                // the token fold must not be applied again.
                c = graph::addMoE(
                    gg, name + ".moe", c, experts, topk, bias,
                    [&](Graph &g2, OpId sw) {
                        return denseBlock(g2, name + ".e", sw, rows,
                                          width, hidden);
                    },
                    /*units_per_sample=*/patchSelect ? 1 : fold);
                break;
              }
              case 2: { // channel pruning
                const int nb = 1 << rng.uniformInt(1, 3); // 2/4/8
                c = graph::addChannelPrunedConv(
                    gg, name + ".cp", c,
                    LoopDims::matmul(rows, width, width), 1, nb,
                    rng.uniform(0.3, 0.8), gateIndex++);
                break;
              }
              default: { // early exit
                const double frac =
                    std::min(exitBudget, rng.uniform(0.05, 0.25));
                exitBudget -= frac;
                OpId sw = graph::addEarlyExit(gg, name + ".exit", c,
                                              2, frac, gateIndex++);
                g.node(sw).policy.unitsPerSample = fold;
                c = graph::buildBranch(
                    gg, sw, 1, [&](Graph &g2, OpId s) {
                        return denseBlock(g2, name, s, rows, width,
                                          hidden);
                    });
                break;
              }
            }
        }
        return c;
    };

    OpId tail;
    if (patchSelect) {
        OpId kept = graph::buildBranch(g, selectSwitch, 0, body);
        tail = g.addUnfoldMerge(
            "aggregate", {kept},
            LoopDims::matmul(params.batch, width, width));
    } else {
        tail = body(g, cur);
    }
    OpId head = g.addMatMul("head", tail, 10, width);
    g.addOutput("out", head);

    ModelBundle bundle;
    bundle.name = g.name();
    bundle.graph = std::move(g);
    bundle.traceConfig.batchSize = params.batch;
    return bundle;
}

} // namespace adyna::models
