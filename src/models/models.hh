/**
 * @file
 * The DynNN model zoo (Table I of the paper), built programmatically
 * on the unified switch/merge representation:
 *
 *   SkipNet   - ResNet-18 backbone with per-block layer skipping (CV)
 *   PABEE     - BERT-base backbone with early exits after every
 *               transformer layer (NLP)
 *   FBSNet    - VGG-style CNN with dynamic channel pruning (CV)
 *   Tutel-MoE - ViT backbone with top-2 mixture-of-experts FFNs (CV)
 *   DPSNet    - ViT with differentiable patch selection; patches are
 *               folded into the batch dimension, up to 8192 rows (CV)
 *   AdaViT    - hybrid (dynamic depth + dynamic region) extension
 *
 * Gate marginals are calibrated to the statistics published for each
 * model (SkipNet ~50% blocks skipped, PABEE ~1.6x compute saving,
 * FBS ~2x MAC reduction at 0.5 channel keep, DPS ~25-40% patches
 * kept); see DESIGN.md, substitutions.
 */

#ifndef ADYNA_MODELS_MODELS_HH
#define ADYNA_MODELS_MODELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"
#include "trace/trace.hh"

namespace adyna::models {

/** A workload: its user-level graph plus the dynamism trace
 * parameters that substitute for its dataset. */
struct ModelBundle
{
    std::string name;
    graph::Graph graph;
    trace::TraceConfig traceConfig;
};

/** SkipNet: ResNet-18 with layer-skipping gates. */
ModelBundle buildSkipNet(std::int64_t batch);

/** PABEE: BERT-base (12 layers, hidden 768, seq 128) with early
 * exits. */
ModelBundle buildPabee(std::int64_t batch);

/** FBSNet: 8-layer CNN with 8-way dynamic channel pruning. */
ModelBundle buildFbsNet(std::int64_t batch);

/** Tutel-MoE: 4-block ViT (hidden 384, seq 196) with two top-2
 * 8-expert MoE FFN layers; experts fill the on-chip buffers. */
ModelBundle buildTutelMoe(std::int64_t batch);

/** DPSNet: patch-selection ViT; 64 patches per image folded into the
 * batch dimension (8192 rows at batch 128). */
ModelBundle buildDpsNet(std::int64_t batch);

/** AdaViT: hybrid dynamic-depth + dynamic-region ViT (extension). */
ModelBundle buildAdaVit(std::int64_t batch);

/** Names of the five paper workloads, in Table I order. */
std::vector<std::string> workloadNames();

/** Build a workload by name ("skipnet", "pabee", "fbsnet",
 * "tutel-moe", "dpsnet", "adavit"); fatal() on unknown names. */
ModelBundle buildByName(const std::string &name, std::int64_t batch);

} // namespace adyna::models

#endif // ADYNA_MODELS_MODELS_HH
