/**
 * @file
 * The search layer's structural candidate representation: a
 * cheap-mutate plan tree over the scheduler's segmentation atoms
 * (SET's ltreenode idea adapted to Adyna's segment/allocation
 * space). A candidate is (segment boundaries over the atom sequence,
 * per-op allocation-bias exponents, per-switch grouping modes); a
 * mutation flips one of those and re-prices only the touched
 * segments through a surrogate of the real allocator, so the
 * annealer evaluates thousands of candidates per second without ever
 * building a schedule. Only surviving candidates are materialized —
 * via Scheduler::buildDelta, so even that costs a segment splice for
 * everything the mutation left alone.
 */

#ifndef ADYNA_SEARCH_TREE_HH
#define ADYNA_SEARCH_TREE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch/hwconfig.hh"
#include "arch/profiler.hh"
#include "common/types.hh"
#include "core/scheduler.hh"
#include "costmodel/mapper.hh"
#include "graph/dyngraph.hh"

namespace adyna::search {

/** Per-switch branch-grouping mode a tree can pick. */
enum GroupMode : std::uint8_t
{
    kGroupDefault = 0,    ///< heuristic threshold as configured
    kGroupOff = 1,        ///< never group this switch's branches
    kGroupAggressive = 2, ///< 4x the activity threshold
};

/** PlanOverride::groupScale value of a GroupMode. */
double groupModeScale(GroupMode mode);

/** Allocation-bias multiplier of a bias exponent (1.25^exp). */
double biasOf(int exp);

/** Bias exponents live in [-kBiasRange, kBiasRange]. */
constexpr int kBiasRange = 3;

/** The mutable state of one candidate (the tree minus its caches).
 * Chains snapshot and restore these; a candidate's identity is the
 * fingerprint over exactly these bytes. */
struct TreeState
{
    /** cut[g] != 0 puts a segment boundary after atom g. */
    std::vector<char> cut;

    /** Per stage-op allocation-bias exponent. */
    std::vector<std::int8_t> biasExp;

    /** Per context-switch GroupMode. */
    std::vector<std::uint8_t> groupMode;
};

/** One proposed mutation (the grammar: boundary move = a merge plus
 * a split, expressed as two toggles by the chain). */
struct Mutation
{
    enum Kind : std::uint8_t
    {
        kBoundaryToggle = 0, ///< split/merge at gap `index`
        kTileNudge = 1,      ///< biasExp[index] += delta
        kRegroup = 2,        ///< groupMode[index] = delta
    };

    Kind kind = kBoundaryToggle;
    int index = 0;
    int delta = 0;
};

/** Undo record of one applied mutation (restores state and the
 * per-segment cost cache without recomputation). */
struct Undo
{
    Mutation mut;
    int oldVal = 0;

    /** Boundary toggles change the segment list structurally;
     * nudges/regroups only replace cached costs in place. */
    bool structural = false;

    /** Structural: `oldEnds`/`oldCosts` go back in at segAt,
     * replacing `newCount` current entries. */
    std::size_t segAt = 0;
    std::vector<int> oldEnds;
    std::vector<double> oldCosts;
    std::size_t newCount = 0;

    /** Non-structural: the segments whose costs to restore (paired
     * with oldCosts). */
    std::vector<std::size_t> segIdx;
};

/**
 * Immutable per-search data shared by every chain: the atom
 * sequence, per-op allocation weights (the exact weights the real
 * allocator uses), switch/branch structure with profiled activity,
 * and the hardware envelope the surrogate prices against.
 */
class SearchContext
{
  public:
    SearchContext(const core::Scheduler &scheduler,
                  const graph::DynGraph &dg,
                  const arch::HwConfig &hw,
                  const std::map<OpId, double> &expectations,
                  const arch::Profiler *profiler);

    /** A switch with at least one stage op among the atoms. */
    struct SwitchCtx
    {
        OpId switchOp = kInvalidOp;

        /** Present branch ids and their stage-op indices. */
        std::vector<int> branches;
        std::vector<std::vector<int>> branchOps;

        /** Profiled activity per present branch (0 when unprofiled:
         * grouping is then disabled anyway). */
        std::vector<double> activity;

        /** Every stage-op index owned by this switch. */
        std::vector<int> ops;
    };

    int numAtoms() const { return static_cast<int>(atoms_.size()); }
    int numOps() const { return static_cast<int>(ops_.size()); }
    int numSwitches() const
    {
        return static_cast<int>(switches_.size());
    }

    const std::vector<std::vector<OpId>> &atoms() const
    {
        return atoms_;
    }
    const std::vector<OpId> &ops() const { return ops_; }
    const std::vector<SwitchCtx> &switches() const
    {
        return switches_;
    }

    /** Atom index of stage-op index @p i. */
    int atomOfOp(int i) const { return atomOfOp_[i]; }

    /** First flattened stage-op index of atom @p a (ops of atom a
     * are [atomStart(a), atomStart(a+1))). */
    int atomStart(int a) const { return atomStart_[a]; }

    /** Cuts reproducing the partition the scheduler would build
     * right now (the search's starting candidate). */
    const std::vector<char> &defaultCuts() const
    {
        return defaultCuts_;
    }

    /** Stage-op index of @p op, -1 if not a stage op. */
    int opIndex(OpId op) const;

    /** Branch grouping is live (config on and a profiler present). */
    bool groupingEnabled() const { return grouping_; }

    double groupActivityThreshold() const { return groupThreshold_; }
    int tiles() const { return tiles_; }
    double spadBytes() const { return spadBytes_; }
    double hbmBytesPerCycle() const { return hbmBpc_; }

    /** Allocation weight of stage-op index @p i before bias (the
     * scheduler's expectedWork under the search's expectations). */
    double work(int i) const { return work_[i]; }

    /** Weight bytes of stage-op index @p i. */
    double weightBytes(int i) const { return weight_[i]; }

    /** One resolved data edge between two stage ops (routing nodes
     * skipped, the engine's producer resolution). */
    struct EdgeCtx
    {
        int producer = -1;  ///< producing stage-op index
        double bytes = 0.0; ///< expected per-batch activation bytes
    };

    /** Scheduled producers of stage-op index @p i. */
    const std::vector<EdgeCtx> &inEdges(int i) const
    {
        return inEdges_[static_cast<std::size_t>(i)];
    }

    /** Expected per-batch bytes @p i reads from graph inputs (and
     * unscheduled producers): DRAM under every partition. */
    double externalInBytes(int i) const
    {
        return extInBytes_[static_cast<std::size_t>(i)];
    }

    /** Expected per-batch output bytes of stage-op index @p i. */
    double outBytes(int i) const
    {
        return outBytes_[static_cast<std::size_t>(i)];
    }

    /** @p i feeds a graph output (always written back to DRAM). */
    bool feedsOutput(int i) const
    {
        return feedsOutput_[static_cast<std::size_t>(i)] != 0;
    }

    /** Stage-op indices consuming @p i's output. */
    const std::vector<int> &consumers(int i) const
    {
        return consumers_[static_cast<std::size_t>(i)];
    }

    /**
     * Sample the true kernel cost of every stage op at a ladder of
     * tile counts (dense through 16, geometric above) through the
     * real mapper. The surrogate then prices throughput off the
     * measured curve — which bends hard once a group outgrows the
     * op's useful parallelism — instead of assuming linear work /
     * tiles scaling. Serial; call before handing the context to
     * chains so they stay mapper-free (and byte-stable).
     */
    void buildCostCurves(costmodel::Mapper &mapper,
                         bool kernel_fitting);

    /** True per-batch kernel cycles of stage-op @p i on @p tiles
     * tiles, interpolated from the sampled curve (falls back to
     * work(i)/tiles when curves were not built). */
    double opCycles(int i, int tiles) const;

    /** Batches the surrogate prices a segment pipeline over. */
    int surrogateBatches() const { return surrogateBatches_; }
    void setSurrogateBatches(int batches)
    {
        surrogateBatches_ = batches;
    }

    /** Fixed surrogate cost per segment (activation/drain). */
    double segmentFixedCost() const { return segmentFixed_; }
    void setSegmentFixedCost(double cost) { segmentFixed_ = cost; }

  private:
    std::vector<std::vector<OpId>> atoms_;
    std::vector<OpId> ops_;
    std::vector<int> atomOfOp_;
    std::vector<int> atomStart_;
    std::vector<char> defaultCuts_;
    std::map<OpId, int> opIndex_;
    const graph::DynGraph *dg_ = nullptr;
    std::vector<double> work_;
    std::vector<double> weight_;
    std::vector<double> rows_;
    std::vector<int> curveTiles_;
    std::vector<std::vector<double>> curve_;
    std::vector<std::vector<EdgeCtx>> inEdges_;
    std::vector<double> extInBytes_;
    std::vector<double> outBytes_;
    std::vector<char> feedsOutput_;
    std::vector<std::vector<int>> consumers_;
    std::vector<SwitchCtx> switches_;

    /** Stage-op index -> owning context switch (-1 none). */
    std::vector<int> switchOfOp_;

    bool grouping_ = false;
    double groupThreshold_ = 0.25;
    int tiles_ = 1;
    double spadBytes_ = 1.0;
    double hbmBpc_ = 1.0;
    int surrogateBatches_ = 8;
    double segmentFixed_ = 2000.0;

    friend class PlanTree;
};

/**
 * One candidate with an incrementally maintained surrogate cost:
 * per-segment costs are cached, a mutation re-prices only the
 * segments it touches, and revert restores the previous entries
 * without recomputation.
 */
class PlanTree
{
  public:
    /** Starts at the default tree: the heuristic partition's cuts,
     * zero biases, default grouping. */
    explicit PlanTree(const SearchContext &ctx);

    /** Current candidate state (copy; cheap byte vectors). */
    TreeState state() const;

    /** Load @p s and recost everything. */
    void setState(const TreeState &s);

    /** Surrogate cost of the whole candidate (lower is better). */
    double cost() const { return total_; }

    /** FNV-1a over the state bytes: the candidate's identity for
     * dedup and deterministic tie-breaking. */
    std::uint64_t fingerprint() const;
    static std::uint64_t fingerprint(const TreeState &s);

    /**
     * Apply @p m. Returns false (and changes nothing) when the
     * mutation is infeasible — bias at its clamp, mode already set,
     * or no gap/op/switch to mutate. On success fills @p undo.
     */
    bool apply(const Mutation &m, Undo &undo);

    /** Undo the mutation recorded in @p undo (exact restore). */
    void revert(const Undo &undo);

    /** Segment count of the current candidate. */
    std::size_t numSegments() const { return segEnd_.size(); }

    /** Build the PlanOverride materializing @p s. */
    static core::PlanOverride toOverride(const SearchContext &ctx,
                                         const TreeState &s);

    /**
     * Ops whose build inputs differ between two states: bias-diff
     * ops plus every op of a switch whose group mode differs. The
     * changed-op list handed to Scheduler::buildDelta when
     * materializing @p b against a base built from @p a (partition
     * differences are caught by buildDelta's op-list comparison).
     */
    static std::vector<OpId> diffOps(const SearchContext &ctx,
                                     const TreeState &a,
                                     const TreeState &b);

    /** Recost every segment from scratch (test hook: incremental
     * maintenance must match). */
    double recostAll();

  private:
    /** Segment index owning atom @p a. */
    std::size_t segOfAtom(int a) const;

    /** Surrogate cost of the segment covering atoms
     * [atomBegin, atomEnd). */
    double segmentCost(int atom_begin, int atom_end) const;

    /** Sum segCost_ into total_. */
    void retotal();

    const SearchContext &ctx_;
    TreeState st_;

    /** Exclusive atom end of each segment, ascending; last entry is
     * numAtoms(). */
    std::vector<int> segEnd_;
    std::vector<double> segCost_;
    double total_ = 0.0;
};

} // namespace adyna::search

#endif // ADYNA_SEARCH_TREE_HH
