#include "search/search.hh"

#ifdef ADYNA_SEARCH_DEBUG
#include <cstdio>
#endif

#include <algorithm>
#include <cmath>
#include <set>

#include "arch/chip.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/validate.hh"

namespace adyna::search {

namespace {

/** Insert @p c into the (surrogate, fp)-sorted top list, keeping at
 * most @p width entries and dropping fingerprint duplicates. */
void
insertTop(std::vector<ScheduleSearch::Candidate> &top,
          ScheduleSearch::Candidate c, std::size_t width)
{
    for (const auto &t : top)
        if (t.fp == c.fp)
            return;
    const auto pos = std::lower_bound(
        top.begin(), top.end(), c, [](const auto &a, const auto &b) {
            return a.surrogate != b.surrogate
                       ? a.surrogate < b.surrogate
                       : a.fp < b.fp;
        });
    if (pos == top.end() && top.size() >= width)
        return;
    top.insert(pos, std::move(c));
    if (top.size() > width)
        top.pop_back();
}

/**
 * Draw a mutation. Tile nudges dominate the mix (the surrogate's
 * best-calibrated axis); boundary toggles are proposed sparingly and
 * only when @p allow_boundary — local chains keep the heuristic
 * partition and refine allocation only, so the beam always carries
 * candidates from the region where the surrogate is near-exact.
 */
Mutation
propose(const SearchContext &ctx, Rng &rng, bool allow_boundary)
{
    const int gaps =
        allow_boundary ? std::max(0, ctx.numAtoms() - 1) : 0;
    const int ops = ctx.numOps();
    const int switches =
        ctx.groupingEnabled() ? ctx.numSwitches() : 0;
    Mutation m;
    if (gaps > 0 && ((ops == 0 && switches == 0) ||
                     rng.uniform() < 0.2)) {
        m.kind = Mutation::kBoundaryToggle;
        m.index = static_cast<int>(rng.uniformInt(0, gaps - 1));
        return m;
    }
    if (switches > 0 && (ops == 0 || rng.uniform() < 0.1)) {
        m.kind = Mutation::kRegroup;
        m.index =
            static_cast<int>(rng.uniformInt(0, switches - 1));
        m.delta = static_cast<int>(rng.uniformInt(0, 2));
        return m;
    }
    m.kind = Mutation::kTileNudge;
    m.index = static_cast<int>(rng.uniformInt(0, ops - 1));
    m.delta = rng.bernoulli(0.5) ? 1 : -1;
    return m;
}

} // namespace

ScheduleSearch::ScheduleSearch(const graph::DynGraph &dg,
                               const arch::HwConfig &hw,
                               costmodel::Mapper &mapper,
                               core::ExecPolicy policy,
                               SearchConfig cfg)
    : dg_(dg), hw_(hw), mapper_(mapper), policy_(policy), cfg_(cfg),
      engine_(dg, hw, mapper, policy)
{
    ADYNA_ASSERT(cfg_.chains > 0 && cfg_.materializeTop > 0 &&
                     cfg_.mutationBudget >= 0,
                 "invalid search configuration");
}

ScheduleSearch::ChainResult
ScheduleSearch::runChain(const SearchContext &ctx,
                         const TreeState &start, int chain,
                         int proposals) const
{
    ChainResult out;
    if (proposals <= 0 ||
        ctx.numAtoms() + ctx.numOps() + ctx.numSwitches() == 0)
        return out;

    // Independent per-chain stream: nearby chain indices decorrelate
    // through the golden-ratio stride + SplitMix64 seeding.
    Rng rng(cfg_.seed ^
            (0x9e3779b97f4a7c15ULL *
             static_cast<std::uint64_t>(chain + 1)));

    // Even chains refine allocation within the incumbent partition
    // (the surrogate's near-exact region); odd chains also move
    // segment boundaries. The materialization pass interleaves both
    // pools, so every run evaluates trustworthy local candidates
    // alongside the structural explorers.
    const bool allowBoundary = chain % 2 != 0;

    PlanTree tree(ctx);
    tree.setState(start);
    const double baseScale = std::max(1.0, tree.cost());
    const std::size_t width =
        static_cast<std::size_t>(cfg_.materializeTop);

    const int refineIters = static_cast<int>(
        static_cast<double>(proposals) * cfg_.refineFraction);
    const int saIters = proposals - refineIters;

    Candidate best{tree.cost(), tree.fingerprint(), tree.state()};
    insertTop(out.top, best, width);

    double cur = tree.cost();
    Undo undo;
    for (int t = 0; t < saIters; ++t) {
        ++out.tried;
        const Mutation m = propose(ctx, rng, allowBoundary);
        if (!tree.apply(m, undo))
            continue;
        const double dc = tree.cost() - cur;
        const double frac =
            saIters > 1 ? static_cast<double>(t) /
                              static_cast<double>(saIters - 1)
                        : 1.0;
        const double temp =
            cfg_.initTemp *
            std::pow(cfg_.tempDecayTo / cfg_.initTemp, frac);
        const bool accept =
            dc <= 0.0 ||
            rng.uniform() < std::exp(-(dc / baseScale) / temp);
        if (!accept) {
            tree.revert(undo);
            continue;
        }
        ++out.accepted;
        cur = tree.cost();
        Candidate c{cur, tree.fingerprint(), tree.state()};
        if (c.surrogate < best.surrogate ||
            (c.surrogate == best.surrogate && c.fp < best.fp))
            best = c;
        insertTop(out.top, std::move(c), width);
    }

    // Greedy tail: hill-climb from the chain's best state.
    tree.setState(best.state);
    cur = tree.cost();
    for (int t = 0; t < refineIters; ++t) {
        ++out.tried;
        const Mutation m = propose(ctx, rng, allowBoundary);
        if (!tree.apply(m, undo))
            continue;
        if (tree.cost() >= cur) {
            tree.revert(undo);
            continue;
        }
        ++out.accepted;
        cur = tree.cost();
        insertTop(out.top,
                  Candidate{cur, tree.fingerprint(), tree.state()},
                  width);
    }
    return out;
}

ScheduleSearch::Result
ScheduleSearch::run(core::Scheduler &scheduler,
                    const core::Schedule &base,
                    const TreeState *incumbent,
                    const std::map<OpId, double> &expectations,
                    const std::map<OpId, std::vector<std::int64_t>>
                        &kernel_values,
                    const arch::Profiler *profiler,
                    const std::vector<trace::BatchRouting> &probe,
                    kernels::KernelStoreCache *store_cache,
                    core::SearchStats *stats)
{
    ADYNA_ASSERT(!probe.empty(),
                 "search needs a non-empty probe trace");

    // Counter scoping (the cacheStatsJson fix): every cache counter
    // this run moves is attributed to the search via snapshot
    // deltas, so the caller can keep its installed-schedule stats
    // clean of rejected candidates.
    const std::uint64_t storeHits0 =
        store_cache ? store_cache->hits() : 0;
    const std::uint64_t storeMisses0 =
        store_cache ? store_cache->misses() : 0;
    const std::uint64_t mapperHits0 = mapper_.hits();
    const std::uint64_t mapperMisses0 = mapper_.misses();
    const std::uint64_t execHits0 = engine_.execHits();
    const std::uint64_t execMisses0 = engine_.execMisses();

    const SearchContext ctx = [&] {
        SearchContext c(scheduler, dg_, hw_, expectations, profiler);
        c.setSurrogateBatches(cfg_.surrogateBatches);
        c.setSegmentFixedCost(cfg_.segmentFixedCycles);
        c.buildCostCurves(mapper_, policy_.kernelFitting);
        return c;
    }();

    PlanTree seedTree(ctx);
    const TreeState baseState =
        incumbent ? *incumbent : seedTree.state();
    const std::uint64_t baseFp = PlanTree::fingerprint(baseState);

    // A budget below even one probe evaluation buys nothing: hand
    // the heuristic fallback back without spending a cycle.
    if (cfg_.cycleBudget > 0 &&
        cfg_.cycleBudget < cfg_.materializeCycles) {
        Result res;
        res.schedule = base;
        res.tree = baseState;
        if (stats) {
            stats->budgetExhausted = true;
            stats->chains = cfg_.chains;
        }
        return res;
    }

    // Clamp the mutation count so mutations + the baseline
    // evaluation provably fit the budget; the clamp depends only on
    // configuration, never on thread count.
    int proposals = cfg_.mutationBudget;
    bool exhausted = false;
    if (cfg_.cycleBudget > 0) {
        const Cycles avail =
            cfg_.cycleBudget > cfg_.materializeCycles
                ? cfg_.cycleBudget - cfg_.materializeCycles
                : 0;
        const std::int64_t cap =
            cfg_.mutateCycles > 0
                ? static_cast<std::int64_t>(avail /
                                            cfg_.mutateCycles)
                : cfg_.mutationBudget;
        if (cap < proposals) {
            proposals = static_cast<int>(std::max<std::int64_t>(
                0, cap));
            exhausted = true;
        }
    }
    const int perChain = proposals / cfg_.chains;

    const auto chains = [&] {
        const auto one = [&](std::size_t i) {
            return runChain(ctx, baseState, static_cast<int>(i),
                            perChain);
        };
        if (pool_ && cfg_.chains > 1)
            return pool_->parallelMap(
                static_cast<std::size_t>(cfg_.chains), one);
        std::vector<ChainResult> out;
        out.reserve(static_cast<std::size_t>(cfg_.chains));
        for (int i = 0; i < cfg_.chains; ++i)
            out.push_back(one(static_cast<std::size_t>(i)));
        return out;
    }();

    // Merge per chain kind, then interleave local candidates first:
    // the real engine adjudicates every materialized candidate, but
    // the local pool is where the surrogate ranking is trustworthy,
    // so it must never be crowded out of the beam by structural
    // explorers with optimistic surrogate scores.
    Cycles spent = 0;
    std::uint64_t tried = 0, accepted = 0;
    const std::size_t beamWidth =
        static_cast<std::size_t>(cfg_.materializeTop);
    std::vector<Candidate> localTop, globalTop;
    for (std::size_t ci = 0; ci < chains.size(); ++ci) {
        const ChainResult &c = chains[ci];
        tried += c.tried;
        accepted += c.accepted;
        for (const Candidate &cand : c.top)
            if (cand.fp != baseFp)
                insertTop(ci % 2 == 0 ? localTop : globalTop, cand,
                          beamWidth);
    }
    std::vector<Candidate> merged;
    for (std::size_t i = 0;
         merged.size() < beamWidth &&
         (i < localTop.size() || i < globalTop.size());
         ++i) {
        for (const auto *pool : {&localTop, &globalTop}) {
            if (i >= pool->size() || merged.size() >= beamWidth)
                continue;
            const Candidate &cand = (*pool)[i];
            const bool dup = std::any_of(
                merged.begin(), merged.end(),
                [&](const Candidate &m) { return m.fp == cand.fp; });
            if (!dup)
                merged.push_back(cand);
        }
    }
    spent += static_cast<Cycles>(tried) * cfg_.mutateCycles;

    Result res;
    res.tree = baseState;

    // Score the base schedule on the probe first: the yardstick
    // every candidate must strictly beat. A fresh chip per
    // evaluation keeps candidate scores independent of each other
    // and of the serving chip's clock.
    {
        arch::Chip chip(hw_);
        res.heuristicCost =
            engine_.runPeriod(chip, base, probe, nullptr, 0).endTime;
        spent += cfg_.materializeCycles;
    }
    res.searchedCost = res.heuristicCost;
#ifdef ADYNA_SEARCH_DEBUG
    {
        PlanTree dbg(ctx);
        dbg.setState(baseState);
        std::fprintf(stderr,
                     "[search dbg] base fp=%llx surr=%.0f real=%llu "
                     "atoms=%d segs=%zu cands=%zu\n",
                     (unsigned long long)baseFp, dbg.cost(),
                     (unsigned long long)res.heuristicCost,
                     ctx.numAtoms(), dbg.numSegments(),
                     merged.size());
    }
#endif

    // Base partition op lists + changed-op sets price the
    // materialization bound exactly like buildDelta will splice.
    std::vector<std::vector<OpId>> baseOps;
    baseOps.reserve(base.segments.size());
    for (const auto &seg : base.segments) {
        std::vector<OpId> ops;
        ops.reserve(seg->stages.size());
        for (const auto &st : seg->stages)
            ops.push_back(st.op);
        baseOps.push_back(std::move(ops));
    }

    const core::PlanOverride *entryOverride =
        scheduler.planOverride();
    std::uint64_t bestFp = 0;
    std::uint64_t materialized = 0, segsRebuilt = 0,
                  segsSpliced = 0, fullRebuilds = 0;

    core::PlanOverride scratchOverride;
    for (const Candidate &cand : merged) {
        core::PlanOverride ov = PlanTree::toOverride(ctx, cand.state);
        const std::vector<OpId> changed =
            PlanTree::diffOps(ctx, baseState, cand.state);
        const std::set<OpId> changedSet(changed.begin(),
                                        changed.end());

        // Conservative pre-charge: every op of a non-splicable
        // segment compiles at most 4 stores (base tiles + the three
        // share-pair allocations), so the bound dominates the actual
        // store-miss charge and the budget can never be overshot.
        std::int64_t rebuiltOps = 0;
        for (const auto &segOps : ov.partition) {
            const bool splicable =
                std::find(baseOps.begin(), baseOps.end(), segOps) !=
                    baseOps.end() &&
                std::none_of(segOps.begin(), segOps.end(),
                             [&](OpId op) {
                                 return changedSet.count(op) != 0;
                             });
            if (!splicable)
                rebuiltOps +=
                    static_cast<std::int64_t>(segOps.size());
        }
        const Cycles bound =
            cfg_.materializeCycles +
            static_cast<Cycles>(4 * rebuiltOps) *
                cfg_.storeCompileCycles;
        if (cfg_.cycleBudget > 0 &&
            spent + bound > cfg_.cycleBudget) {
            exhausted = true;
            break;
        }

        scratchOverride = std::move(ov);
        scheduler.setPlanOverride(&scratchOverride);
        // Charge by unique insertions, not the miss counter:
        // buildDelta's workers may race-compile one key, so the
        // miss count depends on thread interleaving while the
        // cache-size delta does not.
        const std::uint64_t stores0 =
            store_cache ? store_cache->size() : 0;
        core::DeltaStats ds;
        core::Schedule sch = scheduler.buildDelta(
            base, expectations, kernel_values, profiler, changed,
            &ds);
        const auto issues = core::validateSchedule(sch, dg_, hw_);
        ADYNA_ASSERT(issues.empty(), "searched schedule invalid: ",
                     core::issuesToString(issues));

        const std::int64_t compiled =
            store_cache ? static_cast<std::int64_t>(
                              store_cache->size() - stores0)
                        : rebuiltOps;
        spent += cfg_.materializeCycles +
                 static_cast<Cycles>(compiled) *
                     cfg_.storeCompileCycles;
        ++materialized;
        segsRebuilt += ds.segmentsRebuilt;
        segsSpliced += ds.segmentsTotal - ds.segmentsRebuilt;
        if (ds.segmentsRebuilt == ds.segmentsTotal)
            ++fullRebuilds;

        arch::Chip chip(hw_);
        const Tick cost =
            engine_.runPeriod(chip, sch, probe, nullptr, 0).endTime;
#ifdef ADYNA_SEARCH_DEBUG
        std::fprintf(stderr,
                     "[search dbg] cand fp=%llx surr=%.0f real=%llu "
                     "(heur %llu) segs=%zu rebuilt=%zu\n",
                     (unsigned long long)cand.fp, cand.surrogate,
                     (unsigned long long)cost,
                     (unsigned long long)res.heuristicCost,
                     ds.segmentsTotal, ds.segmentsRebuilt);
#endif
        const bool better =
            cost < res.searchedCost ||
            (res.improved && cost == res.searchedCost &&
             cand.fp < bestFp);
        if (better && cost < res.heuristicCost) {
            res.schedule = std::move(sch);
            res.planOverride = scratchOverride;
            res.tree = cand.state;
            res.searchedCost = cost;
            res.improved = true;
            bestFp = cand.fp;
        }
    }

    // The caller owns override lifetime; never leave the scheduler
    // pointing at this frame's scratch storage.
    scheduler.setPlanOverride(entryOverride);

    if (!res.improved)
        res.schedule = base;
    res.spentCycles = spent;
    ADYNA_ASSERT(cfg_.cycleBudget == 0 || spent <= cfg_.cycleBudget,
                 "search overspent its cycle budget");

    if (stats) {
        stats->candidatesTried += tried;
        stats->candidatesAccepted += accepted;
        stats->materialized += materialized;
        stats->segmentsRebuilt += segsRebuilt;
        stats->segmentsSpliced += segsSpliced;
        stats->fullRebuilds += fullRebuilds;
        stats->budgetSpentCycles += spent;
        stats->budgetExhausted =
            stats->budgetExhausted || exhausted;
        stats->chains = cfg_.chains;
        stats->heuristicCost =
            static_cast<double>(res.heuristicCost);
        stats->searchedCost = static_cast<double>(res.searchedCost);
        stats->improved = res.improved;
        if (store_cache) {
            stats->storeHits += store_cache->hits() - storeHits0;
            stats->storeMisses +=
                store_cache->misses() - storeMisses0;
        }
        stats->mapperHits += mapper_.hits() - mapperHits0;
        stats->mapperMisses += mapper_.misses() - mapperMisses0;
        stats->execHits += engine_.execHits() - execHits0;
        stats->execMisses += engine_.execMisses() - execMisses0;
    }
    return res;
}

} // namespace adyna::search
