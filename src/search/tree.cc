#include "search/tree.hh"

#ifdef ADYNA_SEARCH_DEBUG
#include <cstdio>
#endif

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::search {

using graph::SwitchInfo;

double
groupModeScale(GroupMode mode)
{
    switch (mode) {
    case kGroupDefault:
        return 1.0;
    case kGroupOff:
        return 0.0;
    case kGroupAggressive:
        return 4.0;
    }
    return 1.0;
}

double
biasOf(int exp)
{
    return std::pow(1.25, static_cast<double>(exp));
}

// ---- SearchContext -------------------------------------------------

SearchContext::SearchContext(const core::Scheduler &scheduler,
                             const graph::DynGraph &dg,
                             const arch::HwConfig &hw,
                             const std::map<OpId, double> &expectations,
                             const arch::Profiler *profiler)
    : dg_(&dg)
{
    atoms_ = scheduler.segmentationAtoms();
    atomStart_.reserve(atoms_.size() + 1);
    for (const auto &atom : atoms_) {
        atomStart_.push_back(static_cast<int>(ops_.size()));
        for (OpId op : atom) {
            opIndex_[op] = static_cast<int>(ops_.size());
            atomOfOp_.push_back(
                static_cast<int>(atomStart_.size()) - 1);
            ops_.push_back(op);
            work_.push_back(scheduler.expectedWork(op, expectations));
            weight_.push_back(static_cast<double>(
                dg.graph().node(op).weightBytes()));
        }
    }
    atomStart_.push_back(static_cast<int>(ops_.size()));

    // ---- per-op data flow (the engine's producer resolution) -------
    // Expected per-batch activation bytes on every edge, so the
    // surrogate can price the DRAM round trips a partition induces:
    // the engine store-and-forwards every cross-segment edge through
    // HBM, and that traffic — not the pipeline shape — is what makes
    // over-splitting expensive.
    const auto expectedRows = [&](OpId op) {
        const auto &node = dg.graph().node(op);
        double rows = static_cast<double>(node.dims.n());
        if (!scheduler.config().worstCase && dg.isDynamic(op)) {
            const auto it = expectations.find(op);
            if (it != expectations.end())
                rows = std::max(1.0, it->second);
        }
        return rows;
    };
    const auto perRowOut = [&](OpId op) {
        const auto &node = dg.graph().node(op);
        const graph::LoopDims dims =
            node.kind == graph::OpKind::Input ? node.dims
                                              : dg.info(op).outDims;
        return static_cast<double>(dims.k() * dims.p() * dims.q()) *
               static_cast<double>(node.dtypeBytes);
    };
    std::vector<char> visited(dg.graph().size(), 0);
    const auto resolve = [&](OpId op, auto &&self,
                             std::vector<std::pair<OpId, bool>> &out)
        -> void {
        for (OpId in : dg.graph().node(op).inputs) {
            if (visited[in])
                continue;
            visited[in] = 1;
            const auto &p = dg.graph().node(in);
            if (p.kind == graph::OpKind::Switch ||
                p.kind == graph::OpKind::Merge) {
                self(in, self, out);
            } else if (p.kind == graph::OpKind::Sink ||
                       p.kind == graph::OpKind::Output) {
                // never a data producer
            } else {
                out.emplace_back(in, true);
            }
        }
    };
    inEdges_.resize(ops_.size());
    extInBytes_.assign(ops_.size(), 0.0);
    outBytes_.assign(ops_.size(), 0.0);
    feedsOutput_.assign(ops_.size(), 0);
    consumers_.resize(ops_.size());
    std::vector<std::pair<OpId, bool>> producers;
    rows_.reserve(ops_.size());
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const OpId op = ops_[i];
        const double rows = expectedRows(op);
        rows_.push_back(rows);
        outBytes_[i] = rows * perRowOut(op);
        producers.clear();
        std::fill(visited.begin(), visited.end(), 0);
        resolve(op, resolve, producers);
        for (const auto &[pid, crossed] : producers) {
            (void)crossed;
            const auto &pnode = dg.graph().node(pid);
            const double prows =
                pnode.kind == graph::OpKind::Input
                    ? rows
                    : expectedRows(pid);
            const double bytes =
                std::min(rows, prows) * perRowOut(pid);
            const int pidx = pnode.kind == graph::OpKind::Input
                                 ? -1
                                 : opIndex(pid);
            if (pidx >= 0) {
                inEdges_[i].push_back(
                    EdgeCtx{pidx, bytes});
                consumers_[static_cast<std::size_t>(pidx)].push_back(
                    static_cast<int>(i));
            } else {
                extInBytes_[i] += bytes;
            }
        }
    }
    for (OpId outId : dg.graph().outputIds()) {
        producers.clear();
        std::fill(visited.begin(), visited.end(), 0);
        resolve(outId, resolve, producers);
        for (const auto &[pid, crossed] : producers) {
            (void)crossed;
            const int idx = opIndex(pid);
            if (idx >= 0)
                feedsOutput_[static_cast<std::size_t>(idx)] = 1;
        }
    }

    tiles_ = scheduler.activeTileCount();
    spadBytes_ = static_cast<double>(hw.tech.spadBytes);
    hbmBpc_ = std::max(1.0, hw.hbmTotalBytesPerCycle);
    grouping_ =
        scheduler.config().branchGrouping && profiler != nullptr;
    groupThreshold_ = scheduler.config().groupActivityThreshold;

    switchOfOp_.assign(ops_.size(), -1);
    for (const SwitchInfo &sw : dg.switches()) {
        SwitchCtx ctx;
        ctx.switchOp = sw.switchOp;
        for (int b = 0; b < sw.numBranches(); ++b) {
            std::vector<int> present;
            for (OpId op : sw.branches[static_cast<std::size_t>(b)]) {
                const int idx = opIndex(op);
                if (idx >= 0)
                    present.push_back(idx);
            }
            if (present.empty())
                continue;
            ctx.branches.push_back(b);
            ctx.activity.push_back(
                profiler ? profiler->branchActivity(sw.switchOp, b)
                         : 0.0);
            ctx.ops.insert(ctx.ops.end(), present.begin(),
                           present.end());
            ctx.branchOps.push_back(std::move(present));
        }
        if (ctx.branches.size() < 2)
            continue; // nothing to group or regroup
        const int swIdx = static_cast<int>(switches_.size());
        for (int idx : ctx.ops)
            switchOfOp_[static_cast<std::size_t>(idx)] = swIdx;
        switches_.push_back(std::move(ctx));
    }

    // Reproduce the scheduler's current partition as cut positions
    // over the atom gaps (every legal partition is a split of the
    // atom sequence, so this alignment always exists).
    defaultCuts_.assign(
        atoms_.empty() ? 0 : atoms_.size() - 1, 0);
    const auto &part = scheduler.partition();
    std::size_t atom = 0;
    for (std::size_t s = 0; s < part.size(); ++s) {
        std::size_t covered = 0;
        while (covered < part[s].size()) {
            ADYNA_ASSERT(atom < atoms_.size(),
                         "partition does not align with atoms");
            covered += atoms_[atom].size();
            ++atom;
        }
        ADYNA_ASSERT(covered == part[s].size(),
                     "partition segment splits an atom");
        if (s + 1 < part.size())
            defaultCuts_[atom - 1] = 1;
    }
}

int
SearchContext::opIndex(OpId op) const
{
    const auto it = opIndex_.find(op);
    return it != opIndex_.end() ? it->second : -1;
}

void
SearchContext::buildCostCurves(costmodel::Mapper &mapper,
                               bool kernel_fitting)
{
    curveTiles_.clear();
    for (int t = 1; t <= std::min(tiles_, 16); ++t)
        curveTiles_.push_back(t);
    for (int t = 20; t < tiles_;
         t += t < 32 ? 4 : (t < 64 ? 8 : 16))
        curveTiles_.push_back(t);
    if (tiles_ > 16)
        curveTiles_.push_back(tiles_);

    curve_.assign(ops_.size(), {});
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const auto &node = dg_->graph().node(ops_[i]);
        const std::int64_t n = std::max<std::int64_t>(
            1, std::llround(rows_[i]));
        curve_[i].reserve(curveTiles_.size());
        for (int t : curveTiles_) {
            const costmodel::Mapping m = mapper.search(node, n, t);
            curve_[i].push_back(static_cast<double>(
                costmodel::evalKernel(node, m, n, kernel_fitting,
                                      mapper.tech())
                    .cycles));
        }
    }
}

double
SearchContext::opCycles(int i, int tiles) const
{
    const std::size_t idx = static_cast<std::size_t>(i);
    if (curve_.empty() || curve_[idx].empty())
        return work_[idx] /
               static_cast<double>(std::max(1, tiles));
    const auto &c = curve_[idx];
    const auto it = std::lower_bound(curveTiles_.begin(),
                                     curveTiles_.end(), tiles);
    if (it == curveTiles_.end())
        return c.back();
    const std::size_t k =
        static_cast<std::size_t>(it - curveTiles_.begin());
    if (*it == tiles || k == 0)
        return c[k];
    const double t0 = static_cast<double>(curveTiles_[k - 1]);
    const double t1 = static_cast<double>(curveTiles_[k]);
    return c[k - 1] + (c[k] - c[k - 1]) *
                          (static_cast<double>(tiles) - t0) /
                          (t1 - t0);
}

// ---- PlanTree ------------------------------------------------------

PlanTree::PlanTree(const SearchContext &ctx) : ctx_(ctx)
{
    TreeState s;
    s.cut = ctx.defaultCuts();
    s.biasExp.assign(static_cast<std::size_t>(ctx.numOps()), 0);
    s.groupMode.assign(static_cast<std::size_t>(ctx.numSwitches()),
                       kGroupDefault);
    setState(s);
}

TreeState
PlanTree::state() const
{
    return st_;
}

void
PlanTree::setState(const TreeState &s)
{
    ADYNA_ASSERT(
        s.cut.size() == static_cast<std::size_t>(
                            std::max(0, ctx_.numAtoms() - 1)) &&
            s.biasExp.size() ==
                static_cast<std::size_t>(ctx_.numOps()) &&
            s.groupMode.size() ==
                static_cast<std::size_t>(ctx_.numSwitches()),
        "TreeState shape does not match the search context");
    st_ = s;
    recostAll();
}

double
PlanTree::recostAll()
{
    segEnd_.clear();
    segCost_.clear();
    int start = 0;
    for (int a = 0; a < ctx_.numAtoms(); ++a) {
        const bool boundary =
            a + 1 == ctx_.numAtoms() ||
            st_.cut[static_cast<std::size_t>(a)] != 0;
        if (boundary) {
            segEnd_.push_back(a + 1);
            segCost_.push_back(segmentCost(start, a + 1));
            start = a + 1;
        }
    }
    retotal();
    return total_;
}

void
PlanTree::retotal()
{
    total_ = 0.0;
    for (double c : segCost_)
        total_ += c;
}

std::uint64_t
PlanTree::fingerprint(const TreeState &s)
{
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint64_t byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    for (char c : s.cut)
        mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    mix(0xFF);
    for (std::int8_t e : s.biasExp)
        mix(static_cast<std::uint64_t>(
            static_cast<unsigned char>(e)));
    mix(0xFE);
    for (std::uint8_t m : s.groupMode)
        mix(static_cast<std::uint64_t>(m));
    return h;
}

std::uint64_t
PlanTree::fingerprint() const
{
    return fingerprint(st_);
}

std::size_t
PlanTree::segOfAtom(int a) const
{
    // First segment whose exclusive end is past the atom.
    const auto it =
        std::upper_bound(segEnd_.begin(), segEnd_.end(), a);
    ADYNA_ASSERT(it != segEnd_.end(), "atom ", a,
                 " outside the segment list");
    return static_cast<std::size_t>(it - segEnd_.begin());
}

double
PlanTree::segmentCost(int atom_begin, int atom_end) const
{
    const int lo = ctx_.atomStart(atom_begin);
    const int hi = ctx_.atomStart(atom_end);
    const int T = ctx_.tiles();

    // ---- branch grouping (mirrors Scheduler::buildSegment) --------
    // unitOf[o - lo]: -1 = own unit, else group id.
    std::vector<int> groupOf(static_cast<std::size_t>(hi - lo), -1);
    int nextGroup = 0;
    if (ctx_.groupingEnabled()) {
        for (const auto &sw : ctx_.switches()) {
            const GroupMode mode = static_cast<GroupMode>(
                st_.groupMode[static_cast<std::size_t>(
                    &sw - ctx_.switches().data())]);
            const double threshold =
                ctx_.groupActivityThreshold() * groupModeScale(mode);
            std::vector<std::size_t> low;
            for (std::size_t b = 0; b < sw.branches.size(); ++b) {
                bool inSeg = false;
                for (int o : sw.branchOps[b])
                    inSeg |= o >= lo && o < hi;
                if (inSeg && sw.activity[b] < threshold)
                    low.push_back(b);
            }
            if (low.size() < 2)
                continue;
            const int gid = nextGroup++;
            for (std::size_t b : low)
                for (int o : sw.branchOps[b])
                    if (o >= lo && o < hi)
                        groupOf[static_cast<std::size_t>(o - lo)] =
                            gid;
        }
    }

    // ---- allocation units ------------------------------------------
    struct Unit
    {
        double allocW = 0.0; ///< biased weight (drives tiles)
        double weight = 0.0; ///< weight bytes
        int tiles = 1;
        std::vector<int> opsIdx; ///< member stage-op indices
    };
    std::vector<Unit> units;
    std::vector<int> groupUnit(static_cast<std::size_t>(nextGroup),
                               -1);
    for (int o = lo; o < hi; ++o) {
        const int gid = groupOf[static_cast<std::size_t>(o - lo)];
        std::size_t ui;
        if (gid >= 0 &&
            groupUnit[static_cast<std::size_t>(gid)] >= 0) {
            ui = static_cast<std::size_t>(
                groupUnit[static_cast<std::size_t>(gid)]);
        } else {
            ui = units.size();
            units.push_back({});
            if (gid >= 0)
                groupUnit[static_cast<std::size_t>(gid)] =
                    static_cast<int>(ui);
        }
        units[ui].allocW +=
            ctx_.work(o) *
            biasOf(st_.biasExp[static_cast<std::size_t>(o)]);
        units[ui].weight += ctx_.weightBytes(o);
        units[ui].opsIdx.push_back(o);
    }

    // ---- fold the smallest units while they outnumber tiles --------
    while (static_cast<int>(units.size()) > T) {
        std::size_t a = 0, b = 1;
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (units[i].allocW < units[a].allocW) {
                b = a;
                a = i;
            } else if (i != a && units[i].allocW < units[b].allocW) {
                b = i;
            }
        }
        if (a > b)
            std::swap(a, b);
        units[a].allocW += units[b].allocW;
        units[a].weight += units[b].weight;
        units[a].opsIdx.insert(units[a].opsIdx.end(),
                               units[b].opsIdx.begin(),
                               units[b].opsIdx.end());
        units.erase(units.begin() + static_cast<std::ptrdiff_t>(b));
    }

    // ---- frequency-weighted tile counts ----------------------------
    double totalAlloc = 0.0;
    for (const Unit &u : units)
        totalAlloc += u.allocW;
    if (totalAlloc <= 0.0)
        totalAlloc = 1.0;
    std::vector<double> fractional(units.size());
    int used = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        const double ideal =
            units[i].allocW / totalAlloc * static_cast<double>(T);
        units[i].tiles = std::max(1, static_cast<int>(ideal));
        fractional[i] = ideal - static_cast<double>(units[i].tiles);
        used += units[i].tiles;
    }
    while (used > T) {
        std::size_t big = 0;
        for (std::size_t i = 1; i < units.size(); ++i)
            if (units[i].tiles > units[big].tiles)
                big = i;
        --units[big].tiles;
        --used;
    }
    while (used < T) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < units.size(); ++i)
            if (fractional[i] > fractional[best])
                best = i;
        ++units[best].tiles;
        fractional[best] -= 1.0;
        ++used;
    }

    // ---- price the pipeline ----------------------------------------
    // A segment streams surrogateBatches() batches. Stages pipeline
    // both across batches and within one (a consumer starts once the
    // producer's first blocks arrive), so the steady state pays the
    // slower of the bottleneck stage and the segment's HBM traffic
    // per batch, and the fill is roughly one more such period — not
    // the sum of all stage times. Unit times come off the measured
    // kernel cost curve, which is what prices over-splitting: a
    // too-wide tile group scales sublinearly, and a boundary that
    // hands every op the whole grid buys little compute while paying
    // the DRAM round trips below. Streamed weights overlap their
    // stage's compute (double-buffered prefetch bounds completion,
    // not start): a non-resident unit costs the max of the two while
    // its bytes still count against the shared HBM bandwidth.
    const double perTileBudget = ctx_.spadBytes() * 0.6;
    double bottleneck = 0.0;
    double residentBytes = 0.0;
    double streamBytes = 0.0;
    for (const Unit &u : units) {
        const double minTiles =
            perTileBudget > 0.0
                ? std::ceil(u.weight / perTileBudget)
                : 0.0;
        const bool resident =
            static_cast<double>(u.tiles) >= minTiles;
        double t = 0.0;
        for (int o : u.opsIdx)
            t += ctx_.opCycles(o, u.tiles);
        if (resident) {
            residentBytes += u.weight;
        } else {
            t = std::max(t, u.weight / ctx_.hbmBytesPerCycle());
            streamBytes += u.weight;
        }
        bottleneck = std::max(bottleneck, t);
    }

    // ---- DRAM activation traffic -----------------------------------
    // The engine store-and-forwards every edge whose producer lives
    // outside the segment through HBM, and writes back every stage
    // some other segment (or a graph output) consumes. This traffic
    // is what a boundary really costs: without it the surrogate
    // rewards unbounded splitting (each segment then gets the whole
    // grid for fewer ops).
    double dramBytes = 0.0;
    for (int o = lo; o < hi; ++o) {
        dramBytes += ctx_.externalInBytes(o);
        for (const auto &e : ctx_.inEdges(o))
            if (e.producer < lo || e.producer >= hi)
                dramBytes += e.bytes;
        bool writesOut = ctx_.feedsOutput(o);
        if (!writesOut) {
            for (int c : ctx_.consumers(o)) {
                if (c < lo || c >= hi) {
                    writesOut = true;
                    break;
                }
            }
        }
        if (writesOut)
            dramBytes += ctx_.outBytes(o);
    }
    const double perBatchDram =
        (dramBytes + streamBytes) / ctx_.hbmBytesPerCycle();

#ifdef ADYNA_SEARCH_DEBUG
    {
        static int dumps = 0;
        if (dumps < 4) {
            ++dumps;
            std::fprintf(stderr,
                         "[seg dbg] atoms [%d,%d) units=%zu T=%d "
                         "bottleneck=%.0f dram/b=%.0f "
                         "resident=%.0f stream=%.0f\n",
                         atom_begin, atom_end, units.size(), T,
                         bottleneck, perBatchDram, residentBytes,
                         streamBytes);
            for (const Unit &u : units) {
                double t = 0.0;
                for (int o : u.opsIdx)
                    t += ctx_.opCycles(o, u.tiles);
                std::fprintf(stderr,
                             "  unit tiles=%d ops=%zu t=%.0f "
                             "weight=%.0f\n",
                             u.tiles, u.opsIdx.size(), t, u.weight);
            }
        }
    }
#endif

    return (static_cast<double>(ctx_.surrogateBatches()) + 1.0) *
               std::max(bottleneck, perBatchDram) +
           residentBytes / ctx_.hbmBytesPerCycle() +
           ctx_.segmentFixedCost();
}

bool
PlanTree::apply(const Mutation &m, Undo &undo)
{
    undo.mut = m;
    undo.oldEnds.clear();
    undo.oldCosts.clear();
    undo.segIdx.clear();
    undo.structural = false;

    switch (m.kind) {
    case Mutation::kBoundaryToggle: {
        if (m.index < 0 ||
            m.index >= static_cast<int>(st_.cut.size()))
            return false;
        const std::size_t g = static_cast<std::size_t>(m.index);
        undo.structural = true;
        if (st_.cut[g]) {
            // Merge the two segments meeting at gap g.
            const std::size_t s = segOfAtom(m.index);
            ADYNA_ASSERT(s + 1 < segEnd_.size(),
                         "cut bookkeeping out of sync");
            undo.segAt = s;
            undo.oldEnds = {segEnd_[s], segEnd_[s + 1]};
            undo.oldCosts = {segCost_[s], segCost_[s + 1]};
            undo.newCount = 1;
            const int start =
                s == 0 ? 0 : segEnd_[s - 1];
            const double merged =
                segmentCost(start, segEnd_[s + 1]);
            st_.cut[g] = 0;
            segEnd_.erase(segEnd_.begin() +
                          static_cast<std::ptrdiff_t>(s));
            segCost_.erase(segCost_.begin() +
                           static_cast<std::ptrdiff_t>(s));
            segCost_[s] = merged;
        } else {
            // Split the segment containing gap g after atom g.
            const std::size_t s = segOfAtom(m.index);
            const int start = s == 0 ? 0 : segEnd_[s - 1];
            const int end = segEnd_[s];
            undo.segAt = s;
            undo.oldEnds = {end};
            undo.oldCosts = {segCost_[s]};
            undo.newCount = 2;
            const double c1 = segmentCost(start, m.index + 1);
            const double c2 = segmentCost(m.index + 1, end);
            st_.cut[g] = 1;
            segEnd_.insert(segEnd_.begin() +
                               static_cast<std::ptrdiff_t>(s),
                           m.index + 1);
            segCost_.insert(segCost_.begin() +
                                static_cast<std::ptrdiff_t>(s),
                            c1);
            segCost_[s + 1] = c2;
        }
        break;
    }
    case Mutation::kTileNudge: {
        if (m.index < 0 ||
            m.index >= static_cast<int>(st_.biasExp.size()))
            return false;
        const std::size_t i = static_cast<std::size_t>(m.index);
        const int next = st_.biasExp[i] + m.delta;
        if (next < -kBiasRange || next > kBiasRange ||
            m.delta == 0)
            return false;
        undo.oldVal = st_.biasExp[i];
        st_.biasExp[i] = static_cast<std::int8_t>(next);
        const std::size_t s = segOfAtom(ctx_.atomOfOp(m.index));
        undo.segIdx = {s};
        undo.oldCosts = {segCost_[s]};
        const int start = s == 0 ? 0 : segEnd_[s - 1];
        segCost_[s] = segmentCost(start, segEnd_[s]);
        break;
    }
    case Mutation::kRegroup: {
        if (!ctx_.groupingEnabled() || m.index < 0 ||
            m.index >= static_cast<int>(st_.groupMode.size()))
            return false;
        const std::size_t k = static_cast<std::size_t>(m.index);
        if (m.delta < 0 || m.delta > kGroupAggressive ||
            st_.groupMode[k] == static_cast<std::uint8_t>(m.delta))
            return false;
        undo.oldVal = st_.groupMode[k];
        st_.groupMode[k] = static_cast<std::uint8_t>(m.delta);
        // Re-price every segment holding one of the switch's ops
        // (one segment for merged switches; possibly several for
        // sink switches whose branches span atoms).
        for (int o : ctx_.switches()[k].ops) {
            const std::size_t s = segOfAtom(ctx_.atomOfOp(o));
            if (std::find(undo.segIdx.begin(), undo.segIdx.end(),
                          s) == undo.segIdx.end())
                undo.segIdx.push_back(s);
        }
        std::sort(undo.segIdx.begin(), undo.segIdx.end());
        for (std::size_t s : undo.segIdx) {
            undo.oldCosts.push_back(segCost_[s]);
            const int start = s == 0 ? 0 : segEnd_[s - 1];
            segCost_[s] = segmentCost(start, segEnd_[s]);
        }
        break;
    }
    }
    retotal();
    return true;
}

void
PlanTree::revert(const Undo &undo)
{
    switch (undo.mut.kind) {
    case Mutation::kBoundaryToggle: {
        const std::size_t g =
            static_cast<std::size_t>(undo.mut.index);
        st_.cut[g] = st_.cut[g] ? 0 : 1;
        segEnd_.erase(
            segEnd_.begin() +
                static_cast<std::ptrdiff_t>(undo.segAt),
            segEnd_.begin() +
                static_cast<std::ptrdiff_t>(undo.segAt +
                                            undo.newCount));
        segCost_.erase(
            segCost_.begin() +
                static_cast<std::ptrdiff_t>(undo.segAt),
            segCost_.begin() +
                static_cast<std::ptrdiff_t>(undo.segAt +
                                            undo.newCount));
        segEnd_.insert(segEnd_.begin() +
                           static_cast<std::ptrdiff_t>(undo.segAt),
                       undo.oldEnds.begin(), undo.oldEnds.end());
        segCost_.insert(segCost_.begin() +
                            static_cast<std::ptrdiff_t>(undo.segAt),
                        undo.oldCosts.begin(), undo.oldCosts.end());
        break;
    }
    case Mutation::kTileNudge:
        st_.biasExp[static_cast<std::size_t>(undo.mut.index)] =
            static_cast<std::int8_t>(undo.oldVal);
        segCost_[undo.segIdx[0]] = undo.oldCosts[0];
        break;
    case Mutation::kRegroup:
        st_.groupMode[static_cast<std::size_t>(undo.mut.index)] =
            static_cast<std::uint8_t>(undo.oldVal);
        for (std::size_t i = 0; i < undo.segIdx.size(); ++i)
            segCost_[undo.segIdx[i]] = undo.oldCosts[i];
        break;
    }
    retotal();
}

core::PlanOverride
PlanTree::toOverride(const SearchContext &ctx, const TreeState &s)
{
    core::PlanOverride out;
    std::vector<OpId> current;
    for (int a = 0; a < ctx.numAtoms(); ++a) {
        const auto &atom =
            ctx.atoms()[static_cast<std::size_t>(a)];
        current.insert(current.end(), atom.begin(), atom.end());
        const bool boundary =
            a + 1 == ctx.numAtoms() ||
            s.cut[static_cast<std::size_t>(a)] != 0;
        if (boundary) {
            out.partition.push_back(std::move(current));
            current.clear();
        }
    }
    for (std::size_t i = 0; i < s.biasExp.size(); ++i)
        if (s.biasExp[i] != 0)
            out.allocBias[ctx.ops()[i]] = biasOf(s.biasExp[i]);
    for (std::size_t k = 0; k < s.groupMode.size(); ++k)
        if (s.groupMode[k] != kGroupDefault)
            out.groupScale[ctx.switches()[k].switchOp] =
                groupModeScale(
                    static_cast<GroupMode>(s.groupMode[k]));
    return out;
}

std::vector<OpId>
PlanTree::diffOps(const SearchContext &ctx, const TreeState &a,
                  const TreeState &b)
{
    std::vector<OpId> out;
    for (std::size_t i = 0; i < a.biasExp.size(); ++i)
        if (a.biasExp[i] != b.biasExp[i])
            out.push_back(ctx.ops()[i]);
    for (std::size_t k = 0; k < a.groupMode.size(); ++k)
        if (a.groupMode[k] != b.groupMode[k])
            for (int o : ctx.switches()[k].ops)
                out.push_back(
                    ctx.ops()[static_cast<std::size_t>(o)]);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace adyna::search
