/**
 * @file
 * Anytime, budget-bounded schedule search: K simulated-annealing
 * chains over the cheap-mutate plan tree (tree.hh), a greedy refine
 * tail per chain, and a serial materialization pass that evaluates
 * the surviving candidates on the real engine. The whole run is
 * byte-stable across thread counts: the chain count is configuration
 * (not --jobs), every chain owns a seeded RNG stream, and candidates
 * are merged/tie-broken by (cost, fingerprint).
 *
 * Budget semantics: the search charges itself a modeled cycle cost
 * (mutations, materializations, store compiles) against
 * SearchConfig::cycleBudget and stops before it would overspend —
 * the serve runtime uses this to run the search inside its watchdog
 * re-schedule budget with the heuristic schedule as the fallback.
 */

#ifndef ADYNA_SEARCH_SEARCH_HH
#define ADYNA_SEARCH_SEARCH_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch/hwconfig.hh"
#include "arch/profiler.hh"
#include "common/parallel.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "core/search_stats.hh"
#include "costmodel/mapper.hh"
#include "graph/dyngraph.hh"
#include "kernels/store_cache.hh"
#include "search/tree.hh"
#include "trace/trace.hh"

namespace adyna::search {

/** Search policy knobs. */
struct SearchConfig
{
    /** Independent SA chains. Part of the result's identity — NOT
     * derived from the thread count, so results are byte-stable
     * across --jobs. */
    int chains = 4;

    /** Total mutation proposals across all chains (split evenly;
     * the anytime knob). */
    int mutationBudget = 4000;

    /** Tail fraction of each chain's proposals spent on greedy
     * hill-climbing from the chain's best state. */
    double refineFraction = 0.25;

    /** Candidates materialized and evaluated on the real engine
     * after merging the chains (the beam width). */
    int materializeTop = 4;

    /** Initial SA temperature, relative to the starting surrogate
     * cost (accepting a +8% move at probability 1/e). */
    double initTemp = 0.08;

    /** Final relative temperature (geometric decay endpoint). */
    double tempDecayTo = 1e-3;

    /** RNG seed; chain i derives an independent stream from it. */
    std::uint64_t seed = 1;

    // ---- modeled self-cost (the budget curency) -------------------

    /** Modeled cycles per mutation proposal. */
    Cycles mutateCycles = 40;

    /** Modeled cycles per candidate materialization + evaluation
     * (delta build, validation, probe replay). */
    Cycles materializeCycles = 6000;

    /** Modeled cycles per kernel store compiled during a
     * materialization (matches ServeConfig::storeCompileCycles). */
    Cycles storeCompileCycles = 2000;

    /**
     * Total modeled cycles the search may spend; 0 = unbounded (the
     * offline setting). The search clamps its mutation count up
     * front and pre-charges a conservative bound before each
     * materialization, so the spend NEVER exceeds this cap.
     */
    Cycles cycleBudget = 0;

    // ---- surrogate calibration ------------------------------------

    /** Batches the surrogate prices a segment pipeline over. */
    int surrogateBatches = 8;

    /** Fixed surrogate cost per segment (activation/drain). */
    double segmentFixedCycles = 2000.0;
};

/** Driver for one or more searches over a fixed design point. */
class ScheduleSearch
{
  public:
    /** The engine/policy evaluate candidates exactly as the caller's
     * runs would; the mapper may be shared (its counters are
     * snapshot-scoped per run()). All references must outlive the
     * search. */
    ScheduleSearch(const graph::DynGraph &dg,
                   const arch::HwConfig &hw,
                   costmodel::Mapper &mapper, core::ExecPolicy policy,
                   SearchConfig cfg);

    /** Run chains on @p pool (nullptr = serial). Results are
     * identical either way. */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    const SearchConfig &config() const { return cfg_; }

    /** Re-cap the next run()'s modeled spend (the serve loop sets
     * this to whatever the watchdog budget leaves after each
     * heuristic rebuild). 0 = unbounded. */
    void setCycleBudget(Cycles budget) { cfg_.cycleBudget = budget; }

    /** Re-seed the next run()'s chain streams (the serve loop salts
     * the configured seed per re-schedule so successive searches
     * explore independently). */
    void setSeed(std::uint64_t seed) { cfg_.seed = seed; }

    /** Outcome of one search run. */
    struct Result
    {
        /** The winning schedule: a searched one when `improved`,
         * otherwise a copy of the base. */
        core::Schedule schedule;

        /** Override reproducing the winning schedule (meaningful
         * only when `improved`; the caller must keep it alive while
         * installed on a scheduler). */
        core::PlanOverride planOverride;

        /** Tree state of the winner (the incumbent for the next
         * online search). */
        TreeState tree;

        /** A searched candidate strictly beat the base schedule. */
        bool improved = false;

        /** Probe makespan of the base schedule, cycles. */
        Tick heuristicCost = 0;

        /** Probe makespan of the winner (== heuristicCost when not
         * improved). */
        Tick searchedCost = 0;

        /** Modeled cycles spent (<= cfg.cycleBudget when bounded). */
        Cycles spentCycles = 0;
    };

    /**
     * Search for a schedule beating @p base on the @p probe batches.
     *
     * @param scheduler the scheduler that built @p base (healthy-tile
     *        state and store cache are reused; its plan-override
     *        pointer is restored before returning).
     * @param incumbent tree state that produced @p base, nullptr when
     *        @p base is the pure heuristic schedule.
     * @param probe recent batch routings candidates are scored on
     *        (must be non-empty).
     * @param store_cache the cache @p scheduler compiles through
     *        (nullptr when disabled) — its unique-insertion delta
     *        prices store compiles against the budget.
     * @param stats accumulates counters across runs when non-null
     *        (satellite: counter deltas are snapshot-scoped to this
     *        run, so installed-schedule stats stay clean).
     */
    Result run(core::Scheduler &scheduler, const core::Schedule &base,
               const TreeState *incumbent,
               const std::map<OpId, double> &expectations,
               const std::map<OpId, std::vector<std::int64_t>>
                   &kernel_values,
               const arch::Profiler *profiler,
               const std::vector<trace::BatchRouting> &probe,
               kernels::KernelStoreCache *store_cache,
               core::SearchStats *stats);

    /** One chain's surviving candidates, by surrogate cost. */
    struct Candidate
    {
        double surrogate = 0.0;
        std::uint64_t fp = 0;
        TreeState state;
    };

    struct ChainResult
    {
        std::uint64_t tried = 0;
        std::uint64_t accepted = 0;
        std::vector<Candidate> top;
    };

  private:
    /** Run one SA + refine chain from @p start. */
    ChainResult runChain(const SearchContext &ctx,
                         const TreeState &start, int chain,
                         int proposals) const;

    const graph::DynGraph &dg_;
    arch::HwConfig hw_;
    costmodel::Mapper &mapper_;
    core::ExecPolicy policy_;
    SearchConfig cfg_;
    ThreadPool *pool_ = nullptr;

    /** Private evaluation engine: its plan/exec caches stay warm
     * across candidates and its counters never leak into the
     * caller's serving engine. */
    core::Engine engine_;
};

} // namespace adyna::search

#endif // ADYNA_SEARCH_SEARCH_HH
