/**
 * @file
 * The pod's front-end request router: picks a back-end chip for each
 * arriving request from a per-chip status snapshot. Three policies:
 *
 *  - LeastLoaded: the chip with the smallest projected backlog
 *    (engine busy horizon plus queued work), ties to the lowest chip
 *    id — deterministic, so reports are byte-stable.
 *  - Affinity: the chip whose installed schedule's mean dynamic load
 *    is nearest the request's own routing signature
 *    (trace::totalDynLoad). Requests that look like the traffic a
 *    chip's schedule was built for keep that chip's drift monitor
 *    quiet, avoiding drift-triggered reconfigs; ties break to the
 *    lower projected load, then the lowest id.
 *  - RoundRobin: a rotating cursor over the eligible chips — the
 *    no-information baseline.
 *
 * Backpressure: a chip whose queue has reached the router's
 * queueLimit is skipped (the request is *diverted* to the next chip
 * in policy order), and when every eligible chip is full the request
 * is shed at the front door — brownout instead of unbounded queues.
 *
 * Fail-over: with reRouteOnFailure (adaptive) dark chips are simply
 * ineligible. Without it (static pinning) the router ignores health
 * and keeps dispatching as if every chip were alive — the runtime
 * then sheds whatever lands on a dark chip, which is exactly the
 * strawman the adaptive-beats-static gate measures against.
 */

#ifndef ADYNA_POD_ROUTER_HH
#define ADYNA_POD_ROUTER_HH

#include <cstdint>
#include <vector>

namespace adyna::pod {

/** The supported dispatch policies. */
enum class RoutePolicy {
    LeastLoaded, ///< smallest projected backlog
    Affinity,    ///< nearest installed-schedule load signature
    RoundRobin,  ///< rotating cursor
};

/** Canonical lower-case name of a routing policy. */
const char *routePolicyName(RoutePolicy policy);

/** Router options. */
struct RouterConfig
{
    RoutePolicy policy = RoutePolicy::LeastLoaded;

    /** Per-chip admission backpressure: a chip with this many
     * requests queued is skipped, and when every eligible chip is
     * full the request is shed. 0 = unlimited. */
    std::size_t queueLimit = 0;

    /** Route around dark chips (adaptive fail-over); false is static
     * pinning — the router pretends every chip is alive and the
     * runtime sheds what lands on a dark one. */
    bool reRouteOnFailure = true;
};

/** One chip's status snapshot at route time. */
struct ChipStatus
{
    /** The chip is up (not struck by chip_fail). */
    bool alive = true;

    /** The chip serves the request's model (placement-dependent;
     * always true under replicated placement). */
    bool servesModel = true;

    /** The chip's circuit breaker admits new work (an open breaker
     * drains organically: queued work keeps executing but no new
     * arrivals land). Always true when the breaker is off. */
    bool admittable = true;

    /** Requests sitting in the chip's admission queue. */
    std::size_t queued = 0;

    /** Projected backlog at route time, ticks: engine busy horizon
     * plus the queued requests' estimated service. */
    double load = 0.0;

    /** Mean per-request dynamic load the chip's installed schedule
     * was built for (the affinity target). */
    double installedLoadMean = 0.0;
};

/** Where one request goes. */
struct RouteDecision
{
    /** Shed at the front door (no eligible chip had room). */
    static constexpr int kShed = -1;

    int chip = kShed;

    /** Affinity policy only: the chosen chip was the
     * nearest-signature chip (not a backpressure divert). */
    bool affinityHit = false;

    /** Backpressure skipped the policy's first choice. */
    bool diverted = false;
};

/** Deterministic front-end dispatch over K chips. */
class Router
{
  public:
    Router(RouterConfig cfg, int chips);

    /**
     * Pick a chip for a request with routing signature @p signature
     * (trace::totalDynLoad of its dynamism draw; only Affinity reads
     * it). @p status must have one entry per chip.
     */
    RouteDecision route(const std::vector<ChipStatus> &status,
                        double signature);

    // Cumulative accounting across route() calls.
    std::uint64_t affinityHits() const { return affinityHits_; }
    std::uint64_t affinityMisses() const { return affinityMisses_; }
    std::uint64_t diverted() const { return diverted_; }
    std::uint64_t shed() const { return shed_; }

    const RouterConfig &config() const { return cfg_; }

  private:
    bool eligible(const ChipStatus &s) const;
    bool hasRoom(const ChipStatus &s) const;

    RouterConfig cfg_;
    int chips_ = 0;
    int cursor_ = 0; ///< RoundRobin position

    std::uint64_t affinityHits_ = 0;
    std::uint64_t affinityMisses_ = 0;
    std::uint64_t diverted_ = 0;
    std::uint64_t shed_ = 0;
};

} // namespace adyna::pod

#endif // ADYNA_POD_ROUTER_HH
