/**
 * @file
 * The multi-chip pod runtime: K independent chip back-ends — each a
 * full single-chip serving loop with its own Chip (NoC, HBM, fault
 * state), Scheduler, Engine, drift monitor, and admission queue —
 * behind a front-end Router, with every chip-boundary payload charged
 * on the pod Interconnect (see interconnect.hh / router.hh). This is
 * the ROADMAP's "millions of users" scale-out tier: one open-loop
 * arrival stream at pod-aggregate rate fans out over the chips, and
 * goodput should scale near-linearly with K.
 *
 * Placement is replicated (one model on every chip) or partitioned
 * (each model owns a contiguous chip group sized by its traffic
 * fraction; a TrafficSplitter draws each arrival's model). Routing
 * sees per-chip status snapshots — health, queue depth, projected
 * backlog, and the installed schedule's load signature — so the
 * schedule-affinity policy can steer requests toward chips whose
 * installed schedule already matches them, keeping drift monitors
 * quiet.
 *
 * Pod-level fail-over composes with src/fault: the pod's fault plan
 * holds chip_fail events (whole chips going dark, optionally healing)
 * that the runtime intercepts at the router tier — the dark chip's
 * queue is drained and re-routed onto the survivors (adaptive) or
 * shed (static pinning), arrivals are steered or shed likewise, and a
 * healing chip re-streams its weight working set over the
 * interconnect before rejoining. Per-chip fault plans (tile/link/
 * probe/store-fit kinds) replay on each chip's own clock with the
 * single-chip fail-over path. Brownout backpressure (the router's
 * queueLimit) sheds at the front door instead of letting queues
 * collapse the survivors.
 *
 * A 1-chip, 1-model pod delegates to serve::ServeRuntime verbatim,
 * so its serve report (and JSON bytes) is identical to the
 * single-chip path — the equivalence gate that pins the pod layer as
 * a pure extension.
 */

#ifndef ADYNA_POD_RUNTIME_HH
#define ADYNA_POD_RUNTIME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/hwconfig.hh"
#include "core/engine.hh"
#include "core/scheduler.hh"
#include "costmodel/mapper.hh"
#include "fault/fault.hh"
#include "graph/dyngraph.hh"
#include "pod/breaker.hh"
#include "pod/interconnect.hh"
#include "pod/router.hh"
#include "serve/server.hh"
#include "trace/trace.hh"

namespace adyna::pod {

/** One served model: the graph, its dynamism model, and its share of
 * the pod's traffic. */
struct PodWorkload
{
    const graph::DynGraph *dg = nullptr;

    /** Dynamism model; batchSize must equal the pod's
     * batching.maxBatch (the compiled batch size). */
    trace::TraceConfig traceCfg;

    std::string name;

    /** Fraction of pod arrivals this model receives (fractions must
     * sum to 1; drives both the arrival split and the partitioned
     * chip-group sizing). */
    double trafficFraction = 1.0;
};

/** How models map onto chips. */
enum class Placement {
    Replicated,  ///< one model, served by every chip
    Partitioned, ///< each model owns a contiguous chip group
};

/** Canonical lower-case name of a placement. */
const char *placementName(Placement placement);

/**
 * The pod's reliability layer (DESIGN.md §15): hedged retries,
 * per-request timeouts, per-chip circuit breakers fed by health
 * probes, and end-to-end payload checksums. Every default leaves all
 * simulation paths untouched, so a default-configured pod stays
 * byte-identical to the pre-reliability runtime.
 */
struct ReliabilityConfig
{
    /** Hedge a still-incomplete request onto the next-best chip once
     * its age crosses the latency-percentile trigger. First
     * completion wins; the loser is cancelled (queued / in-flight)
     * or its duplicate completion discarded (already executing). */
    bool hedging = false;

    /** Hedge when a request's age exceeds this quantile of recent
     * completed pod latencies. */
    double hedgeQuantile = 0.95;

    /** Trigger clamps as fractions of the SLO deadline: the floor
     * keeps cold-start hedges off the fast path, the cap guarantees
     * the hedge fires while the deadline is still reachable. */
    double hedgeMinDeadlineFraction = 0.25;
    double hedgeMaxDeadlineFraction = 0.75;

    /** Completed-latency window the trigger quantile reads. */
    int hedgeWindow = 128;

    /** Graceful brownout: a hedge whose projected completion (queue
     * + interconnect + service estimate) would miss the deadline
     * anyway is suppressed and counted instead of issued. */
    bool brownout = true;

    /** Abandon a request outstanding past this many SLO deadlines —
     * shed-with-accounting, every copy cancelled. 0 = no timeouts. */
    double timeoutDeadlineFactor = 0.0;

    /** Per-chip circuit breaker driven by health-probe pings; an
     * open breaker drains organically (queued work keeps executing,
     * no new admissions) and re-admits via half-open probation. */
    bool breaker = false;
    BreakerConfig breakerCfg;

    /** Health-probe ping cadence, cycles. */
    Cycles probeIntervalCycles = 400'000;

    /** Ping payload serialized each way on the chip's links,
     * bytes. */
    Bytes probePayloadBytes = 64;

    /** Modeled chip-side ping service, cycles; a chip_slow straggler
     * dilates it, which is what the breaker's latency trip sees. */
    Cycles probeServiceCycles = 500;

    /** End-to-end checksums on every interconnect transfer:
     * detect-and-retry of corrupted payloads plus the per-chip SDC
     * counter that can trip the breaker. */
    bool checksums = false;
};

/** Aggregated reliability-layer counters (serialized as
 * "router_stats" only while the layer is active). */
struct PodReliabilityStats
{
    std::uint64_t hedges = 0;         ///< hedge copies issued
    std::uint64_t hedgeWins = 0;      ///< hedge copy finished first
    std::uint64_t hedgeCancelled = 0; ///< loser copies cancelled
    std::uint64_t wastedCompletions = 0; ///< duplicate completions
    std::uint64_t brownoutSheds = 0;  ///< hedges suppressed
    std::uint64_t timeouts = 0;       ///< requests abandoned
    std::uint64_t probes = 0;         ///< health pings issued
    std::uint64_t probeFailures = 0;  ///< pings lost (dark chip)
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerReopens = 0;
    std::uint64_t breakerCloses = 0;
    std::uint64_t linkRetries = 0;
    std::uint64_t integrityRetries = 0;
    std::uint64_t corruptionsInjected = 0;
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t corruptionsUndetected = 0;
    Bytes icProbeBytes = 0;
    Bytes icRetryBytes = 0;
};

/** Pod-level configuration. */
struct PodConfig
{
    /** Back-end chips in the pod. */
    int chips = 2;

    Placement placement = Placement::Replicated;
    RouterConfig router;
    InterconnectConfig interconnect;

    /**
     * The per-chip serving template: arrival is the pod-aggregate
     * open-loop stream, numRequests the pod-wide total; batching /
     * slo / drift / re-scheduling knobs apply to every chip alike.
     * admissionControl must stay off for K > 1 — the router's
     * queueLimit is the pod's admission backpressure.
     */
    serve::ServeConfig serve;

    /** Pod-scope fault timeline: pod-scope kinds only (chip_fail /
     * chip_slow / link_flaky / payload_corrupt, see fault/fault.hh),
     * chip indices in [0, chips). */
    fault::FaultPlan faultPlan;

    /** Per-chip fault timelines (tile/link/probe/store-fit kinds;
     * pod-scope kinds are rejected here). Empty, or one plan per
     * chip. */
    std::vector<fault::FaultPlan> chipFaultPlans;

    /** Seed for fault probe streams; 0 derives one from serve.seed. */
    std::uint64_t faultSeed = 0;

    /** Hedging / breaker / checksum layer (all off by default). */
    ReliabilityConfig reliability;
};

/** One chip's slice of the pod report. */
struct ChipResult
{
    int id = 0;

    /** Name of the model this chip serves. */
    std::string model;

    /** The chip was dark at the end of the run. */
    bool dark = false;

    /** Requests the router delivered to this chip (including
     * re-routes onto it). */
    std::uint64_t routed = 0;

    /** Requests re-routed onto this chip off a dark chip's queue. */
    std::uint64_t rerouted = 0;

    /** Requests drained off this chip's queue when it went dark. */
    std::uint64_t drained = 0;

    /** Hedge copies delivered to this chip (reliability layer). */
    std::uint64_t hedged = 0;

    /** Checksum-detected corruptions on this chip's links
     * (reliability layer). */
    std::uint64_t sdc = 0;

    /** The chip's full single-chip-equivalent serving report. */
    serve::ServeReport serve;
};

/** Everything one pod run reports. */
struct PodReport
{
    /** routePolicyName of the router policy. */
    std::string policy;

    /** placementName of the model placement. */
    std::string placement;

    int chipCount = 0;

    /** Pod-wide completions. */
    std::uint64_t requests = 0;

    /** Arrivals shed at the front door (router backpressure or no
     * eligible chip). */
    std::uint64_t shedRequests = 0;

    /** Requests lost to a dark chip under static pinning (routed to
     * it while dark, or drained un-re-routable). */
    std::uint64_t darkChipSheds = 0;

    /** Requests re-routed off dark chips onto survivors. */
    std::uint64_t rerouted = 0;

    /** Requests drained off dark chips' queues. */
    std::uint64_t drained = 0;

    /** Requests backpressure diverted off the policy's first
     * choice. */
    std::uint64_t diverted = 0;

    // Affinity policy accounting (zero under other policies).
    std::uint64_t affinityHits = 0;
    std::uint64_t affinityMisses = 0;

    // chip_fail events applied.
    std::uint64_t chipFailEvents = 0;
    std::uint64_t chipHeals = 0;

    // Interconnect accounting.
    std::uint64_t icTransfers = 0;
    Bytes icRequestBytes = 0;
    Bytes icResponseBytes = 0;
    Bytes icWeightBytes = 0;

    /** Mean offered load measured from the realized pod arrivals. */
    double offeredRps = 0.0;

    /** Pod-wide completions per second over the serving horizon. */
    double achievedRps = 0.0;

    // Pod-level end-to-end latency (arrival at the router to
    // response delivery back through the interconnect).
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;

    double sloAttainment = 0.0;
    double goodputRps = 0.0;

    /** Latest response-delivery tick. */
    Tick horizonTicks = 0;

    /** Reliability-layer counters; serialized (as "router_stats")
     * only while reliabilityActive. */
    PodReliabilityStats reliability;

    /** Any reliability machinery was live this run (hedging, a
     * breaker, checksums, or a gray-failure plan). Off keeps the
     * JSON bytes identical to the pre-reliability report. */
    bool reliabilityActive = false;

    /** Per-chip results, ordered by chip id (byte-stable JSON). */
    std::vector<ChipResult> chips;
};

/** The run as a JSON object: pod-level counters plus a "chips" array
 * (ordered by chip id) whose elements are each chip's serve JSON
 * (serve::toJson bytes) prefixed with its id / model / routing
 * counters. */
std::string toJson(const PodReport &report);

/** The pod-level router/reliability aggregate as one JSON object
 * (fixed key order, byte-stable): front-door sheds and diverts plus
 * every PodReliabilityStats counter. Embedded in toJson as
 * "router_stats" while reliabilityActive. */
std::string routerStatsJson(const PodReport &report);

/** Multi-chip pod serving simulation. */
class PodRuntime
{
  public:
    /** @param workloads the served models (one under Replicated);
     * the graphs must outlive the runtime. */
    PodRuntime(std::vector<PodWorkload> workloads, arch::HwConfig hw,
               core::SchedulerConfig sched_cfg,
               core::ExecPolicy policy, PodConfig cfg);

    /** Share a mapping-search memo across chips / runtimes (same
     * contract as ServeRuntime::setSharedMapper). */
    void setSharedMapper(costmodel::Mapper *mapper);

    /** Use @p cache for compiled-store reuse across chips (same
     * contract as ServeRuntime::setSharedStoreCache). */
    void setSharedStoreCache(kernels::KernelStoreCache *cache);

    /** Build kernel stores on @p pool during (re-)schedules. */
    void setSchedulerPool(ThreadPool *pool);

    /** Serve PodConfig::serve.numRequests requests and report. */
    PodReport run();

  private:
    /** 1-chip, 1-model delegation to serve::ServeRuntime
     * (byte-identical serve report). */
    PodReport runSingle();

    std::vector<PodWorkload> workloads_;
    arch::HwConfig hw_;
    core::SchedulerConfig schedCfg_;
    core::ExecPolicy policy_;
    PodConfig cfg_;

    /** chipModel_[c] = index into workloads_ chip c serves. */
    std::vector<int> chipModel_;

    costmodel::Mapper *sharedMapper_ = nullptr;
    kernels::KernelStoreCache *sharedStoreCache_ = nullptr;
    ThreadPool *schedulerPool_ = nullptr;
};

} // namespace adyna::pod

#endif // ADYNA_POD_RUNTIME_HH
