#include "pod/runtime.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <tuple>

#include "arch/chip.hh"
#include "arch/profiler.hh"
#include "common/logging.hh"
#include "core/sampling.hh"
#include "core/validate.hh"
#include "serve/validate.hh"

namespace adyna::pod {

namespace {

/** Same synthetic total-load series the single-chip runtime feeds
 * its drift monitor (see serve/server.cc for the rationale). */
constexpr OpId kLoadSeriesOp = 0xFFFFFFFFu;

void
recordRequest(arch::Profiler &prof, const graph::DynGraph &dg,
              const trace::BatchRouting &routing)
{
    prof.noteBatch();
    std::int64_t totalLoad = 0;
    for (OpId op : dg.dynamicOps()) {
        const std::int64_t v = routing.dynValue(dg, op);
        prof.recordValue(op, v);
        totalLoad += v;
    }
    prof.recordValue(kLoadSeriesOp, totalLoad);
}

/** Mean per-request dynamic load an expectation set embodies: the
 * affinity target the router compares request signatures
 * (trace::totalDynLoad, a per-sample scalar) against. Expectations
 * are compiled-batch statistics, so divide the batch size out. */
double
loadMean(const graph::DynGraph &dg,
         const std::map<OpId, double> &expectations,
         std::int64_t batch_size)
{
    double sum = 0.0;
    for (OpId op : dg.dynamicOps()) {
        const auto it = expectations.find(op);
        if (it != expectations.end())
            sum += it->second;
    }
    return sum / static_cast<double>(batch_size);
}

/** One chip back-end's complete serving state: the single-chip
 * runtime's locals, packaged so K of them serve behind one router. */
struct ChipBackend
{
    int id = 0;
    int model = 0;
    const PodWorkload *wl = nullptr;
    std::uint64_t seed = 0;

    core::Scheduler scheduler;
    core::Engine engine;
    arch::Chip chip;
    arch::Profiler engineProf;
    arch::Profiler driftProf;
    serve::DriftMonitor monitor;
    serve::Batcher batcher;
    serve::SloTracker slo;

    /** Per-chip (tile/link/probe/store-fit) fault timeline. */
    std::optional<fault::FaultInjector> injector;

    /** Requests routed to this chip but still crossing the
     * interconnect (delivery-ordered — deliveries on one directed
     * link serialize, so arrival ticks are non-decreasing). They
     * enter the Batcher only once the pod clock reaches their
     * delivery tick, preserving the single-chip invariant that
     * everything queued has already arrived. */
    std::deque<serve::Request> inflight;

    std::map<OpId, double> expectations;
    std::map<OpId, double> installedExp;
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    std::map<OpId, std::vector<std::int64_t>> installedKv;
    core::Schedule schedule;

    /** The installed schedule's mean per-request dynamic load (the
     * router's affinity target). */
    double installedLoadMean = 0.0;

    /** Weight working set re-streamed over the interconnect on
     * (re)join. */
    Bytes weightBytes = 0;

    bool dark = false;
    Tick engineFree = 0;

    // Delivered-arrival bookkeeping (per-chip offered rate).
    bool haveArrival = false;
    Tick firstArrival = 0;
    Tick lastArrival = 0;

    std::uint64_t routed = 0;
    std::uint64_t rerouted = 0;
    std::uint64_t hedged = 0;
    std::uint64_t drained = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    int reschedules = 0;
    int driftWindows = 0;
    int failovers = 0;
    int watchdogFallbacks = 0;
    int storeFitFailures = 0;
    int deltaReschedules = 0;
    std::uint64_t segmentsRebuilt = 0;
    std::uint64_t segmentsSpliced = 0;
    double serviceEwma = 0.0;
    bool haveService = false;

    // Shared-cache activity around this chip's own builds.
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;

    ChipBackend(int chip_id, int model_idx, const PodWorkload &w,
                std::uint64_t sd, const arch::HwConfig &hw,
                costmodel::Mapper &mapper,
                const core::SchedulerConfig &sched_cfg,
                const core::ExecPolicy &policy,
                const serve::ServeConfig &serve_cfg)
        : id(chip_id), model(model_idx), wl(&w), seed(sd),
          scheduler(*w.dg, hw, mapper, sched_cfg),
          engine(*w.dg, hw, mapper, policy), chip(hw),
          monitor(serve_cfg.drift), batcher(serve_cfg.batching),
          slo(serve_cfg.slo, hw.tech.freqGhz)
    {
    }
};

/** A pod-scope chip_fail strike or heal on the pod timeline. The
 * gray kinds (chip_slow / link_flaky / payload_corrupt) are
 * stateless spans instead — they never enter this timeline. */
struct PodFaultEvent
{
    Tick at = 0;
    int chip = 0;
    bool recover = false;
};

std::vector<PodFaultEvent>
podFaultTimeline(const fault::FaultPlan &plan)
{
    constexpr Tick kForever = ~Tick{0};
    std::vector<PodFaultEvent> out;
    for (const fault::FaultEvent &ev : plan.events) {
        if (ev.kind != fault::FaultKind::ChipFail)
            continue;
        out.push_back({ev.at, ev.chip, false});
        if (ev.duration > 0 && ev.at <= kForever - ev.duration)
            out.push_back({ev.at + ev.duration, ev.chip, true});
    }
    // Strikes before heals at equal ticks, then by chip id.
    std::stable_sort(out.begin(), out.end(),
                     [](const PodFaultEvent &a,
                        const PodFaultEvent &b) {
                         return std::tuple(a.at, a.recover, a.chip) <
                                std::tuple(b.at, b.recover, b.chip);
                     });
    return out;
}

} // namespace

const char *
placementName(Placement placement)
{
    switch (placement) {
      case Placement::Replicated:
        return "replicated";
      default:
        return "partitioned";
    }
}

std::string
routerStatsJson(const PodReport &r)
{
    const PodReliabilityStats &s = r.reliability;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"sheds\": %llu, \"diverted\": %llu, \"hedges\": %llu, "
        "\"hedge_wins\": %llu, \"hedge_cancelled\": %llu, "
        "\"wasted_completions\": %llu, \"brownout_sheds\": %llu, "
        "\"timeouts\": %llu, \"probes\": %llu, "
        "\"probe_failures\": %llu, \"breaker_trips\": %llu, "
        "\"breaker_reopens\": %llu, \"breaker_closes\": %llu, "
        "\"link_retries\": %llu, \"integrity_retries\": %llu, "
        "\"corruptions_injected\": %llu, "
        "\"corruptions_detected\": %llu, "
        "\"corruptions_undetected\": %llu, "
        "\"ic_probe_bytes\": %llu, \"ic_retry_bytes\": %llu}",
        static_cast<unsigned long long>(r.shedRequests),
        static_cast<unsigned long long>(r.diverted),
        static_cast<unsigned long long>(s.hedges),
        static_cast<unsigned long long>(s.hedgeWins),
        static_cast<unsigned long long>(s.hedgeCancelled),
        static_cast<unsigned long long>(s.wastedCompletions),
        static_cast<unsigned long long>(s.brownoutSheds),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.probes),
        static_cast<unsigned long long>(s.probeFailures),
        static_cast<unsigned long long>(s.breakerTrips),
        static_cast<unsigned long long>(s.breakerReopens),
        static_cast<unsigned long long>(s.breakerCloses),
        static_cast<unsigned long long>(s.linkRetries),
        static_cast<unsigned long long>(s.integrityRetries),
        static_cast<unsigned long long>(s.corruptionsInjected),
        static_cast<unsigned long long>(s.corruptionsDetected),
        static_cast<unsigned long long>(s.corruptionsUndetected),
        static_cast<unsigned long long>(s.icProbeBytes),
        static_cast<unsigned long long>(s.icRetryBytes));
    return buf;
}

std::string
toJson(const PodReport &r)
{
    char buf[1280];
    std::snprintf(
        buf, sizeof(buf),
        "{\"policy\": \"%s\", \"placement\": \"%s\", "
        "\"chip_count\": %d, \"requests\": %llu, "
        "\"shed_requests\": %llu, \"dark_chip_sheds\": %llu, "
        "\"rerouted\": %llu, \"drained\": %llu, "
        "\"diverted\": %llu, \"affinity_hits\": %llu, "
        "\"affinity_misses\": %llu, \"chip_fail_events\": %llu, "
        "\"chip_heals\": %llu, \"ic_transfers\": %llu, "
        "\"ic_request_bytes\": %llu, \"ic_response_bytes\": %llu, "
        "\"ic_weight_bytes\": %llu, \"offered_rps\": %.2f, "
        "\"achieved_rps\": %.2f, \"p50_ms\": %.4f, "
        "\"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"slo_attainment\": %.4f, \"goodput_rps\": %.2f, "
        "\"horizon_ticks\": %llu, \"chips\": [",
        r.policy.c_str(), r.placement.c_str(), r.chipCount,
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.shedRequests),
        static_cast<unsigned long long>(r.darkChipSheds),
        static_cast<unsigned long long>(r.rerouted),
        static_cast<unsigned long long>(r.drained),
        static_cast<unsigned long long>(r.diverted),
        static_cast<unsigned long long>(r.affinityHits),
        static_cast<unsigned long long>(r.affinityMisses),
        static_cast<unsigned long long>(r.chipFailEvents),
        static_cast<unsigned long long>(r.chipHeals),
        static_cast<unsigned long long>(r.icTransfers),
        static_cast<unsigned long long>(r.icRequestBytes),
        static_cast<unsigned long long>(r.icResponseBytes),
        static_cast<unsigned long long>(r.icWeightBytes),
        r.offeredRps, r.achievedRps, r.p50Ms, r.p95Ms, r.p99Ms,
        r.sloAttainment, r.goodputRps,
        static_cast<unsigned long long>(r.horizonTicks));
    std::string out = buf;
    // The reliability aggregate is spliced in only while the layer
    // was live, so default-configured pods keep the pre-reliability
    // JSON bytes (the byte-identity gate).
    if (r.reliabilityActive) {
        const std::string stats = routerStatsJson(r);
        const std::string key = "\"router_stats\": " + stats + ", ";
        const auto at = out.find("\"chips\": [");
        out.insert(at, key);
    }
    // The chips array is emitted in ascending chip-id order (the
    // vector is built that way), so BENCH_pod.json diffs stay
    // deterministic across --jobs values. Each element is the chip's
    // serve JSON bytes with an identity prefix spliced in — the
    // 1-chip equivalence gate compares exactly the serve::toJson
    // substring.
    for (std::size_t i = 0; i < r.chips.size(); ++i) {
        const ChipResult &c = r.chips[i];
        std::string obj = serve::toJson(c.serve);
        char pre[288];
        if (r.reliabilityActive)
            std::snprintf(
                pre, sizeof(pre),
                "\"chip\": %d, \"model\": \"%s\", "
                "\"dark\": %s, \"routed\": %llu, "
                "\"rerouted\": %llu, \"drained\": %llu, "
                "\"hedged\": %llu, \"sdc\": %llu, ",
                c.id, c.model.c_str(), c.dark ? "true" : "false",
                static_cast<unsigned long long>(c.routed),
                static_cast<unsigned long long>(c.rerouted),
                static_cast<unsigned long long>(c.drained),
                static_cast<unsigned long long>(c.hedged),
                static_cast<unsigned long long>(c.sdc));
        else
            std::snprintf(
                pre, sizeof(pre),
                "\"chip\": %d, \"model\": \"%s\", "
                "\"dark\": %s, \"routed\": %llu, "
                "\"rerouted\": %llu, \"drained\": %llu, ",
                c.id, c.model.c_str(), c.dark ? "true" : "false",
                static_cast<unsigned long long>(c.routed),
                static_cast<unsigned long long>(c.rerouted),
                static_cast<unsigned long long>(c.drained));
        obj.insert(1, pre);
        if (i > 0)
            out += ", ";
        out += obj;
    }
    out += "]}";
    return out;
}

PodRuntime::PodRuntime(std::vector<PodWorkload> workloads,
                       arch::HwConfig hw,
                       core::SchedulerConfig sched_cfg,
                       core::ExecPolicy policy, PodConfig cfg)
    : workloads_(std::move(workloads)), hw_(hw),
      schedCfg_(sched_cfg), policy_(policy), cfg_(std::move(cfg))
{
    serve::validateServeConfig(cfg_.serve);
    ADYNA_ASSERT(cfg_.chips >= 1, "a pod needs >= 1 chip (got ",
                 cfg_.chips, ")");
    ADYNA_ASSERT(!workloads_.empty(), "a pod needs >= 1 workload");
    double fracSum = 0.0;
    for (std::size_t m = 0; m < workloads_.size(); ++m) {
        const PodWorkload &w = workloads_[m];
        ADYNA_ASSERT(w.dg != nullptr, "pod workload ", m,
                     ": PodWorkload.dg must be set");
        ADYNA_ASSERT(
            w.traceCfg.batchSize ==
                static_cast<std::int64_t>(
                    cfg_.serve.batching.maxBatch),
            "pod workload \"", w.name,
            "\": the workload graph must be compiled at the "
            "batcher's maxBatch (got trace batchSize ",
            w.traceCfg.batchSize, " vs maxBatch ",
            cfg_.serve.batching.maxBatch, ")");
        ADYNA_ASSERT(w.trafficFraction > 0.0, "pod workload \"",
                     w.name, "\": trafficFraction must be > 0");
        fracSum += w.trafficFraction;
    }
    ADYNA_ASSERT(fracSum > 0.99 && fracSum < 1.01,
                 "pod traffic fractions must sum to 1, got ",
                 fracSum);
    if (cfg_.placement == Placement::Replicated)
        ADYNA_ASSERT(workloads_.size() == 1,
                     "replicated placement serves one model (got ",
                     workloads_.size(), ")");
    else
        ADYNA_ASSERT(
            cfg_.chips >= static_cast<int>(workloads_.size()),
            "partitioned placement needs >= 1 chip per model (",
            workloads_.size(), " models on ", cfg_.chips, " chips)");
    ADYNA_ASSERT(cfg_.chips == 1 || !cfg_.serve.admissionControl,
                 "per-chip admissionControl must be off in a pod: "
                 "the router's queueLimit is the pod's admission "
                 "backpressure");
    for (const fault::FaultEvent &ev : cfg_.faultPlan.events) {
        ADYNA_ASSERT(fault::podScopeFault(ev.kind),
                     "the pod fault plan is pod scope: only "
                     "chip_fail / chip_slow / link_flaky / "
                     "payload_corrupt events allowed (put ",
                     fault::faultKindName(ev.kind),
                     " into chipFaultPlans)");
        if (ev.kind != fault::FaultKind::PayloadCorrupt)
            ADYNA_ASSERT(ev.chip >= 0 && ev.chip < cfg_.chips,
                         fault::faultKindName(ev.kind),
                         " targets chip ", ev.chip, " of a ",
                         cfg_.chips, "-chip pod");
    }
    ADYNA_ASSERT(cfg_.chipFaultPlans.empty() ||
                     cfg_.chipFaultPlans.size() ==
                         static_cast<std::size_t>(cfg_.chips),
                 "chipFaultPlans must be empty or hold one plan per "
                 "chip (got ",
                 cfg_.chipFaultPlans.size(), " for ", cfg_.chips,
                 " chips)");
    for (const fault::FaultPlan &plan : cfg_.chipFaultPlans)
        for (const fault::FaultEvent &ev : plan.events)
            ADYNA_ASSERT(!fault::podScopeFault(ev.kind),
                         fault::faultKindName(ev.kind),
                         " is pod scope: put it into "
                         "PodConfig::faultPlan");
    ADYNA_ASSERT(!(cfg_.reliability.hedging &&
                   !cfg_.router.reRouteOnFailure),
                 "hedging needs the adaptive router "
                 "(reRouteOnFailure): static pinning has no "
                 "next-best chip to hedge onto");

    // Model -> chip-group assignment. Replicated: every chip serves
    // model 0. Partitioned: contiguous groups, one chip minimum,
    // remaining chips to the models with the largest unmet ideal
    // share (frac * chips) — deterministic, ties to the lowest model.
    chipModel_.assign(static_cast<std::size_t>(cfg_.chips), 0);
    if (cfg_.placement == Placement::Partitioned) {
        const std::size_t m = workloads_.size();
        std::vector<int> counts(m, 1);
        int remaining = cfg_.chips - static_cast<int>(m);
        while (remaining-- > 0) {
            std::size_t pick = 0;
            double bestDeficit = -1.0;
            for (std::size_t i = 0; i < m; ++i) {
                const double deficit =
                    workloads_[i].trafficFraction * cfg_.chips -
                    counts[i];
                if (deficit > bestDeficit) {
                    bestDeficit = deficit;
                    pick = i;
                }
            }
            ++counts[pick];
        }
        int next = 0;
        for (std::size_t i = 0; i < m; ++i)
            for (int c = 0; c < counts[i]; ++c)
                chipModel_[static_cast<std::size_t>(next++)] =
                    static_cast<int>(i);
    }
}

void
PodRuntime::setSharedMapper(costmodel::Mapper *mapper)
{
    sharedMapper_ = mapper;
}

void
PodRuntime::setSharedStoreCache(kernels::KernelStoreCache *cache)
{
    sharedStoreCache_ = cache;
}

void
PodRuntime::setSchedulerPool(ThreadPool *pool)
{
    schedulerPool_ = pool;
}

PodReport
PodRuntime::runSingle()
{
    serve::ServeConfig serveCfg = cfg_.serve;
    // A 1-chip pod's faults all land on chip 0: merge the pod-scope
    // chip_fail events with the chip's own plan and let the
    // single-chip injector replay both.
    if (!cfg_.faultPlan.empty() || !cfg_.chipFaultPlans.empty()) {
        fault::FaultPlan merged = cfg_.faultPlan;
        if (!cfg_.chipFaultPlans.empty())
            merged.events.insert(
                merged.events.end(),
                cfg_.chipFaultPlans[0].events.begin(),
                cfg_.chipFaultPlans[0].events.end());
        merged.normalize();
        if (!merged.empty()) {
            serveCfg.faultPlan = std::move(merged);
            serveCfg.faultSeed = cfg_.faultSeed;
        }
    }
    serve::ServeRuntime rt(*workloads_[0].dg, workloads_[0].traceCfg,
                           hw_, schedCfg_, policy_, serveCfg,
                           workloads_[0].name);
    if (sharedMapper_)
        rt.setSharedMapper(sharedMapper_);
    if (sharedStoreCache_)
        rt.setSharedStoreCache(sharedStoreCache_);
    if (schedulerPool_)
        rt.setSchedulerPool(schedulerPool_);

    PodReport report;
    report.policy = routePolicyName(cfg_.router.policy);
    report.placement = placementName(cfg_.placement);
    report.chipCount = 1;
    ChipResult cr;
    cr.id = 0;
    cr.model = workloads_[0].name;
    cr.serve = rt.run();
    cr.routed = cr.serve.requests + cr.serve.shedRequests;
    report.requests = cr.serve.requests;
    report.offeredRps = cr.serve.offeredRps;
    report.achievedRps = cr.serve.achievedRps;
    report.p50Ms = cr.serve.p50Ms;
    report.p95Ms = cr.serve.p95Ms;
    report.p99Ms = cr.serve.p99Ms;
    report.sloAttainment = cr.serve.sloAttainment;
    report.goodputRps = cr.serve.goodputRps;
    report.horizonTicks = cr.serve.horizonTicks;
    report.chips.push_back(std::move(cr));
    return report;
}

PodReport
PodRuntime::run()
{
    // One chip serving one model needs no router and no
    // interconnect: delegate to the single-chip runtime so the serve
    // report is byte-identical to the single-chip path.
    if (cfg_.chips == 1 && workloads_.size() == 1)
        return runSingle();

    const int K = cfg_.chips;
    const auto kNever = serve::Batcher::kNever;

    std::optional<costmodel::Mapper> localMapper;
    if (!sharedMapper_)
        localMapper.emplace(hw_.tech);
    costmodel::Mapper &mapper =
        sharedMapper_ ? *sharedMapper_ : *localMapper;
    kernels::KernelStoreCache &storeCache =
        sharedStoreCache_ ? *sharedStoreCache_
                          : kernels::KernelStoreCache::global();

    Interconnect ic(cfg_.interconnect, K);
    Router router(cfg_.router, K);

    const std::uint64_t faultSeedBase =
        cfg_.faultSeed ? cfg_.faultSeed
                       : cfg_.serve.seed ^ 0xda3e39cb94b95bdbULL;

    // ---- reliability layer setup (DESIGN.md §15) -------------------
    // Gray-failure kinds replay as stateless [start, end) spans — a
    // chip_slow span dilates that chip's execution, link_flaky /
    // payload_corrupt spans arm the interconnect's per-attempt fault
    // draws — instead of entering the stateful chip_fail timeline.
    const ReliabilityConfig &rel = cfg_.reliability;
    constexpr Tick kForever = ~Tick{0};
    struct SlowSpan
    {
        Tick start;
        Tick end;
        double factor;
    };
    std::vector<std::vector<SlowSpan>> slowSpans(
        static_cast<std::size_t>(K));
    bool grayActive = false;
    {
        std::vector<std::vector<UnreliableWindow>> flakyWin(
            static_cast<std::size_t>(K));
        std::vector<UnreliableWindow> corruptWin;
        for (const fault::FaultEvent &ev : cfg_.faultPlan.events) {
            if (ev.kind == fault::FaultKind::ChipFail)
                continue;
            grayActive = true;
            const Tick end =
                ev.duration > 0 && ev.at <= kForever - ev.duration
                    ? ev.at + ev.duration
                    : kForever;
            if (ev.kind == fault::FaultKind::ChipSlow)
                slowSpans[static_cast<std::size_t>(ev.chip)]
                    .push_back({ev.at, end, ev.factor});
            else if (ev.kind == fault::FaultKind::LinkFlaky)
                flakyWin[static_cast<std::size_t>(ev.chip)]
                    .push_back({ev.at, end, ev.factor});
            else
                corruptWin.push_back({ev.at, end, ev.factor});
        }
        for (int c = 0; c < K; ++c)
            if (!flakyWin[static_cast<std::size_t>(c)].empty())
                ic.setFlakyWindows(
                    c, std::move(
                           flakyWin[static_cast<std::size_t>(c)]));
        if (!corruptWin.empty())
            ic.setCorruptWindows(std::move(corruptWin));
    }
    ic.setChecksums(rel.checksums);
    ic.setSeed(faultSeedBase ^ 0xa0761d6478bd642fULL);

    /** Clock-dilation factor of chip @p c at tick @p t (1 = healthy;
     * overlapping chip_slow spans take the worst). */
    const auto slowFactorAt = [&](int c, Tick t) {
        double f = 1.0;
        for (const SlowSpan &sp :
             slowSpans[static_cast<std::size_t>(c)])
            if (t >= sp.start && t < sp.end)
                f = std::max(f, sp.factor);
        return f;
    };

    const bool haveBreakers = rel.breaker;
    std::vector<CircuitBreaker> breakers;
    if (haveBreakers)
        breakers.assign(static_cast<std::size_t>(K),
                        CircuitBreaker(rel.breakerCfg));
    std::vector<std::uint64_t> sdcSeen(static_cast<std::size_t>(K),
                                       0);

    /** Feed newly checksum-detected corruptions on chip @p c's links
     * into its breaker's SDC counter. */
    const auto feedSdc = [&](int c, Tick t) {
        if (!haveBreakers || !rel.checksums)
            return;
        const std::uint64_t seen = ic.sdcDetected(c);
        auto &fed = sdcSeen[static_cast<std::size_t>(c)];
        while (fed < seen) {
            breakers[static_cast<std::size_t>(c)].recordSdc(t);
            ++fed;
        }
    };

    /** Hedge / timeout bookkeeping is live (outstanding table +
     * timer heap). */
    const bool relTracking =
        rel.hedging || rel.timeoutDeadlineFactor > 0.0;
    const bool relActive = relTracking || haveBreakers ||
                           rel.checksums || grayActive;

    const double deadlineTicks =
        cfg_.serve.slo.deadlineMs * 1e-3 * hw_.tech.freqGhz * 1e9;
    const Tick timeoutTicks =
        rel.timeoutDeadlineFactor > 0.0
            ? static_cast<Tick>(std::llround(
                  rel.timeoutDeadlineFactor * deadlineTicks))
            : 0;

    // ---- per-chip back-ends ----------------------------------------
    std::vector<std::unique_ptr<ChipBackend>> chips;
    chips.reserve(static_cast<std::size_t>(K));
    for (int c = 0; c < K; ++c) {
        const int model = chipModel_[static_cast<std::size_t>(c)];
        const PodWorkload &wl =
            workloads_[static_cast<std::size_t>(model)];
        const std::uint64_t chipSeed =
            cfg_.serve.seed ^
            (0x6a09e667f3bcc909ULL *
             static_cast<std::uint64_t>(c + 1));
        chips.push_back(std::make_unique<ChipBackend>(
            c, model, wl, chipSeed, hw_, mapper, schedCfg_, policy_,
            cfg_.serve));
        ChipBackend &b = *chips.back();
        b.weightBytes = wl.dg->graph().totalWeightBytes();
        b.scheduler.setStoreCache(&storeCache);
        if (schedulerPool_)
            b.scheduler.setThreadPool(schedulerPool_);
        if (!cfg_.chipFaultPlans.empty() &&
            !cfg_.chipFaultPlans[static_cast<std::size_t>(c)]
                 .empty())
            b.injector.emplace(
                cfg_.chipFaultPlans[static_cast<std::size_t>(c)],
                faultSeedBase ^ (0x2545f4914f6cdd1dULL *
                                 static_cast<std::uint64_t>(c)));
    }

    const auto checkSchedule = [&](ChipBackend &b,
                                   const core::Schedule &sch) {
        const auto issues =
            core::validateSchedule(sch, *b.wl->dg, hw_);
        ADYNA_ASSERT(issues.empty(), "pod chip ", b.id,
                     ": invalid schedule:\n",
                     core::issuesToString(issues));
    };

    /** Rebuild one chip's schedule (the single-chip runtime's
     * rebuildSchedule, with per-chip cache-activity accounting). */
    struct Rebuild
    {
        core::Schedule schedule;
        Cycles cost = 0;
        bool delta = false;
        core::DeltaStats stats;
    };
    const auto rebuildSchedule =
        [&](ChipBackend &b, Tick now,
            const std::vector<OpId> *delta) -> Rebuild {
        const serve::ServeConfig &s = cfg_.serve;
        const bool bypassStores =
            b.injector && b.injector->storeFitFailActive(now);
        if (bypassStores) {
            b.scheduler.setStoreCache(nullptr);
            ++b.storeFitFailures;
        }
        const std::uint64_t mh0 = mapper.hits();
        const std::uint64_t mm0 = mapper.misses();
        const std::uint64_t sh0 = storeCache.hits();
        const std::uint64_t sm0 = storeCache.misses();
        Rebuild rb;
        if (delta && !bypassStores) {
            rb.schedule = b.scheduler.buildDelta(
                b.schedule, b.expectations, b.kernelValues,
                &b.engineProf, *delta, &rb.stats);
            rb.delta = true;
        } else {
            rb.schedule = b.scheduler.build(
                b.expectations, b.kernelValues, &b.engineProf);
        }
        if (bypassStores)
            b.scheduler.setStoreCache(&storeCache);
        checkSchedule(b, rb.schedule);
        const std::uint64_t compiled =
            schedCfg_.storeCache && !bypassStores
                ? storeCache.misses() - sm0
                : (rb.delta ? rb.stats.segmentsRebuilt
                            : rb.schedule.segments.size());
        rb.cost = s.reconfigOverheadCycles +
                  static_cast<Cycles>(compiled) *
                      s.storeCompileCycles;
        b.mapperHits += mapper.hits() - mh0;
        b.mapperMisses += mapper.misses() - mm0;
        b.storeHits += storeCache.hits() - sh0;
        b.storeMisses += storeCache.misses() - sm0;
        return rb;
    };

    // ---- per-chip bring-up: profiling, drift reference, first
    // schedule, initial weight stream over the interconnect ----------
    for (auto &bp : chips) {
        ChipBackend &b = *bp;
        const serve::ServeConfig &s = cfg_.serve;
        const graph::DynGraph &dg = *b.wl->dg;

        b.kernelValues = b.scheduler.initialKernelValues();
        if (!schedCfg_.worstCase && s.profileBatches > 0) {
            trace::TraceGenerator probe(dg, b.wl->traceCfg,
                                        b.seed ^
                                            0x517cc1b727220a95ULL);
            for (int i = 0; i < s.profileBatches; ++i) {
                const trace::BatchRouting routing = probe.next();
                b.engineProf.noteBatch();
                for (const auto &[sw, oc] : routing.outcomes)
                    b.engineProf.recordBranchLoads(sw,
                                                   oc.branchCounts);
                for (OpId op : dg.dynamicOps())
                    b.engineProf.recordValue(
                        op, routing.dynValue(dg, op));
            }
            core::refreshScheduleInputs(
                b.engineProf,
                s.resampleKernels && !policy_.exactKernels,
                b.expectations, b.kernelValues);
            b.engineProf.resetTables();
        }

        // Drift reference + noise floor (see serve/server.cc).
        {
            trace::TraceConfig reqCfg = b.wl->traceCfg;
            reqCfg.batchSize = 1;
            trace::TraceGenerator refProbe(
                dg, reqCfg, b.seed ^ 0x517cc1b727220a95ULL);
            const int half = s.drift.windowRequests;
            for (int i = 0; i < half; ++i)
                recordRequest(b.driftProf, dg, refProbe.next());
            auto reference = b.driftProf.tablesSnapshot();
            b.driftProf.resetTables();
            for (int i = 0; i < half; ++i)
                recordRequest(b.driftProf, dg, refProbe.next());
            b.monitor.setReference(reference);
            b.monitor.setNoiseFloor(
                b.monitor.distanceTo(b.driftProf));
            for (const auto &[op, hist] :
                 b.driftProf.tablesSnapshot())
                reference[op].merge(hist);
            b.monitor.setReference(std::move(reference));
            b.driftProf.resetTables();
        }

        {
            const std::uint64_t mh0 = mapper.hits();
            const std::uint64_t mm0 = mapper.misses();
            const std::uint64_t sh0 = storeCache.hits();
            const std::uint64_t sm0 = storeCache.misses();
            b.schedule = b.scheduler.build(
                b.expectations, b.kernelValues,
                schedCfg_.worstCase ? nullptr : &b.engineProf);
            b.mapperHits += mapper.hits() - mh0;
            b.mapperMisses += mapper.misses() - mm0;
            b.storeHits += storeCache.hits() - sh0;
            b.storeMisses += storeCache.misses() - sm0;
        }
        checkSchedule(b, b.schedule);
        b.installedExp = b.expectations;
        b.installedKv = b.kernelValues;
        b.installedLoadMean =
            loadMean(dg, b.installedExp, b.wl->traceCfg.batchSize);

        // The model's weight working set streams in over the chip's
        // ingress link before it can serve (all chips in parallel —
        // each has its own link).
        b.engineFree = ic.transfer(b.id, true, 0, b.weightBytes,
                                   PayloadClass::Weights);
    }

    // ---- pod front-end ---------------------------------------------
    serve::ArrivalConfig arrivalCfg = cfg_.serve.arrival;
    arrivalCfg.freqGhz = hw_.tech.freqGhz;
    serve::ArrivalProcess arrivals(
        arrivalCfg, cfg_.serve.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<double> fractions;
    fractions.reserve(workloads_.size());
    for (const PodWorkload &w : workloads_)
        fractions.push_back(w.trafficFraction);
    serve::TrafficSplitter splitter(
        std::move(fractions),
        cfg_.serve.seed ^ 0x94d049bb133111ebULL);
    std::vector<trace::TraceGenerator> reqGens;
    reqGens.reserve(workloads_.size());
    for (std::size_t m = 0; m < workloads_.size(); ++m) {
        trace::TraceConfig reqCfg = workloads_[m].traceCfg;
        reqCfg.batchSize = 1;
        reqGens.emplace_back(*workloads_[m].dg, reqCfg,
                             cfg_.serve.seed ^
                                 (0xbf58476d1ce4e5b9ULL *
                                  static_cast<std::uint64_t>(m)));
    }
    serve::SloTracker podSlo(cfg_.serve.slo, hw_.tech.freqGhz);

    const auto total =
        static_cast<std::uint64_t>(cfg_.serve.numRequests);
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t shedFront = 0;    ///< router shed (no chip / full)
    std::uint64_t darkChipSheds = 0;
    std::uint64_t reroutedTotal = 0;
    std::uint64_t drainedTotal = 0;
    std::uint64_t chipFailEvents = 0;
    std::uint64_t chipHeals = 0;
    Tick nextArrival = arrivals.next();
    const Tick firstArrival = nextArrival;
    Tick lastArrival = nextArrival;

    // The pod arrival tick and model of every issued request, by id
    // (ids are dense). Re-routed requests keep their id, so their
    // end-to-end latency stays anchored at the original arrival.
    std::vector<Tick> podArrivalOf(total, 0);
    std::vector<int> modelOf(total, 0);

    std::vector<PodFaultEvent> podFaults =
        podFaultTimeline(cfg_.faultPlan);
    std::size_t podFaultCursor = 0;

    // ---- hedge / timeout state -------------------------------------
    /** Where the (up to two) live copies of an outstanding request
     * sit; -1 = no copy in that slot. First completion wins. */
    struct Outstanding
    {
        bool done = false;
        int chipA = -1; ///< primary copy
        int chipB = -1; ///< hedge copy (or a re-routed second slot)
        int copies() const
        {
            return (chipA >= 0 ? 1 : 0) + (chipB >= 0 ? 1 : 0);
        }
    };
    std::vector<Outstanding> outs;
    if (relTracking)
        outs.resize(total);
    /** Routing draw of every issued request, retained so a hedge can
     * re-issue an identical copy. */
    std::vector<trace::BatchRouting> routingOf;
    if (rel.hedging)
        routingOf.resize(total);
    /** Pending (tick, id, kind) timers, min-heap; kind 0 = hedge
     * trigger, 1 = timeout. */
    using TimerEv = std::tuple<Tick, std::uint64_t, int>;
    std::priority_queue<TimerEv, std::vector<TimerEv>,
                        std::greater<TimerEv>>
        timers;
    /** Recent completed pod latencies (ticks) feeding the hedge
     * trigger quantile. */
    std::deque<double> latWin;
    PodReliabilityStats relStats;
    /** Next health-probe round (breaker heartbeat). Probes piggyback
     * on the event loop and never extend the run: once arrivals,
     * queues, deliveries, and timers are all exhausted the pod stops
     * pinging too. */
    Tick nextProbe = rel.probeIntervalCycles;

    /** The hedge trigger delay for a request arriving now: the
     * hedgeQuantile of recent completed latencies, clamped into
     * [min, max] fractions of the SLO deadline. */
    const auto hedgeDelayTicks = [&]() -> Tick {
        const double lo =
            rel.hedgeMinDeadlineFraction * deadlineTicks;
        const double hi =
            rel.hedgeMaxDeadlineFraction * deadlineTicks;
        double d = hi;
        if (!latWin.empty()) {
            std::vector<double> tmp(latWin.begin(), latWin.end());
            const double q =
                std::clamp(rel.hedgeQuantile, 0.0, 1.0);
            const auto k = static_cast<std::size_t>(
                q * static_cast<double>(tmp.size() - 1));
            std::nth_element(tmp.begin(),
                             tmp.begin() +
                                 static_cast<std::ptrdiff_t>(k),
                             tmp.end());
            d = tmp[k];
        }
        d = std::clamp(d, lo, std::max(lo, hi));
        return static_cast<Tick>(std::llround(d));
    };

    /** Route-time status snapshot of every chip. */
    const auto statuses = [&](int model, Tick now) {
        std::vector<ChipStatus> st(static_cast<std::size_t>(K));
        for (int c = 0; c < K; ++c) {
            const ChipBackend &b = *chips[static_cast<std::size_t>(c)];
            ChipStatus &s = st[static_cast<std::size_t>(c)];
            s.alive = !b.dark;
            s.servesModel = b.model == model;
            s.queued = b.batcher.queued() + b.inflight.size();
            const double backlog =
                b.engineFree > now
                    ? static_cast<double>(b.engineFree - now)
                    : 0.0;
            // Before the first completion there is no service
            // estimate; charge one tick per queued request so equal
            // bring-up backlogs (every chip streaming weights in
            // parallel) still tie-break on queue depth instead of
            // funnelling the whole cold-start burst to chip 0.
            const double perRequest =
                b.haveService ? b.serviceEwma /
                                    cfg_.serve.batching.maxBatch
                              : 1.0;
            s.load = backlog + static_cast<double>(s.queued) *
                                   perRequest;
            s.installedLoadMean = b.installedLoadMean;
            s.admittable =
                !haveBreakers ||
                breakers[static_cast<std::size_t>(c)].admits(now);
        }
        return st;
    };

    /** Deliver one routed request onto a chip over the
     * interconnect. */
    const auto deliverTo = [&](int c, serve::Request r, Tick when,
                               bool is_reroute, bool is_hedge) {
        ChipBackend &b = *chips[static_cast<std::size_t>(c)];
        const Tick delivered =
            ic.transfer(c, true, when, cfg_.interconnect.requestBytes,
                        PayloadClass::Request);
        const std::uint64_t id = r.id;
        r.arrival = delivered;
        b.inflight.push_back(std::move(r));
        ++b.routed;
        if (is_reroute) {
            ++b.rerouted;
            ++reroutedTotal;
        }
        if (is_hedge)
            ++b.hedged;
        if (relTracking) {
            Outstanding &o = outs[id];
            if (is_hedge || o.chipA >= 0)
                o.chipB = c;
            else
                o.chipA = c;
        }
        if (!b.haveArrival) {
            b.firstArrival = delivered;
            b.haveArrival = true;
        }
        b.lastArrival = delivered;
    };

    /**
     * Cancel the copy of request @p id living on chip @p c — erase
     * it from the admission queue or the in-flight deque. False when
     * the copy is already inside a formed batch (an executing loser:
     * its completion is wasted work, not cancellable).
     */
    const auto cancelCopy = [&](std::uint64_t id, int c) {
        ChipBackend &b = *chips[static_cast<std::size_t>(c)];
        Outstanding &o = outs[id];
        if (o.chipA == c)
            o.chipA = -1;
        else if (o.chipB == c)
            o.chipB = -1;
        if (b.batcher.cancel(id))
            return true;
        for (auto it = b.inflight.begin(); it != b.inflight.end();
             ++it) {
            if (it->id == id) {
                b.inflight.erase(it);
                return true;
            }
        }
        return false;
    };

    /** Move every in-flight request delivered by @p up_to into the
     * chip's admission queue. */
    const auto flushDeliveries = [](ChipBackend &b, Tick up_to) {
        bool any = false;
        while (!b.inflight.empty() &&
               b.inflight.front().arrival <= up_to) {
            b.batcher.enqueue(std::move(b.inflight.front()));
            b.inflight.pop_front();
            any = true;
        }
        return any;
    };

    /** Draw, route, and deliver (or shed) the next pod arrival. */
    const auto routeArrival = [&]() {
        const Tick at = nextArrival;
        const int model = splitter.next();
        serve::Request r;
        r.id = issued;
        r.routing = reqGens[static_cast<std::size_t>(model)].next();
        podArrivalOf[issued] = at;
        modelOf[issued] = model;
        lastArrival = at;
        ++issued;
        if (rel.hedging)
            routingOf[r.id] = r.routing;
        const double sig = static_cast<double>(trace::totalDynLoad(
            *workloads_[static_cast<std::size_t>(model)].dg,
            r.routing));
        const RouteDecision dec =
            router.route(statuses(model, at), sig);
        if (dec.chip == RouteDecision::kShed) {
            ++shedFront;
            if (relTracking)
                outs[r.id].done = true;
        } else if (chips[static_cast<std::size_t>(dec.chip)]->dark) {
            // Static pinning dispatched onto a dark chip: the
            // request is lost (brownout, not collapse).
            ++darkChipSheds;
            if (relTracking)
                outs[r.id].done = true;
        } else {
            const std::uint64_t id = r.id;
            deliverTo(dec.chip, std::move(r), at, false, false);
            if (rel.hedging)
                timers.push({at + hedgeDelayTicks(), id, 0});
            if (timeoutTicks > 0)
                timers.push({at + timeoutTicks, id, 1});
        }
        nextArrival = arrivals.next();
    };

    /** Apply every pod-scope chip_fail strike / heal due at or
     * before @p up_to. A strike drains the dark chip's queue and
     * re-routes it onto the survivors (adaptive) or sheds it
     * (static pinning); a heal re-streams the weight working set
     * over the interconnect before the chip rejoins. */
    const auto applyPodFaults = [&](Tick up_to) {
        bool any = false;
        while (podFaultCursor < podFaults.size() &&
               podFaults[podFaultCursor].at <= up_to) {
            const PodFaultEvent &ev = podFaults[podFaultCursor];
            ChipBackend &b =
                *chips[static_cast<std::size_t>(ev.chip)];
            if (!ev.recover && !b.dark) {
                b.dark = true;
                ++chipFailEvents;
                std::vector<serve::Request> drained =
                    b.batcher.drain();
                for (serve::Request &r : b.inflight)
                    drained.push_back(std::move(r));
                b.inflight.clear();
                b.drained += drained.size();
                drainedTotal += drained.size();
                for (serve::Request &r : drained) {
                    if (relTracking) {
                        Outstanding &o = outs[r.id];
                        if (o.chipA == ev.chip)
                            o.chipA = -1;
                        else if (o.chipB == ev.chip)
                            o.chipB = -1;
                        // A hedged twin still lives elsewhere: drop
                        // this copy silently, nothing is lost.
                        if (o.done || o.copies() > 0)
                            continue;
                    }
                    if (!cfg_.router.reRouteOnFailure) {
                        ++darkChipSheds;
                        if (relTracking)
                            outs[r.id].done = true;
                        continue;
                    }
                    const int model = modelOf[r.id];
                    const double sig =
                        static_cast<double>(trace::totalDynLoad(
                            *workloads_[static_cast<std::size_t>(
                                            model)]
                                 .dg,
                            r.routing));
                    const RouteDecision dec =
                        router.route(statuses(model, ev.at), sig);
                    if (dec.chip == RouteDecision::kShed ||
                        chips[static_cast<std::size_t>(dec.chip)]
                            ->dark) {
                        ++shedFront;
                        if (relTracking)
                            outs[r.id].done = true;
                    } else {
                        deliverTo(dec.chip, std::move(r), ev.at,
                                  true, false);
                    }
                }
            } else if (ev.recover && b.dark) {
                b.dark = false;
                ++chipHeals;
                const Tick ready =
                    ic.transfer(ev.chip, true, ev.at, b.weightBytes,
                                PayloadClass::Weights);
                b.engineFree = std::max(b.engineFree, ready);
            }
            ++podFaultCursor;
            any = true;
        }
        return any;
    };

    /** Ops whose expectation moved past the delta tolerance (the
     * single-chip runtime's changedOps). */
    const auto changedOps = [&](ChipBackend &b) {
        std::vector<OpId> changed;
        for (OpId op : b.wl->dg->dynamicOps()) {
            const auto ne = b.expectations.find(op);
            const auto oe = b.installedExp.find(op);
            const bool haveNew = ne != b.expectations.end();
            const bool haveOld = oe != b.installedExp.end();
            bool moved = haveNew != haveOld;
            if (!moved && haveNew) {
                const double ref =
                    std::max(std::abs(oe->second), 1.0);
                moved = std::abs(ne->second - oe->second) >
                        cfg_.serve.deltaExpectationTol * ref;
            }
            if (moved)
                changed.push_back(op);
        }
        return changed;
    };

    /** Close one drift window for a chip (the single-chip runtime's
     * closeWindow, plus the affinity target refresh). */
    const auto closeWindow = [&](ChipBackend &b) {
        const serve::ServeConfig &s = cfg_.serve;
        ++b.driftWindows;
        const bool fire = b.monitor.observe(b.driftProf);
        if (fire && s.driftReschedule && !schedCfg_.worstCase) {
            auto reference = b.driftProf.tablesSnapshot();
            core::refreshScheduleInputs(
                b.engineProf,
                s.resampleKernels && !policy_.exactKernels,
                b.expectations, b.kernelValues);
            b.engineProf.resetTables();
            const std::vector<OpId> changed = changedOps(b);
            Rebuild rb = rebuildSchedule(
                b, b.engineFree,
                s.deltaReschedule ? &changed : nullptr);
            if (s.rescheduleBudgetCycles > 0 &&
                rb.cost > s.rescheduleBudgetCycles) {
                b.engineFree += s.rescheduleBudgetCycles;
                ++b.watchdogFallbacks;
            } else {
                b.schedule = std::move(rb.schedule);
                b.monitor.setReference(std::move(reference));
                if (rb.delta) {
                    ++b.deltaReschedules;
                    b.segmentsRebuilt += rb.stats.segmentsRebuilt;
                    b.segmentsSpliced += rb.stats.segmentsTotal -
                                         rb.stats.segmentsRebuilt;
                    for (OpId op : changed) {
                        const auto e = b.expectations.find(op);
                        if (e != b.expectations.end())
                            b.installedExp[op] = e->second;
                        else
                            b.installedExp.erase(op);
                        const auto k = b.kernelValues.find(op);
                        if (k != b.kernelValues.end())
                            b.installedKv[op] = k->second;
                        else
                            b.installedKv.erase(op);
                    }
                } else {
                    b.installedExp = b.expectations;
                    b.installedKv = b.kernelValues;
                }
                // The chip now serves a different distribution:
                // refresh the router's affinity target.
                b.installedLoadMean =
                    loadMean(*b.wl->dg, b.installedExp,
                             b.wl->traceCfg.batchSize);
                b.engineFree += s.reconfigOverheadCycles;
                ++b.reschedules;
            }
        }
        b.driftProf.resetTables();
    };

    // ---- the pod serving loop --------------------------------------
    for (;;) {
        // The next pod event horizon: the earliest dispatch moment
        // across the live chips with admitted work (lowest id wins
        // ties — deterministic), or the earliest pending
        // interconnect delivery, whichever comes first. Dispatch
        // moments only consider *delivered* requests; a request
        // still crossing the interconnect cannot shorten them, so no
        // batch ever forms before its members physically arrive.
        Tick best = kNever;
        int bestIdx = -1;
        Tick nextDelivery = kNever;
        for (int c = 0; c < K; ++c) {
            ChipBackend &b = *chips[static_cast<std::size_t>(c)];
            if (b.dark)
                continue;
            if (!b.inflight.empty())
                nextDelivery = std::min(
                    nextDelivery, b.inflight.front().arrival);
            if (b.batcher.queued() == 0)
                continue;
            const Tick d =
                std::max(b.engineFree, b.batcher.nextFormTick());
            if (d < best) {
                best = d;
                bestIdx = c;
            }
        }
        // Drop timers of already-settled requests lazily, then fold
        // the earliest live timer into the horizon.
        Tick nextTimer = kNever;
        while (!timers.empty()) {
            const TimerEv &top = timers.top();
            if (outs[std::get<1>(top)].done) {
                timers.pop();
                continue;
            }
            nextTimer = std::get<0>(top);
            break;
        }
        const Tick horizon =
            std::min({best, nextDelivery, nextTimer});

        // Route every pod arrival due by the horizon (or the next
        // arrival alone when the pod is idle — it defines the
        // clock), then re-pick.
        bool routedAny = false;
        if (issued < total) {
            if (horizon == kNever) {
                routeArrival();
                routedAny = true;
            } else {
                while (issued < total && nextArrival <= horizon) {
                    routeArrival();
                    routedAny = true;
                }
            }
        }
        if (routedAny)
            continue;
        if (horizon == kNever)
            break; // no queues, no deliveries, no arrivals: done

        // Pod-scope chip faults due by the horizon strike before
        // anything else moves; they change the picture, so re-pick.
        if (applyPodFaults(horizon))
            continue;

        // Health-probe rounds due by the horizon ping every chip and
        // feed the breakers. The probe measures the chip-side service
        // component (what a straggler dilates), not the full round
        // trip — propagation latency would mask the dilation — and it
        // samples the slow factor at the ping's nominal arrival
        // (probe tick + propagation): arrivals are pipeline-routed up
        // to the event horizon, so the FIFO ingress link can already
        // hold future-timestamped request payloads that would push
        // the probe's delivery tick far past the window it is meant
        // to observe. Both transfer legs are still costed on the
        // interconnect.
        if (haveBreakers && nextProbe <= horizon) {
            const Tick at = nextProbe;
            for (int c = 0; c < K; ++c) {
                ChipBackend &b = *chips[static_cast<std::size_t>(c)];
                ++relStats.probes;
                if (b.dark) {
                    breakers[static_cast<std::size_t>(c)].recordPing(
                        at, 0.0, false);
                    ++relStats.probeFailures;
                    continue;
                }
                const Tick in =
                    ic.transfer(c, true, at, rel.probePayloadBytes,
                                PayloadClass::Probe);
                const double service =
                    static_cast<double>(rel.probeServiceCycles) *
                    slowFactorAt(
                        c, at + cfg_.interconnect.latencyCycles);
                ic.transfer(c, false,
                            in + static_cast<Tick>(
                                     std::llround(service)),
                            rel.probePayloadBytes,
                            PayloadClass::Probe);
                feedSdc(c, at);
                breakers[static_cast<std::size_t>(c)].recordPing(
                    at, service, true);
            }
            nextProbe = at + rel.probeIntervalCycles;
            continue;
        }

        // Hedge / timeout timers due by the horizon fire next.
        bool firedAny = false;
        while (!timers.empty() &&
               std::get<0>(timers.top()) <= horizon) {
            const auto [at, id, kind] = timers.top();
            timers.pop();
            Outstanding &o = outs[id];
            if (o.done)
                continue;
            firedAny = true;
            if (kind == 1) {
                // Deadline timeout: give up on the request and
                // cancel whatever copies have not started executing.
                o.done = true;
                ++relStats.timeouts;
                if (o.chipA >= 0)
                    cancelCopy(id, o.chipA);
                if (o.chipB >= 0)
                    cancelCopy(id, o.chipB);
                continue;
            }
            // Hedge trigger: the request is still outstanding past
            // the latency-percentile delay — issue one duplicate on
            // the best other chip (idempotent: first completion
            // wins, the loser is cancelled or discarded).
            if (o.copies() != 1)
                continue;
            const int holder = o.chipA >= 0 ? o.chipA : o.chipB;
            const int model = modelOf[id];
            const auto st = statuses(model, at);
            int target = -1;
            for (int c = 0; c < K; ++c) {
                if (c == holder)
                    continue;
                const ChipStatus &s =
                    st[static_cast<std::size_t>(c)];
                if (!s.alive || !s.servesModel || !s.admittable)
                    continue;
                if (cfg_.router.queueLimit != 0 &&
                    s.queued >= cfg_.router.queueLimit)
                    continue;
                if (target < 0 ||
                    s.load <
                        st[static_cast<std::size_t>(target)].load)
                    target = c;
            }
            if (target < 0)
                continue; // nowhere to hedge onto
            if (rel.brownout) {
                // Graceful brownout: a hedge whose projected
                // completion already misses the deadline is wasted
                // interconnect + compute — account and skip it.
                const ChipBackend &tb =
                    *chips[static_cast<std::size_t>(target)];
                const double perReq =
                    tb.haveService
                        ? tb.serviceEwma /
                              cfg_.serve.batching.maxBatch
                        : 0.0;
                const double projected =
                    static_cast<double>(at) +
                    st[static_cast<std::size_t>(target)].load +
                    perReq;
                if (projected > static_cast<double>(
                                    podArrivalOf[id]) +
                                    deadlineTicks) {
                    ++relStats.brownoutSheds;
                    continue;
                }
            }
            serve::Request copy;
            copy.id = id;
            copy.routing = routingOf[id];
            deliverTo(target, std::move(copy), at, false, true);
            ++relStats.hedges;
        }
        if (firedAny)
            continue;

        // Interconnect deliveries due by the horizon land next;
        // admitted work can move dispatch moments, so re-pick.
        bool flushedAny = false;
        for (int c = 0; c < K; ++c)
            flushedAny |= flushDeliveries(
                *chips[static_cast<std::size_t>(c)], horizon);
        if (flushedAny)
            continue;

        // Nothing pending before it: dispatch the best chip.
        ChipBackend &b = *chips[static_cast<std::size_t>(bestIdx)];

        // Per-chip (tile-scope) faults replay on the chip's own
        // clock with the single-chip fail-over path.
        if (b.injector && b.injector->advanceTo(best, b.chip) &&
            cfg_.serve.failover && !schedCfg_.worstCase) {
            const std::vector<TileId> alive = b.chip.healthyTiles();
            if (!alive.empty()) {
                b.scheduler.setHealthyTiles(alive);
                Rebuild rb = rebuildSchedule(b, best, nullptr);
                b.schedule = std::move(rb.schedule);
                b.installedExp = b.expectations;
                b.installedKv = b.kernelValues;
                b.installedLoadMean =
                    loadMean(*b.wl->dg, b.installedExp,
                             b.wl->traceCfg.batchSize);
                b.engineFree = best + rb.cost;
                ++b.failovers;
                continue; // re-pick against the new engine-free time
            }
        }

        // ---- dispatch the chosen chip ------------------------------
        std::vector<serve::FormedBatch> formed;
        while (b.batcher.queued() > 0 &&
               b.batcher.nextFormTick() <= best)
            formed.push_back(b.batcher.form(best));

        std::vector<trace::BatchRouting> routings;
        routings.reserve(formed.size());
        for (const serve::FormedBatch &fb : formed)
            routings.push_back(fb.routing);

        core::PeriodResult res = b.engine.runPeriod(
            b.chip, b.schedule, routings, &b.engineProf, best);
        // A chip_slow span dilates the chip's clock: every cycle the
        // engine spends between dispatch and completion stretches by
        // the straggler factor. The dilated service then feeds the
        // EWMA, so the router's load projections see the slowness.
        const double sf = slowFactorAt(bestIdx, best);
        if (sf > 1.0) {
            const auto dilate = [&](Tick t) {
                return best + static_cast<Tick>(std::llround(
                                  static_cast<double>(t - best) *
                                  sf));
            };
            for (Tick &t : res.batchEnds)
                t = dilate(t);
            res.endTime = dilate(res.endTime);
        }
        b.engineFree = res.endTime;
        b.batches += formed.size();
        if (!res.batchEnds.empty()) {
            const double service =
                static_cast<double>(res.batchEnds.back() - best);
            b.serviceEwma = b.haveService
                                ? 0.8 * b.serviceEwma + 0.2 * service
                                : service;
            b.haveService = true;
        }

        for (std::size_t bi = 0; bi < formed.size(); ++bi) {
            for (const serve::Request &r : formed[bi].requests) {
                if (relTracking) {
                    Outstanding &o = outs[r.id];
                    if (o.done) {
                        // A hedged twin (or a timeout) already
                        // settled this request: the batch slot it
                        // occupied is pure wasted work.
                        ++relStats.wastedCompletions;
                        continue;
                    }
                    o.done = true;
                    if (o.chipB >= 0 && bestIdx == o.chipB)
                        ++relStats.hedgeWins;
                    const int other =
                        bestIdx == o.chipA ? o.chipB : o.chipA;
                    if (other >= 0 && cancelCopy(r.id, other))
                        ++relStats.hedgeCancelled;
                }
                // The response serializes back over the chip's
                // egress link; end-to-end latency is pod arrival to
                // response delivery.
                const Tick respTick = ic.transfer(
                    bestIdx, false, res.batchEnds[bi],
                    cfg_.interconnect.responseBytes,
                    PayloadClass::Response);
                feedSdc(bestIdx, respTick);
                b.slo.record(podArrivalOf[r.id], best, respTick);
                podSlo.record(podArrivalOf[r.id], best, respTick);
                if (rel.hedging) {
                    latWin.push_back(static_cast<double>(
                        respTick - podArrivalOf[r.id]));
                    while (latWin.size() >
                           static_cast<std::size_t>(
                               rel.hedgeWindow))
                        latWin.pop_front();
                }
                ++b.completed;
                ++completed;
                recordRequest(b.driftProf, *b.wl->dg, r.routing);
                if (b.driftProf.windowBatches() >=
                    static_cast<std::uint64_t>(
                        cfg_.serve.drift.windowRequests))
                    closeWindow(b);
            }
        }
    }
    (void)completed;

    // ---- report -----------------------------------------------------
    PodReport report;
    report.policy = routePolicyName(cfg_.router.policy);
    report.placement = placementName(cfg_.placement);
    report.chipCount = K;
    report.requests = completed;
    report.shedRequests = shedFront;
    report.darkChipSheds = darkChipSheds;
    report.rerouted = reroutedTotal;
    report.drained = drainedTotal;
    report.diverted = router.diverted();
    report.affinityHits = router.affinityHits();
    report.affinityMisses = router.affinityMisses();
    report.chipFailEvents = chipFailEvents;
    report.chipHeals = chipHeals;
    report.icTransfers = ic.transfers();
    report.icRequestBytes = ic.requestBytes();
    report.icResponseBytes = ic.responseBytes();
    report.icWeightBytes = ic.weightBytes();
    report.reliabilityActive = relActive;
    for (const CircuitBreaker &brk : breakers) {
        relStats.breakerTrips += brk.trips();
        relStats.breakerReopens += brk.reopens();
        relStats.breakerCloses += brk.closes();
    }
    relStats.linkRetries = ic.linkRetries();
    relStats.integrityRetries = ic.integrityRetries();
    relStats.corruptionsInjected = ic.corruptionsInjected();
    relStats.corruptionsDetected = ic.corruptionsDetected();
    relStats.corruptionsUndetected = ic.corruptionsUndetected();
    relStats.icProbeBytes = ic.probeBytes();
    relStats.icRetryBytes = ic.retryBytes();
    report.reliability = relStats;
    const double tickSec = 1.0 / (hw_.tech.freqGhz * 1e9);
    if (issued > 1 && lastArrival > firstArrival)
        report.offeredRps =
            static_cast<double>(issued - 1) /
            (static_cast<double>(lastArrival - firstArrival) *
             tickSec);
    report.horizonTicks = podSlo.lastEnd();
    if (report.horizonTicks > 0)
        report.achievedRps =
            static_cast<double>(completed) /
            (static_cast<double>(report.horizonTicks) * tickSec);
    report.p50Ms = podSlo.latencyPercentileMs(0.50);
    report.p95Ms = podSlo.latencyPercentileMs(0.95);
    report.p99Ms = podSlo.latencyPercentileMs(0.99);
    report.sloAttainment = podSlo.sloAttainment();
    report.goodputRps = podSlo.goodputRps(report.horizonTicks);

    const bool podFaultActive = !cfg_.faultPlan.empty();
    for (int c = 0; c < K; ++c) {
        ChipBackend &b = *chips[static_cast<std::size_t>(c)];
        serve::ServeReport r;
        r.workload = b.wl->name;
        r.mode =
            cfg_.serve.driftReschedule ? "adaptive" : "static";
        r.requests = b.completed;
        r.batches = b.batches;
        r.meanBatchSize =
            b.batches == 0 ? 0.0
                           : static_cast<double>(b.completed) /
                                 static_cast<double>(b.batches);
        if (b.routed > 1 && b.lastArrival > b.firstArrival)
            r.offeredRps = static_cast<double>(b.routed - 1) /
                           (static_cast<double>(b.lastArrival -
                                                b.firstArrival) *
                            tickSec);
        r.horizonTicks = b.slo.lastEnd();
        if (r.horizonTicks > 0)
            r.achievedRps =
                static_cast<double>(b.completed) /
                (static_cast<double>(r.horizonTicks) * tickSec);
        r.p50Ms = b.slo.latencyPercentileMs(0.50);
        r.p95Ms = b.slo.latencyPercentileMs(0.95);
        r.p99Ms = b.slo.latencyPercentileMs(0.99);
        r.meanMs = b.slo.meanLatencyMs();
        r.maxMs = b.slo.maxLatencyMs();
        r.meanQueueMs = b.slo.meanQueueMs();
        r.sloAttainment = b.slo.sloAttainment();
        r.goodputRps = b.slo.goodputRps(r.horizonTicks);
        r.reschedules = b.reschedules;
        r.deltaReschedules = b.deltaReschedules;
        r.segmentsRebuilt = b.segmentsRebuilt;
        r.segmentsSpliced = b.segmentsSpliced;
        r.driftWindows = b.driftWindows;
        r.lastDriftDistance = b.monitor.lastDistance();
        r.driftThreshold = b.monitor.effectiveThreshold();
        r.mapperHits = b.mapperHits;
        r.mapperMisses = b.mapperMisses;
        if (schedCfg_.storeCache) {
            r.storeHits = b.storeHits;
            r.storeMisses = b.storeMisses;
        }
        r.execHits = b.engine.execHits();
        r.execMisses = b.engine.execMisses();
        r.failovers = b.failovers;
        r.watchdogFallbacks = b.watchdogFallbacks;
        r.storeFitFailures = b.storeFitFailures;
        r.faultActive = podFaultActive || b.injector.has_value() ||
                        cfg_.serve.rescheduleBudgetCycles > 0;
        if (b.injector) {
            const fault::FaultStats fs = b.injector->stats(b.chip);
            r.failedTiles = fs.failedTiles;
            r.downLinks = fs.downLinks;
            r.degradedLinks = fs.degradedLinks;
            r.probeDrops = fs.probeDrops;
            r.probeRetries = fs.probeRetries;
            r.probeGiveUps = fs.probeGiveUps;
            r.nocDetours = fs.detourRoutes;
            r.unroutablePaths = fs.unroutablePaths;
        }

        ChipResult cr;
        cr.id = b.id;
        cr.model = b.wl->name;
        cr.dark = b.dark;
        cr.routed = b.routed;
        cr.rerouted = b.rerouted;
        cr.drained = b.drained;
        cr.hedged = b.hedged;
        cr.sdc = ic.sdcDetected(c);
        cr.serve = std::move(r);
        report.chips.push_back(std::move(cr));
    }
    return report;
}

} // namespace adyna::pod
