/**
 * @file
 * The inter-chip interconnect of a pod: an explicit, costed
 * bandwidth/latency tier above the on-chip torus. Each chip hangs off
 * the pod fabric through one ingress and one egress serial link
 * (think a handful of SerDes lanes vs the torus's 192 B/cycle/link),
 * and every payload that crosses the chip boundary — the request
 * payload a routed arrival carries in, the response payload a
 * completion carries out, and the weight working set re-streamed when
 * a healed chip rejoins — is serialized on its link and charged the
 * fabric's propagation latency. Links are FIFO with a busy-until
 * horizon: a transfer starts when both the requested start time and
 * the link's previous transfer allow, so delivery times on one link
 * are monotone in issue order (which is what lets delivered requests
 * feed a Batcher's monotone-arrival queue directly).
 */

#ifndef ADYNA_POD_INTERCONNECT_HH
#define ADYNA_POD_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace adyna::pod {

/** Inter-chip link parameters. */
struct InterconnectConfig
{
    /** Serialization bandwidth of one directed chip link, bytes per
     * cycle. Deliberately far below the on-chip torus link rate
     * (192 B/cycle): crossing the chip boundary is the expensive
     * tier. */
    double bytesPerCycle = 48.0;

    /** Propagation latency charged on every transfer, cycles. */
    Cycles latencyCycles = 2000;

    /** Payload of one routed request (input activations plus
     * metadata), bytes. */
    Bytes requestBytes = 4096;

    /** Payload of one response (output logits plus metadata),
     * bytes. */
    Bytes responseBytes = 2048;
};

/** What a transfer carries (per-class byte accounting). */
enum class PayloadClass {
    Request,  ///< router -> chip request payload
    Response, ///< chip -> router response payload
    Weights,  ///< HBM -> chip weight (re-)stream on (re)join
};

/** The pod fabric: one ingress + one egress link per chip. */
class Interconnect
{
  public:
    Interconnect(InterconnectConfig cfg, int chips);

    /**
     * Serialize @p bytes onto @p chip's directed link (@p to_chip
     * picks ingress vs egress) no earlier than @p now.
     * @return the delivery tick (serialization + propagation).
     */
    Tick transfer(int chip, bool to_chip, Tick now, Bytes bytes,
                  PayloadClass cls);

    /** Tick the link's last accepted transfer finishes serializing. */
    Tick linkBusyUntil(int chip, bool to_chip) const;

    std::uint64_t transfers() const { return transfers_; }
    Bytes requestBytes() const { return requestBytes_; }
    Bytes responseBytes() const { return responseBytes_; }
    Bytes weightBytes() const { return weightBytes_; }

    const InterconnectConfig &config() const { return cfg_; }

  private:
    std::size_t linkIndex(int chip, bool to_chip) const;

    InterconnectConfig cfg_;
    int chips_ = 0;

    /** Per-link busy-until horizon: [2c] = ingress, [2c+1] =
     * egress. */
    std::vector<Tick> busyUntil_;

    std::uint64_t transfers_ = 0;
    Bytes requestBytes_ = 0;
    Bytes responseBytes_ = 0;
    Bytes weightBytes_ = 0;
};

} // namespace adyna::pod

#endif // ADYNA_POD_INTERCONNECT_HH
