/**
 * @file
 * The inter-chip interconnect of a pod: an explicit, costed
 * bandwidth/latency tier above the on-chip torus. Each chip hangs off
 * the pod fabric through one ingress and one egress serial link
 * (think a handful of SerDes lanes vs the torus's 192 B/cycle/link),
 * and every payload that crosses the chip boundary — the request
 * payload a routed arrival carries in, the response payload a
 * completion carries out, and the weight working set re-streamed when
 * a healed chip rejoins — is serialized on its link and charged the
 * fabric's propagation latency. Links are FIFO with a busy-until
 * horizon: a transfer starts when both the requested start time and
 * the link's previous transfer allow, so delivery times on one link
 * are monotone in issue order (which is what lets delivered requests
 * feed a Batcher's monotone-arrival queue directly).
 *
 * Gray-failure windows (DESIGN.md §15) make individual transfers
 * unreliable: inside a link_flaky window each serialization attempt
 * is lost with probability p — detected at the link layer and
 * retransmitted until clean, each attempt re-serialized on the FIFO
 * link — and inside a payload_corrupt window each attempt takes a
 * silent bit-flip with probability p. With end-to-end checksums on,
 * a corrupted attempt is detected and retried exactly like a link
 * loss (and counted per chip for the circuit breaker's SDC trip);
 * with checksums off the corrupted payload is delivered wrong and
 * only the undetected counter knows. With no windows configured the
 * RNG is never drawn and transfers behave exactly as before, so
 * fault-free pods stay byte-identical.
 */

#ifndef ADYNA_POD_INTERCONNECT_HH
#define ADYNA_POD_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace adyna::pod {

/** Inter-chip link parameters. */
struct InterconnectConfig
{
    /** Serialization bandwidth of one directed chip link, bytes per
     * cycle. Deliberately far below the on-chip torus link rate
     * (192 B/cycle): crossing the chip boundary is the expensive
     * tier. */
    double bytesPerCycle = 48.0;

    /** Propagation latency charged on every transfer, cycles. */
    Cycles latencyCycles = 2000;

    /** Payload of one routed request (input activations plus
     * metadata), bytes. */
    Bytes requestBytes = 4096;

    /** Payload of one response (output logits plus metadata),
     * bytes. */
    Bytes responseBytes = 2048;
};

/** What a transfer carries (per-class byte accounting). */
enum class PayloadClass {
    Request,  ///< router -> chip request payload
    Response, ///< chip -> router response payload
    Weights,  ///< HBM -> chip weight (re-)stream on (re)join
    Probe,    ///< router -> chip -> router health-probe ping
};

/** A [start, end) tick span during which transfers fault with
 * probability prob per attempt. */
struct UnreliableWindow
{
    Tick start = 0;
    Tick end = 0;
    double prob = 0.0;
};

/** The pod fabric: one ingress + one egress link per chip. */
class Interconnect
{
  public:
    Interconnect(InterconnectConfig cfg, int chips);

    /**
     * Serialize @p bytes onto @p chip's directed link (@p to_chip
     * picks ingress vs egress) no earlier than @p now.
     * @return the delivery tick (serialization + propagation,
     * including any retransmitted attempts).
     */
    Tick transfer(int chip, bool to_chip, Tick now, Bytes bytes,
                  PayloadClass cls);

    /** Tick the link's last accepted transfer finishes serializing. */
    Tick linkBusyUntil(int chip, bool to_chip) const;

    std::uint64_t transfers() const { return transfers_; }
    Bytes requestBytes() const { return requestBytes_; }
    Bytes responseBytes() const { return responseBytes_; }
    Bytes weightBytes() const { return weightBytes_; }
    Bytes probeBytes() const { return probeBytes_; }

    // ---- gray-failure windows (see file comment) -------------------

    /** Seed the per-attempt fault stream (one shared deterministic
     * stream; the pod loop is single-threaded). */
    void setSeed(std::uint64_t seed);

    /** Verify end-to-end checksums on every transfer (detect-and-
     * retry corrupted attempts). */
    void setChecksums(bool on) { checksums_ = on; }

    /** link_flaky windows of @p chip (both directions). */
    void setFlakyWindows(int chip,
                         std::vector<UnreliableWindow> windows);

    /** payload_corrupt windows (fabric-wide). */
    void setCorruptWindows(std::vector<UnreliableWindow> windows);

    /** Link-layer losses retransmitted (flaky windows). */
    std::uint64_t linkRetries() const { return linkRetries_; }
    /** Checksum-detected corruptions retransmitted. */
    std::uint64_t integrityRetries() const
    {
        return integrityRetries_;
    }
    std::uint64_t corruptionsInjected() const
    {
        return corruptionsInjected_;
    }
    std::uint64_t corruptionsDetected() const
    {
        return corruptionsDetected_;
    }
    /** Corrupted payloads delivered wrong (checksums off). */
    std::uint64_t corruptionsUndetected() const
    {
        return corruptionsUndetected_;
    }
    /** Checksum-detected corruptions on @p chip's links (the
     * breaker's SDC feed). */
    std::uint64_t sdcDetected(int chip) const;
    /** Extra bytes serialized by retransmitted attempts. */
    Bytes retryBytes() const { return retryBytes_; }

    const InterconnectConfig &config() const { return cfg_; }

  private:
    std::size_t linkIndex(int chip, bool to_chip) const;
    static double windowProb(
        const std::vector<UnreliableWindow> &windows, Tick at);

    InterconnectConfig cfg_;
    int chips_ = 0;

    /** Per-link busy-until horizon: [2c] = ingress, [2c+1] =
     * egress. */
    std::vector<Tick> busyUntil_;

    std::uint64_t transfers_ = 0;
    Bytes requestBytes_ = 0;
    Bytes responseBytes_ = 0;
    Bytes weightBytes_ = 0;
    Bytes probeBytes_ = 0;

    bool checksums_ = false;
    Rng rng_{0x9d2c5680u};
    std::vector<std::vector<UnreliableWindow>> flaky_;
    std::vector<UnreliableWindow> corrupt_;
    bool unreliable_ = false;

    std::uint64_t linkRetries_ = 0;
    std::uint64_t integrityRetries_ = 0;
    std::uint64_t corruptionsInjected_ = 0;
    std::uint64_t corruptionsDetected_ = 0;
    std::uint64_t corruptionsUndetected_ = 0;
    std::vector<std::uint64_t> sdc_;
    Bytes retryBytes_ = 0;
};

} // namespace adyna::pod

#endif // ADYNA_POD_INTERCONNECT_HH
