#include "pod/breaker.hh"

namespace adyna::pod {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      default:
        return "half_open";
    }
}

void
CircuitBreaker::open(Tick now, bool probation_failed)
{
    state_ = BreakerState::Open;
    openedAt_ = now;
    halfOpenStreak_ = 0;
    consecutiveErrors_ = 0;
    if (probation_failed)
        ++reopens_;
    else
        ++trips_;
}

void
CircuitBreaker::maybeHalfOpen(Tick now)
{
    if (state_ == BreakerState::Open &&
        now >= openedAt_ + cfg_.openCycles) {
        state_ = BreakerState::HalfOpen;
        halfOpenStreak_ = 0;
    }
}

void
CircuitBreaker::recordPing(Tick now, double service_ticks, bool ok)
{
    maybeHalfOpen(now);
    if (!ok) {
        ++consecutiveErrors_;
        if (state_ == BreakerState::HalfOpen)
            open(now, /*probation_failed=*/true);
        else if (state_ == BreakerState::Closed &&
                 consecutiveErrors_ >= cfg_.errorTrip)
            open(now, /*probation_failed=*/false);
        return;
    }
    consecutiveErrors_ = 0;

    if (calibrated_ < cfg_.calibrationPings) {
        // Baseline calibration: a frozen mean of the first healthy
        // probes, taken before any trip can arm so a straggler
        // window later is judged against the chip's own healthy
        // service time.
        baseline_ = (baseline_ * calibrated_ + service_ticks) /
                    (calibrated_ + 1);
        ewma_ = baseline_;
        ++calibrated_;
        if (state_ == BreakerState::HalfOpen &&
            ++halfOpenStreak_ >= cfg_.halfOpenSuccesses) {
            state_ = BreakerState::Closed;
            ++closes_;
            sdcCount_ = 0;
        }
        return;
    }

    const double limit = cfg_.latencyTripFactor * baseline_;
    if (state_ == BreakerState::HalfOpen) {
        // Probation judges the instantaneous sample: the EWMA is
        // still poisoned by the slow window that tripped us.
        if (service_ticks <= limit) {
            ewma_ = service_ticks;
            if (++halfOpenStreak_ >= cfg_.halfOpenSuccesses) {
                state_ = BreakerState::Closed;
                ++closes_;
                sdcCount_ = 0;
            }
        } else {
            open(now, /*probation_failed=*/true);
        }
        return;
    }

    ewma_ = (1.0 - cfg_.ewmaAlpha) * ewma_ +
            cfg_.ewmaAlpha * service_ticks;
    if (state_ == BreakerState::Closed && baseline_ > 0.0 &&
        ewma_ > limit)
        open(now, /*probation_failed=*/false);
}

void
CircuitBreaker::recordSdc(Tick now)
{
    maybeHalfOpen(now);
    ++sdcCount_;
    if (state_ == BreakerState::HalfOpen)
        open(now, /*probation_failed=*/true);
    else if (state_ == BreakerState::Closed &&
             sdcCount_ >= cfg_.sdcTrip)
        open(now, /*probation_failed=*/false);
}

bool
CircuitBreaker::admits(Tick now)
{
    maybeHalfOpen(now);
    return state_ != BreakerState::Open;
}

} // namespace adyna::pod
