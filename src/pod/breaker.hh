/**
 * @file
 * Per-chip circuit breaker for the pod router (DESIGN.md §15).
 *
 * The breaker watches cheap health-probe pings and end-to-end
 * checksum verdicts for one chip and decides whether the router may
 * keep admitting new work to it. Classic three-state machine:
 *
 *   Closed    — healthy; trips to Open when the EWMA of probe
 *               service times exceeds latencyTripFactor x the frozen
 *               calibration baseline, when errorTrip consecutive
 *               probes fail, or when sdcTrip silent-data-corruption
 *               detections accumulate.
 *   Open      — no new admissions (queued work keeps draining);
 *               after openCycles the next admits()/recordPing()
 *               moves to HalfOpen.
 *   HalfOpen  — admitting again on probation: halfOpenSuccesses
 *               consecutive healthy probes re-close the breaker; any
 *               failed, slow, or corrupted probe re-opens it.
 *
 * Everything is deterministic — state only moves on recordPing /
 * recordSdc / admits calls stamped with the simulated clock — so
 * breaker-driven runs replay exactly.
 */

#ifndef ADYNA_POD_BREAKER_HH
#define ADYNA_POD_BREAKER_HH

#include <cstdint>

#include "common/types.hh"

namespace adyna::pod {

/** Circuit-breaker policy knobs. */
struct BreakerConfig
{
    /** Trip when EWMA probe service time exceeds this multiple of
     * the calibration baseline. */
    double latencyTripFactor = 3.0;

    /** Healthy probes averaged into the frozen baseline before the
     * latency trip arms. */
    int calibrationPings = 3;

    /** EWMA smoothing weight of the newest probe sample. */
    double ewmaAlpha = 0.4;

    /** Consecutive failed probes that trip the breaker. */
    int errorTrip = 3;

    /** Cumulative SDC detections (since the last close) that trip
     * the breaker. */
    int sdcTrip = 3;

    /** Cooldown in the Open state before probing again. */
    Cycles openCycles = 2'000'000;

    /** Consecutive healthy probes that close a half-open breaker. */
    int halfOpenSuccesses = 2;
};

enum class BreakerState { Closed, Open, HalfOpen };

/** Lower-case state name ("closed" / "open" / "half_open"). */
const char *breakerStateName(BreakerState state);

/** One chip's health state machine (see file comment). */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerConfig cfg) : cfg_(cfg) {}

    /**
     * Feed one health-probe result. @p service_ticks is the
     * chip-side service component of the ping round trip (the part
     * a straggler dilates); ignored when @p ok is false (probe
     * lost — dark chip or timed-out ping).
     */
    void recordPing(Tick now, double service_ticks, bool ok);

    /** Feed one detected silent-data-corruption on this chip's
     * payloads. */
    void recordSdc(Tick now);

    /**
     * The router may admit new work to this chip. Querying an Open
     * breaker past its cooldown moves it to HalfOpen (probation),
     * so admission resumes without a separate timer.
     */
    bool admits(Tick now);

    BreakerState state() const { return state_; }
    double baseline() const { return baseline_; }
    double ewma() const { return ewma_; }

    /** Closed → Open transitions (all causes). */
    std::uint64_t trips() const { return trips_; }
    /** HalfOpen → Open transitions (failed probation). */
    std::uint64_t reopens() const { return reopens_; }
    /** HalfOpen → Closed transitions (passed probation). */
    std::uint64_t closes() const { return closes_; }

  private:
    void open(Tick now, bool probation_failed);
    void maybeHalfOpen(Tick now);

    BreakerConfig cfg_;
    BreakerState state_ = BreakerState::Closed;

    /** Frozen mean of the first calibrationPings healthy probes. */
    double baseline_ = 0.0;
    double ewma_ = 0.0;
    int calibrated_ = 0;

    int consecutiveErrors_ = 0;
    int sdcCount_ = 0;
    int halfOpenStreak_ = 0;
    Tick openedAt_ = 0;

    std::uint64_t trips_ = 0;
    std::uint64_t reopens_ = 0;
    std::uint64_t closes_ = 0;
};

} // namespace adyna::pod

#endif // ADYNA_POD_BREAKER_HH
