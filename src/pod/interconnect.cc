#include "pod/interconnect.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::pod {

Interconnect::Interconnect(InterconnectConfig cfg, int chips)
    : cfg_(cfg), chips_(chips)
{
    ADYNA_ASSERT(chips_ >= 1, "pod interconnect needs >= 1 chip");
    ADYNA_ASSERT(cfg_.bytesPerCycle > 0.0,
                 "interconnect bandwidth must be > 0");
    busyUntil_.assign(static_cast<std::size_t>(chips_) * 2, 0);
}

std::size_t
Interconnect::linkIndex(int chip, bool to_chip) const
{
    ADYNA_ASSERT(chip >= 0 && chip < chips_, "bad pod chip ", chip);
    return static_cast<std::size_t>(chip) * 2 + (to_chip ? 0 : 1);
}

Tick
Interconnect::transfer(int chip, bool to_chip, Tick now, Bytes bytes,
                       PayloadClass cls)
{
    const std::size_t link = linkIndex(chip, to_chip);
    const Tick start = std::max(now, busyUntil_[link]);
    const auto serialize = static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) / cfg_.bytesPerCycle));
    busyUntil_[link] = start + serialize;
    ++transfers_;
    switch (cls) {
      case PayloadClass::Request:
        requestBytes_ += bytes;
        break;
      case PayloadClass::Response:
        responseBytes_ += bytes;
        break;
      case PayloadClass::Weights:
        weightBytes_ += bytes;
        break;
    }
    return busyUntil_[link] + cfg_.latencyCycles;
}

Tick
Interconnect::linkBusyUntil(int chip, bool to_chip) const
{
    return busyUntil_[linkIndex(chip, to_chip)];
}

} // namespace adyna::pod
