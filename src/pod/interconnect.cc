#include "pod/interconnect.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::pod {

Interconnect::Interconnect(InterconnectConfig cfg, int chips)
    : cfg_(cfg), chips_(chips)
{
    ADYNA_ASSERT(chips_ >= 1, "pod interconnect needs >= 1 chip");
    ADYNA_ASSERT(cfg_.bytesPerCycle > 0.0,
                 "interconnect bandwidth must be > 0");
    busyUntil_.assign(static_cast<std::size_t>(chips_) * 2, 0);
    flaky_.assign(static_cast<std::size_t>(chips_), {});
    sdc_.assign(static_cast<std::size_t>(chips_), 0);
}

std::size_t
Interconnect::linkIndex(int chip, bool to_chip) const
{
    ADYNA_ASSERT(chip >= 0 && chip < chips_, "bad pod chip ", chip);
    return static_cast<std::size_t>(chip) * 2 + (to_chip ? 0 : 1);
}

void
Interconnect::setSeed(std::uint64_t seed)
{
    rng_ = Rng(seed);
}

void
Interconnect::setFlakyWindows(int chip,
                              std::vector<UnreliableWindow> windows)
{
    ADYNA_ASSERT(chip >= 0 && chip < chips_, "bad pod chip ", chip);
    flaky_[static_cast<std::size_t>(chip)] = std::move(windows);
    unreliable_ = true;
}

void
Interconnect::setCorruptWindows(std::vector<UnreliableWindow> windows)
{
    corrupt_ = std::move(windows);
    unreliable_ = true;
}

double
Interconnect::windowProb(const std::vector<UnreliableWindow> &windows,
                         Tick at)
{
    double p = 0.0;
    for (const UnreliableWindow &w : windows)
        if (at >= w.start && at < w.end)
            p = std::max(p, w.prob);
    return p;
}

Tick
Interconnect::transfer(int chip, bool to_chip, Tick now, Bytes bytes,
                       PayloadClass cls)
{
    const std::size_t link = linkIndex(chip, to_chip);
    const Tick start = std::max(now, busyUntil_[link]);
    const auto serialize = static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) / cfg_.bytesPerCycle));

    Tick done = start;
    if (!unreliable_) {
        // Fast path: no gray windows configured anywhere, never
        // draw the RNG (the fault-free byte-identity gate).
        done += serialize;
    } else {
        const double flakyP =
            windowProb(flaky_[static_cast<std::size_t>(chip)], start);
        const double corruptP = windowProb(corrupt_, start);
        for (;;) {
            done += serialize;
            if (flakyP > 0.0 && rng_.bernoulli(flakyP)) {
                // Link-layer frame loss: detected by the transport,
                // retransmitted on the same FIFO link.
                ++linkRetries_;
                retryBytes_ += bytes;
                continue;
            }
            if (corruptP > 0.0 && rng_.bernoulli(corruptP)) {
                ++corruptionsInjected_;
                if (checksums_) {
                    // End-to-end checksum catches the flip: count
                    // the SDC against this chip and retry, costed
                    // like any other attempt.
                    ++corruptionsDetected_;
                    ++sdc_[static_cast<std::size_t>(chip)];
                    ++integrityRetries_;
                    retryBytes_ += bytes;
                    continue;
                }
                // No checksums: the corrupted payload is delivered
                // as if nothing happened.
                ++corruptionsUndetected_;
            }
            break;
        }
    }

    busyUntil_[link] = done;
    ++transfers_;
    switch (cls) {
      case PayloadClass::Request:
        requestBytes_ += bytes;
        break;
      case PayloadClass::Response:
        responseBytes_ += bytes;
        break;
      case PayloadClass::Weights:
        weightBytes_ += bytes;
        break;
      case PayloadClass::Probe:
        probeBytes_ += bytes;
        break;
    }
    return busyUntil_[link] + cfg_.latencyCycles;
}

std::uint64_t
Interconnect::sdcDetected(int chip) const
{
    ADYNA_ASSERT(chip >= 0 && chip < chips_, "bad pod chip ", chip);
    return sdc_[static_cast<std::size_t>(chip)];
}

Tick
Interconnect::linkBusyUntil(int chip, bool to_chip) const
{
    return busyUntil_[linkIndex(chip, to_chip)];
}

} // namespace adyna::pod
