#include "pod/router.hh"

#include <cmath>

#include "common/logging.hh"

namespace adyna::pod {

const char *
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::LeastLoaded:
        return "least_loaded";
      case RoutePolicy::Affinity:
        return "affinity";
      default:
        return "round_robin";
    }
}

Router::Router(RouterConfig cfg, int chips)
    : cfg_(cfg), chips_(chips)
{
    ADYNA_ASSERT(chips_ >= 1, "router needs >= 1 chip");
}

bool
Router::eligible(const ChipStatus &s) const
{
    // Static pinning ignores health: the router keeps dispatching to
    // a dark chip and the runtime sheds what lands there. A tripped
    // circuit breaker, by contrast, gates admission under either
    // policy — it is the router's own health verdict, not the
    // fault model's.
    return (s.alive || !cfg_.reRouteOnFailure) && s.servesModel &&
           s.admittable;
}

bool
Router::hasRoom(const ChipStatus &s) const
{
    return cfg_.queueLimit == 0 || s.queued < cfg_.queueLimit;
}

RouteDecision
Router::route(const std::vector<ChipStatus> &status, double signature)
{
    ADYNA_ASSERT(static_cast<int>(status.size()) == chips_,
                 "router built for ", chips_, " chips, got ",
                 status.size(), " statuses");

    /** true when chip a beats chip b under the policy (both must be
     * eligible). Strict, so the lowest id wins every tie. */
    const auto better = [&](int a, int b) {
        const ChipStatus &sa = status[static_cast<std::size_t>(a)];
        const ChipStatus &sb = status[static_cast<std::size_t>(b)];
        if (cfg_.policy == RoutePolicy::Affinity) {
            const double da =
                std::abs(sa.installedLoadMean - signature);
            const double db =
                std::abs(sb.installedLoadMean - signature);
            if (da != db)
                return da < db;
        }
        if (sa.load != sb.load)
            return sa.load < sb.load;
        return a < b;
    };

    int preferred = RouteDecision::kShed;
    int chosen = RouteDecision::kShed;
    if (cfg_.policy == RoutePolicy::RoundRobin) {
        // First eligible chip at or after the cursor; first eligible
        // chip with queue room is the pick.
        for (int i = 0; i < chips_; ++i) {
            const int c = (cursor_ + i) % chips_;
            const ChipStatus &s =
                status[static_cast<std::size_t>(c)];
            if (!eligible(s))
                continue;
            if (preferred == RouteDecision::kShed)
                preferred = c;
            if (hasRoom(s)) {
                chosen = c;
                break;
            }
        }
        if (chosen != RouteDecision::kShed)
            cursor_ = (chosen + 1) % chips_;
    } else {
        for (int c = 0; c < chips_; ++c) {
            const ChipStatus &s =
                status[static_cast<std::size_t>(c)];
            if (!eligible(s))
                continue;
            if (preferred == RouteDecision::kShed ||
                better(c, preferred))
                preferred = c;
            if (hasRoom(s) &&
                (chosen == RouteDecision::kShed || better(c, chosen)))
                chosen = c;
        }
    }

    RouteDecision out;
    out.chip = chosen;
    if (chosen == RouteDecision::kShed) {
        ++shed_;
        return out;
    }
    out.diverted = chosen != preferred;
    if (out.diverted)
        ++diverted_;
    if (cfg_.policy == RoutePolicy::Affinity) {
        out.affinityHit = !out.diverted;
        if (out.affinityHit)
            ++affinityHits_;
        else
            ++affinityMisses_;
    }
    return out;
}

} // namespace adyna::pod
