/**
 * @file
 * Area / power technology model (substitute for the paper's RTL
 * synthesis + CACTI 7.0 flow). Component constants live in
 * TechParams, calibrated at a 32x32 FP16 tile in 28 nm; this module
 * scales them with the configured tile shape and reports the tile
 * and chip breakdowns of Table IV.
 */

#ifndef ADYNA_COSTMODEL_AREA_HH
#define ADYNA_COSTMODEL_AREA_HH

#include <string>
#include <vector>

#include "costmodel/tech.hh"

namespace adyna::costmodel {

/** One row of the Table IV breakdown. */
struct ComponentBudget
{
    std::string name;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** Area / power breakdown of one tile. */
struct TileBudget
{
    std::vector<ComponentBudget> components;

    double totalAreaMm2() const;
    double totalPowerMw() const;

    /** Fraction of tile area in DynNN-specific logic (dispatcher,
     * controller/profiler, modified network interface). */
    double dynnnAreaFraction() const;
};

/**
 * Tile breakdown under @p tech. The PE array scales quadratically
 * with array edge, the scratchpad linearly with capacity; the
 * dispatcher/controller and router/NIC are fixed blocks.
 */
TileBudget tileBudget(const TechParams &tech);

/** Whole-chip budget for @p tiles tiles. */
TileBudget chipBudget(const TechParams &tech, int tiles);

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_AREA_HH
