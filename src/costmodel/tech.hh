/**
 * @file
 * Technology parameters of the modelled accelerator: PE array shape,
 * buffer capacities, and per-action energy / per-unit area constants.
 *
 * The energy constants are literature values for a 28 nm process
 * (FP16 MAC ~1.1 pJ including register-file access, large SRAM
 * ~0.6 pJ/B, HBM2 ~3.9 pJ/bit, NoC ~0.8 pJ/B/hop); the area and
 * power constants are calibrated so one 32x32 tile reproduces the
 * paper's Table IV breakdown. This substitutes for the paper's RTL
 * synthesis + CACTI flow (see DESIGN.md).
 */

#ifndef ADYNA_COSTMODEL_TECH_HH
#define ADYNA_COSTMODEL_TECH_HH

#include "common/types.hh"

namespace adyna::costmodel {

/** Per-tile compute / storage shape and per-action costs. */
struct TechParams
{
    // --- compute ---------------------------------------------------
    int peRows = 32; ///< PE array rows (mapped to K)
    int peCols = 32; ///< PE array columns (mapped to C)
    double freqGhz = 1.0;

    // --- storage ---------------------------------------------------
    Bytes spadBytes = Bytes{512} << 10; ///< scratchpad per tile
    Bytes rfBytes = 64;                 ///< register file per PE
    /** Fraction of the scratchpad reserved for kernel metadata
     * (Section VI-B: <= 5%, i.e. 25.6 kB of 512 kB). */
    double kernelSpadFraction = 0.05;
    /** Bytes of one encoded template kernel (Section VI-B). */
    Bytes kernelMetadataBytes = 128;

    // --- energy (picojoules) ---------------------------------------
    double eMacPj = 1.10;       ///< FP16 MAC incl. RF access
    double eSramPerBytePj = 0.60;
    double eDramPerBytePj = 31.2; ///< HBM2, 3.9 pJ/bit
    double eNocPerByteHopPj = 0.80;

    // --- area / power (Table IV calibration, 28 nm) -----------------
    double peArrayAreaMm2 = 1.981;
    double peArrayPowerMw = 1156.355;
    double spadAreaMm2 = 1.413;
    double spadPowerMw = 247.927;
    double dispatcherCtrlAreaMm2 = 0.148;
    double dispatcherCtrlPowerMw = 10.409;
    double routerNicAreaMm2 = 0.025;
    double routerNicPowerMw = 1.646;

    /** MACs one tile retires per cycle at full utilization. */
    std::int64_t
    macsPerCycle() const
    {
        return static_cast<std::int64_t>(peRows) * peCols;
    }

    /** Scratchpad budget for kernel metadata (25.6 kB default). */
    Bytes
    kernelSpadBudget() const
    {
        return static_cast<Bytes>(
            kernelSpadFraction * static_cast<double>(spadBytes));
    }

    /** Maximum number of kernels one tile can buffer. */
    int
    maxKernelsPerTile() const
    {
        return static_cast<int>(kernelSpadBudget() /
                                kernelMetadataBytes);
    }
};

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_TECH_HH
