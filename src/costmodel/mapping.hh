/**
 * @file
 * Kernel mappings: the intra-operator dataflow scheme the paper calls
 * a "kernel" (Section II-B, kernel generation level). A mapping fixes
 * (1) the spatial split of the loop nest across the operator's tile
 * group, (2) the scratchpad-level blocking, and (3) the DRAM-level
 * loop order. A kernel is a mapping compiled for one specific
 * dyn_dim (batch) value.
 */

#ifndef ADYNA_COSTMODEL_MAPPING_HH
#define ADYNA_COSTMODEL_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/dims.hh"

namespace adyna::costmodel {

/** Canonical DRAM-level loop orders (outermost blocked dim first). */
enum class LoopOrder : std::uint8_t {
    NOuter = 0, ///< N, K, C outer-to-inner (weights re-streamed per N)
    KOuter = 1, ///< K, N, C (inputs re-streamed per K)
    COuter = 2, ///< C, N, K (partial sums spilled per C block)
};

inline constexpr int kNumLoopOrders = 3;

/** Short name of a loop order. */
const char *loopOrderName(LoopOrder order);

/** Full 7-dim permutation (outer to inner) of a canonical order. */
std::array<graph::Dim, graph::kNumDims> orderPermutation(LoopOrder order);

/** One spatial split: a loop dimension parallelized across tiles. */
struct SpatialSplit
{
    graph::Dim dim = graph::Dim::N;
    int factor = 1;

    bool operator==(const SpatialSplit &other) const = default;
};

/**
 * A kernel mapping, compiled for a specific dyn_dim value
 * (compiledDims.n()) and tile-group size.
 */
struct Mapping
{
    /** Loop extents the kernel was compiled for (N = the kernel's
     * dyn_dim sample value). */
    graph::LoopDims compiledDims;

    /** Tile-group size the kernel was compiled for. */
    int tiles = 1;

    /** Spatial splits across the tile group (at most 2; factors
     * multiply to <= tiles). */
    std::vector<SpatialSplit> splits;

    /** Scratchpad-level block extents per dim. */
    graph::LoopDims spadBlock;

    /** DRAM-level loop order over the blocked dims. */
    LoopOrder order = LoopOrder::NOuter;

    /** Total spatial split factor along @p d (1 if unsplit). */
    int splitFactor(graph::Dim d) const;

    /** Per-tile loop extents after the spatial split (ceil). */
    graph::LoopDims perTileDims() const;

    /** Human-readable description. */
    std::string str() const;

    bool operator==(const Mapping &other) const = default;
};

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_MAPPING_HH
