/**
 * @file
 * Kernel generation: search for the best mapping of one operator at
 * one dyn_dim value onto a tile group (Section II-B's "kernel
 * generation" level). The search space is the spatial split of up to
 * two dims across the tiles, the DRAM-level loop order, and the
 * scratchpad blocking; the objective is makespan cycles, then DRAM
 * spills, then SRAM traffic. Results are memoized: the scheduler
 * asks for the same (op, value, tiles) triple many times.
 */

#ifndef ADYNA_COSTMODEL_MAPPER_HH
#define ADYNA_COSTMODEL_MAPPER_HH

#include <cstdint>
#include <map>
#include <tuple>

#include "costmodel/cost.hh"
#include "costmodel/mapping.hh"
#include "costmodel/tech.hh"
#include "graph/op.hh"

namespace adyna::costmodel {

/** Memoizing mapping search engine. */
class Mapper
{
  public:
    explicit Mapper(TechParams tech);

    /**
     * Best mapping for @p op executed at batch extent @p n on
     * @p tiles tiles. Feasible (scratchpad-fitting) mappings are
     * preferred; if none fits (oversized weights), the smallest-
     * footprint mapping is returned and the caller must stream
     * weights.
     */
    Mapping search(const graph::OpNode &op, std::int64_t n, int tiles);

    /** Convenience: mapping and its cost at the compiled value. */
    std::pair<Mapping, KernelCost>
    searchWithCost(const graph::OpNode &op, std::int64_t n, int tiles);

    const TechParams &tech() const { return tech_; }

    /** Cache statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    using Key = std::tuple<std::array<std::int64_t, graph::kNumDims>,
                           int, int, std::int64_t, int>;

    Mapping searchUncached(const graph::OpNode &op, std::int64_t n,
                           int tiles) const;

    TechParams tech_;
    std::map<Key, Mapping> cache_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_MAPPER_HH
