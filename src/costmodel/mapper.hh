/**
 * @file
 * Kernel generation: search for the best mapping of one operator at
 * one dyn_dim value onto a tile group (Section II-B's "kernel
 * generation" level). The search space is the spatial split of up to
 * two dims across the tiles, the DRAM-level loop order, and the
 * scratchpad blocking; the objective is makespan cycles, then DRAM
 * spills, then SRAM traffic. Results are memoized: the scheduler
 * asks for the same (op, value, tiles) triple many times.
 *
 * The memo cache is thread-safe (reader/writer lock), so one Mapper
 * can be shared across the concurrent runs of a bench sweep and the
 * identical exact-kernel searches are performed once per sweep
 * instead of once per System. Search results are deterministic and
 * independent of cache state, so sharing never changes simulation
 * outputs; only the hit/miss counters depend on the interleaving.
 */

#ifndef ADYNA_COSTMODEL_MAPPER_HH
#define ADYNA_COSTMODEL_MAPPER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <tuple>

#include "costmodel/cost.hh"
#include "costmodel/mapping.hh"
#include "costmodel/tech.hh"
#include "graph/op.hh"

namespace adyna::costmodel {

/** Memoizing mapping search engine. */
class Mapper
{
  public:
    explicit Mapper(TechParams tech);

    /**
     * Best mapping for @p op executed at batch extent @p n on
     * @p tiles tiles. Feasible (scratchpad-fitting) mappings are
     * preferred; if none fits (oversized weights), the smallest-
     * footprint mapping is returned and the caller must stream
     * weights.
     */
    Mapping search(const graph::OpNode &op, std::int64_t n, int tiles);

    /** Convenience: mapping and its cost at the compiled value. */
    std::pair<Mapping, KernelCost>
    searchWithCost(const graph::OpNode &op, std::int64_t n, int tiles);

    const TechParams &tech() const { return tech_; }

    /** Cache statistics (monotone; safe to read concurrently). */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

  private:
    using Key = std::tuple<std::array<std::int64_t, graph::kNumDims>,
                           int, int, std::int64_t, int>;

    Mapping searchUncached(const graph::OpNode &op, std::int64_t n,
                           int tiles) const;

    TechParams tech_;
    mutable std::shared_mutex mutex_;
    std::map<Key, Mapping> cache_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_MAPPER_HH
