/**
 * @file
 * Analytic dataflow cost model (Timeloop / Interstellar class).
 *
 * Evaluates a kernel mapping on one operator: compute cycles on the
 * PE array (with ceil-induced under-utilization from spatial splits
 * and array mapping), scratchpad traffic via a generic blocked-loop
 * reuse model, DRAM spill traffic when blocks must be re-streamed,
 * the scratchpad footprint, and energy. Supports evaluation at an
 * actual dyn_dim value smaller than the value the kernel was
 * compiled for, with or without runtime kernel fitting
 * (Section VI-B) -- this is what makes a mismatched kernel cost more
 * and mechanistically yields the multi-kernel sampling objective.
 */

#ifndef ADYNA_COSTMODEL_COST_HH
#define ADYNA_COSTMODEL_COST_HH

#include "common/types.hh"
#include "costmodel/mapping.hh"
#include "costmodel/tech.hh"
#include "graph/op.hh"

namespace adyna::costmodel {

/** Per-tensor traffic at one memory level, in bytes. */
struct LevelTraffic
{
    Bytes weights = 0;
    Bytes inputs = 0;
    Bytes outputReads = 0;
    Bytes outputWrites = 0;

    Bytes
    total() const
    {
        return weights + inputs + outputReads + outputWrites;
    }
};

/**
 * Generic reuse model: traffic between a backing level holding the
 * full tensors of @p dims and a buffer level holding one block of
 * @p block per tensor, under blocked loops in @p order. @p stride
 * and the R/S extents determine the input halo.
 */
LevelTraffic blockedTraffic(const graph::LoopDims &dims,
                            const graph::LoopDims &block,
                            LoopOrder order, int stride, int dtype_bytes);

/** Everything the simulator charges for one kernel execution. */
struct KernelCost
{
    /** Makespan of the tile group, in cycles (max over tiles). */
    Cycles cycles = 0;

    /** Useful MACs actually retired (sums over all tiles). */
    MacCount usefulMacs = 0;

    /** MACs issued including redundant work (padding / no fitting). */
    MacCount issuedMacs = 0;

    /** Scratchpad traffic, all tiles (bytes). */
    Bytes sramBytes = 0;

    /** DRAM traffic beyond one input pass / output pass caused by
     * scratchpad spills (bytes, all tiles). */
    Bytes dramSpillBytes = 0;

    /** Per-tile scratchpad footprint of weights + double-buffered
     * activation blocks (bytes). */
    Bytes spadFootprint = 0;

    /** Energy of compute + SRAM traffic (pJ); DRAM and NoC energy
     * are charged by the simulator where the traffic happens. */
    PicoJoules computeEnergyPj = 0.0;
};

/**
 * Evaluate executing @p op with @p mapping at actual batch extent
 * @p actual_n.
 *
 * @param fitting true = runtime kernel fitting clamps loop bounds to
 *        the actual value (Adyna); false = the kernel executes its
 *        compiled bounds in full (static worst-case baseline).
 */
KernelCost evalKernel(const graph::OpNode &op, const Mapping &mapping,
                      std::int64_t actual_n, bool fitting,
                      const TechParams &tech);

/**
 * Cycles a zero-MAC vector operator (standalone Act / Pool / Norm /
 * Softmax / Eltwise, or switch/merge data marshalling) occupies the
 * array, at one element per PE per cycle.
 */
Cycles vectorOpCycles(std::int64_t elements, int tiles,
                      const TechParams &tech);

/**
 * PE-array cycles per batch row for the given per-tile loop extents:
 * K maps to array rows; the columns take C, C x S, or C x R x S
 * (im2col-style filter folding), whichever wastes the fewest lanes.
 * This is also the per-row work weight the scheduler allocates
 * tiles by.
 */
double computeCyclesPerRow(const graph::LoopDims &per_tile,
                           const TechParams &tech);

} // namespace adyna::costmodel

#endif // ADYNA_COSTMODEL_COST_HH
