#include "costmodel/area.hh"

namespace adyna::costmodel {

double
TileBudget::totalAreaMm2() const
{
    double total = 0.0;
    for (const ComponentBudget &c : components)
        total += c.areaMm2;
    return total;
}

double
TileBudget::totalPowerMw() const
{
    double total = 0.0;
    for (const ComponentBudget &c : components)
        total += c.powerMw;
    return total;
}

double
TileBudget::dynnnAreaFraction() const
{
    double dyn = 0.0;
    for (const ComponentBudget &c : components)
        if (c.name.find("Dispatcher") != std::string::npos ||
            c.name.find("network interface") != std::string::npos)
            dyn += c.areaMm2;
    const double total = totalAreaMm2();
    return total > 0.0 ? dyn / total : 0.0;
}

TileBudget
tileBudget(const TechParams &tech)
{
    // Scale factors relative to the calibration point (32x32 PEs,
    // 512 kB scratchpad).
    const double peScale =
        static_cast<double>(tech.peRows) * tech.peCols / (32.0 * 32.0);
    const double spadScale =
        static_cast<double>(tech.spadBytes) /
        static_cast<double>(Bytes{512} << 10);

    TileBudget b;
    b.components.push_back({"PE array", tech.peArrayAreaMm2 * peScale,
                            tech.peArrayPowerMw * peScale});
    b.components.push_back({"Scratchpad", tech.spadAreaMm2 * spadScale,
                            tech.spadPowerMw * spadScale});
    b.components.push_back({"Dispatcher + controller",
                            tech.dispatcherCtrlAreaMm2,
                            tech.dispatcherCtrlPowerMw});
    b.components.push_back({"Router + network interface",
                            tech.routerNicAreaMm2,
                            tech.routerNicPowerMw});
    return b;
}

TileBudget
chipBudget(const TechParams &tech, int tiles)
{
    TileBudget tile = tileBudget(tech);
    for (ComponentBudget &c : tile.components) {
        c.areaMm2 *= tiles;
        c.powerMw *= tiles;
    }
    return tile;
}

} // namespace adyna::costmodel
