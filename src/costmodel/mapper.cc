#include "costmodel/mapper.hh"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace adyna::costmodel {

using graph::Dim;
using graph::LoopDims;

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Factor pairs (a, b) with a * b == t, a <= b included both ways. */
std::vector<std::pair<int, int>>
factorPairs(int t)
{
    std::vector<std::pair<int, int>> out;
    for (int a = 1; a * a <= t; ++a) {
        if (t % a != 0)
            continue;
        const int b = t / a;
        out.emplace_back(a, b);
        if (a != b)
            out.emplace_back(b, a);
    }
    return out;
}

/** Candidate spatial splits over {N, K, P} totalling exactly tiles. */
std::vector<std::vector<SpatialSplit>>
splitCandidates(const LoopDims &dims, int tiles)
{
    const Dim spatialDims[3] = {Dim::N, Dim::K, Dim::P};
    std::vector<std::vector<SpatialSplit>> out;
    if (tiles == 1) {
        out.push_back({});
        return out;
    }
    for (Dim d : spatialDims) {
        (void)dims;
        out.push_back({SpatialSplit{d, tiles}});
    }
    for (Dim d1 : spatialDims) {
        for (Dim d2 : spatialDims) {
            if (d1 == d2)
                continue;
            for (const auto &[a, b] : factorPairs(tiles)) {
                if (a == 1 || b == 1)
                    continue; // covered by the 1D cases
                out.push_back(
                    {SpatialSplit{d1, a}, SpatialSplit{d2, b}});
            }
        }
    }
    return out;
}

/**
 * Pick the largest scratchpad blocking that fits the buffer budget:
 * start from full per-tile extents and shrink N, then P, then K
 * until the double-buffered working set plus resident weights fit.
 */
LoopDims
chooseSpadBlock(const graph::OpNode &op, const LoopDims &per_tile,
                int weight_split, Bytes budget)
{
    LoopDims block = per_tile;
    const auto footprint = [&](const LoopDims &b) {
        const std::int64_t ih = (b.p() - 1) * op.stride + b.r();
        const std::int64_t iw = (b.q() - 1) * op.stride + b.s();
        const Bytes in =
            static_cast<Bytes>(b.n() * b.c() * ih * iw) * op.dtypeBytes;
        const Bytes outb =
            static_cast<Bytes>(b.n() * b.k() * b.p() * b.q()) *
            op.dtypeBytes;
        const Bytes weights =
            graph::isCompute(op.kind)
                ? static_cast<Bytes>(
                      ceilDiv(static_cast<std::int64_t>(op.weightBytes()),
                              weight_split))
                : 0;
        return weights + 2 * (in + outb);
    };

    const Dim shrinkOrder[3] = {Dim::N, Dim::P, Dim::K};
    for (Dim d : shrinkOrder) {
        while (footprint(block) > budget && block[d] > 1)
            block[d] = ceilDiv(block[d], 2);
    }
    return block;
}

} // namespace

Mapper::Mapper(TechParams tech) : tech_(tech) {}

Mapping
Mapper::search(const graph::OpNode &op, std::int64_t n, int tiles)
{
    Key key{op.dims.ext, op.stride, op.dtypeBytes, n, tiles};
    // The N extent in the key is superseded by the compiled value.
    std::get<0>(key)[0] = 0;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Search outside the lock: concurrent racers may duplicate the
    // work for one key, but results are identical and emplace keeps
    // the first insertion.
    Mapping m = searchUncached(op, n, tiles);
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        cache_.emplace(std::move(key), m);
    }
    return m;
}

std::pair<Mapping, KernelCost>
Mapper::searchWithCost(const graph::OpNode &op, std::int64_t n, int tiles)
{
    Mapping m = search(op, n, tiles);
    return {m, evalKernel(op, m, n, true, tech_)};
}

Mapping
Mapper::searchUncached(const graph::OpNode &op, std::int64_t n,
                       int tiles) const
{
    ADYNA_ASSERT(tiles >= 1, "mapping search needs >= 1 tile");
    ADYNA_ASSERT(n >= 1, "mapping search needs n >= 1, got ", n);

    const LoopDims dims = op.dims.with(Dim::N, n);
    const Bytes budget = static_cast<Bytes>(
        static_cast<double>(tech_.spadBytes) *
        (1.0 - tech_.kernelSpadFraction));

    Mapping best;
    bool haveBest = false;
    bool bestFeasible = false;
    KernelCost bestCost;

    for (const auto &splits : splitCandidates(dims, tiles)) {
        for (int o = 0; o < kNumLoopOrders; ++o) {
            Mapping m;
            m.compiledDims = dims;
            m.tiles = tiles;
            m.splits = splits;
            m.order = static_cast<LoopOrder>(o);

            LoopDims perTile = m.perTileDims();
            m.spadBlock = chooseSpadBlock(
                op, perTile, m.splitFactor(Dim::K), budget);

            const KernelCost cost =
                evalKernel(op, m, n, /*fitting=*/true, tech_);
            const bool feasible = cost.spadFootprint <= budget;

            const auto better = [&]() {
                if (!haveBest)
                    return true;
                if (feasible != bestFeasible)
                    return feasible;
                if (cost.cycles != bestCost.cycles)
                    return cost.cycles < bestCost.cycles;
                if (cost.dramSpillBytes != bestCost.dramSpillBytes)
                    return cost.dramSpillBytes < bestCost.dramSpillBytes;
                return cost.sramBytes < bestCost.sramBytes;
            };
            if (better()) {
                best = m;
                bestCost = cost;
                haveBest = true;
                bestFeasible = feasible;
            }
        }
    }
    ADYNA_ASSERT(haveBest, "mapping search found no candidate");
    return best;
}

} // namespace adyna::costmodel
