#include "costmodel/cost.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace adyna::costmodel {

using graph::Dim;
using graph::kNumDims;
using graph::LoopDims;

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Relevance of each loop dim to each tensor. */
constexpr bool kRelevantW[kNumDims] = {false, true, true, false,
                                       false, true, true};
constexpr bool kRelevantI[kNumDims] = {true, false, true, true,
                                       true, true, true};
constexpr bool kRelevantO[kNumDims] = {true, true, false, true,
                                       true, false, false};

/** Input block bytes including the convolution halo. */
Bytes
inputBlockBytes(const LoopDims &block, int stride, int dtype)
{
    const std::int64_t ih = (block.p() - 1) * stride + block.r();
    const std::int64_t iw = (block.q() - 1) * stride + block.s();
    return static_cast<Bytes>(block.n() * block.c() * ih * iw) * dtype;
}

Bytes
weightBlockBytes(const LoopDims &block, int dtype)
{
    return static_cast<Bytes>(block.k() * block.c() * block.r() *
                              block.s()) *
           dtype;
}

Bytes
outputBlockBytes(const LoopDims &block, int dtype)
{
    return static_cast<Bytes>(block.n() * block.k() * block.p() *
                              block.q()) *
           dtype;
}

/**
 * Number of buffer-block residencies of a tensor under blocked loops:
 * the product of block-loop trip counts, excluding irrelevant loops
 * nested strictly inside the tensor's innermost relevant loop (those
 * iterations reuse the resident block for free).
 */
double
blockResidencies(const std::int64_t trips[kNumDims],
                 const std::array<Dim, kNumDims> &perm,
                 const bool relevant[kNumDims])
{
    int innermostRel = -1;
    for (int pos = 0; pos < static_cast<int>(kNumDims); ++pos)
        if (relevant[static_cast<std::size_t>(
                static_cast<std::uint8_t>(perm[pos]))])
            innermostRel = pos;
    double loads = 1.0;
    for (int pos = 0; pos < static_cast<int>(kNumDims); ++pos) {
        const std::size_t d = static_cast<std::size_t>(
            static_cast<std::uint8_t>(perm[pos]));
        const bool rel = relevant[d];
        if (rel || pos < innermostRel)
            loads *= static_cast<double>(trips[d]);
    }
    return loads;
}

} // namespace

LevelTraffic
blockedTraffic(const LoopDims &dims, const LoopDims &block,
               LoopOrder order, int stride, int dtype_bytes)
{
    LoopDims clamped = block;
    for (std::size_t d = 0; d < kNumDims; ++d) {
        const Dim dd = static_cast<Dim>(d);
        clamped[dd] = std::clamp<std::int64_t>(clamped[dd], 1, dims[dd]);
    }

    std::int64_t trips[kNumDims];
    for (std::size_t d = 0; d < kNumDims; ++d) {
        const Dim dd = static_cast<Dim>(d);
        trips[d] = ceilDiv(dims[dd], clamped[dd]);
    }

    const auto perm = orderPermutation(order);

    LevelTraffic out;
    const double loadsW = blockResidencies(trips, perm, kRelevantW);
    const double loadsI = blockResidencies(trips, perm, kRelevantI);
    const double loadsO = blockResidencies(trips, perm, kRelevantO);

    out.weights = static_cast<Bytes>(
        loadsW *
        static_cast<double>(weightBlockBytes(clamped, dtype_bytes)));
    out.inputs = static_cast<Bytes>(
        loadsI *
        static_cast<double>(inputBlockBytes(clamped, stride,
                                            dtype_bytes)));

    // Each output residency ends with a write-back; every residency
    // after the first of a given block also begins with a read of the
    // partial sums.
    double finalBlocks = 1.0;
    for (std::size_t d = 0; d < kNumDims; ++d)
        if (kRelevantO[d])
            finalBlocks *= static_cast<double>(trips[d]);
    const double bbO =
        static_cast<double>(outputBlockBytes(clamped, dtype_bytes));
    out.outputWrites = static_cast<Bytes>(loadsO * bbO);
    out.outputReads =
        static_cast<Bytes>(std::max(0.0, loadsO - finalBlocks) * bbO);
    return out;
}

Cycles
vectorOpCycles(std::int64_t elements, int tiles, const TechParams &tech)
{
    ADYNA_ASSERT(tiles >= 1, "vector op needs >= 1 tile");
    const std::int64_t perTile = ceilDiv(elements, tiles);
    return static_cast<Cycles>(ceilDiv(perTile, tech.macsPerCycle()));
}

double
computeCyclesPerRow(const LoopDims &per_tile, const TechParams &tech)
{
    const std::int64_t kLanes = ceilDiv(per_tile.k(), tech.peRows);
    const std::int64_t base =
        per_tile.p() * per_tile.q() * kLanes;
    // Three column mappings: plain C, C x S, C x R x S.
    const std::int64_t plain =
        base * per_tile.r() * per_tile.s() *
        ceilDiv(per_tile.c(), tech.peCols);
    const std::int64_t foldS =
        base * per_tile.r() *
        ceilDiv(per_tile.c() * per_tile.s(), tech.peCols);
    const std::int64_t foldRS =
        base *
        ceilDiv(per_tile.c() * per_tile.r() * per_tile.s(),
                tech.peCols);
    return static_cast<double>(
        std::min({plain, foldS, foldRS}));
}

KernelCost
evalKernel(const graph::OpNode &op, const Mapping &mapping,
           std::int64_t actual_n, bool fitting, const TechParams &tech)
{
    const LoopDims &compiled = mapping.compiledDims;
    ADYNA_ASSERT(actual_n >= 0, "negative actual_n");
    ADYNA_ASSERT(compiled.valid(), "invalid compiled dims for op '",
                 op.name, "'");

    KernelCost cost;
    if (actual_n == 0 && fitting)
        return cost; // nothing to do

    // --- per-tile execution extents ---------------------------------
    const int fN = mapping.splitFactor(Dim::N);
    const std::int64_t chunkN = ceilDiv(compiled.n(), fN);
    const std::int64_t execNTotal = fitting ? actual_n : compiled.n();
    // Makespan tile: with an N-split, the first tile processes a full
    // chunk unless the actual value is smaller than one chunk.
    const std::int64_t perTileN = std::min(chunkN, execNTotal);

    LoopDims perTile = compiled;
    perTile[Dim::N] = perTileN;
    for (const SpatialSplit &s : mapping.splits) {
        if (s.dim == Dim::N)
            continue; // handled above
        perTile[s.dim] = ceilDiv(compiled[s.dim], s.factor);
    }

    const bool compute = graph::isCompute(op.kind);
    if (compute) {
        cost.cycles = static_cast<Cycles>(
            static_cast<double>(perTile.n()) *
            computeCyclesPerRow(perTile, tech));
        // Fused epilogue ops ride along in the pipeline: no extra
        // cycles charged (Section VI-B).
    } else {
        const std::int64_t elems =
            execNTotal * compiled.k() * compiled.p() * compiled.q();
        cost.cycles = vectorOpCycles(elems, mapping.tiles, tech);
    }

    // --- MAC accounting ----------------------------------------------
    const std::int64_t restMacs = compiled.k() * compiled.c() *
                                  compiled.p() * compiled.q() *
                                  compiled.r() * compiled.s();
    if (compute) {
        cost.usefulMacs = static_cast<MacCount>(
            std::min(actual_n, compiled.n()) * restMacs);
        cost.issuedMacs =
            static_cast<MacCount>(execNTotal * restMacs);
    }

    // --- scratchpad traffic (array-level reuse) -----------------------
    if (compute) {
        LoopDims arrayBlock;
        arrayBlock[Dim::N] = 1;
        arrayBlock[Dim::K] =
            std::min<std::int64_t>(tech.peRows, perTile.k());
        arrayBlock[Dim::C] =
            std::min<std::int64_t>(tech.peCols, perTile.c());
        arrayBlock[Dim::P] = 1;
        arrayBlock[Dim::Q] = 1;
        arrayBlock[Dim::R] = perTile.r();
        arrayBlock[Dim::S] = perTile.s();
        const LevelTraffic sram =
            blockedTraffic(perTile, arrayBlock, mapping.order, op.stride,
                           op.dtypeBytes);
        cost.sramBytes =
            static_cast<Bytes>(sram.total()) * mapping.tiles;
    } else {
        const std::int64_t elems =
            execNTotal * compiled.k() * compiled.p() * compiled.q();
        cost.sramBytes = static_cast<Bytes>(2 * elems) * op.dtypeBytes;
    }

    // --- DRAM spill traffic beyond single passes ----------------------
    // Weights are pinned in the scratchpad for the whole execution
    // (the footprint below reserves them; the scheduler streams them
    // separately when they do not fit), so only activation blocks
    // can incur re-streaming: clamp the weight dims of the DRAM-level
    // blocking up to the full per-tile extents.
    if (compute) {
        LoopDims dramBlock = mapping.spadBlock;
        dramBlock[Dim::K] = perTile.k();
        dramBlock[Dim::C] = perTile.c();
        dramBlock[Dim::R] = perTile.r();
        dramBlock[Dim::S] = perTile.s();
        const LevelTraffic dram =
            blockedTraffic(perTile, dramBlock, mapping.order,
                           op.stride, op.dtypeBytes);
        // A "single pass" visits each activation block exactly once
        // (halo overlap between spatial blocks is not a spill: the
        // boundary rows stay on-chip between neighbouring blocks).
        LoopDims clampedBlock = dramBlock;
        double passI = 1.0, passO = 1.0;
        for (std::size_t d = 0; d < kNumDims; ++d) {
            const Dim dd = static_cast<Dim>(d);
            clampedBlock[dd] = std::clamp<std::int64_t>(
                clampedBlock[dd], 1, perTile[dd]);
            const double trips = static_cast<double>(
                ceilDiv(perTile[dd], clampedBlock[dd]));
            if (kRelevantI[d])
                passI *= trips;
            if (kRelevantO[d])
                passO *= trips;
        }
        const Bytes onePassI = static_cast<Bytes>(
            passI * static_cast<double>(inputBlockBytes(
                        clampedBlock, op.stride, op.dtypeBytes)));
        const Bytes onePassO = static_cast<Bytes>(
            passO * static_cast<double>(outputBlockBytes(
                        clampedBlock, op.dtypeBytes)));
        Bytes spill = 0;
        spill += dram.inputs > onePassI ? dram.inputs - onePassI : 0;
        spill += dram.outputWrites > onePassO
                     ? dram.outputWrites - onePassO
                     : 0;
        spill += dram.outputReads;
        cost.dramSpillBytes = spill * mapping.tiles;
    }

    // --- scratchpad footprint -----------------------------------------
    const int fK = mapping.splitFactor(Dim::K);
    const Bytes perTileWeights = compute
                                     ? static_cast<Bytes>(ceilDiv(
                                           static_cast<std::int64_t>(
                                               op.weightBytes()),
                                           fK))
                                     : 0;
    const Bytes blockIn =
        inputBlockBytes(mapping.spadBlock, op.stride, op.dtypeBytes);
    const Bytes blockOut =
        outputBlockBytes(mapping.spadBlock, op.dtypeBytes);
    cost.spadFootprint = perTileWeights + 2 * (blockIn + blockOut);

    // --- energy --------------------------------------------------------
    cost.computeEnergyPj =
        tech.eMacPj * static_cast<double>(cost.issuedMacs) +
        tech.eSramPerBytePj * static_cast<double>(cost.sramBytes);
    return cost;
}

} // namespace adyna::costmodel
