#include "costmodel/mapping.hh"

#include <sstream>

#include "common/logging.hh"

namespace adyna::costmodel {

using graph::Dim;
using graph::kNumDims;

const char *
loopOrderName(LoopOrder order)
{
    switch (order) {
      case LoopOrder::NOuter: return "N-outer";
      case LoopOrder::KOuter: return "K-outer";
      case LoopOrder::COuter: return "C-outer";
    }
    ADYNA_PANIC("bad LoopOrder ", static_cast<int>(order));
}

std::array<Dim, kNumDims>
orderPermutation(LoopOrder order)
{
    // P, Q, R, S always innermost, in that order.
    switch (order) {
      case LoopOrder::NOuter:
        return {Dim::N, Dim::K, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
      case LoopOrder::KOuter:
        return {Dim::K, Dim::N, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
      case LoopOrder::COuter:
        return {Dim::C, Dim::N, Dim::K, Dim::P, Dim::Q, Dim::R, Dim::S};
    }
    ADYNA_PANIC("bad LoopOrder ", static_cast<int>(order));
}

int
Mapping::splitFactor(Dim d) const
{
    int factor = 1;
    for (const SpatialSplit &s : splits)
        if (s.dim == d)
            factor *= s.factor;
    return factor;
}

graph::LoopDims
Mapping::perTileDims() const
{
    graph::LoopDims out = compiledDims;
    for (const SpatialSplit &s : splits) {
        const std::int64_t ext = out[s.dim];
        out[s.dim] = (ext + s.factor - 1) / s.factor;
    }
    return out;
}

std::string
Mapping::str() const
{
    std::ostringstream os;
    os << "Mapping{dims=" << compiledDims.str() << ", tiles=" << tiles
       << ", splits=[";
    for (std::size_t i = 0; i < splits.size(); ++i) {
        if (i)
            os << ", ";
        os << graph::dimName(splits[i].dim) << 'x' << splits[i].factor;
    }
    os << "], block=" << spadBlock.str() << ", "
       << loopOrderName(order) << '}';
    return os.str();
}

} // namespace adyna::costmodel
