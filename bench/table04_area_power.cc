/**
 * @file
 * Table IV reproduction: area and power breakdown of one Adyna tile
 * (TSMC 28 nm calibration), the whole-chip totals, and the overhead
 * fractions of the DynNN-specific additions quoted in Section IX-A
 * (~4.9% tile area, ~0.85% power for dispatcher/controller/NIC).
 */

#include "bench_common.hh"
#include "costmodel/area.hh"

using namespace adyna;
using namespace adyna::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Table IV: area and power of an Adyna tile ===",
                hw, p);

    const auto tile = costmodel::tileBudget(hw.tech);
    TextTable t("Per-tile breakdown (28 nm)");
    t.header({"component", "area (mm^2)", "power (mW)"});
    for (const auto &c : tile.components)
        t.row({c.name, TextTable::num(c.areaMm2, 3),
               TextTable::num(c.powerMw, 3)});
    t.separator();
    t.row({"Total", TextTable::num(tile.totalAreaMm2(), 3),
           TextTable::num(tile.totalPowerMw(), 2)});
    t.print(std::cout);

    const auto chip = costmodel::chipBudget(hw.tech, hw.tiles());
    std::printf("\nWhole chip (%d tiles): %.1f mm^2, %.1f W "
                "(paper: ~201 W vs an A100's 350 W at 7 nm)\n",
                hw.tiles(), chip.totalAreaMm2(),
                chip.totalPowerMw() / 1000.0);
    std::printf("DynNN-specific additions (dispatcher + controller/"
                "profiler + network interface): %.1f%% of tile area "
                "(paper: 4.9%%)\n",
                tile.dynnnAreaFraction() * 100.0);
    std::printf("Kernel metadata budget: %.1f kB of scratchpad "
                "(<= 5%%), %d kernels x %ld B per tile\n",
                static_cast<double>(hw.tech.kernelSpadBudget()) /
                    1024.0,
                hw.tech.maxKernelsPerTile(),
                static_cast<long>(hw.tech.kernelMetadataBytes));
    return 0;
}
