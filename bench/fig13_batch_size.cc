/**
 * @file
 * Figure 13 reproduction: Adyna's speedup over M-tile at batch sizes
 * 1, 4, 16, 64, and 128. The paper reports average speedups of
 * 1.29x / 1.37x / 1.49x / 1.61x / 1.70x: the advantage grows with
 * batch size (larger dynamic variation to exploit) but persists at
 * batch 1.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 13: speedup over M-tile vs batch size ===",
                hw, p);

    const std::vector<std::int64_t> batchSizes{1, 4, 16, 64, 128};
    const auto names = models::workloadNames();

    TextTable t("Adyna speedup over M-tile");
    std::vector<std::string> header{"batch size"};
    for (const auto &n : names)
        header.push_back(n);
    header.push_back("geomean");
    header.push_back("paper avg");
    t.header(header);

    const char *paperAvg[] = {"1.29x", "1.37x", "1.49x", "1.61x",
                              "1.70x"};
    for (std::size_t bi = 0; bi < batchSizes.size(); ++bi) {
        BenchParams bp = p;
        bp.batchSize = batchSizes[bi];
        std::vector<std::string> cells{
            std::to_string(batchSizes[bi])};
        std::vector<double> speeds;
        for (const auto &n : names) {
            const Workload w = makeWorkload(n, bp.batchSize);
            const auto mtile = runDesign(w, Design::MTile, bp, hw);
            const auto adyna = runDesign(w, Design::Adyna, bp, hw);
            const double s = mtile.timeMs / adyna.timeMs;
            speeds.push_back(s);
            cells.push_back(TextTable::mult(s));
        }
        cells.push_back(TextTable::mult(geomean(speeds)));
        cells.push_back(paperAvg[bi]);
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("\nShape check: the speedup should grow with batch "
                "size and stay above 1x at batch 1.\n");
    return 0;
}
