/**
 * @file
 * Figure 13 reproduction: Adyna's speedup over M-tile at batch sizes
 * 1, 4, 16, 64, and 128. The paper reports average speedups of
 * 1.29x / 1.37x / 1.49x / 1.61x / 1.70x: the advantage grows with
 * batch size (larger dynamic variation to exploit) but persists at
 * batch 1.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 13: speedup over M-tile vs batch size ===",
                hw, p);

    const std::vector<std::int64_t> batchSizes{1, 4, 16, 64, 128};
    const auto names = models::workloadNames();

    TextTable t("Adyna speedup over M-tile");
    std::vector<std::string> header{"batch size"};
    for (const auto &n : names)
        header.push_back(n);
    header.push_back("geomean");
    header.push_back("paper avg");
    t.header(header);

    const char *paperAvg[] = {"1.29x", "1.37x", "1.49x", "1.61x",
                              "1.70x"};

    // One task per (batch size, workload): each builds its own
    // workload (graph construction is not shared across threads) and
    // runs both designs. The mapper cache is shared across batch
    // sizes -- the memo key includes the compiled batch extent.
    Sweep sweep(p, hw);
    const auto speedups = sweep.map(
        batchSizes.size() * names.size(), [&](std::size_t i) {
            BenchParams bp = p;
            bp.batchSize = batchSizes[i / names.size()];
            const Workload w =
                makeWorkload(names[i % names.size()], bp.batchSize);
            const auto mtile = sweep.run(w, Design::MTile, bp, hw);
            const auto adyna = sweep.run(w, Design::Adyna, bp, hw);
            return mtile.timeMs / adyna.timeMs;
        });
    sweep.printCacheStats();

    for (std::size_t bi = 0; bi < batchSizes.size(); ++bi) {
        std::vector<std::string> cells{
            std::to_string(batchSizes[bi])};
        std::vector<double> speeds;
        for (std::size_t ni = 0; ni < names.size(); ++ni) {
            const double s = speedups[bi * names.size() + ni];
            speeds.push_back(s);
            cells.push_back(TextTable::mult(s));
        }
        cells.push_back(TextTable::mult(geomean(speeds)));
        cells.push_back(paperAvg[bi]);
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("\nShape check: the speedup should grow with batch "
                "size and stay above 1x at batch 1.\n");
    return 0;
}
