/**
 * @file
 * Fault-injection sweep: serves all five paper workloads at a fixed
 * fraction of their calibrated capacity while a seeded FaultPlan
 * strikes the chip mid-run, and compares adaptive fail-over
 * (degraded re-scheduling onto the surviving tiles plus
 * deadline-aware admission control) against the static response
 * (keep the installed schedule and eat the degraded lockstep
 * execution). Writes the full matrix to `BENCH_fault.json`.
 *
 * Scenarios per workload:
 *   none      - empty plan, fail-over on vs off: the two reports
 *               must be byte-identical (the zero-cost-abstraction
 *               gate on the whole fault subsystem);
 *   tile_fail - one permanent tile failure at 30% of the serving
 *               horizon (override with --fault-plan), adaptive vs
 *               static: adaptive must win on goodput;
 *   link      - a downed link, a degraded link and a probe-drop
 *               window (report-only: NoC detour / retry counters).
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "fault/fault.hh"
#include "serve/server.hh"

using namespace adyna;
using namespace adyna::bench;

namespace {

struct Calibration
{
    double capacityRps = 0.0;
    double batchIntervalMs = 0.0;
};

enum class Scenario { None, TileFail, Link };

struct RunSpec
{
    std::size_t wi = 0;
    Scenario scenario = Scenario::None;
    bool adaptive = true; ///< fail-over + admission control on
};

const char *
scenarioName(Scenario s)
{
    switch (s) {
    case Scenario::None:
        return "none";
    case Scenario::TileFail:
        return "tile_fail";
    case Scenario::Link:
        return "link";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const int maxBatch =
        static_cast<int>(args.getInt("max-batch", 32));
    const int requests =
        static_cast<int>(args.getInt("requests", 1500));
    const double rateFrac = args.getDouble("rate-frac", 0.7);
    const double deadlineIntervals =
        args.getDouble("deadline-intervals", 6.0);
    const int tileFails =
        static_cast<int>(args.getInt("tile-fails", 1));
    const std::string planOverride =
        args.getString("fault-plan", "");
    // Probe controls: --probe-stride N probes every Nth tile
    // (0 = just the four quarter positions), --probe-requests
    // overrides the probe run length, --probe-only 1 prints the
    // probe table and exits (for mapping a workload's sensitivity
    // to single-tile failures).
    const int probeStride =
        static_cast<int>(args.getInt("probe-stride", 4));
    const bool probeOnly = args.getInt("probe-only", 0) != 0;
    p.batchSize = maxBatch;
    const arch::HwConfig hw;
    printBanner("=== Fault injection: adaptive fail-over vs static "
                "degradation under tile/NoC faults ===",
                hw, p);

    std::vector<Workload> workloads = makeAllWorkloads(maxBatch);
    Sweep sweep(p, hw);

    // ---- calibration: engine capacity per workload -----------------
    const auto calibs = sweep.map(workloads.size(), [&](std::size_t i) {
        BenchParams cp = p;
        cp.batches = 60;
        const core::RunReport r =
            runDesign(workloads[i], baselines::Design::AdynaStatic,
                      cp, hw, sweep.sharedMapper());
        Calibration c;
        c.capacityRps = r.batchesPerSecond * maxBatch;
        c.batchIntervalMs = 1e3 / r.batchesPerSecond;
        return c;
    });

    std::printf("Calibration (Adyna-static, batch %d):\n", maxBatch);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        std::printf("  %-10s capacity %.0f req/s, batch interval "
                    "%.3f ms\n",
                    workloads[i].name.c_str(), calibs[i].capacityRps,
                    calibs[i].batchIntervalMs);
    std::printf("\n");

    /** Run one serving cell. */
    const auto serveCell = [&](std::size_t wi, int nreq,
                               const std::string &plan_text,
                               bool failover, bool admission) {
        const Workload &w = workloads[wi];
        const Calibration &c = calibs[wi];

        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = maxBatch;

        serve::ServeConfig sc;
        sc.arrival.ratePerSec = rateFrac * c.capacityRps;
        sc.batching.maxBatch = maxBatch;
        sc.batching.maxWaitCycles = static_cast<Cycles>(
            c.batchIntervalMs * 1e-3 * hw.tech.freqGhz * 1e9);
        sc.slo.deadlineMs = deadlineIntervals * c.batchIntervalMs;
        sc.numRequests = nreq;
        sc.seed = p.seed;
        sc.faultPlan = fault::parseFaultPlanOrDie(plan_text);
        sc.failover = failover;
        sc.admissionControl = admission;

        serve::ServeRuntime rt(
            w.dg, tc, hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna), sc,
            w.name);
        rt.setSharedMapper(sweep.sharedMapper());
        return rt.run();
    };

    /** tile_fail plan text: @p count failures starting at @p tile,
     * striking at 30% of the expected @p nreq-request horizon (the
     * run has settled before the fault and ends long after it), one
     * batch interval apart. */
    const auto tileFailPlan = [&](std::size_t wi, int nreq, int tile,
                                  int count) {
        const double rate = rateFrac * calibs[wi].capacityRps;
        const auto strike = static_cast<Tick>(
            0.3 * (nreq / rate) * hw.tech.freqGhz * 1e9);
        const Tick step = static_cast<Tick>(
            calibs[wi].batchIntervalMs * 1e-3 * hw.tech.freqGhz *
            1e9);
        std::string text;
        char buf[96];
        for (int k = 0; k < count; ++k) {
            std::snprintf(buf, sizeof(buf),
                          "%stile_fail@%llu:tile=%d",
                          text.empty() ? "" : ";",
                          static_cast<unsigned long long>(strike +
                                                          k * step),
                          tile + k);
            text += buf;
        }
        return text;
    };

    // ---- adversarial tile probe ------------------------------------
    // A dead tile only costs throughput when it lands in a loaded
    // stage group, and where that is depends on each workload's
    // segmentation. Probe a few snake-order positions with short
    // static runs and fail the most damaging one — the worst-case
    // single-tile failure is the robustness metric of interest.
    std::vector<int> candidates = {0, hw.tiles() / 4,
                                   hw.tiles() / 2,
                                   3 * hw.tiles() / 4};
    if (probeStride > 0) {
        candidates.clear();
        for (int t = 0; t < hw.tiles(); t += probeStride)
            candidates.push_back(t);
    }
    const int probeReq = static_cast<int>(args.getInt(
        "probe-requests", std::min(requests, 300)));
    const auto probeGoodput =
        sweep.map(workloads.size() * candidates.size(),
                  [&](std::size_t i) {
                      const std::size_t wi = i / candidates.size();
                      const int tile = candidates[i % candidates.size()];
                      return serveCell(wi, probeReq,
                                       tileFailPlan(wi, probeReq,
                                                    tile, 1),
                                       /*failover=*/false,
                                       /*admission=*/false)
                          .goodputRps;
                  });
    std::vector<int> failTile(workloads.size(), 0);
    std::printf("Adversarial tile probe (static, %d requests):\n",
                probeReq);
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < candidates.size(); ++c)
            if (probeGoodput[wi * candidates.size() + c] <
                probeGoodput[wi * candidates.size() + best])
                best = c;
        failTile[wi] = candidates[best];
        std::printf("  %-10s worst tile %3d (goodput %.0f r/s)\n",
                    workloads[wi].name.c_str(), failTile[wi],
                    probeGoodput[wi * candidates.size() + best]);
    }
    std::printf("\n");
    if (probeOnly) {
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            std::printf("%s:\n", workloads[wi].name.c_str());
            for (std::size_t c = 0; c < candidates.size(); ++c)
                std::printf("  tile %3d -> %.0f r/s\n", candidates[c],
                            probeGoodput[wi * candidates.size() + c]);
        }
        return 0;
    }

    // ---- the run matrix --------------------------------------------
    std::vector<RunSpec> specs;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        specs.push_back({wi, Scenario::None, /*adaptive=*/true});
        specs.push_back({wi, Scenario::None, /*adaptive=*/false});
        specs.push_back({wi, Scenario::TileFail, /*adaptive=*/true});
        specs.push_back({wi, Scenario::TileFail, /*adaptive=*/false});
        specs.push_back({wi, Scenario::Link, /*adaptive=*/true});
    }

    /** The plan text for one (workload, scenario) cell. */
    const auto planText = [&](const RunSpec &s) -> std::string {
        if (s.scenario == Scenario::None)
            return "";
        if (s.scenario == Scenario::TileFail)
            return planOverride.empty()
                       ? tileFailPlan(s.wi, requests,
                                      failTile[s.wi], tileFails)
                       : planOverride;
        const double rate = rateFrac * calibs[s.wi].capacityRps;
        const auto strike = static_cast<Tick>(
            0.3 * (requests / rate) * hw.tech.freqGhz * 1e9);
        const int tile =
            (hw.gridRows / 2) * hw.gridCols + hw.gridCols / 2;
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "link_down@%llu:tile=%d,dir=E;"
            "link_degrade@%llu:tile=%d,dir=S,factor=0.5;"
            "probe_drop@%llu:prob=0.2,duration=%llu",
            static_cast<unsigned long long>(strike), tile,
            static_cast<unsigned long long>(strike), tile,
            static_cast<unsigned long long>(strike),
            static_cast<unsigned long long>(strike));
        return buf;
    };

    const auto reports = sweep.map(specs.size(), [&](std::size_t si) {
        const RunSpec &s = specs[si];
        return serveCell(s.wi, requests, planText(s), s.adaptive,
                         s.adaptive && s.scenario != Scenario::None);
    });

    // ---- report ----------------------------------------------------
    TextTable t("Fault matrix (" + std::to_string(requests) +
                " requests per cell, " +
                TextTable::num(rateFrac, 1) + "x capacity)");
    t.header({"workload", "scenario", "mode", "p50 ms", "p99 ms",
              "SLO", "goodput r/s", "shed", "failovers", "detours"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &s = specs[i];
        const serve::ServeReport &r = reports[i];
        t.row({workloads[s.wi].name, scenarioName(s.scenario),
               s.adaptive ? "adaptive" : "static",
               TextTable::num(r.p50Ms, 3), TextTable::num(r.p99Ms, 3),
               TextTable::pct(r.sloAttainment),
               TextTable::num(r.goodputRps, 0),
               std::to_string(r.shedRequests),
               std::to_string(r.failovers),
               std::to_string(r.nocDetours)});
    }
    t.print(std::cout);

    // ---- acceptance gates ------------------------------------------
    bool pass = true;
    std::printf("\nFail-over check per workload:\n");
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const serve::ServeReport *noneA = nullptr, *noneS = nullptr;
        const serve::ServeReport *failA = nullptr, *failS = nullptr;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const RunSpec &s = specs[i];
            if (s.wi != wi)
                continue;
            if (s.scenario == Scenario::None)
                (s.adaptive ? noneA : noneS) = &reports[i];
            else if (s.scenario == Scenario::TileFail)
                (s.adaptive ? failA : failS) = &reports[i];
        }
        // Gate 1: with an empty plan the fail-over knob must be
        // invisible — byte-identical reports. The shared mapper /
        // store-cache counters are best-effort deltas that depend on
        // how concurrent cells interleave, so they are zeroed before
        // comparing (exactly why toJson keeps them out of the
        // deterministic gate surface elsewhere).
        const auto stripCaches = [](serve::ServeReport r) {
            r.mapperHits = r.mapperMisses = 0;
            r.storeHits = r.storeMisses = 0;
            return r;
        };
        const bool inert = serve::toJson(stripCaches(*noneA)) ==
                           serve::toJson(stripCaches(*noneS));
        // Gate 2: under tile failure the adaptive response must beat
        // the static one on goodput.
        const bool wins = failA->goodputRps > failS->goodputRps;
        std::printf("  %-10s tile-fail: adaptive goodput %.0f r/s "
                    "(%d failovers, %llu shed) vs static %.0f r/s "
                    "-> %s; empty plan: %s\n",
                    workloads[wi].name.c_str(), failA->goodputRps,
                    failA->failovers,
                    static_cast<unsigned long long>(
                        failA->shedRequests),
                    failS->goodputRps, wins ? "adaptive wins" : "NO WIN",
                    inert ? "byte-identical" : "DIVERGED");
        pass = pass && wins && inert && failA->failovers > 0;
    }

    // ---- BENCH_fault.json ------------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_fault.json");
    {
        std::ofstream out(jsonPath);
        out << "{\n  \"bench\": \"fault_sweep\",\n  "
            << buildStampJson() << ",\n  \"max_batch\": " << maxBatch
            << ",\n  \"requests_per_cell\": " << requests
            << ",\n  \"rate_frac\": " << rateFrac
            << ",\n  \"tile_fails\": " << tileFails
            << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const RunSpec &s = specs[i];
            // Splice the spec fields into the report object.
            std::string obj = serve::toJson(reports[i]);
            char extra[160];
            std::snprintf(extra, sizeof(extra),
                          "\"scenario\": \"%s\", \"failover\": %s, "
                          "\"fail_tile\": %d, ",
                          scenarioName(s.scenario),
                          s.adaptive ? "true" : "false",
                          s.scenario == Scenario::TileFail
                              ? failTile[s.wi]
                              : -1);
            obj.insert(1, extra);
            out << "    " << obj
                << (i + 1 < specs.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::printf("\nWrote %s\n", jsonPath.c_str());
    sweep.printCacheStats();

    if (!pass) {
        std::printf("\nFAIL: adaptive fail-over did not beat the "
                    "static response under tile failure (or the "
                    "empty-plan reports diverged)\n");
        return 1;
    }
    std::printf("\nPASS: fail-over re-scheduling beats the static "
                "response on goodput under tile failure, and an "
                "empty fault plan is a zero-cost no-op\n");
    return 0;
}
