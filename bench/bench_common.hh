/**
 * @file
 * Shared helpers for the figure/table reproduction benches: flag
 * parsing, workload construction, design sweeps, and the standard
 * header that echoes the Table III configuration and the run
 * parameters so every bench output is self-describing.
 */

#ifndef ADYNA_BENCH_BENCH_COMMON_HH
#define ADYNA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/designs.hh"
#include "baselines/gpu.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "costmodel/mapper.hh"
#include "graph/parser.hh"
#include "models/models.hh"

namespace adyna::bench {

/** Standard run parameters shared by all benches. */
struct BenchParams
{
    int batches = 200;
    std::int64_t batchSize = 128;
    std::uint64_t seed = 7;

    /** Worker threads for the sweep (--jobs N, default hardware
     * concurrency both here and in fromArgs, so benches constructed
     * either way reflect parallel throughput; --jobs 1 = the exact
     * serial seed behaviour). */
    int jobs = ThreadPool::defaultJobs();

    /** Share one mapping-search memo cache across the sweep's runs
     * (--shared-mapper=0 to disable). Results are unaffected. */
    bool sharedMapper = true;

    /** Print mapper-cache statistics to stderr after the sweep
     * (--cache-stats). Kept off stdout so bench tables stay
     * byte-identical across --jobs settings. */
    bool cacheStats = false;

    static BenchParams
    fromArgs(const CliArgs &args)
    {
        BenchParams p;
        p.batches = static_cast<int>(args.getInt("batches", 200));
        p.batchSize = args.getInt("batch", 128);
        p.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
        p.jobs = static_cast<int>(
            args.getInt("jobs", ThreadPool::defaultJobs()));
        if (p.jobs < 1)
            ADYNA_FATAL("--jobs must be a positive worker count, got ",
                        p.jobs, " (omit the flag for the default of ",
                        ThreadPool::defaultJobs(),
                        " hardware threads)");
        p.sharedMapper = args.getBool("shared-mapper", true);
        p.cacheStats = args.getBool("cache-stats", false);
        return p;
    }
};

/** Print the reproduction banner with Table III and run params. */
inline void
printBanner(const std::string &title, const arch::HwConfig &hw,
            const BenchParams &p)
{
    std::printf("%s\n", title.c_str());
    std::printf("Adyna reproduction | %dx%d tiles, %dx%d FP16 PEs/tile, "
                "%.0f kB spad/tile, %d HBM2 stacks (%.0f GB/s), "
                "2D torus %.0f GB/s/link | %.0f TFLOPS peak\n",
                hw.gridRows, hw.gridCols, hw.tech.peRows,
                hw.tech.peCols,
                static_cast<double>(hw.tech.spadBytes) / 1024.0,
                hw.hbmStacks, hw.hbmTotalBytesPerCycle,
                hw.nocLinkBytesPerCycle, hw.peakTflops());
    std::printf("batches=%d batch-size=%ld seed=%llu\n\n", p.batches,
                static_cast<long>(p.batchSize),
                static_cast<unsigned long long>(p.seed));
    // Harness configuration goes to stderr: stdout must remain
    // byte-identical for any --jobs value.
    std::fprintf(stderr,
                 "[adyna] sweep harness: jobs=%d shared-mapper=%s\n",
                 p.jobs, p.sharedMapper ? "on" : "off");
}

/** One workload ready to simulate. */
struct Workload
{
    std::string name;        ///< Table I display name
    models::ModelBundle bundle;
    graph::DynGraph dg;
};

/** Build a workload by registry name at the given batch size. */
inline Workload
makeWorkload(const std::string &name, std::int64_t batch_size)
{
    models::ModelBundle bundle = models::buildByName(name, batch_size);
    graph::DynGraph dg = graph::parseModel(bundle.graph);
    return Workload{bundle.name, std::move(bundle), std::move(dg)};
}

/** Build all five paper workloads (Table I). */
inline std::vector<Workload>
makeAllWorkloads(std::int64_t batch_size)
{
    std::vector<Workload> out;
    for (const std::string &name : models::workloadNames())
        out.push_back(makeWorkload(name, batch_size));
    return out;
}

/** Run one accelerator design on one workload. @p shared_mapper,
 * when non-null, memoizes mapping searches across runs (must match
 * hw.tech). */
inline core::RunReport
runDesign(const Workload &w, baselines::Design design,
          const BenchParams &p, const arch::HwConfig &hw,
          costmodel::Mapper *shared_mapper = nullptr)
{
    trace::TraceConfig cfg = w.bundle.traceConfig;
    cfg.batchSize = p.batchSize;
    auto sys = baselines::makeSystem(w.dg, cfg, hw, design, p.batches,
                                     p.seed);
    sys.setSharedMapper(shared_mapper);
    return sys.run();
}

/** Run the GPU baseline on one workload. */
inline core::RunReport
runGpuBaseline(const Workload &w, const BenchParams &p)
{
    trace::TraceConfig cfg = w.bundle.traceConfig;
    cfg.batchSize = p.batchSize;
    return baselines::runGpu(w.dg, cfg, baselines::GpuParams{},
                             p.batches, p.seed);
}

/**
 * The parallel sweep harness: a thread pool sized by --jobs plus one
 * mapping-search cache shared by every run of the sweep (for a fixed
 * HwConfig). Benches enumerate their independent (workload, design)
 * runs as tasks, `map` executes them concurrently, and results come
 * back in input order so the printed tables are deterministic and
 * byte-identical to the serial --jobs 1 sweep.
 */
class Sweep
{
  public:
    Sweep(const BenchParams &p, const arch::HwConfig &hw)
        : p_(p), pool_(p.jobs), mapper_(hw.tech)
    {
    }

    /** Run fn(0..n-1) concurrently; results in input order. */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
    {
        return pool_.parallelMap(n, std::forward<Fn>(fn));
    }

    /** The sweep-wide shared mapper (null when --shared-mapper=0). */
    costmodel::Mapper *
    sharedMapper()
    {
        return p_.sharedMapper ? &mapper_ : nullptr;
    }

    /** runDesign through the shared mapper. */
    core::RunReport
    run(const Workload &w, baselines::Design d, const arch::HwConfig &hw)
    {
        return runDesign(w, d, p_, hw, sharedMapper());
    }

    /** runDesign with per-task params (batch-size sweeps etc.). */
    core::RunReport
    run(const Workload &w, baselines::Design d, const BenchParams &bp,
        const arch::HwConfig &hw)
    {
        return runDesign(w, d, bp, hw, sharedMapper());
    }

    /** Mapper cache effectiveness to stderr (--cache-stats). */
    void
    printCacheStats() const
    {
        if (!p_.cacheStats)
            return;
        const std::uint64_t h = mapper_.hits();
        const std::uint64_t m = mapper_.misses();
        std::fprintf(stderr,
                     "[adyna] shared mapper cache: %llu hits / %llu "
                     "misses (%.1f%% hit rate)\n",
                     static_cast<unsigned long long>(h),
                     static_cast<unsigned long long>(m),
                     h + m ? 100.0 * static_cast<double>(h) /
                                 static_cast<double>(h + m)
                           : 0.0);
    }

  private:
    BenchParams p_;
    ThreadPool pool_;
    costmodel::Mapper mapper_;
};

} // namespace adyna::bench

#endif // ADYNA_BENCH_BENCH_COMMON_HH
