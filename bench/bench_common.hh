/**
 * @file
 * Shared helpers for the figure/table reproduction benches: flag
 * parsing, workload construction, design sweeps, and the standard
 * header that echoes the Table III configuration and the run
 * parameters so every bench output is self-describing.
 */

#ifndef ADYNA_BENCH_BENCH_COMMON_HH
#define ADYNA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/designs.hh"
#include "baselines/gpu.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "graph/parser.hh"
#include "models/models.hh"

namespace adyna::bench {

/** Standard run parameters shared by all benches. */
struct BenchParams
{
    int batches = 200;
    std::int64_t batchSize = 128;
    std::uint64_t seed = 7;

    static BenchParams
    fromArgs(const CliArgs &args)
    {
        BenchParams p;
        p.batches = static_cast<int>(args.getInt("batches", 200));
        p.batchSize = args.getInt("batch", 128);
        p.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
        return p;
    }
};

/** Print the reproduction banner with Table III and run params. */
inline void
printBanner(const std::string &title, const arch::HwConfig &hw,
            const BenchParams &p)
{
    std::printf("%s\n", title.c_str());
    std::printf("Adyna reproduction | %dx%d tiles, %dx%d FP16 PEs/tile, "
                "%.0f kB spad/tile, %d HBM2 stacks (%.0f GB/s), "
                "2D torus %.0f GB/s/link | %.0f TFLOPS peak\n",
                hw.gridRows, hw.gridCols, hw.tech.peRows,
                hw.tech.peCols,
                static_cast<double>(hw.tech.spadBytes) / 1024.0,
                hw.hbmStacks, hw.hbmTotalBytesPerCycle,
                hw.nocLinkBytesPerCycle, hw.peakTflops());
    std::printf("batches=%d batch-size=%ld seed=%llu\n\n", p.batches,
                static_cast<long>(p.batchSize),
                static_cast<unsigned long long>(p.seed));
}

/** One workload ready to simulate. */
struct Workload
{
    std::string name;        ///< Table I display name
    models::ModelBundle bundle;
    graph::DynGraph dg;
};

/** Build a workload by registry name at the given batch size. */
inline Workload
makeWorkload(const std::string &name, std::int64_t batch_size)
{
    models::ModelBundle bundle = models::buildByName(name, batch_size);
    graph::DynGraph dg = graph::parseModel(bundle.graph);
    return Workload{bundle.name, std::move(bundle), std::move(dg)};
}

/** Build all five paper workloads (Table I). */
inline std::vector<Workload>
makeAllWorkloads(std::int64_t batch_size)
{
    std::vector<Workload> out;
    for (const std::string &name : models::workloadNames())
        out.push_back(makeWorkload(name, batch_size));
    return out;
}

/** Run one accelerator design on one workload. */
inline core::RunReport
runDesign(const Workload &w, baselines::Design design,
          const BenchParams &p, const arch::HwConfig &hw)
{
    trace::TraceConfig cfg = w.bundle.traceConfig;
    cfg.batchSize = p.batchSize;
    auto sys = baselines::makeSystem(w.dg, cfg, hw, design, p.batches,
                                     p.seed);
    return sys.run();
}

/** Run the GPU baseline on one workload. */
inline core::RunReport
runGpuBaseline(const Workload &w, const BenchParams &p)
{
    trace::TraceConfig cfg = w.bundle.traceConfig;
    cfg.batchSize = p.batchSize;
    return baselines::runGpu(w.dg, cfg, baselines::GpuParams{},
                             p.batches, p.seed);
}

} // namespace adyna::bench

#endif // ADYNA_BENCH_BENCH_COMMON_HH
