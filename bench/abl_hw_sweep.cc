/**
 * @file
 * Extension: hardware design-space sensitivity. Sweeps the Table III
 * configuration along three axes -- tile-grid size, per-tile
 * scratchpad capacity, and NoC link bandwidth -- and reports Adyna's
 * speedup over M-tile at each point. Shows which of the paper's
 * conclusions are robust to the hardware baseline: the dynamism-
 * aware advantage persists across chip sizes, grows when on-chip
 * capacity is scarce (more segments to balance), and is insensitive
 * to NoC bandwidth beyond a modest floor.
 */

#include <deque>

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

namespace {

/**
 * Geomean Adyna-vs-M-tile speedup for each hardware point, all
 * (point, workload) runs in parallel. Each point gets its OWN shared
 * mapper: the memo key does not include TechParams, so a cache must
 * never span differing hardware configurations.
 */
std::vector<double>
speedupsAt(const std::vector<arch::HwConfig> &hws,
           const BenchParams &p,
           const std::vector<std::string> &names, ThreadPool &pool)
{
    std::deque<costmodel::Mapper> mappers; // deque: Mapper is pinned
    for (const arch::HwConfig &hw : hws)
        mappers.emplace_back(hw.tech);

    const auto speeds =
        pool.parallelMap(hws.size() * names.size(), [&](std::size_t i) {
            const std::size_t ci = i / names.size();
            const arch::HwConfig &hw = hws[ci];
            costmodel::Mapper *sm =
                p.sharedMapper ? &mappers[ci] : nullptr;
            const Workload w =
                makeWorkload(names[i % names.size()], p.batchSize);
            const double mtile =
                runDesign(w, Design::MTile, p, hw, sm).timeMs;
            const double adyna =
                runDesign(w, Design::Adyna, p, hw, sm).timeMs;
            return mtile / adyna;
        });

    std::vector<double> out;
    for (std::size_t ci = 0; ci < hws.size(); ++ci)
        out.push_back(geomean(std::vector<double>(
            speeds.begin() +
                static_cast<std::ptrdiff_t>(ci * names.size()),
            speeds.begin() +
                static_cast<std::ptrdiff_t>((ci + 1) *
                                            names.size()))));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 100;
    const arch::HwConfig base;
    printBanner("=== Extension: hardware design-space sweep ===", base,
                p);
    const std::vector<std::string> names{"skipnet", "tutel-moe",
                                         "dpsnet"};
    ThreadPool pool(p.jobs);

    TextTable grid("Tile grid sweep (per-tile resources fixed)");
    grid.header({"grid", "tiles", "peak TFLOPS",
                 "Adyna vs M-tile (geomean)"});
    const std::vector<int> edges{6, 8, 12, 16};
    std::vector<arch::HwConfig> gridHws;
    for (int edge : edges) {
        arch::HwConfig hw = base;
        hw.gridRows = edge;
        hw.gridCols = edge;
        gridHws.push_back(hw);
    }
    const auto gridSpeeds = speedupsAt(gridHws, p, names, pool);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const int edge = edges[i];
        grid.row({std::to_string(edge) + "x" + std::to_string(edge),
                  std::to_string(gridHws[i].tiles()),
                  TextTable::num(gridHws[i].peakTflops(), 0),
                  TextTable::mult(gridSpeeds[i])});
    }
    grid.print(std::cout);
    std::printf("\n");

    TextTable spad("Scratchpad capacity sweep (12x12 grid)");
    spad.header({"spad/tile", "total on-chip",
                 "Adyna vs M-tile (geomean)"});
    const std::vector<int> kbs{128, 256, 512, 1024};
    std::vector<arch::HwConfig> spadHws;
    for (int kb : kbs) {
        arch::HwConfig hw = base;
        hw.tech.spadBytes = static_cast<Bytes>(kb) << 10;
        spadHws.push_back(hw);
    }
    const auto spadSpeeds = speedupsAt(spadHws, p, names, pool);
    for (std::size_t i = 0; i < kbs.size(); ++i)
        spad.row({std::to_string(kbs[i]) + " kB",
                  std::to_string(kbs[i] * 144 / 1024) + " MB",
                  TextTable::mult(spadSpeeds[i])});
    spad.print(std::cout);
    std::printf("\n");

    TextTable noc("NoC link bandwidth sweep (12x12 grid)");
    noc.header({"GB/s per link", "Adyna vs M-tile (geomean)"});
    const std::vector<double> bws{48.0, 96.0, 192.0, 384.0};
    std::vector<arch::HwConfig> nocHws;
    for (double bw : bws) {
        arch::HwConfig hw = base;
        hw.nocLinkBytesPerCycle = bw;
        nocHws.push_back(hw);
    }
    const auto nocSpeeds = speedupsAt(nocHws, p, names, pool);
    for (std::size_t i = 0; i < bws.size(); ++i)
        noc.row({TextTable::num(bws[i], 0),
                 TextTable::mult(nocSpeeds[i])});
    noc.print(std::cout);
    return 0;
}
