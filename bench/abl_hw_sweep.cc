/**
 * @file
 * Extension: hardware design-space sensitivity. Sweeps the Table III
 * configuration along three axes -- tile-grid size, per-tile
 * scratchpad capacity, and NoC link bandwidth -- and reports Adyna's
 * speedup over M-tile at each point. Shows which of the paper's
 * conclusions are robust to the hardware baseline: the dynamism-
 * aware advantage persists across chip sizes, grows when on-chip
 * capacity is scarce (more segments to balance), and is insensitive
 * to NoC bandwidth beyond a modest floor.
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

namespace {

double
speedupAt(const arch::HwConfig &hw, const BenchParams &p,
          const std::vector<std::string> &names)
{
    std::vector<double> speeds;
    for (const auto &n : names) {
        const Workload w = makeWorkload(n, p.batchSize);
        const double mtile =
            runDesign(w, Design::MTile, p, hw).timeMs;
        const double adyna =
            runDesign(w, Design::Adyna, p, hw).timeMs;
        speeds.push_back(mtile / adyna);
    }
    return geomean(speeds);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 100;
    const arch::HwConfig base;
    printBanner("=== Extension: hardware design-space sweep ===", base,
                p);
    const std::vector<std::string> names{"skipnet", "tutel-moe",
                                         "dpsnet"};

    TextTable grid("Tile grid sweep (per-tile resources fixed)");
    grid.header({"grid", "tiles", "peak TFLOPS",
                 "Adyna vs M-tile (geomean)"});
    for (int edge : {6, 8, 12, 16}) {
        arch::HwConfig hw = base;
        hw.gridRows = edge;
        hw.gridCols = edge;
        grid.row({std::to_string(edge) + "x" + std::to_string(edge),
                  std::to_string(hw.tiles()),
                  TextTable::num(hw.peakTflops(), 0),
                  TextTable::mult(speedupAt(hw, p, names))});
    }
    grid.print(std::cout);
    std::printf("\n");

    TextTable spad("Scratchpad capacity sweep (12x12 grid)");
    spad.header({"spad/tile", "total on-chip",
                 "Adyna vs M-tile (geomean)"});
    for (int kb : {128, 256, 512, 1024}) {
        arch::HwConfig hw = base;
        hw.tech.spadBytes = static_cast<Bytes>(kb) << 10;
        spad.row({std::to_string(kb) + " kB",
                  std::to_string(kb * 144 / 1024) + " MB",
                  TextTable::mult(speedupAt(hw, p, names))});
    }
    spad.print(std::cout);
    std::printf("\n");

    TextTable noc("NoC link bandwidth sweep (12x12 grid)");
    noc.header({"GB/s per link", "Adyna vs M-tile (geomean)"});
    for (double bw : {48.0, 96.0, 192.0, 384.0}) {
        arch::HwConfig hw = base;
        hw.nocLinkBytesPerCycle = bw;
        noc.row({TextTable::num(bw, 0),
                 TextTable::mult(speedupAt(hw, p, names))});
    }
    noc.print(std::cout);
    return 0;
}
