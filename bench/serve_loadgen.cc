/**
 * @file
 * Online serving load generator: drives the serve runtime over three
 * workloads under open-loop arrivals and reports tail latency, SLO
 * attainment and goodput per (workload, arrival process, rate, mode)
 * cell, writing the full matrix to `BENCH_serve.json`.
 *
 * Per workload the bench first calibrates the engine's batch
 * throughput (Adyna-static offline run) and derives the request
 * capacity, the batching max-wait (one batch interval) and the SLO
 * deadline (a few batch intervals) from it, so the same rate
 * fractions stress every workload comparably. It then sweeps Poisson
 * arrivals at 0.3/0.6/0.9x capacity plus one bursty (MMPP-2) point,
 * and closes with the drift experiment: a drifting dynamism trace
 * served once with the drift-triggered re-scheduling loop enabled
 * (adaptive) and once pinned to the initial schedule (static), plus
 * the same pair on a stationary trace where adaptive must not fire.
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "serve/server.hh"

using namespace adyna;
using namespace adyna::bench;

namespace {

/** Per-workload calibration: capacity and derived time scales. */
struct Calibration
{
    double capacityRps = 0.0;   ///< max request throughput
    double batchIntervalMs = 0.0; ///< steady-state ms per batch
};

struct RunSpec
{
    std::size_t wi = 0;
    serve::ArrivalKind arrival = serve::ArrivalKind::Poisson;
    double rateFrac = 0.6; ///< offered rate as a capacity fraction
    bool drifting = false; ///< drifting dynamism trace
    bool adaptive = true;  ///< drift-triggered re-scheduling on
};

const char *
arrivalName(serve::ArrivalKind k)
{
    switch (k) {
    case serve::ArrivalKind::Poisson:
        return "poisson";
    case serve::ArrivalKind::Bursty:
        return "bursty";
    case serve::ArrivalKind::Replay:
        return "replay";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const int maxBatch =
        static_cast<int>(args.getInt("max-batch", 32));
    const int requests =
        static_cast<int>(args.getInt("requests", 2000));
    const double deadlineIntervals =
        args.getDouble("deadline-intervals", 6.0);
    const double driftStrength = args.getDouble("drift-strength", 0.9);
    const int driftPeriod =
        static_cast<int>(args.getInt("drift-period", 700));
    p.batchSize = maxBatch;
    const arch::HwConfig hw;
    printBanner("=== Online serving: arrivals, batching, SLO and "
                "drift-triggered re-scheduling ===",
                hw, p);

    std::vector<Workload> workloads;
    for (const std::string &name : {std::string("skipnet"),
                                    std::string("pabee"),
                                    std::string("tutel-moe")})
        workloads.push_back(makeWorkload(name, maxBatch));

    Sweep sweep(p, hw);

    // ---- calibration: engine capacity per workload -----------------
    const auto calibs = sweep.map(workloads.size(), [&](std::size_t i) {
        BenchParams cp = p;
        cp.batches = 60;
        const core::RunReport r =
            runDesign(workloads[i], baselines::Design::AdynaStatic,
                      cp, hw, sweep.sharedMapper());
        Calibration c;
        c.capacityRps = r.batchesPerSecond * maxBatch;
        c.batchIntervalMs = 1e3 / r.batchesPerSecond;
        return c;
    });

    std::printf("Calibration (Adyna-static, batch %d):\n", maxBatch);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        std::printf("  %-10s capacity %.0f req/s, batch interval "
                    "%.3f ms\n",
                    workloads[i].name.c_str(), calibs[i].capacityRps,
                    calibs[i].batchIntervalMs);
    std::printf("\n");

    // ---- the run matrix --------------------------------------------
    std::vector<RunSpec> specs;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        for (double frac : {0.3, 0.6, 0.9})
            specs.push_back({wi, serve::ArrivalKind::Poisson, frac,
                             /*drifting=*/false, /*adaptive=*/true});
        specs.push_back({wi, serve::ArrivalKind::Bursty, 0.6,
                         /*drifting=*/false, /*adaptive=*/true});
        // Stationary control: adaptive must match static exactly.
        specs.push_back({wi, serve::ArrivalKind::Poisson, 0.6,
                         /*drifting=*/false, /*adaptive=*/false});
        // The drift experiment.
        for (bool adaptive : {true, false})
            specs.push_back({wi, serve::ArrivalKind::Poisson, 0.6,
                             /*drifting=*/true, adaptive});
    }

    const auto runSpec = [&](std::size_t si) {
        const RunSpec &s = specs[si];
        const Workload &w = workloads[s.wi];
        const Calibration &c = calibs[s.wi];

        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = maxBatch;
        tc.driftStrength = s.drifting ? driftStrength : 0.0;
        tc.driftPeriod = driftPeriod;

        serve::ServeConfig sc;
        sc.arrival.kind = s.arrival;
        sc.arrival.ratePerSec = s.rateFrac * c.capacityRps;
        sc.batching.maxBatch = maxBatch;
        sc.batching.maxWaitCycles = static_cast<Cycles>(
            c.batchIntervalMs * 1e-3 * hw.tech.freqGhz * 1e9);
        sc.slo.deadlineMs = deadlineIntervals * c.batchIntervalMs;
        sc.drift.windowRequests =
            static_cast<int>(args.getInt("drift-window", 200));
        sc.driftReschedule = s.adaptive;
        sc.numRequests = requests;
        sc.seed = p.seed;

        serve::ServeRuntime rt(
            w.dg, tc, hw, baselines::schedulerConfig(
                              baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna), sc,
            w.name);
        rt.setSharedMapper(sweep.sharedMapper());
        return rt.run();
    };
    const auto reports = sweep.map(specs.size(), runSpec);

    // ---- report ----------------------------------------------------
    TextTable t("Serving matrix (" + std::to_string(requests) +
                " requests per cell)");
    t.header({"workload", "arrival", "rate", "trace", "mode",
              "offered r/s", "p50 ms", "p95 ms", "p99 ms", "SLO",
              "goodput r/s", "resched"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &s = specs[i];
        const serve::ServeReport &r = reports[i];
        t.row({workloads[s.wi].name, arrivalName(s.arrival),
               TextTable::num(s.rateFrac, 1) + "x",
               s.drifting ? "drifting" : "stationary", r.mode,
               TextTable::num(r.offeredRps, 0),
               TextTable::num(r.p50Ms, 3), TextTable::num(r.p95Ms, 3),
               TextTable::num(r.p99Ms, 3),
               TextTable::pct(r.sloAttainment),
               TextTable::num(r.goodputRps, 0),
               std::to_string(r.reschedules)});
    }
    t.print(std::cout);

    // ---- acceptance: adaptive vs static ----------------------------
    bool pass = true;
    std::printf("\nDrift-adaptation check per workload:\n");
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const serve::ServeReport *driftAdpt = nullptr;
        const serve::ServeReport *driftStat = nullptr;
        const serve::ServeReport *statAdpt = nullptr;
        const serve::ServeReport *statStat = nullptr;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const RunSpec &s = specs[i];
            if (s.wi != wi || s.arrival != serve::ArrivalKind::Poisson ||
                s.rateFrac != 0.6)
                continue;
            (s.drifting ? (s.adaptive ? driftAdpt : driftStat)
                        : (s.adaptive ? statAdpt : statStat)) =
                &reports[i];
        }
        const bool driftWin =
            driftAdpt->p99Ms < driftStat->p99Ms ||
            driftAdpt->goodputRps > driftStat->goodputRps;
        const bool driftFired = driftAdpt->reschedules > 0;
        // With no trigger the adaptive path is the static path, so
        // "within noise" on a stationary trace means exactly equal.
        const bool statClean = statAdpt->reschedules == 0 &&
                               statAdpt->p99Ms == statStat->p99Ms;
        std::printf("  %-10s drifting: adaptive p99 %.3f ms vs "
                    "static %.3f ms, goodput %.0f vs %.0f r/s, "
                    "%d reschedules -> %s; stationary: %s\n",
                    workloads[wi].name.c_str(), driftAdpt->p99Ms,
                    driftStat->p99Ms, driftAdpt->goodputRps,
                    driftStat->goodputRps, driftAdpt->reschedules,
                    driftFired && driftWin ? "adaptive wins" : "NO WIN",
                    statClean ? "adaptive == static (no trigger)"
                              : "UNEXPECTED DIVERGENCE");
        pass = pass && driftFired && driftWin && statClean;
    }

    // ---- BENCH_serve.json ------------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_serve.json");
    {
        std::ofstream out(jsonPath);
        out << "{\n  \"bench\": \"serve_loadgen\",\n  "
            << buildStampJson() << ",\n  \"max_batch\": " << maxBatch
            << ",\n  \"requests_per_cell\": " << requests
            << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const RunSpec &s = specs[i];
            // Splice the spec fields into the report object.
            std::string obj = serve::toJson(reports[i]);
            char extra[160];
            std::snprintf(extra, sizeof(extra),
                          "\"arrival\": \"%s\", \"rate_frac\": %.2f, "
                          "\"trace\": \"%s\", ",
                          arrivalName(s.arrival), s.rateFrac,
                          s.drifting ? "drifting" : "stationary");
            obj.insert(1, extra);
            out << "    " << obj
                << (i + 1 < specs.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::printf("\nWrote %s\n", jsonPath.c_str());
    sweep.printCacheStats();

    if (!pass) {
        std::printf("\nFAIL: drift adaptation did not beat the "
                    "static schedule (or fired on stationary "
                    "traffic)\n");
        return 1;
    }
    std::printf("\nPASS: drift-triggered re-scheduling beats the "
                "static schedule on drifting traffic and is inert "
                "on stationary traffic\n");
    return 0;
}
