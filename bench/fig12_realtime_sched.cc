/**
 * @file
 * Figure 12 reproduction: offline (Adyna) vs online real-time
 * scheduling. Online scheduling would run every dynamic operator
 * with its optimal kernel (full-kernel performance) but pays a
 * scheduling latency before each dynamic operator execution; the
 * bench sweeps that latency, prints the speedup-vs-Adyna curve, and
 * reports the crossover latency against CoSA's ~0.1 s per-operator
 * scheduling time (Section IX-D).
 */

#include "baselines/realtime.hh"
#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 12: real-time scheduling overhead ===", hw,
                p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const std::vector<double> latenciesMs{0.0,   1e-5, 1e-4, 3e-4,
                                          1e-3,  3e-3, 1e-2, 3e-2,
                                          1e-1};

    TextTable t("Speedup of online real-time scheduling vs Adyna "
                "(>1 = online wins)");
    std::vector<std::string> header{"sched latency (ms)"};
    for (const Workload &w : workloads)
        header.push_back(w.name);
    t.header(header);

    Sweep sweep(p, hw);
    const std::vector<baselines::RealtimeSweep> sweeps =
        sweep.map(workloads.size(), [&](std::size_t i) {
            const Workload &w = workloads[i];
            const auto adyna = sweep.run(w, Design::Adyna, hw);
            const auto full = sweep.run(w, Design::FullKernel, hw);
            return baselines::sweepRealtimeScheduling(
                w.dg, adyna, full, p.batches, latenciesMs);
        });
    sweep.printCacheStats();
    for (std::size_t i = 0; i < latenciesMs.size(); ++i) {
        std::vector<std::string> cells{
            TextTable::num(latenciesMs[i], 5)};
        for (const auto &s : sweeps)
            cells.push_back(
                TextTable::num(s.points[i].speedupVsAdyna, 3));
        t.row(cells);
    }
    t.print(std::cout);

    std::printf("\nCrossover latency (online scheduling matches "
                "Adyna):\n");
    std::vector<double> crossUs;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        std::printf("  %-10s %10.4f ms  (%lld scheduling decisions "
                    "per run)\n",
                    workloads[i].name.c_str(), sweeps[i].crossoverMs,
                    static_cast<long long>(sweeps[i].schedEvents));
        if (sweeps[i].crossoverMs > 0.0)
            crossUs.push_back(sweeps[i].crossoverMs);
    }
    if (!crossUs.empty()) {
        const double gm = geomean(crossUs);
        std::printf("\nGeomean crossover: %.4f ms. CoSA needs ~100 ms "
                    "per operator: %.0fx above the bar, so offline "
                    "multi-kernel scheduling wins (paper: crossover "
                    "0.39 ms, a 3-orders-of-magnitude gap).\n",
                    gm, 100.0 / gm);
    }
    return 0;
}
