/**
 * @file
 * Multi-chip pod load generator: scales one serving workload across
 * K chips behind the pod router, measuring goodput scaling, chip-loss
 * fail-over, and the 1-chip equivalence guarantee, and writing the
 * cell matrix to `BENCH_pod.json`.
 *
 * Cells:
 *  - scaling: K in {1, 2, 4, 8}, replicated placement, least-loaded
 *    routing, pod-aggregate offered load fixed at rate-frac of the
 *    K-chip capacity. Gate A: goodput at K=8 >= 6x the K=1 baseline
 *    (near-linear scale-out despite interconnect charges and
 *    per-chip drift/reconfig stalls).
 *  - chip-loss: K=4 with a permanent `chip_fail` striking chip 1 a
 *    third into the run, adaptive re-route vs static pinning.
 *    Gate B: adaptive re-route beats static pinning on pod goodput
 *    (the dark chip's queue drains onto survivors instead of
 *    vanishing).
 *  - identity: a 1-chip pod must reproduce the single-chip
 *    ServeRuntime serve JSON byte-for-byte (Gate C — the pod layer
 *    is a pure extension).
 *  - partitioned (ungated): two models split 50/50 over K=4 under
 *    schedule-affinity routing, reporting affinity hit rates and
 *    per-group goodput.
 *  - gray straggler: K=4 with a permanent `chip_slow` (factor >= 4)
 *    dilating chip 1 a third into the run, hedged+breaker reliability
 *    vs the naive router. Gate D: the reliability layer beats naive
 *    on BOTH pod p99 and goodput.
 *  - gray integrity: K=4 under a fabric-wide `payload_corrupt`
 *    window with end-to-end checksums. Gate E: every injected
 *    corruption is detected and retried (costed on the
 *    interconnect), none delivered wrong. A checksums-off twin is
 *    reported ungated.
 *
 * `--only gray` runs just the two gray cells (the CI fault job's
 * gray-failure leg); the default runs everything.
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "pod/runtime.hh"
#include "serve/server.hh"

using namespace adyna;
using namespace adyna::bench;

namespace {

struct Calibration
{
    double capacityRps = 0.0;
    double batchIntervalMs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const int maxBatch = static_cast<int>(args.getInt("max-batch", 8));
    const int requestsPerChip =
        static_cast<int>(args.getInt("requests", 400));
    const double rateFrac = args.getDouble("rate-frac", 0.6);
    const double deadlineIntervals =
        args.getDouble("deadline-intervals", 8.0);
    const double waitIntervals =
        args.getDouble("wait-intervals", 1.0);
    const std::size_t queueLimit = static_cast<std::size_t>(
        args.getInt("queue-limit", 8L * maxBatch));
    const std::string only = args.getString("only", "");
    const bool baseCells = only.empty();
    if (!baseCells && only != "gray") {
        std::fprintf(stderr, "unknown --only section \"%s\" "
                             "(supported: gray)\n",
                     only.c_str());
        return 2;
    }
    const double slowFactor = args.getDouble("slow-factor", 5.0);
    const double corruptProb = args.getDouble("corrupt-prob", 0.05);
    p.batchSize = maxBatch;
    const arch::HwConfig hw;
    printBanner("=== Multi-chip pod serving: request routing and "
                "chip-loss fail-over ===",
                hw, p);

    std::vector<Workload> workloads;
    for (const std::string &name :
         {std::string("skipnet"), std::string("pabee")})
        workloads.push_back(makeWorkload(name, maxBatch));

    Sweep sweep(p, hw);

    // ---- calibration: full-grid capacity per workload --------------
    const auto calibs = sweep.map(workloads.size(), [&](std::size_t i) {
        BenchParams cp = p;
        cp.batches = 60;
        const core::RunReport r =
            runDesign(workloads[i], baselines::Design::AdynaStatic,
                      cp, hw, sweep.sharedMapper());
        Calibration c;
        c.capacityRps = r.batchesPerSecond * maxBatch;
        c.batchIntervalMs = 1e3 / r.batchesPerSecond;
        return c;
    });
    std::printf("Calibration (Adyna-static, batch %d, full grid):\n",
                maxBatch);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        std::printf("  %-10s capacity %.0f req/s, batch interval "
                    "%.3f ms, weights %.1f MB\n",
                    workloads[i].name.c_str(), calibs[i].capacityRps,
                    calibs[i].batchIntervalMs,
                    static_cast<double>(
                        workloads[i].dg.graph().totalWeightBytes()) /
                        1e6);
    std::printf("\n");

    /** The per-chip serving template at a given pod rate. */
    const auto serveConfig = [&](const Calibration &c, double rate,
                                 int num_requests) {
        serve::ServeConfig sc;
        sc.arrival.ratePerSec = rate;
        sc.batching.maxBatch = maxBatch;
        sc.batching.maxWaitCycles = static_cast<Cycles>(
            waitIntervals * c.batchIntervalMs * 1e-3 *
            hw.tech.freqGhz * 1e9);
        sc.slo.deadlineMs = deadlineIntervals * c.batchIntervalMs;
        sc.numRequests = num_requests;
        sc.seed = p.seed;
        return sc;
    };

    // Every pod run gets its own mapper and store cache (shared by
    // that run's chips, not across runs): BENCH_pod.json promises
    // byte-stability for any --jobs, and sweep-wide caches would
    // leak warm-up order into the reported hit/miss counters.
    const auto makePod = [&](pod::PodConfig pc,
                             std::vector<pod::PodWorkload> wls) {
        costmodel::Mapper mapper(hw.tech);
        kernels::KernelStoreCache cache;
        pod::PodRuntime rt(
            std::move(wls), hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna),
            std::move(pc));
        rt.setSharedMapper(&mapper);
        rt.setSharedStoreCache(&cache);
        return rt.run();
    };

    const Workload &w0 = workloads[0];
    const Calibration &c0 = calibs[0];
    trace::TraceConfig tc0 = w0.bundle.traceConfig;
    tc0.batchSize = maxBatch;

    struct CellRun
    {
        std::string cell;
        pod::PodReport report;
    };
    std::vector<CellRun> cellRuns;

    double scaleup = 0.0;
    bool scalingPass = true;
    bool failoverPass = true;
    bool identityPass = true;
    if (baseCells) {
    // ---- cell 1: scaling sweep K in {1,2,4,8} ----------------------
    const std::vector<int> kSweep = {1, 2, 4, 8};
    const auto scaling = sweep.map(kSweep.size(), [&](std::size_t i) {
        const int K = kSweep[i];
        pod::PodConfig pc;
        pc.chips = K;
        pc.placement = pod::Placement::Replicated;
        pc.router.policy = pod::RoutePolicy::LeastLoaded;
        pc.router.queueLimit = queueLimit;
        pc.serve = serveConfig(c0, rateFrac * K * c0.capacityRps,
                               requestsPerChip * K);
        return makePod(std::move(pc), {{&w0.dg, tc0, w0.name}});
    });

    TextTable ts("Scaling sweep (replicated " + w0.name +
                 ", least-loaded, " +
                 std::to_string(requestsPerChip) +
                 " requests/chip)");
    ts.header({"K", "offered r/s", "goodput r/s", "slo att", "p99 ms",
               "shed", "diverted", "speedup"});
    for (std::size_t i = 0; i < kSweep.size(); ++i) {
        const pod::PodReport &r = scaling[i];
        ts.row({std::to_string(kSweep[i]),
                TextTable::num(r.offeredRps, 0),
                TextTable::num(r.goodputRps, 0),
                TextTable::num(r.sloAttainment, 3),
                TextTable::num(r.p99Ms, 3),
                std::to_string(r.shedRequests),
                std::to_string(r.diverted),
                TextTable::num(r.goodputRps / scaling[0].goodputRps,
                               2)});
        cellRuns.push_back(
            {"scaling-k" + std::to_string(kSweep[i]), r});
    }
    ts.print(std::cout);

    scaleup = scaling.back().goodputRps / scaling.front().goodputRps;
    scalingPass = scaleup >= 6.0;
    std::printf("\nGate A (scale-out): goodput K=8 / K=1 = %.2fx "
                "(need >= 6x) -> %s\n\n",
                scaleup, scalingPass ? "pass" : "FAIL");

    // ---- cell 2: chip loss, adaptive re-route vs static pinning ----
    // A permanent chip_fail strikes chip 1 a third of the way into
    // the arrival horizon.
    const int kLoss = 4;
    const double lossRate = rateFrac * kLoss * c0.capacityRps;
    const int lossRequests = requestsPerChip * kLoss;
    const Tick strikeTick = static_cast<Tick>(
        (static_cast<double>(lossRequests) / lossRate / 3.0) *
        hw.tech.freqGhz * 1e9);
    const auto lossRun = [&](bool adaptive) {
        pod::PodConfig pc;
        pc.chips = kLoss;
        pc.placement = pod::Placement::Replicated;
        pc.router.policy = pod::RoutePolicy::LeastLoaded;
        pc.router.queueLimit = queueLimit;
        pc.router.reRouteOnFailure = adaptive;
        pc.serve = serveConfig(c0, lossRate, lossRequests);
        pc.faultPlan = fault::parseFaultPlanOrDie(
            "chip_fail@" + std::to_string(strikeTick) + ":chip=1");
        return makePod(std::move(pc), {{&w0.dg, tc0, w0.name}});
    };
    const auto lossReports =
        sweep.map(2, [&](std::size_t i) { return lossRun(i == 0); });
    const pod::PodReport &lossAdaptive = lossReports[0];
    const pod::PodReport &lossStatic = lossReports[1];

    TextTable tl("Chip loss (K=4, chip 1 dark at 1/3 horizon, " +
                 std::to_string(lossRequests) + " requests)");
    tl.header({"mode", "goodput r/s", "slo att", "completed",
               "rerouted", "drained", "dark sheds", "front sheds"});
    const auto lossRow = [&](const char *mode,
                             const pod::PodReport &r) {
        tl.row({mode, TextTable::num(r.goodputRps, 0),
                TextTable::num(r.sloAttainment, 3),
                std::to_string(r.requests),
                std::to_string(r.rerouted),
                std::to_string(r.drained),
                std::to_string(r.darkChipSheds),
                std::to_string(r.shedRequests)});
    };
    lossRow("adaptive", lossAdaptive);
    lossRow("static-pin", lossStatic);
    tl.print(std::cout);
    cellRuns.push_back({"chip-loss-adaptive", lossAdaptive});
    cellRuns.push_back({"chip-loss-static", lossStatic});

    failoverPass = lossAdaptive.goodputRps > lossStatic.goodputRps;
    std::printf("\nGate B (fail-over): adaptive goodput %.0f vs "
                "static pinning %.0f r/s -> %s\n\n",
                lossAdaptive.goodputRps, lossStatic.goodputRps,
                failoverPass ? "pass" : "FAIL");

    // ---- cell 3: 1-chip pod == ServeRuntime (byte identity) --------
    // Private store caches on both sides so cache counters are
    // byte-stable regardless of what ran before.
    {
        const serve::ServeConfig sc = serveConfig(
            c0, rateFrac * c0.capacityRps, requestsPerChip);

        kernels::KernelStoreCache cacheDirect;
        serve::ServeRuntime direct(
            w0.dg, tc0, hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna), sc,
            w0.name);
        direct.setSharedStoreCache(&cacheDirect);
        const std::string directJson = serve::toJson(direct.run());

        pod::PodConfig pc;
        pc.chips = 1;
        pc.serve = sc;
        kernels::KernelStoreCache cacheVia;
        pod::PodRuntime via(
            {{&w0.dg, tc0, w0.name}}, hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna),
            std::move(pc));
        via.setSharedStoreCache(&cacheVia);
        const pod::PodReport pr = via.run();
        const std::string viaJson = serve::toJson(pr.chips[0].serve);

        identityPass = directJson == viaJson;
        std::printf("Gate C (1-chip equivalence): serve JSON %s\n\n",
                    identityPass ? "byte-identical" : "DIVERGED");
    }

    // ---- cell 4 (ungated): partitioned placement + affinity --------
    {
        const Calibration &c1 = calibs[1];
        trace::TraceConfig tc1 = workloads[1].bundle.traceConfig;
        tc1.batchSize = maxBatch;
        // 50/50 split over K=4 gives each model a 2-chip group; size
        // the pod rate so the slower group runs at rate-frac.
        const double podRate =
            rateFrac * 2.0 *
            std::min(c0.capacityRps, c1.capacityRps) / 0.5;
        // The latency envelope (batching window, deadline) must fit
        // the slower model or its chips can never meet the SLO.
        const Calibration &cSlow =
            c0.batchIntervalMs > c1.batchIntervalMs ? c0 : c1;
        pod::PodConfig pc;
        pc.chips = 4;
        pc.placement = pod::Placement::Partitioned;
        pc.router.policy = pod::RoutePolicy::Affinity;
        // Affinity is distance-first: it keeps steering look-alike
        // (here: heavy) requests at the same chip no matter its
        // backlog, so a tight queue limit is what sheds the
        // concentration onto the group sibling (backpressure
        // diverts).
        pc.router.queueLimit =
            static_cast<std::size_t>(2 * maxBatch);
        pc.serve =
            serveConfig(cSlow, podRate, requestsPerChip * pc.chips);
        // Affinity deliberately concentrates look-alike requests, so
        // per-chip arrival rates are uneven; a wider batching window
        // keeps batches full enough to absorb the concentration.
        pc.serve.batching.maxWaitCycles *= 2;
        const pod::PodReport r = makePod(
            std::move(pc), {{&w0.dg, tc0, w0.name, 0.5},
                            {&workloads[1].dg, tc1,
                             workloads[1].name, 0.5}});
        TextTable tp("Partitioned 50/50 " + w0.name + " + " +
                     workloads[1].name +
                     " on K=4, affinity routing");
        tp.header({"chip", "model", "routed", "goodput r/s",
                   "p99 ms", "resched"});
        for (const pod::ChipResult &cr : r.chips)
            tp.row({std::to_string(cr.id), cr.model,
                    std::to_string(cr.routed),
                    TextTable::num(cr.serve.goodputRps, 0),
                    TextTable::num(cr.serve.p99Ms, 3),
                    std::to_string(cr.serve.reschedules)});
        tp.print(std::cout);
        std::printf("\naffinity hits %llu / misses %llu, diverted "
                    "%llu, pod goodput %.0f r/s\n\n",
                    static_cast<unsigned long long>(r.affinityHits),
                    static_cast<unsigned long long>(
                        r.affinityMisses),
                    static_cast<unsigned long long>(r.diverted),
                    r.goodputRps);
        cellRuns.push_back({"partitioned-affinity", r});
    }
    } // baseCells

    // ---- cell 5: gray straggler — hedged+breaker vs naive ----------
    // A permanent chip_slow dilates chip 1's clock by slowFactor from
    // a third of the arrival horizon. The reliability run hedges
    // stuck requests onto healthy chips and lets the circuit breaker
    // stop admitting to the straggler; the naive run has only the
    // router's load projection.
    const int kGray = 4;
    const double grayRate = rateFrac * kGray * c0.capacityRps;
    const int grayRequests = requestsPerChip * kGray;
    const Tick slowTick = static_cast<Tick>(
        (static_cast<double>(grayRequests) / grayRate / 3.0) *
        hw.tech.freqGhz * 1e9);
    const auto grayRun = [&](bool hedged) {
        pod::PodConfig pc;
        pc.chips = kGray;
        pc.placement = pod::Placement::Replicated;
        pc.router.policy = pod::RoutePolicy::LeastLoaded;
        pc.router.queueLimit = queueLimit;
        pc.serve = serveConfig(c0, grayRate, grayRequests);
        char plan[128];
        std::snprintf(plan, sizeof(plan),
                      "chip_slow@%llu:chip=1,factor=%.17g",
                      static_cast<unsigned long long>(slowTick),
                      slowFactor);
        pc.faultPlan = fault::parseFaultPlanOrDie(plan);
        if (hedged) {
            pc.reliability.hedging = true;
            pc.reliability.breaker = true;
        }
        return makePod(std::move(pc), {{&w0.dg, tc0, w0.name}});
    };
    const auto grayReports =
        sweep.map(2, [&](std::size_t i) { return grayRun(i == 0); });
    const pod::PodReport &grayHedged = grayReports[0];
    const pod::PodReport &grayNaive = grayReports[1];

    TextTable tg("Gray straggler (K=4, chip 1 " +
                 TextTable::num(slowFactor, 1) + "x slow at 1/3 " +
                 "horizon, " + std::to_string(grayRequests) +
                 " requests)");
    tg.header({"mode", "goodput r/s", "p99 ms", "slo att", "hedges",
               "wins", "wasted", "trips", "sheds"});
    const auto grayRow = [&](const char *mode,
                             const pod::PodReport &r) {
        tg.row({mode, TextTable::num(r.goodputRps, 0),
                TextTable::num(r.p99Ms, 3),
                TextTable::num(r.sloAttainment, 3),
                std::to_string(r.reliability.hedges),
                std::to_string(r.reliability.hedgeWins),
                std::to_string(r.reliability.wastedCompletions),
                std::to_string(r.reliability.breakerTrips),
                std::to_string(r.shedRequests +
                               r.reliability.brownoutSheds)});
    };
    grayRow("hedged+brk", grayHedged);
    grayRow("naive", grayNaive);
    tg.print(std::cout);
    cellRuns.push_back({"gray-slow-hedged", grayHedged});
    cellRuns.push_back({"gray-slow-naive", grayNaive});

    const double hedgedGoodputRatio =
        grayNaive.goodputRps > 0.0
            ? grayHedged.goodputRps / grayNaive.goodputRps
            : 0.0;
    const bool stragglerPass =
        grayHedged.p99Ms < grayNaive.p99Ms &&
        grayHedged.goodputRps > grayNaive.goodputRps;
    std::printf("\nGate D (straggler): hedged+breaker p99 %.3f ms / "
                "goodput %.0f r/s vs naive %.3f ms / %.0f r/s "
                "(ratio %.2fx) -> %s\n\n",
                grayHedged.p99Ms, grayHedged.goodputRps,
                grayNaive.p99Ms, grayNaive.goodputRps,
                hedgedGoodputRatio,
                stragglerPass ? "pass" : "FAIL");

    // ---- cell 6: gray integrity — payload corruption + checksums ---
    const auto corruptRun = [&](bool checks) {
        pod::PodConfig pc;
        pc.chips = kGray;
        pc.placement = pod::Placement::Replicated;
        pc.router.policy = pod::RoutePolicy::LeastLoaded;
        pc.router.queueLimit = queueLimit;
        pc.serve = serveConfig(c0, grayRate, grayRequests);
        char plan[96];
        std::snprintf(plan, sizeof(plan),
                      "payload_corrupt@0:prob=%.17g", corruptProb);
        pc.faultPlan = fault::parseFaultPlanOrDie(plan);
        pc.reliability.checksums = checks;
        return makePod(std::move(pc), {{&w0.dg, tc0, w0.name}});
    };
    const auto corruptReports = sweep.map(
        2, [&](std::size_t i) { return corruptRun(i == 0); });
    const pod::PodReport &corruptChecked = corruptReports[0];
    const pod::PodReport &corruptNaive = corruptReports[1];

    TextTable tc("Gray integrity (K=4, fabric-wide bit-flip prob " +
                 TextTable::num(corruptProb, 3) + " per transfer)");
    tc.header({"mode", "goodput r/s", "injected", "detected",
               "undetected", "retries", "retry KB"});
    const auto corruptRow = [&](const char *mode,
                                const pod::PodReport &r) {
        tc.row({mode, TextTable::num(r.goodputRps, 0),
                std::to_string(r.reliability.corruptionsInjected),
                std::to_string(r.reliability.corruptionsDetected),
                std::to_string(r.reliability.corruptionsUndetected),
                std::to_string(r.reliability.integrityRetries),
                TextTable::num(static_cast<double>(
                                   r.reliability.icRetryBytes) /
                                   1e3,
                               1)});
    };
    corruptRow("checksums", corruptChecked);
    corruptRow("naive", corruptNaive);
    tc.print(std::cout);
    cellRuns.push_back({"gray-corrupt-checksum", corruptChecked});
    cellRuns.push_back({"gray-corrupt-naive", corruptNaive});

    const pod::PodReliabilityStats &ck = corruptChecked.reliability;
    const bool integrityPass =
        ck.corruptionsInjected > 0 &&
        ck.corruptionsDetected == ck.corruptionsInjected &&
        ck.corruptionsUndetected == 0 && ck.icRetryBytes > 0;
    std::printf("\nGate E (integrity): %llu/%llu corruptions "
                "detected-and-retried (%llu KB retransmitted, %llu "
                "undetected) -> %s\n\n",
                static_cast<unsigned long long>(
                    ck.corruptionsDetected),
                static_cast<unsigned long long>(
                    ck.corruptionsInjected),
                static_cast<unsigned long long>(ck.icRetryBytes /
                                                1000),
                static_cast<unsigned long long>(
                    ck.corruptionsUndetected),
                integrityPass ? "pass" : "FAIL");

    // ---- BENCH_pod.json --------------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_pod.json");
    {
        std::ofstream out(jsonPath);
        out << "{\n  \"bench\": \"pod_loadgen\",\n  "
            << buildStampJson() << ",\n  \"max_batch\": " << maxBatch
            << ",\n  \"requests_per_chip\": " << requestsPerChip;
        if (baseCells)
            out << ",\n  \"scaleup_k8\": " << scaleup
                << ",\n  \"scaling_pass\": "
                << (scalingPass ? "true" : "false")
                << ",\n  \"failover_pass\": "
                << (failoverPass ? "true" : "false")
                << ",\n  \"identity_pass\": "
                << (identityPass ? "true" : "false");
        out << ",\n  \"hedged_goodput_ratio\": "
            << hedgedGoodputRatio << ",\n  \"straggler_pass\": "
            << (stragglerPass ? "true" : "false")
            << ",\n  \"integrity_pass\": "
            << (integrityPass ? "true" : "false")
            << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < cellRuns.size(); ++i) {
            std::string obj = pod::toJson(cellRuns[i].report);
            char extra[64];
            std::snprintf(extra, sizeof(extra), "\"cell\": \"%s\", ",
                          cellRuns[i].cell.c_str());
            obj.insert(1, extra);
            out << "    " << obj
                << (i + 1 < cellRuns.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::printf("Wrote %s\n", jsonPath.c_str());
    sweep.printCacheStats();

    if (!scalingPass || !failoverPass || !identityPass ||
        !stragglerPass || !integrityPass) {
        std::printf("\nFAIL:%s%s%s%s%s\n",
                    scalingPass ? "" : " scale-out below 6x at K=8;",
                    failoverPass
                        ? ""
                        : " adaptive re-route did not beat static "
                          "pinning;",
                    identityPass
                        ? ""
                        : " 1-chip pod diverged from ServeRuntime;",
                    stragglerPass
                        ? ""
                        : " hedged+breaker did not beat the naive "
                          "router under the straggler;",
                    integrityPass
                        ? ""
                        : " checksums missed injected corruptions");
        return 1;
    }
    if (baseCells)
        std::printf(
            "\nPASS: %.2fx goodput at K=8, adaptive fail-over "
            "beats static pinning, the 1-chip pod is "
            "byte-identical to ServeRuntime, hedged+breaker beats "
            "naive %.2fx under the straggler, and checksums caught "
            "every corruption\n",
            scaleup, hedgedGoodputRatio);
    else
        std::printf(
            "\nPASS: hedged+breaker beats naive %.2fx under the "
            "straggler, and checksums caught every corruption\n",
            hedgedGoodputRatio);
    return 0;
}
