/**
 * @file
 * Figure 9 reproduction: end-to-end performance of the GPU, M-tile,
 * M-tenant, Adyna (static), full-kernel, and Adyna on the five
 * DynNN workloads of Table I. Prints absolute times, performance
 * normalized to Adyna (the paper's y-axis), and the headline speedup
 * statistics quoted in the abstract and Section IX-B.
 */

#include <fstream>

#include "bench_common.hh"
#include "core/report_io.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchParams p = BenchParams::fromArgs(args);
    const arch::HwConfig hw;
    printBanner("=== Figure 9: overall performance ===", hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const auto designs = baselines::allDesigns();

    // Enumerate the independent (workload, design) runs in the
    // serial iteration order, execute them on the pool, and
    // aggregate in input order: output is byte-identical for any
    // --jobs value.
    struct Task
    {
        std::size_t wi;
        Design d;
        bool gpu;
    };
    std::vector<Task> tasks;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        for (Design d : designs)
            tasks.push_back({wi, d, false});
        tasks.push_back({wi, Design::Adyna, true});
    }

    Sweep sweep(p, hw);
    const std::vector<core::RunReport> reports =
        sweep.map(tasks.size(), [&](std::size_t i) {
            const Task &t = tasks[i];
            return t.gpu ? runGpuBaseline(workloads[t.wi], p)
                         : sweep.run(workloads[t.wi], t.d, hw);
        });
    sweep.printCacheStats();

    // design name -> workload -> time (ms)
    std::map<std::string, std::map<std::string, double>> times;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &rep = reports[i];
        times[tasks[i].gpu ? "GPU" : rep.design]
             [workloads[tasks[i].wi].name] = rep.timeMs;
    }

    // Optional machine-readable dumps for plotting pipelines.
    if (args.has("csv")) {
        std::ofstream out(args.getString("csv", "fig09.csv"));
        out << core::toCsv(reports);
    }
    if (args.has("json")) {
        std::ofstream out(args.getString("json", "fig09.json"));
        out << core::toJson(reports);
    }

    const std::vector<std::string> rows{
        "GPU",        "M-tile",      "M-tenant",
        "Adyna (static)", "full-kernel", "Adyna"};

    TextTable abs("Absolute time for " + std::to_string(p.batches) +
                  " batches (ms)");
    {
        std::vector<std::string> header{"design"};
        for (const Workload &w : workloads)
            header.push_back(w.name);
        abs.header(header);
        for (const std::string &d : rows) {
            std::vector<std::string> cells{d};
            for (const Workload &w : workloads)
                cells.push_back(TextTable::num(times[d][w.name], 1));
            abs.row(cells);
        }
    }
    abs.print(std::cout);
    std::printf("\n");

    TextTable norm(
        "Normalized performance (Adyna = 1.0, higher is better)");
    {
        std::vector<std::string> header{"design"};
        for (const Workload &w : workloads)
            header.push_back(w.name);
        header.push_back("geomean");
        norm.header(header);
        for (const std::string &d : rows) {
            std::vector<std::string> cells{d};
            std::vector<double> perf;
            for (const Workload &w : workloads) {
                const double v =
                    times["Adyna"][w.name] / times[d][w.name];
                perf.push_back(v);
                cells.push_back(TextTable::num(v, 2));
            }
            cells.push_back(TextTable::num(geomean(perf), 2));
            norm.row(cells);
        }
    }
    norm.print(std::cout);
    std::printf("\n");

    // Headline statistics (paper: 1.70x / 2.32x over M-tile, 1.57x /
    // 2.01x over M-tenant, static contributes 1.41x, runtime
    // adjustment another 1.21x, within 13% of full-kernel, 11.7x
    // over the GPU).
    auto speedups = [&](const std::string &base,
                        const std::string &mine) {
        std::vector<double> s;
        for (const Workload &w : workloads)
            s.push_back(times[base][w.name] / times[mine][w.name]);
        return s;
    };
    auto maxOf = [](const std::vector<double> &v) {
        double m = v[0];
        for (double x : v)
            m = std::max(m, x);
        return m;
    };

    TextTable head("Headline statistics (paper reference in brackets)");
    head.header({"metric", "measured", "paper"});
    const auto vsTile = speedups("M-tile", "Adyna");
    const auto vsTenant = speedups("M-tenant", "Adyna");
    const auto stat = speedups("M-tile", "Adyna (static)");
    const auto runtime = speedups("Adyna (static)", "Adyna");
    const auto vsGpu = speedups("GPU", "Adyna");
    const auto ofFull = speedups("Adyna", "full-kernel");
    head.row({"Adyna vs M-tile (geomean)",
              TextTable::mult(geomean(vsTile)), "1.70x"});
    head.row({"Adyna vs M-tile (max)", TextTable::mult(maxOf(vsTile)),
              "2.32x"});
    head.row({"Adyna vs M-tenant (geomean)",
              TextTable::mult(geomean(vsTenant)), "1.57x"});
    head.row({"Adyna vs M-tenant (max)",
              TextTable::mult(maxOf(vsTenant)), "2.01x"});
    head.row({"Adyna (static) vs M-tile",
              TextTable::mult(geomean(stat)), "1.41x"});
    head.row({"runtime adjustment gain",
              TextTable::mult(geomean(runtime)), "1.21x"});
    head.row({"Adyna vs GPU (geomean)", TextTable::mult(geomean(vsGpu)),
              "11.7x"});
    head.row({"Adyna / full-kernel",
              TextTable::pct(1.0 / geomean(ofFull)), "87%"});
    head.print(std::cout);
    return 0;
}
