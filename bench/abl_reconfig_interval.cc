/**
 * @file
 * Ablation: reconfiguration interval. The paper re-schedules and
 * re-samples every 40 batches (Section V-C: < 2.4% overhead); this
 * bench sweeps the interval to expose the trade-off between
 * adaptivity (short periods track the drifting distribution) and
 * reconfiguration cost (pipeline drains + kernel reloads).
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 240;
    const arch::HwConfig hw;
    printBanner("=== Ablation: reconfiguration interval ===", hw, p);

    const auto names = models::workloadNames();
    const std::vector<int> periods{10, 20, 40, 80, 160, 0};

    TextTable t("Run time (ms); 0 = never reconfigure (static)");
    std::vector<std::string> header{"interval (batches)"};
    for (const auto &n : names)
        header.push_back(n);
    header.push_back("geomean vs 40");
    t.header(header);

    Sweep sweep(p, hw);
    const auto flat = sweep.map(
        periods.size() * names.size(), [&](std::size_t i) {
            const int period = periods[i / names.size()];
            const Workload w = makeWorkload(names[i % names.size()],
                                            p.batchSize);
            trace::TraceConfig cfg = w.bundle.traceConfig;
            cfg.batchSize = p.batchSize;
            auto opts = baselines::runOptions(Design::Adyna,
                                              p.batches, p.seed);
            opts.reconfigPeriod = period;
            core::System sys(w.dg, cfg, hw,
                             baselines::schedulerConfig(Design::Adyna),
                             baselines::execPolicy(Design::Adyna),
                             opts, "Adyna");
            sys.setSharedMapper(sweep.sharedMapper());
            return sys.run().timeMs;
        });
    sweep.printCacheStats();

    std::map<int, std::map<std::string, double>> ms;
    for (std::size_t pi = 0; pi < periods.size(); ++pi)
        for (std::size_t ni = 0; ni < names.size(); ++ni)
            ms[periods[pi]][names[ni]] =
                flat[pi * names.size() + ni];
    for (int period : periods) {
        std::vector<std::string> cells{
            period == 0 ? std::string("never")
                        : std::to_string(period)};
        std::vector<double> rel;
        for (const auto &n : names) {
            cells.push_back(TextTable::num(ms[period][n], 1));
            rel.push_back(ms[period][n] / ms[40][n]);
        }
        cells.push_back(TextTable::num(geomean(rel), 3));
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("\nShape check: very short intervals pay drain "
                "overhead, 'never' loses adaptivity; the paper's 40 "
                "sits near the sweet spot.\n");
    return 0;
}
