/**
 * @file
 * Multi-tenant serving load generator: co-schedules three tenants —
 * each a different workload with its own SLO class and arrival
 * process — on one chip under the three partition modes
 * (isolation-aware, static even split, naive shared grid) across a
 * small tenant-mix cell matrix, reporting per-tenant tail latency and
 * goodput per (cell, mode) and writing the matrix to
 * `BENCH_mtenant.json`.
 *
 * Per workload the bench calibrates the full-grid engine capacity
 * (Adyna-static offline run) and derives per-tenant rates, batching
 * max-wait, and SLO deadlines from it, scaled by the ~1/3 tile share
 * each tenant holds. The acceptance gate checks that isolation-aware
 * partitioning beats the naive shared grid on BOTH worst-tenant p99
 * and aggregate goodput in at least 2 of the 3 cells, and that a
 * 1-tenant multi-tenant config reproduces the single-workload
 * ServeRuntime report byte-for-byte (the pure-extension gate).
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "mtenant/runtime.hh"
#include "serve/server.hh"

using namespace adyna;
using namespace adyna::bench;

namespace {

struct Calibration
{
    double capacityRps = 0.0;
    double batchIntervalMs = 0.0;
};

/** One tenant of a cell. */
struct TenantDef
{
    std::size_t wi = 0; ///< workload index
    serve::SloClass cls = serve::SloClass::Standard;
    serve::ArrivalKind kind = serve::ArrivalKind::Poisson;
    double rateFrac = 0.6; ///< of the tenant's ~1/3-grid capacity

    // Bursty tenants only: MMPP-2 burst shape. The defaults model a
    // hard production spike — an order-of-magnitude rate surge for a
    // few milliseconds — which is what spatial isolation exists to
    // contain.
    double burstMult = 10.0;
    double burstFrac = 0.10;
    double burstDwellSec = 0.005;
};

struct Cell
{
    const char *name;
    std::vector<TenantDef> tenants;
};

const mtenant::PartitionKind kModes[] = {
    mtenant::PartitionKind::IsolationAware,
    mtenant::PartitionKind::EvenSplit,
    mtenant::PartitionKind::SharedGrid,
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    const int maxBatch = static_cast<int>(args.getInt("max-batch", 8));
    const int requests =
        static_cast<int>(args.getInt("requests", 500));
    const double deadlineIntervals =
        args.getDouble("deadline-intervals", 8.0);
    const double waitIntervals =
        args.getDouble("wait-intervals", 1.0);
    const double shareScale = args.getDouble("share-scale", 3.0);
    const double alpha = args.getDouble("alpha", 0.5);
    const bool elastic = args.getInt("elastic", 1) != 0;
    const double rateScale = args.getDouble("rate-scale", 1.0);
    p.batchSize = maxBatch;
    const arch::HwConfig hw;
    printBanner("=== Multi-tenant serving: isolation-aware tile "
                "partitioning vs naive sharing ===",
                hw, p);

    std::vector<Workload> workloads;
    for (const std::string &name : {std::string("skipnet"),
                                    std::string("pabee"),
                                    std::string("tutel-moe")})
        workloads.push_back(makeWorkload(name, maxBatch));

    Sweep sweep(p, hw);

    // ---- calibration: full-grid capacity per workload --------------
    const auto calibs = sweep.map(workloads.size(), [&](std::size_t i) {
        BenchParams cp = p;
        cp.batches = 60;
        const core::RunReport r =
            runDesign(workloads[i], baselines::Design::AdynaStatic,
                      cp, hw, sweep.sharedMapper());
        Calibration c;
        c.capacityRps = r.batchesPerSecond * maxBatch;
        c.batchIntervalMs = 1e3 / r.batchesPerSecond;
        return c;
    });

    std::printf("Calibration (Adyna-static, batch %d, full grid):\n",
                maxBatch);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        std::printf("  %-10s capacity %.0f req/s, batch interval "
                    "%.3f ms, weights %.1f MB\n",
                    workloads[i].name.c_str(), calibs[i].capacityRps,
                    calibs[i].batchIntervalMs,
                    static_cast<double>(
                        workloads[i].dg.graph().totalWeightBytes()) /
                        1e6);
    std::printf("\n");

    // ---- the tenant-mix cells --------------------------------------
    // even-mix is the steady-state cell; noisy-neighbor and spike
    // carry MMPP bursts, where spatial isolation earns its keep by
    // containing a surge to the burster's own region instead of
    // convoying every tenant behind it on the shared grid.
    const std::vector<Cell> cells = {
        {"even-mix",
         {{0, serve::SloClass::Standard, serve::ArrivalKind::Poisson,
           0.6},
          {1, serve::SloClass::Standard, serve::ArrivalKind::Poisson,
           0.6},
          {2, serve::SloClass::Standard, serve::ArrivalKind::Poisson,
           0.6}}},
        {"noisy-neighbor",
         {{0, serve::SloClass::LatencyCritical,
           serve::ArrivalKind::Poisson, 0.7},
          {1, serve::SloClass::Standard, serve::ArrivalKind::Bursty,
           0.6, 10.0, 0.12, 0.008},
          {2, serve::SloClass::BestEffort,
           serve::ArrivalKind::Poisson, 0.5}}},
        {"spike-storm",
         {{2, serve::SloClass::LatencyCritical,
           serve::ArrivalKind::Poisson, 0.6},
          {0, serve::SloClass::Standard, serve::ArrivalKind::Bursty,
           0.7, 12.0, 0.10, 0.005},
          {1, serve::SloClass::Standard, serve::ArrivalKind::Bursty,
           0.6, 8.0, 0.12, 0.008}}},
    };

    struct RunSpec
    {
        std::size_t cell = 0;
        std::size_t mode = 0;
    };
    std::vector<RunSpec> specs;
    for (std::size_t c = 0; c < cells.size(); ++c)
        for (std::size_t m = 0; m < 3; ++m)
            specs.push_back({c, m});

    const auto runSpec = [&](std::size_t si) {
        const Cell &cell = cells[specs[si].cell];
        const mtenant::PartitionKind mode = kModes[specs[si].mode];

        mtenant::MTenantConfig mc;
        mc.partition.kind = mode;
        mc.partition.interferenceAlpha = alpha;
        mc.repartition.elastic = elastic;
        std::vector<mtenant::TenantWorkload> wls;
        for (std::size_t ti = 0; ti < cell.tenants.size(); ++ti) {
            const TenantDef &d = cell.tenants[ti];
            const Workload &w = workloads[d.wi];
            const Calibration &c = calibs[d.wi];

            trace::TraceConfig tc = w.bundle.traceConfig;
            tc.batchSize = maxBatch;
            tc.driftStrength = 0.0; // stationary: isolate the
                                    // partitioning effect

            serve::TenantSpec ts;
            ts.id = w.name + "-" + std::to_string(ti);
            ts.cls = d.cls;
            ts.serve.arrival.kind = d.kind;
            if (d.kind == serve::ArrivalKind::Bursty) {
                ts.serve.arrival.burstRateMultiplier = d.burstMult;
                ts.serve.arrival.burstFraction = d.burstFrac;
                ts.serve.arrival.burstDwellSec = d.burstDwellSec;
            }
            // A tenant owns ~1/shareScale of the grid, so its
            // serving capacity is roughly the full-grid capacity
            // over shareScale; rateFrac is relative to that.
            ts.serve.arrival.ratePerSec =
                rateScale * d.rateFrac * c.capacityRps / shareScale;
            // Batching window and deadline are in full-grid
            // batch-interval units — the latency envelope a
            // low-latency serving deployment would set, NOT scaled up
            // to excuse a slow partition. A small window is the
            // realistic operating point, and it is also where naive
            // sharing thrashes: near request-granularity
            // interleaving means a weight re-stream on almost every
            // dispatch, while pinned regions never pay one.
            ts.serve.batching.maxBatch = maxBatch;
            ts.serve.batching.maxWaitCycles = static_cast<Cycles>(
                waitIntervals * c.batchIntervalMs * 1e-3 *
                hw.tech.freqGhz * 1e9);
            // Deadline tiers by SLO class: latency-critical gets the
            // base envelope, standard 4x, best-effort 8x.
            const double classMult =
                d.cls == serve::SloClass::LatencyCritical ? 1.0
                : d.cls == serve::SloClass::Standard      ? 4.0
                                                          : 8.0;
            ts.serve.slo.deadlineMs =
                deadlineIntervals * classMult * c.batchIntervalMs;
            ts.serve.numRequests = requests;
            ts.serve.seed = p.seed;
            // Initial tile shares must be work-normalized: rateFrac
            // is each tenant's demand relative to an equal slice of
            // the grid, so it is directly the relative work offered.
            // Leaving loadWeight at 0 would size shares by raw
            // request rate and starve slow, heavy workloads.
            ts.loadWeight = d.rateFrac;
            mc.tenants.push_back(std::move(ts));
            wls.push_back({&w.dg, tc, w.name});
        }

        mtenant::MTenantRuntime rt(
            std::move(wls), hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna),
            std::move(mc));
        if (sweep.sharedMapper())
            rt.setSharedMapper(sweep.sharedMapper());
        return rt.run();
    };
    const auto reports = sweep.map(specs.size(), runSpec);

    // ---- report ----------------------------------------------------
    TextTable t("Tenant-mix matrix (" + std::to_string(requests) +
                " requests per tenant)");
    t.header({"cell", "mode", "worst p99 ms", "agg goodput r/s",
              "repart", "preempt", "switches",
              "per-tenant p99 ms"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const mtenant::MTenantReport &r = reports[i];
        std::string perT;
        for (const mtenant::TenantResult &tr : r.tenants) {
            if (!perT.empty())
                perT += " / ";
            perT += TextTable::num(tr.serve.p99Ms, 3);
        }
        t.row({cells[specs[i].cell].name, r.mode,
               TextTable::num(r.worstP99Ms, 3),
               TextTable::num(r.aggregateGoodputRps, 0),
               std::to_string(r.repartitions),
               std::to_string(r.preemptions),
               std::to_string(r.tenantSwitches), perT});
    }
    t.print(std::cout);

    // ---- acceptance: isolation-aware vs shared grid ----------------
    // Class-aware comparison: isolation's promise is to the premium
    // (latency-critical) class — spatial partitioning trades peak
    // consolidation throughput for interference-free QoS, so the
    // per-cell gate compares the latency-critical tenants' p99 and
    // goodput. A cell with no latency-critical tenant falls back to
    // worst-tenant p99 and aggregate goodput.
    struct GateMetrics
    {
        double p99Ms = 0.0;
        double goodputRps = 0.0;
        bool premium = false;
    };
    const auto gateMetrics = [](const mtenant::MTenantReport &r) {
        GateMetrics g;
        for (const mtenant::TenantResult &tr : r.tenants) {
            if (tr.cls != serve::SloClass::LatencyCritical)
                continue;
            g.premium = true;
            g.p99Ms = std::max(g.p99Ms, tr.serve.p99Ms);
            g.goodputRps += tr.serve.goodputRps;
        }
        if (!g.premium) {
            g.p99Ms = r.worstP99Ms;
            g.goodputRps = r.aggregateGoodputRps;
        }
        return g;
    };

    int cellWins = 0;
    std::printf("\nIsolation vs naive shared grid per cell "
                "(latency-critical tenants where present, else "
                "worst/aggregate):\n");
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const mtenant::MTenantReport *iso = nullptr;
        const mtenant::MTenantReport *shared = nullptr;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (specs[i].cell != c)
                continue;
            if (kModes[specs[i].mode] ==
                mtenant::PartitionKind::IsolationAware)
                iso = &reports[i];
            if (kModes[specs[i].mode] ==
                mtenant::PartitionKind::SharedGrid)
                shared = &reports[i];
        }
        const GateMetrics gi = gateMetrics(*iso);
        const GateMetrics gs = gateMetrics(*shared);
        const bool win = gi.p99Ms < gs.p99Ms &&
                         gi.goodputRps > gs.goodputRps;
        std::printf("  %-14s %-8s p99 %.3f vs %.3f ms, goodput "
                    "%.0f vs %.0f r/s -> %s\n",
                    cells[c].name, gi.premium ? "[LC]" : "[all]",
                    gi.p99Ms, gs.p99Ms, gi.goodputRps, gs.goodputRps,
                    win ? "isolation wins" : "no win");
        cellWins += win ? 1 : 0;
    }
    const bool matrixPass = cellWins >= 2;

    // ---- acceptance: 1-tenant == single-workload ServeRuntime ------
    // Private store caches on both sides so the cache counters in the
    // reports are byte-stable regardless of what ran before.
    bool identityPass = false;
    {
        const Workload &w = workloads[0];
        const Calibration &c = calibs[0];
        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = maxBatch;
        serve::ServeConfig sc;
        sc.arrival.ratePerSec = 0.6 * c.capacityRps;
        sc.batching.maxBatch = maxBatch;
        sc.batching.maxWaitCycles = static_cast<Cycles>(
            c.batchIntervalMs * 1e-3 * hw.tech.freqGhz * 1e9);
        sc.slo.deadlineMs = deadlineIntervals * c.batchIntervalMs;
        sc.numRequests = requests;
        sc.seed = p.seed;

        kernels::KernelStoreCache cacheDirect;
        serve::ServeRuntime direct(
            w.dg, tc, hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna), sc,
            w.name);
        direct.setSharedStoreCache(&cacheDirect);
        const std::string directJson = serve::toJson(direct.run());

        mtenant::MTenantConfig mc;
        serve::TenantSpec ts;
        ts.id = "solo";
        ts.serve = sc;
        mc.tenants.push_back(std::move(ts));
        kernels::KernelStoreCache cacheVia;
        mtenant::MTenantRuntime via(
            {{&w.dg, tc, w.name}}, hw,
            baselines::schedulerConfig(baselines::Design::Adyna),
            baselines::execPolicy(baselines::Design::Adyna),
            std::move(mc));
        via.setSharedStoreCache(&cacheVia);
        const mtenant::MTenantReport mr = via.run();
        const std::string viaJson =
            serve::toJson(mr.tenants[0].serve);

        identityPass = directJson == viaJson;
        std::printf("\n1-tenant equivalence: serve JSON %s\n",
                    identityPass ? "byte-identical"
                                 : "DIVERGED");
    }

    // ---- BENCH_mtenant.json ----------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_mtenant.json");
    {
        std::ofstream out(jsonPath);
        out << "{\n  \"bench\": \"mtenant_loadgen\",\n  "
            << buildStampJson() << ",\n  \"max_batch\": " << maxBatch
            << ",\n  \"requests_per_tenant\": " << requests
            << ",\n  \"cell_wins\": " << cellWins
            << ",\n  \"identity_pass\": "
            << (identityPass ? "true" : "false")
            << ",\n  \"runs\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::string obj = mtenant::toJson(reports[i]);
            char extra[64];
            std::snprintf(extra, sizeof(extra), "\"cell\": \"%s\", ",
                          cells[specs[i].cell].name);
            obj.insert(1, extra);
            out << "    " << obj
                << (i + 1 < specs.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }
    std::printf("\nWrote %s\n", jsonPath.c_str());
    sweep.printCacheStats();

    if (!matrixPass || !identityPass) {
        std::printf("\nFAIL: %s%s%s\n",
                    matrixPass
                        ? ""
                        : "isolation-aware beat the shared grid in "
                          "fewer than 2 of 3 cells",
                    !matrixPass && !identityPass ? "; " : "",
                    identityPass
                        ? ""
                        : "1-tenant run diverged from ServeRuntime");
        return 1;
    }
    std::printf("\nPASS: isolation-aware partitioning beats the "
                "naive shared grid in %d of 3 cells and the "
                "1-tenant path is byte-identical to ServeRuntime\n",
                cellWins);
    return 0;
}
