/**
 * @file
 * Ablation: the two runtime-adjustment optimizations of Section V-B
 * -- tile sharing and branch grouping -- toggled independently on
 * the workloads where complementary / rarely-active branches exist
 * (FBSNet's channel blocks, Tutel-MoE's experts, AdaViT's gated
 * blocks).
 */

#include "bench_common.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 200;
    const arch::HwConfig hw;
    printBanner("=== Ablation: tile sharing and branch grouping ===",
                hw, p);

    const std::vector<std::string> names{"fbsnet", "tutel-moe",
                                         "adavit"};

    TextTable t("Run time (ms) with each optimization toggled");
    std::vector<std::string> header{"sharing", "grouping"};
    for (const auto &n : names)
        header.push_back(n);
    t.header(header);

    Sweep sweep(p, hw);
    // Task index = ((sharing * 2) + grouping) * names + workload.
    const auto flat =
        sweep.map(4 * names.size(), [&](std::size_t i) {
            const bool sharing = i / names.size() / 2 != 0;
            const bool grouping = i / names.size() % 2 != 0;
            const Workload w = makeWorkload(names[i % names.size()],
                                            p.batchSize);
            trace::TraceConfig cfg = w.bundle.traceConfig;
            cfg.batchSize = p.batchSize;
            auto sched = baselines::schedulerConfig(Design::Adyna);
            sched.tileSharing = sharing;
            sched.branchGrouping = grouping;
            auto pol = baselines::execPolicy(Design::Adyna);
            pol.tileSharing = sharing;
            core::System sys(
                w.dg, cfg, hw, sched, pol,
                baselines::runOptions(Design::Adyna, p.batches,
                                      p.seed),
                "Adyna");
            sys.setSharedMapper(sweep.sharedMapper());
            return sys.run().timeMs;
        });
    sweep.printCacheStats();

    std::map<std::string, double> baseMs;
    for (int sharing = 0; sharing <= 1; ++sharing) {
        for (int grouping = 0; grouping <= 1; ++grouping) {
            std::vector<std::string> cells{sharing ? "on" : "off",
                                           grouping ? "on" : "off"};
            for (std::size_t ni = 0; ni < names.size(); ++ni) {
                const double ms =
                    flat[static_cast<std::size_t>(sharing * 2 +
                                                  grouping) *
                             names.size() +
                         ni];
                if (!sharing && !grouping)
                    baseMs[names[ni]] = ms;
                cells.push_back(TextTable::num(ms, 1) + " (" +
                                TextTable::mult(baseMs[names[ni]] /
                                                ms) +
                                ")");
            }
            t.row(cells);
        }
    }
    t.print(std::cout);
    std::printf("\nShape check: sharing absorbs per-batch load "
                "spikes between complementary branches; grouping "
                "reclaims tiles from rarely-activated branches "
                "(FBSNet's cold channel blocks).\n");
    return 0;
}
