/**
 * @file
 * Ablation: per-operator kernel budget sweep. Section VII derives
 * ~32 sampled values per operator from the 25.6 kB metadata budget
 * and tile sharing's 6x amplification; this bench shows how
 * performance degrades as the budget shrinks toward a single
 * worst-case kernel, and how close the paper's choice gets to the
 * idealized full-kernel setting.
 */

#include "bench_common.hh"
#include "core/scheduler.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 120;
    const arch::HwConfig hw;
    printBanner("=== Ablation: kernels per operator (multi-kernel "
                "budget) ===",
                hw, p);

    // DPSNet has the widest dyn_dim range (up to 8192), PABEE and
    // Tutel-MoE are token-folded: the budget matters most there.
    const std::vector<std::string> names{"skipnet", "tutel-moe",
                                         "dpsnet"};
    const std::vector<int> budgets{1, 2, 4, 8, 16, 32, 64};

    TextTable t("Slowdown vs the full-kernel ideal (1.00 = ideal)");
    std::vector<std::string> header{"kernels/op"};
    for (const auto &n : names)
        header.push_back(n);
    t.header(header);

    Sweep sweep(p, hw);

    // Task layout: [0, names) = full-kernel references, then one
    // task per (budget, workload) pair.
    const auto times = sweep.map(
        names.size() * (1 + budgets.size()), [&](std::size_t i) {
            const Workload w = makeWorkload(names[i % names.size()],
                                            p.batchSize);
            if (i < names.size())
                return sweep.run(w, Design::FullKernel, hw).timeMs;
            const int budget = budgets[i / names.size() - 1];
            trace::TraceConfig cfg = w.bundle.traceConfig;
            cfg.batchSize = p.batchSize;
            auto sched = baselines::schedulerConfig(Design::Adyna);
            sched.kernelBudgetPerOp = budget;
            core::System sys(
                w.dg, cfg, hw, sched,
                baselines::execPolicy(Design::Adyna),
                baselines::runOptions(Design::Adyna, p.batches,
                                      p.seed),
                "Adyna");
            sys.setSharedMapper(sweep.sharedMapper());
            return sys.run().timeMs;
        });
    sweep.printCacheStats();

    for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
        std::vector<std::string> cells{std::to_string(budgets[bi])};
        for (std::size_t ni = 0; ni < names.size(); ++ni) {
            const double ms = times[(bi + 1) * names.size() + ni];
            cells.push_back(TextTable::num(ms / times[ni], 3));
        }
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("\nShape check: performance approaches the ideal as "
                "the budget grows; the paper's ~32 kernels/op sit "
                "within ~13%% of full-kernel, while 1-2 kernels "
                "(static worst-case dispatch) lose the most on "
                "wide-range workloads like DPSNet.\n");
    return 0;
}
