/**
 * @file
 * Harness self-check: times the full workload x design sweep three
 * ways -- (A) the seed configuration (serial, per-run mapper, legacy
 * per-period segment planner), (B) serial with the schedule-plan
 * cache and the sweep-shared mapper, and (C) the same plus the
 * --jobs thread pool -- verifies that all three produce identical
 * reports, and writes a machine-readable `BENCH_sweep.json` so the
 * perf trajectory is trackable across PRs.
 *
 * Speedup expectations: B/A isolates the caching win (also on 1-core
 * hosts); C/A is the headline harness speedup (>= 2x on a 4-core
 * host).
 */

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "core/report_io.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct SweepResult
{
    std::vector<core::RunReport> reports;
    double wallMs = 0.0;
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
};

/** Run the full workload x design matrix under one configuration. */
SweepResult
runSweep(const std::vector<Workload> &workloads,
         const std::vector<Design> &designs, const BenchParams &p,
         const arch::HwConfig &hw, int jobs, bool plan_cache,
         bool share_mapper)
{
    ThreadPool pool(jobs);
    costmodel::Mapper shared(hw.tech);

    struct Task
    {
        std::size_t wi;
        Design d;
    };
    std::vector<Task> tasks;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi)
        for (Design d : designs)
            tasks.push_back({wi, d});

    SweepResult out;
    const double t0 = nowMs();
    out.reports = pool.parallelMap(tasks.size(), [&](std::size_t i) {
        const Workload &w = workloads[tasks[i].wi];
        trace::TraceConfig cfg = w.bundle.traceConfig;
        cfg.batchSize = p.batchSize;
        auto pol = baselines::execPolicy(tasks[i].d);
        pol.planCache = plan_cache;
        core::System sys(w.dg, cfg, hw,
                         baselines::schedulerConfig(tasks[i].d), pol,
                         baselines::runOptions(tasks[i].d, p.batches,
                                               p.seed),
                         baselines::designName(tasks[i].d));
        if (share_mapper)
            sys.setSharedMapper(&shared);
        return sys.run();
    });
    out.wallMs = nowMs() - t0;
    out.mapperHits = shared.hits();
    out.mapperMisses = shared.misses();
    return out;
}

/** Simulation outputs (not cache counters) must match exactly. */
bool
reportsIdentical(const std::vector<core::RunReport> &a,
                 const std::vector<core::RunReport> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (core::toJson(a[i], /*include_batches=*/true) !=
            core::toJson(b[i], /*include_batches=*/true))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 120;
    const arch::HwConfig hw;
    printBanner("=== Harness self-check: sweep wall-clock and "
                "equivalence ===",
                hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const auto designs = baselines::allDesigns();
    std::printf("Sweep: %zu workloads x %zu designs = %zu runs, "
                "%d batches each\n\n",
                workloads.size(), designs.size(),
                workloads.size() * designs.size(), p.batches);

    const auto base = runSweep(workloads, designs, p, hw, 1,
                               /*plan_cache=*/false,
                               /*share_mapper=*/false);
    const auto cached = runSweep(workloads, designs, p, hw, 1,
                                 /*plan_cache=*/true,
                                 /*share_mapper=*/true);
    const auto parallel = runSweep(workloads, designs, p, hw, p.jobs,
                                   /*plan_cache=*/true,
                                   /*share_mapper=*/true);

    const bool eqCached = reportsIdentical(base.reports,
                                           cached.reports);
    const bool eqParallel = reportsIdentical(base.reports,
                                             parallel.reports);

    TextTable t("End-to-end sweep wall-clock");
    t.header({"configuration", "wall (ms)", "speedup",
              "reports identical"});
    t.row({"A: seed (serial, uncached)", TextTable::num(base.wallMs, 0),
           "1.00x", "-"});
    t.row({"B: serial + plan cache + shared mapper",
           TextTable::num(cached.wallMs, 0),
           TextTable::mult(base.wallMs / cached.wallMs),
           eqCached ? "yes" : "NO"});
    t.row({"C: --jobs " + std::to_string(p.jobs) + " + caches",
           TextTable::num(parallel.wallMs, 0),
           TextTable::mult(base.wallMs / parallel.wallMs),
           eqParallel ? "yes" : "NO"});
    t.print(std::cout);

    const auto hitRate = [](std::uint64_t h, std::uint64_t m) {
        return h + m ? 100.0 * static_cast<double>(h) /
                           static_cast<double>(h + m)
                     : 0.0;
    };
    std::printf("\nShared mapper cache: %llu hits / %llu misses "
                "(%.1f%% hit rate) on the serial cached sweep\n",
                static_cast<unsigned long long>(cached.mapperHits),
                static_cast<unsigned long long>(cached.mapperMisses),
                hitRate(cached.mapperHits, cached.mapperMisses));

    const std::string jsonPath =
        args.getString("json", "BENCH_sweep.json");
    {
        std::ofstream out(jsonPath);
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "{\n"
            "  \"bench\": \"perf_selfcheck\",\n"
            "  %s,\n"
            "  \"jobs\": %d,\n"
            "  \"batches\": %d,\n"
            "  \"batch_size\": %ld,\n"
            "  \"runs\": %zu,\n"
            "  \"serial_uncached_ms\": %.3f,\n"
            "  \"serial_cached_ms\": %.3f,\n"
            "  \"parallel_cached_ms\": %.3f,\n"
            "  \"speedup_cache\": %.3f,\n"
            "  \"speedup_total\": %.3f,\n"
            "  \"mapper_hits\": %llu,\n"
            "  \"mapper_misses\": %llu,\n"
            "  \"reports_identical\": %s\n"
            "}\n",
            buildStampJson().c_str(), p.jobs, p.batches,
            static_cast<long>(p.batchSize),
            workloads.size() * designs.size(), base.wallMs,
            cached.wallMs, parallel.wallMs,
            base.wallMs / cached.wallMs,
            base.wallMs / parallel.wallMs,
            static_cast<unsigned long long>(cached.mapperHits),
            static_cast<unsigned long long>(cached.mapperMisses),
            eqCached && eqParallel ? "true" : "false");
        out << buf;
    }
    std::printf("Wrote %s\n", jsonPath.c_str());

    if (!eqCached || !eqParallel) {
        std::printf("\nFAIL: optimized sweep reports diverge from "
                    "the seed path\n");
        return 1;
    }
    std::printf("\nPASS: cached and parallel sweeps are "
                "report-identical to the seed path\n");
    return 0;
}
