/**
 * @file
 * Harness self-check: times the hot paths of the simulator three
 * ways and gates every optimization on byte-identical outputs.
 *
 * 1. The full workload x design sweep -- (A) the seed configuration
 *    (serial, per-run mapper, legacy per-period segment planner, no
 *    store cache, no exec memo), (B) serial with every cache layer
 *    on, and (C) the same plus the --jobs thread pool -- verifying
 *    that all three produce identical reports.
 * 2. The reconfiguration-latency bench: N re-schedules per workload
 *    cold (fresh mapper, no store cache), cold with the parallel
 *    per-stage store build, and warm (primed kernel-store cache +
 *    mapper memo), verifying cold- and warm-built schedules are
 *    identical down to the encoded kernel images.
 * 3. The engine-throughput bench: the same batch stream through
 *    Engine::runPeriod with the exec-cost memo off and on, verifying
 *    identical PeriodResults.
 *
 * Everything lands in a machine-readable `BENCH_sweep.json` so the
 * perf trajectory is trackable across PRs.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "core/report_io.hh"
#include "kernels/store_cache.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Cache/parallelism switches of one sweep configuration. */
struct SweepCfg
{
    int jobs = 1;
    bool planCache = false;
    bool shareMapper = false;
    bool storeCache = false;
    bool execMemo = false;
};

struct SweepResult
{
    std::vector<core::RunReport> reports;
    double wallMs = 0.0;
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;
};

/** Run the full workload x design matrix under one configuration.
 * Each sweep gets its own store cache so timings are independent of
 * sweep order (the process-global cache is never touched). */
SweepResult
runSweep(const std::vector<Workload> &workloads,
         const std::vector<Design> &designs, const BenchParams &p,
         const arch::HwConfig &hw, const SweepCfg &cfg)
{
    ThreadPool pool(cfg.jobs);
    costmodel::Mapper shared(hw.tech);
    kernels::KernelStoreCache cache;

    struct Task
    {
        std::size_t wi;
        Design d;
    };
    std::vector<Task> tasks;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi)
        for (Design d : designs)
            tasks.push_back({wi, d});

    SweepResult out;
    const double t0 = nowMs();
    out.reports = pool.parallelMap(tasks.size(), [&](std::size_t i) {
        const Workload &w = workloads[tasks[i].wi];
        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = p.batchSize;
        auto pol = baselines::execPolicy(tasks[i].d);
        pol.planCache = cfg.planCache;
        pol.execCostMemo = cfg.execMemo;
        auto scfg = baselines::schedulerConfig(tasks[i].d);
        scfg.storeCache = cfg.storeCache;
        core::System sys(w.dg, tc, hw, scfg, pol,
                         baselines::runOptions(tasks[i].d, p.batches,
                                               p.seed),
                         baselines::designName(tasks[i].d));
        if (cfg.shareMapper)
            sys.setSharedMapper(&shared);
        sys.setSharedStoreCache(&cache);
        return sys.run();
    });
    out.wallMs = nowMs() - t0;
    out.mapperHits = shared.hits();
    out.mapperMisses = shared.misses();
    out.storeHits = cache.hits();
    out.storeMisses = cache.misses();
    for (const core::RunReport &r : out.reports) {
        out.execHits += r.execHits;
        out.execMisses += r.execMisses;
    }
    return out;
}

/** Simulation outputs (not cache counters) must match exactly. */
bool
reportsIdentical(const std::vector<core::RunReport> &a,
                 const std::vector<core::RunReport> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (core::toJson(a[i], /*include_batches=*/true) !=
            core::toJson(b[i], /*include_batches=*/true))
            return false;
    return true;
}

/** Everything a schedule compiles down to, including the encoded
 * 128-byte kernel images (cold- and warm-built schedules must agree
 * byte for byte). */
std::string
scheduleFingerprint(const core::Schedule &sch)
{
    std::ostringstream os;
    for (const auto &seg : sch.segments) {
        for (const auto &st : seg.stages) {
            os << st.op << ':' << st.baseTiles << ':';
            for (TileId t : st.tiles)
                os << t << ',';
            for (const auto &[count, store] : st.stores) {
                os << '|' << count;
                for (const auto &k : store.kernels()) {
                    os << '/' << k.value << '#';
                    for (unsigned byte : k.image)
                        os << byte << '.';
                }
            }
            os << ';';
        }
        os << '\n';
    }
    return os.str();
}

/** Reconfiguration-latency figures for one workload. */
struct ReconfigResult
{
    double coldMs = 0.0;
    double coldParallelMs = 0.0;
    double warmMs = 0.0;
    bool identical = false;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
};

/**
 * Time @p rounds re-schedules of one workload. Cold builds recompile
 * every store through a fresh mapper (the seed re-schedule path);
 * the parallel variant adds the per-stage thread-pool build; warm
 * builds reuse a primed kernel-store cache, the path a
 * drift-triggered re-schedule takes in the serving runtime.
 */
ReconfigResult
runReconfig(const Workload &w, const arch::HwConfig &hw, int rounds,
            int jobs)
{
    const auto scfg =
        baselines::schedulerConfig(Design::Adyna);
    std::map<OpId, double> expectations; // worst-case weights
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    {
        costmodel::Mapper m(hw.tech);
        core::Scheduler s(w.dg, hw, m, scfg);
        kernelValues = s.initialKernelValues();
    }

    ReconfigResult out;
    std::string coldFp;

    // Cold: every round compiles every kernel store from scratch.
    // (Fingerprints come from separate untimed builds so the string
    // construction never pollutes the latency figures.)
    {
        costmodel::Mapper m0(hw.tech);
        core::Scheduler s0(w.dg, hw, m0, scfg);
        coldFp = scheduleFingerprint(
            s0.build(expectations, kernelValues, nullptr));
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r) {
            costmodel::Mapper m(hw.tech);
            core::Scheduler s(w.dg, hw, m, scfg);
            (void)s.build(expectations, kernelValues, nullptr);
        }
        out.coldMs = (nowMs() - t0) / rounds;
    }

    // Cold + parallel per-stage store build.
    {
        ThreadPool pool(jobs);
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r) {
            costmodel::Mapper m(hw.tech);
            core::Scheduler s(w.dg, hw, m, scfg);
            s.setThreadPool(&pool);
            (void)s.build(expectations, kernelValues, nullptr);
        }
        out.coldParallelMs = (nowMs() - t0) / rounds;
    }

    // Warm: one untimed priming build, then re-schedules against the
    // populated store cache and mapper memo.
    {
        costmodel::Mapper m(hw.tech);
        kernels::KernelStoreCache cache;
        core::Scheduler s(w.dg, hw, m, scfg);
        s.setStoreCache(&cache);
        const std::string warmFp = scheduleFingerprint(
            s.build(expectations, kernelValues, nullptr));
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r)
            (void)s.build(expectations, kernelValues, nullptr);
        out.warmMs = (nowMs() - t0) / rounds;
        out.identical = warmFp == coldFp;
        out.storeHits = cache.hits();
        out.storeMisses = cache.misses();
    }
    return out;
}

/** Engine-throughput figures: the exec-cost memo off vs on. */
struct EngineResult
{
    double uncachedMs = 0.0;
    double memoMs = 0.0;
    bool identical = false;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;
};

bool
samePeriod(const core::PeriodResult &a, const core::PeriodResult &b)
{
    return a.endTime == b.endTime && a.batchEnds == b.batchEnds &&
           a.stageCycles == b.stageCycles;
}

/**
 * Stream the same batch routing sequence through Engine::runPeriod
 * @p reps times per memo setting (fresh chip per rep, so every rep
 * is the same simulation) and compare results and wall-clock.
 */
EngineResult
runEngineBench(const Workload &w, const arch::HwConfig &hw,
               const BenchParams &p, int reps)
{
    costmodel::Mapper mapper(hw.tech);
    const auto scfg = baselines::schedulerConfig(Design::Adyna);
    core::Scheduler sched(w.dg, hw, mapper, scfg);
    const core::Schedule schedule = sched.build(
        {}, sched.initialKernelValues(), nullptr);

    trace::TraceConfig tc = w.bundle.traceConfig;
    tc.batchSize = p.batchSize;
    trace::TraceGenerator gen(w.dg, tc, p.seed);
    std::vector<trace::BatchRouting> routings;
    routings.reserve(static_cast<std::size_t>(p.batches));
    for (int b = 0; b < p.batches; ++b)
        routings.push_back(gen.next());

    EngineResult out;
    core::PeriodResult uncachedRes;
    for (const bool memo : {false, true}) {
        auto pol = baselines::execPolicy(Design::Adyna);
        pol.execCostMemo = memo;
        core::Engine eng(w.dg, hw, mapper, pol);
        const double t0 = nowMs();
        core::PeriodResult first;
        for (int r = 0; r < reps; ++r) {
            arch::Chip chip(hw);
            core::PeriodResult res = eng.runPeriod(
                chip, schedule, routings, nullptr, 0);
            if (r == 0)
                first = std::move(res);
        }
        const double ms = (nowMs() - t0) / reps;
        if (memo) {
            out.memoMs = ms;
            out.identical = samePeriod(first, uncachedRes);
            out.execHits = eng.execHits();
            out.execMisses = eng.execMisses();
        } else {
            out.uncachedMs = ms;
            uncachedRes = std::move(first);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 120;
    const int reconfigRounds =
        static_cast<int>(args.getInt("reconfig-rounds", 5));
    const int engineReps =
        static_cast<int>(args.getInt("engine-reps", 3));
    const arch::HwConfig hw;
    printBanner("=== Harness self-check: sweep wall-clock, "
                "reconfiguration latency and equivalence ===",
                hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const auto designs = baselines::allDesigns();
    std::printf("Sweep: %zu workloads x %zu designs = %zu runs, "
                "%d batches each\n\n",
                workloads.size(), designs.size(),
                workloads.size() * designs.size(), p.batches);

    // ---- 1. the full sweep, three ways -----------------------------
    const auto base = runSweep(workloads, designs, p, hw,
                               SweepCfg{1, false, false, false,
                                        false});
    const auto cached = runSweep(workloads, designs, p, hw,
                                 SweepCfg{1, true, true, true, true});
    const auto parallel = runSweep(
        workloads, designs, p, hw,
        SweepCfg{p.jobs, true, true, true, true});

    const bool eqCached = reportsIdentical(base.reports,
                                           cached.reports);
    const bool eqParallel = reportsIdentical(base.reports,
                                             parallel.reports);

    TextTable t("End-to-end sweep wall-clock");
    t.header({"configuration", "wall (ms)", "speedup",
              "reports identical"});
    t.row({"A: seed (serial, uncached)", TextTable::num(base.wallMs, 0),
           "1.00x", "-"});
    t.row({"B: serial + all caches",
           TextTable::num(cached.wallMs, 0),
           TextTable::mult(base.wallMs / cached.wallMs),
           eqCached ? "yes" : "NO"});
    t.row({"C: --jobs " + std::to_string(p.jobs) + " + all caches",
           TextTable::num(parallel.wallMs, 0),
           TextTable::mult(base.wallMs / parallel.wallMs),
           eqParallel ? "yes" : "NO"});
    t.print(std::cout);

    const auto hitRate = [](std::uint64_t h, std::uint64_t m) {
        return h + m ? 100.0 * static_cast<double>(h) /
                           static_cast<double>(h + m)
                     : 0.0;
    };
    std::printf("\nSerial cached sweep: mapper %llu/%llu hits/misses "
                "(%.1f%%), stores %llu/%llu (%.1f%%), exec memo "
                "%llu/%llu (%.1f%%)\n",
                static_cast<unsigned long long>(cached.mapperHits),
                static_cast<unsigned long long>(cached.mapperMisses),
                hitRate(cached.mapperHits, cached.mapperMisses),
                static_cast<unsigned long long>(cached.storeHits),
                static_cast<unsigned long long>(cached.storeMisses),
                hitRate(cached.storeHits, cached.storeMisses),
                static_cast<unsigned long long>(cached.execHits),
                static_cast<unsigned long long>(cached.execMisses),
                hitRate(cached.execHits, cached.execMisses));

    // ---- 2. reconfiguration latency --------------------------------
    std::vector<ReconfigResult> reconfigs;
    for (const Workload &w : workloads)
        reconfigs.push_back(
            runReconfig(w, hw, reconfigRounds, p.jobs));

    TextTable rt("Re-schedule latency (ms per build, " +
                 std::to_string(reconfigRounds) + " rounds)");
    rt.header({"workload", "cold", "cold --jobs", "warm", "speedup",
               "identical"});
    double coldSum = 0.0, coldParSum = 0.0, warmSum = 0.0;
    double bestSpeedup = 0.0;
    bool schedulesIdentical = true;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const ReconfigResult &r = reconfigs[i];
        const double spd =
            r.warmMs > 0.0 ? r.coldMs / r.warmMs : 0.0;
        bestSpeedup = std::max(bestSpeedup, spd);
        coldSum += r.coldMs;
        coldParSum += r.coldParallelMs;
        warmSum += r.warmMs;
        schedulesIdentical = schedulesIdentical && r.identical;
        rt.row({workloads[i].name, TextTable::num(r.coldMs, 2),
                TextTable::num(r.coldParallelMs, 2),
                TextTable::num(r.warmMs, 3), TextTable::mult(spd),
                r.identical ? "yes" : "NO"});
    }
    rt.print(std::cout);

    // ---- 3. engine throughput --------------------------------------
    const auto eng = runEngineBench(workloads.front(), hw, p,
                                    engineReps);
    std::printf("\nEngine throughput (%s, %d batches x %d reps): "
                "memo off %.1f ms, on %.1f ms (%.2fx), results %s, "
                "%llu/%llu hits/misses\n",
                workloads.front().name.c_str(), p.batches, engineReps,
                eng.uncachedMs, eng.memoMs,
                eng.memoMs > 0.0 ? eng.uncachedMs / eng.memoMs : 0.0,
                eng.identical ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(eng.execHits),
                static_cast<unsigned long long>(eng.execMisses));

    // ---- BENCH_sweep.json ------------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_sweep.json");
    const bool warmFaster = warmSum < coldSum;
    {
        std::ofstream out(jsonPath);
        std::ostringstream os;
        os << "{\n  \"bench\": \"perf_selfcheck\",\n  "
           << buildStampJson() << ",\n  \"jobs\": " << p.jobs
           << ",\n  \"batches\": " << p.batches
           << ",\n  \"batch_size\": " << p.batchSize
           << ",\n  \"runs\": " << workloads.size() * designs.size()
           << ",\n  \"serial_uncached_ms\": " << base.wallMs
           << ",\n  \"serial_cached_ms\": " << cached.wallMs
           << ",\n  \"parallel_cached_ms\": " << parallel.wallMs
           << ",\n  \"speedup_cache\": "
           << base.wallMs / cached.wallMs
           << ",\n  \"speedup_total\": "
           << base.wallMs / parallel.wallMs
           << ",\n  \"mapper_hits\": " << cached.mapperHits
           << ",\n  \"mapper_misses\": " << cached.mapperMisses
           << ",\n  \"store_hits\": " << cached.storeHits
           << ",\n  \"store_misses\": " << cached.storeMisses
           << ",\n  \"exec_hits\": " << cached.execHits
           << ",\n  \"exec_misses\": " << cached.execMisses
           << ",\n  \"reports_identical\": "
           << (eqCached && eqParallel ? "true" : "false")
           << ",\n  \"reconfig\": [\n";
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const ReconfigResult &r = reconfigs[i];
            os << "    {\"workload\": \"" << workloads[i].name
               << "\", \"cold_ms\": " << r.coldMs
               << ", \"cold_parallel_ms\": " << r.coldParallelMs
               << ", \"warm_ms\": " << r.warmMs << ", \"speedup\": "
               << (r.warmMs > 0.0 ? r.coldMs / r.warmMs : 0.0)
               << ", \"store_hits\": " << r.storeHits
               << ", \"store_misses\": " << r.storeMisses
               << ", \"schedules_identical\": "
               << (r.identical ? "true" : "false") << "}"
               << (i + 1 < workloads.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"reconfig_cold_ms\": " << coldSum
           << ",\n  \"reconfig_cold_parallel_ms\": " << coldParSum
           << ",\n  \"reconfig_warm_ms\": " << warmSum
           << ",\n  \"reconfig_speedup\": " << bestSpeedup
           << ",\n  \"schedules_identical\": "
           << (schedulesIdentical ? "true" : "false")
           << ",\n  \"engine_uncached_ms\": " << eng.uncachedMs
           << ",\n  \"engine_memo_ms\": " << eng.memoMs
           << ",\n  \"engine_speedup\": "
           << (eng.memoMs > 0.0 ? eng.uncachedMs / eng.memoMs : 0.0)
           << ",\n  \"engine_identical\": "
           << (eng.identical ? "true" : "false") << "\n}\n";
        out << os.str();
    }
    std::printf("Wrote %s\n", jsonPath.c_str());

    const bool pass = eqCached && eqParallel && schedulesIdentical &&
                      eng.identical && warmFaster;
    if (!pass) {
        std::printf("\nFAIL:%s%s%s%s\n",
                    !eqCached || !eqParallel
                        ? " sweep reports diverge from the seed path;"
                        : "",
                    !schedulesIdentical
                        ? " warm-built schedules differ from cold;"
                        : "",
                    !eng.identical
                        ? " exec-memo results diverge;"
                        : "",
                    !warmFaster
                        ? " warm re-schedules not faster than cold;"
                        : "");
        return 1;
    }
    std::printf("\nPASS: cached/parallel sweeps, warm re-schedules "
                "and the exec memo are all equivalent to the seed "
                "path, and warm re-schedules are faster than cold\n");
    return 0;
}
