/**
 * @file
 * Harness self-check: times the hot paths of the simulator three
 * ways and gates every optimization on byte-identical outputs.
 *
 * 1. The full workload x design sweep -- (A) the seed configuration
 *    (serial, per-run mapper, legacy per-period segment planner, no
 *    store cache, no exec memo), (B) serial with every cache layer
 *    on, and (C) the same plus the --jobs thread pool -- verifying
 *    that all three produce identical reports.
 * 2. The reconfiguration-latency bench: N re-schedules per workload
 *    cold (fresh mapper, no store cache), cold with the parallel
 *    per-stage store build, and warm (primed kernel-store cache +
 *    mapper memo), verifying cold- and warm-built schedules are
 *    identical down to the encoded kernel images.
 * 3. The engine-throughput bench: the same batch stream through
 *    Engine::runPeriod with the exec-cost memo off and on, verifying
 *    identical PeriodResults.
 * 4. The event-queue bench: the same self-propagating event stream
 *    through the legacy priority-queue simulator and the arena /
 *    calendar-queue simulator, verifying identical fired order and
 *    gating the arena path at >= 2x the legacy throughput.
 * 5. The delta re-schedule bench: warm full rebuilds vs pure-splice
 *    Scheduler::buildDelta calls on the most segmented workload,
 *    verifying splices are byte-identical to their base and gating
 *    delta p99 at >= 10x below full-rebuild p99.
 *
 * Everything lands in a machine-readable `BENCH_sweep.json` so the
 * perf trajectory is trackable across PRs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "common/buildinfo.hh"
#include "core/report_io.hh"
#include "des/simulator.hh"
#include "kernels/store_cache.hh"

using namespace adyna;
using namespace adyna::bench;
using baselines::Design;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Cache/parallelism switches of one sweep configuration. */
struct SweepCfg
{
    int jobs = 1;
    bool planCache = false;
    bool shareMapper = false;
    bool storeCache = false;
    bool execMemo = false;
};

struct SweepResult
{
    std::vector<core::RunReport> reports;
    double wallMs = 0.0;
    std::uint64_t mapperHits = 0;
    std::uint64_t mapperMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;
};

/** Run the full workload x design matrix under one configuration.
 * Each sweep gets its own store cache so timings are independent of
 * sweep order (the process-global cache is never touched). */
SweepResult
runSweep(const std::vector<Workload> &workloads,
         const std::vector<Design> &designs, const BenchParams &p,
         const arch::HwConfig &hw, const SweepCfg &cfg)
{
    ThreadPool pool(cfg.jobs);
    costmodel::Mapper shared(hw.tech);
    kernels::KernelStoreCache cache;

    struct Task
    {
        std::size_t wi;
        Design d;
    };
    std::vector<Task> tasks;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi)
        for (Design d : designs)
            tasks.push_back({wi, d});

    SweepResult out;
    const double t0 = nowMs();
    out.reports = pool.parallelMap(tasks.size(), [&](std::size_t i) {
        const Workload &w = workloads[tasks[i].wi];
        trace::TraceConfig tc = w.bundle.traceConfig;
        tc.batchSize = p.batchSize;
        auto pol = baselines::execPolicy(tasks[i].d);
        pol.planCache = cfg.planCache;
        pol.execCostMemo = cfg.execMemo;
        auto scfg = baselines::schedulerConfig(tasks[i].d);
        scfg.storeCache = cfg.storeCache;
        core::System sys(w.dg, tc, hw, scfg, pol,
                         baselines::runOptions(tasks[i].d, p.batches,
                                               p.seed),
                         baselines::designName(tasks[i].d));
        if (cfg.shareMapper)
            sys.setSharedMapper(&shared);
        sys.setSharedStoreCache(&cache);
        return sys.run();
    });
    out.wallMs = nowMs() - t0;
    out.mapperHits = shared.hits();
    out.mapperMisses = shared.misses();
    out.storeHits = cache.hits();
    out.storeMisses = cache.misses();
    for (const core::RunReport &r : out.reports) {
        out.execHits += r.execHits;
        out.execMisses += r.execMisses;
    }
    return out;
}

/** Simulation outputs (not cache counters) must match exactly. */
bool
reportsIdentical(const std::vector<core::RunReport> &a,
                 const std::vector<core::RunReport> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (core::toJson(a[i], /*include_batches=*/true) !=
            core::toJson(b[i], /*include_batches=*/true))
            return false;
    return true;
}

/** Everything a schedule compiles down to, including the encoded
 * 128-byte kernel images (cold- and warm-built schedules must agree
 * byte for byte). */
std::string
scheduleFingerprint(const core::Schedule &sch)
{
    std::ostringstream os;
    for (const auto &seg : sch.segments) {
        for (const auto &st : seg->stages) {
            os << st.op << ':' << st.baseTiles << ':';
            for (TileId t : st.tiles)
                os << t << ',';
            for (const auto &[count, store] : st.stores) {
                os << '|' << count;
                for (const auto &k : store->kernels()) {
                    os << '/' << k.value << '#';
                    for (unsigned byte : k.image)
                        os << byte << '.';
                }
            }
            os << ';';
        }
        os << '\n';
    }
    return os.str();
}

/** Reconfiguration-latency figures for one workload. */
struct ReconfigResult
{
    double coldMs = 0.0;
    double coldParallelMs = 0.0;
    double warmMs = 0.0;
    bool identical = false;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
};

/**
 * Time @p rounds re-schedules of one workload. Cold builds recompile
 * every store through a fresh mapper (the seed re-schedule path);
 * the parallel variant adds the per-stage thread-pool build; warm
 * builds reuse a primed kernel-store cache, the path a
 * drift-triggered re-schedule takes in the serving runtime.
 */
ReconfigResult
runReconfig(const Workload &w, const arch::HwConfig &hw, int rounds,
            int jobs)
{
    const auto scfg =
        baselines::schedulerConfig(Design::Adyna);
    std::map<OpId, double> expectations; // worst-case weights
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    {
        costmodel::Mapper m(hw.tech);
        core::Scheduler s(w.dg, hw, m, scfg);
        kernelValues = s.initialKernelValues();
    }

    ReconfigResult out;
    std::string coldFp;

    // Cold: every round compiles every kernel store from scratch.
    // (Fingerprints come from separate untimed builds so the string
    // construction never pollutes the latency figures.)
    {
        costmodel::Mapper m0(hw.tech);
        core::Scheduler s0(w.dg, hw, m0, scfg);
        coldFp = scheduleFingerprint(
            s0.build(expectations, kernelValues, nullptr));
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r) {
            costmodel::Mapper m(hw.tech);
            core::Scheduler s(w.dg, hw, m, scfg);
            (void)s.build(expectations, kernelValues, nullptr);
        }
        out.coldMs = (nowMs() - t0) / rounds;
    }

    // Cold + parallel per-stage store build.
    {
        ThreadPool pool(jobs);
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r) {
            costmodel::Mapper m(hw.tech);
            core::Scheduler s(w.dg, hw, m, scfg);
            s.setThreadPool(&pool);
            (void)s.build(expectations, kernelValues, nullptr);
        }
        out.coldParallelMs = (nowMs() - t0) / rounds;
    }

    // Warm: one untimed priming build, then re-schedules against the
    // populated store cache and mapper memo.
    {
        costmodel::Mapper m(hw.tech);
        kernels::KernelStoreCache cache;
        core::Scheduler s(w.dg, hw, m, scfg);
        s.setStoreCache(&cache);
        const std::string warmFp = scheduleFingerprint(
            s.build(expectations, kernelValues, nullptr));
        const double t0 = nowMs();
        for (int r = 0; r < rounds; ++r)
            (void)s.build(expectations, kernelValues, nullptr);
        out.warmMs = (nowMs() - t0) / rounds;
        out.identical = warmFp == coldFp;
        out.storeHits = cache.hits();
        out.storeMisses = cache.misses();
    }
    return out;
}

/** Engine-throughput figures: the exec-cost memo off vs on. */
struct EngineResult
{
    double uncachedMs = 0.0;
    double memoMs = 0.0;
    bool identical = false;
    std::uint64_t execHits = 0;
    std::uint64_t execMisses = 0;
};

bool
samePeriod(const core::PeriodResult &a, const core::PeriodResult &b)
{
    return a.endTime == b.endTime && a.batchEnds == b.batchEnds &&
           a.stageCycles == b.stageCycles;
}

/**
 * Stream the same batch routing sequence through Engine::runPeriod
 * @p reps times per memo setting (fresh chip per rep, so every rep
 * is the same simulation) and compare results and wall-clock.
 */
EngineResult
runEngineBench(const Workload &w, const arch::HwConfig &hw,
               const BenchParams &p, int reps)
{
    costmodel::Mapper mapper(hw.tech);
    const auto scfg = baselines::schedulerConfig(Design::Adyna);
    core::Scheduler sched(w.dg, hw, mapper, scfg);
    const core::Schedule schedule = sched.build(
        {}, sched.initialKernelValues(), nullptr);

    trace::TraceConfig tc = w.bundle.traceConfig;
    tc.batchSize = p.batchSize;
    trace::TraceGenerator gen(w.dg, tc, p.seed);
    std::vector<trace::BatchRouting> routings;
    routings.reserve(static_cast<std::size_t>(p.batches));
    for (int b = 0; b < p.batches; ++b)
        routings.push_back(gen.next());

    EngineResult out;
    core::PeriodResult uncachedRes;
    for (const bool memo : {false, true}) {
        auto pol = baselines::execPolicy(Design::Adyna);
        pol.execCostMemo = memo;
        core::Engine eng(w.dg, hw, mapper, pol);
        const double t0 = nowMs();
        core::PeriodResult first;
        for (int r = 0; r < reps; ++r) {
            arch::Chip chip(hw);
            core::PeriodResult res = eng.runPeriod(
                chip, schedule, routings, nullptr, 0);
            if (r == 0)
                first = std::move(res);
        }
        const double ms = (nowMs() - t0) / reps;
        if (memo) {
            out.memoMs = ms;
            out.identical = samePeriod(first, uncachedRes);
            out.execHits = eng.execHits();
            out.execMisses = eng.execMisses();
        } else {
            out.uncachedMs = ms;
            uncachedRes = std::move(first);
        }
    }
    return out;
}

// ---- 4. event-queue A/B --------------------------------------------

/** One FNV-1a step (order-sensitive fired-sequence checksum). */
constexpr std::uint64_t
mix(std::uint64_t h, std::uint64_t x)
{
    return (h ^ x) * 0x100000001b3ull;
}

/**
 * Deterministic event-delay pattern shaped like the engine's
 * traffic: same-tick bursts, mostly near-future posts, and a
 * far-future tail that exercises the overflow heap behind the
 * calendar window.
 */
constexpr Tick
queueDelta(std::uint64_t id)
{
    if ((id & 63u) == 63u)
        return 4000 + id % 1031;
    return id % 3u == 0 ? 0 : 1 + id % 7;
}

/** Event-queue A/B figures. */
struct QueueResult
{
    double legacyMs = 0.0;
    double arenaMs = 0.0;
    double eventsPerSec = 0.0; ///< arena (typed) path
    std::uint64_t events = 0;
    bool identical = false; ///< fired sequences match exactly
};

/** Legacy path: every event is a heap-allocated closure ordered by
 * the binary heap. Each fired event spawns its successor, keeping a
 * steady population of @p seedChains in-flight events. */
struct LegacyQueueDriver
{
    des::LegacySimulator sim;
    std::uint64_t spawned = 0;
    std::uint64_t fired = 0;
    std::uint64_t sum = 0xcbf29ce484222325ull;
    std::uint64_t total = 0;

    void
    spawn()
    {
        const std::uint64_t id = spawned++;
        sim.schedule(sim.now() + queueDelta(id), [this, id] {
            sum = mix(sum, (sim.now() << 20) ^ id);
            ++fired;
            if (spawned < total)
                spawn();
        });
    }
};

/** Arena path: the same stream as typed zero-allocation posts. */
struct ArenaQueueDriver
{
    des::Simulator sim;
    std::uint64_t spawned = 0;
    std::uint64_t fired = 0;
    std::uint64_t sum = 0xcbf29ce484222325ull;
    std::uint64_t total = 0;

    static void
    handler(void *ctx, std::uint64_t id, std::uint64_t)
    {
        auto *self = static_cast<ArenaQueueDriver *>(ctx);
        self->sum = mix(self->sum, (self->sim.now() << 20) ^ id);
        ++self->fired;
        if (self->spawned < self->total)
            self->spawn();
    }

    void
    spawn()
    {
        const std::uint64_t id = spawned++;
        sim.post(sim.now() + queueDelta(id), 1, id, 0);
    }
};

QueueResult
runQueueBench(std::uint64_t events, int seedChains)
{
    QueueResult out;
    out.events = events;

    std::uint64_t legacySum = 0;
    {
        LegacyQueueDriver d;
        d.total = events;
        const double t0 = nowMs();
        for (int i = 0; i < seedChains; ++i)
            d.spawn();
        d.sim.run();
        out.legacyMs = nowMs() - t0;
        legacySum = d.sum;
        out.events = d.fired;
    }
    {
        ArenaQueueDriver d;
        d.total = events;
        d.sim.setHandler(1, &ArenaQueueDriver::handler, &d);
        const double t0 = nowMs();
        for (int i = 0; i < seedChains; ++i)
            d.spawn();
        d.sim.run();
        out.arenaMs = nowMs() - t0;
        out.identical = d.sum == legacySum && d.fired == out.events;
        if (out.arenaMs > 0.0)
            out.eventsPerSec = static_cast<double>(d.fired) /
                               (out.arenaMs * 1e-3);
    }
    return out;
}

// ---- 5. delta re-schedule latency ----------------------------------

/** Warm full rebuild vs pure-splice buildDelta percentiles. */
struct DeltaResult
{
    std::string workload;
    double fullP50 = 0.0;
    double fullP99 = 0.0;
    double deltaP50 = 0.0;
    double deltaP99 = 0.0;
    std::uint64_t segmentsTotal = 0;
    std::uint64_t segmentsRebuilt = 0;
    /** Pure splice == base, and an all-ops delta == a full build. */
    bool identical = false;
};

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/**
 * Time @p rounds warm full rebuilds against @p rounds pure-splice
 * delta rebuilds (no op changed -- the serve loop's
 * sub-tolerance-drift fast path) of the most segmented workload.
 * Everything runs against a primed store cache and mapper memo, so
 * the full builds measure exactly what a drift re-schedule paid
 * before buildDelta existed.
 */
DeltaResult
runDeltaBench(const std::vector<Workload> &workloads,
              const arch::HwConfig &hw, int rounds)
{
    const auto scfg = baselines::schedulerConfig(Design::Adyna);
    const std::map<OpId, double> expectations;

    // Most segmented workload: splicing only pays when there is more
    // than one segment to skip.
    std::size_t best = 0;
    std::size_t bestSegs = 0;
    std::map<OpId, std::vector<std::int64_t>> kernelValues;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        costmodel::Mapper m(hw.tech);
        core::Scheduler s(workloads[i].dg, hw, m, scfg);
        const auto kv = s.initialKernelValues();
        const auto sch = s.build(expectations, kv, nullptr);
        if (sch.segments.size() > bestSegs) {
            bestSegs = sch.segments.size();
            best = i;
            kernelValues = kv;
        }
    }
    const Workload &w = workloads[best];

    DeltaResult out;
    out.workload = w.name;

    costmodel::Mapper m(hw.tech);
    kernels::KernelStoreCache cache;
    core::Scheduler s(w.dg, hw, m, scfg);
    s.setStoreCache(&cache);
    const core::Schedule base =
        s.build(expectations, kernelValues, nullptr);

    // All stage ops changed == the full-build path, byte for byte.
    std::vector<OpId> allOps;
    for (const auto &seg : base.segments)
        for (const auto &st : seg->stages)
            allOps.push_back(st.op);
    core::DeltaStats stats;
    const core::Schedule spliced = s.buildDelta(
        base, expectations, kernelValues, nullptr, {}, &stats);
    const core::Schedule rebuilt = s.buildDelta(
        base, expectations, kernelValues, nullptr, allOps, nullptr);
    out.segmentsTotal = stats.segmentsTotal;
    out.segmentsRebuilt = stats.segmentsRebuilt;
    out.identical =
        scheduleFingerprint(spliced) == scheduleFingerprint(base) &&
        scheduleFingerprint(rebuilt) == scheduleFingerprint(base) &&
        stats.segmentsRebuilt == 0;

    // Both paths sit in the microsecond range, where one-shot
    // samples are scheduler-jitter lotteries: each sample times a
    // small batch of builds (identically for both paths) so the
    // percentiles reflect the build, not the timer.
    constexpr int kBatch = 16;
    std::vector<double> fullTimes, deltaTimes;
    fullTimes.reserve(static_cast<std::size_t>(rounds));
    deltaTimes.reserve(static_cast<std::size_t>(rounds));
    for (int r = 0; r < kBatch; ++r) { // warm-up, untimed
        (void)s.build(expectations, kernelValues, nullptr);
        (void)s.buildDelta(base, expectations, kernelValues, nullptr,
                           {}, nullptr);
    }
    // Interleave the two paths round by round so a machine-load
    // burst lands on both distributions instead of skewing one.
    for (int r = 0; r < rounds; ++r) {
        double t0 = nowMs();
        for (int b = 0; b < kBatch; ++b)
            (void)s.build(expectations, kernelValues, nullptr);
        fullTimes.push_back((nowMs() - t0) / kBatch);
        t0 = nowMs();
        for (int b = 0; b < kBatch; ++b)
            (void)s.buildDelta(base, expectations, kernelValues,
                               nullptr, {}, nullptr);
        deltaTimes.push_back((nowMs() - t0) / kBatch);
    }
    out.fullP50 = percentile(fullTimes, 0.50);
    out.fullP99 = percentile(fullTimes, 0.99);
    out.deltaP50 = percentile(deltaTimes, 0.50);
    out.deltaP99 = percentile(deltaTimes, 0.99);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchParams p = BenchParams::fromArgs(args);
    if (!args.has("batches"))
        p.batches = 120;
    const int reconfigRounds =
        static_cast<int>(args.getInt("reconfig-rounds", 5));
    const int engineReps =
        static_cast<int>(args.getInt("engine-reps", 3));
    const auto queueEvents = static_cast<std::uint64_t>(
        args.getInt("queue-events", 2000000));
    const int deltaRounds =
        static_cast<int>(args.getInt("delta-rounds", 60));
    const arch::HwConfig hw;
    printBanner("=== Harness self-check: sweep wall-clock, "
                "reconfiguration latency and equivalence ===",
                hw, p);

    const auto workloads = makeAllWorkloads(p.batchSize);
    const auto designs = baselines::allDesigns();
    std::printf("Sweep: %zu workloads x %zu designs = %zu runs, "
                "%d batches each\n\n",
                workloads.size(), designs.size(),
                workloads.size() * designs.size(), p.batches);

    // ---- 1. the full sweep, three ways -----------------------------
    const auto base = runSweep(workloads, designs, p, hw,
                               SweepCfg{1, false, false, false,
                                        false});
    const auto cached = runSweep(workloads, designs, p, hw,
                                 SweepCfg{1, true, true, true, true});
    const auto parallel = runSweep(
        workloads, designs, p, hw,
        SweepCfg{p.jobs, true, true, true, true});

    const bool eqCached = reportsIdentical(base.reports,
                                           cached.reports);
    const bool eqParallel = reportsIdentical(base.reports,
                                             parallel.reports);

    TextTable t("End-to-end sweep wall-clock");
    t.header({"configuration", "wall (ms)", "speedup",
              "reports identical"});
    t.row({"A: seed (serial, uncached)", TextTable::num(base.wallMs, 0),
           "1.00x", "-"});
    t.row({"B: serial + all caches",
           TextTable::num(cached.wallMs, 0),
           TextTable::mult(base.wallMs / cached.wallMs),
           eqCached ? "yes" : "NO"});
    t.row({"C: --jobs " + std::to_string(p.jobs) + " + all caches",
           TextTable::num(parallel.wallMs, 0),
           TextTable::mult(base.wallMs / parallel.wallMs),
           eqParallel ? "yes" : "NO"});
    t.print(std::cout);

    const auto hitRate = [](std::uint64_t h, std::uint64_t m) {
        return h + m ? 100.0 * static_cast<double>(h) /
                           static_cast<double>(h + m)
                     : 0.0;
    };
    std::printf("\nSerial cached sweep: mapper %llu/%llu hits/misses "
                "(%.1f%%), stores %llu/%llu (%.1f%%), exec memo "
                "%llu/%llu (%.1f%%)\n",
                static_cast<unsigned long long>(cached.mapperHits),
                static_cast<unsigned long long>(cached.mapperMisses),
                hitRate(cached.mapperHits, cached.mapperMisses),
                static_cast<unsigned long long>(cached.storeHits),
                static_cast<unsigned long long>(cached.storeMisses),
                hitRate(cached.storeHits, cached.storeMisses),
                static_cast<unsigned long long>(cached.execHits),
                static_cast<unsigned long long>(cached.execMisses),
                hitRate(cached.execHits, cached.execMisses));

    // ---- 2. reconfiguration latency --------------------------------
    std::vector<ReconfigResult> reconfigs;
    for (const Workload &w : workloads)
        reconfigs.push_back(
            runReconfig(w, hw, reconfigRounds, p.jobs));

    TextTable rt("Re-schedule latency (ms per build, " +
                 std::to_string(reconfigRounds) + " rounds)");
    rt.header({"workload", "cold", "cold --jobs", "warm", "speedup",
               "identical"});
    double coldSum = 0.0, coldParSum = 0.0, warmSum = 0.0;
    double bestSpeedup = 0.0;
    bool schedulesIdentical = true;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const ReconfigResult &r = reconfigs[i];
        const double spd =
            r.warmMs > 0.0 ? r.coldMs / r.warmMs : 0.0;
        bestSpeedup = std::max(bestSpeedup, spd);
        coldSum += r.coldMs;
        coldParSum += r.coldParallelMs;
        warmSum += r.warmMs;
        schedulesIdentical = schedulesIdentical && r.identical;
        rt.row({workloads[i].name, TextTable::num(r.coldMs, 2),
                TextTable::num(r.coldParallelMs, 2),
                TextTable::num(r.warmMs, 3), TextTable::mult(spd),
                r.identical ? "yes" : "NO"});
    }
    rt.print(std::cout);

    // ---- 3. engine throughput --------------------------------------
    const auto eng = runEngineBench(workloads.front(), hw, p,
                                    engineReps);
    std::printf("\nEngine throughput (%s, %d batches x %d reps): "
                "memo off %.1f ms, on %.1f ms (%.2fx), results %s, "
                "%llu/%llu hits/misses\n",
                workloads.front().name.c_str(), p.batches, engineReps,
                eng.uncachedMs, eng.memoMs,
                eng.memoMs > 0.0 ? eng.uncachedMs / eng.memoMs : 0.0,
                eng.identical ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(eng.execHits),
                static_cast<unsigned long long>(eng.execMisses));

    // ---- 4. event-queue throughput ---------------------------------
    const QueueResult q = runQueueBench(queueEvents, 1024);
    const double queueSpeedup =
        q.arenaMs > 0.0 ? q.legacyMs / q.arenaMs : 0.0;
    std::printf("\nEvent queue (%llu events): legacy %.1f ms, arena "
                "%.1f ms (%.2fx, %.1fM events/s), fired order %s\n",
                static_cast<unsigned long long>(q.events), q.legacyMs,
                q.arenaMs, queueSpeedup, q.eventsPerSec * 1e-6,
                q.identical ? "identical" : "DIVERGED");

    // ---- 5. delta re-schedule latency ------------------------------
    const DeltaResult del = runDeltaBench(workloads, hw, deltaRounds);
    const double deltaSpeedupP99 =
        del.deltaP99 > 0.0 ? del.fullP99 / del.deltaP99 : 0.0;
    std::printf("Delta re-schedule (%s, %llu segments, %d rounds): "
                "warm full p50/p99 %.3f/%.3f ms, splice p50/p99 "
                "%.4f/%.4f ms (p99 %.1fx), schedules %s\n",
                del.workload.c_str(),
                static_cast<unsigned long long>(del.segmentsTotal),
                deltaRounds, del.fullP50, del.fullP99, del.deltaP50,
                del.deltaP99, deltaSpeedupP99,
                del.identical ? "identical" : "DIVERGED");

    // ---- BENCH_sweep.json ------------------------------------------
    const std::string jsonPath =
        args.getString("json", "BENCH_sweep.json");
    const bool warmFaster = warmSum < coldSum;
    {
        std::ofstream out(jsonPath);
        std::ostringstream os;
        os << "{\n  \"bench\": \"perf_selfcheck\",\n  "
           << buildStampJson() << ",\n  \"jobs\": " << p.jobs
           << ",\n  \"batches\": " << p.batches
           << ",\n  \"batch_size\": " << p.batchSize
           << ",\n  \"runs\": " << workloads.size() * designs.size()
           << ",\n  \"serial_uncached_ms\": " << base.wallMs
           << ",\n  \"serial_cached_ms\": " << cached.wallMs
           << ",\n  \"parallel_cached_ms\": " << parallel.wallMs
           << ",\n  \"speedup_cache\": "
           << base.wallMs / cached.wallMs
           << ",\n  \"speedup_total\": "
           << base.wallMs / parallel.wallMs
           << ",\n  \"mapper_hits\": " << cached.mapperHits
           << ",\n  \"mapper_misses\": " << cached.mapperMisses
           << ",\n  \"store_hits\": " << cached.storeHits
           << ",\n  \"store_misses\": " << cached.storeMisses
           << ",\n  \"exec_hits\": " << cached.execHits
           << ",\n  \"exec_misses\": " << cached.execMisses
           << ",\n  \"reports_identical\": "
           << (eqCached && eqParallel ? "true" : "false")
           << ",\n  \"reconfig\": [\n";
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const ReconfigResult &r = reconfigs[i];
            os << "    {\"workload\": \"" << workloads[i].name
               << "\", \"cold_ms\": " << r.coldMs
               << ", \"cold_parallel_ms\": " << r.coldParallelMs
               << ", \"warm_ms\": " << r.warmMs << ", \"speedup\": "
               << (r.warmMs > 0.0 ? r.coldMs / r.warmMs : 0.0)
               << ", \"store_hits\": " << r.storeHits
               << ", \"store_misses\": " << r.storeMisses
               << ", \"schedules_identical\": "
               << (r.identical ? "true" : "false") << "}"
               << (i + 1 < workloads.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"reconfig_cold_ms\": " << coldSum
           << ",\n  \"reconfig_cold_parallel_ms\": " << coldParSum
           << ",\n  \"reconfig_warm_ms\": " << warmSum
           << ",\n  \"reconfig_speedup\": " << bestSpeedup
           << ",\n  \"schedules_identical\": "
           << (schedulesIdentical ? "true" : "false")
           << ",\n  \"engine_uncached_ms\": " << eng.uncachedMs
           << ",\n  \"engine_memo_ms\": " << eng.memoMs
           << ",\n  \"engine_speedup\": "
           << (eng.memoMs > 0.0 ? eng.uncachedMs / eng.memoMs : 0.0)
           << ",\n  \"engine_identical\": "
           << (eng.identical ? "true" : "false")
           << ",\n  \"queue_events\": " << q.events
           << ",\n  \"queue_legacy_ms\": " << q.legacyMs
           << ",\n  \"queue_arena_ms\": " << q.arenaMs
           << ",\n  \"queue_speedup\": " << queueSpeedup
           << ",\n  \"engine_events_per_sec\": " << q.eventsPerSec
           << ",\n  \"queue_identical\": "
           << (q.identical ? "true" : "false")
           << ",\n  \"delta_workload\": \"" << del.workload << "\""
           << ",\n  \"delta_segments\": " << del.segmentsTotal
           << ",\n  \"delta_full_p50_ms\": " << del.fullP50
           << ",\n  \"delta_full_p99_ms\": " << del.fullP99
           << ",\n  \"delta_p50_ms\": " << del.deltaP50
           << ",\n  \"delta_p99_ms\": " << del.deltaP99
           << ",\n  \"delta_speedup_p99\": " << deltaSpeedupP99
           << ",\n  \"delta_identical\": "
           << (del.identical ? "true" : "false") << "\n}\n";
        out << os.str();
    }
    std::printf("Wrote %s\n", jsonPath.c_str());

    const bool queueOk = q.identical && queueSpeedup >= 2.0;
    const bool deltaOk = del.identical && deltaSpeedupP99 >= 10.0;
    const bool pass = eqCached && eqParallel && schedulesIdentical &&
                      eng.identical && warmFaster && queueOk &&
                      deltaOk;
    if (!pass) {
        std::printf("\nFAIL:%s%s%s%s%s%s\n",
                    !eqCached || !eqParallel
                        ? " sweep reports diverge from the seed path;"
                        : "",
                    !schedulesIdentical
                        ? " warm-built schedules differ from cold;"
                        : "",
                    !eng.identical
                        ? " exec-memo results diverge;"
                        : "",
                    !warmFaster
                        ? " warm re-schedules not faster than cold;"
                        : "",
                    !queueOk ? " event-queue path below 2x the "
                               "legacy simulator (or order diverged);"
                             : "",
                    !deltaOk ? " delta re-schedule p99 below 10x the "
                               "warm full rebuild (or splice "
                               "diverged);"
                             : "");
        return 1;
    }
    std::printf("\nPASS: cached/parallel sweeps, warm re-schedules "
                "and the exec memo are all equivalent to the seed "
                "path, warm re-schedules are faster than cold, the "
                "arena event queue clears 2x legacy, and delta "
                "re-schedule p99 clears 10x the warm full rebuild\n");
    return 0;
}
